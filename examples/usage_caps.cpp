// Usage-cap management (the paper's uCap feature, Section 3.2.2).
//
// Simulates one consented home for a month, feeds the gateway's per-device
// accounting into a UsageCapManager with a 30 GB plan, and prints the alerts
// and per-device breakdown the household's Web interface would show —
// "quite useful for users who have Internet service plans with low data
// caps".
//
//   ./examples/usage_caps [seed]
#include <cstdio>
#include <cstdlib>

#include "bismark/usage_cap.h"
#include "core/table.h"
#include "home/household.h"
#include "sim/engine.h"
#include "traffic/generator.h"

using namespace bismark;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  const TimePoint start = MakeTime({2013, 4, 1});
  const Interval month{start, start + Days(28)};
  const auto catalog = traffic::DomainCatalog::BuildStandard();
  net::ZoneCatalog zones;
  catalog.install_zones(zones);
  gateway::Anonymizer anonymizer(catalog, {});
  collect::DataRepository repo(collect::DatasetWindows::Compressed(start, 4));

  home::HouseholdOptions options;
  options.consent = gateway::ConsentLevel::kFullTraffic;
  options.min_devices = 5;
  home::Household household(collect::HomeId{1}, home::CountryByCode("US"), month, {month},
                            anonymizer, &repo, Rng(seed), options);

  // The uCap configuration: a 30 GB monthly plan with alerts at 50/80/95 %.
  gateway::UsageCapConfig cap_config;
  cap_config.household_cap = GB(30);
  cap_config.reset_day = 1;
  gateway::UsageCapManager caps(cap_config, [](const gateway::CapAlert& alert) {
    const char* kind = "";
    switch (alert.kind) {
      case gateway::CapAlertKind::kHouseholdThreshold: kind = "household threshold"; break;
      case gateway::CapAlertKind::kHouseholdExceeded: kind = "HOUSEHOLD CAP EXCEEDED"; break;
      case gateway::CapAlertKind::kDeviceThreshold: kind = "device threshold"; break;
      case gateway::CapAlertKind::kDeviceExceeded: kind = "DEVICE QUOTA EXCEEDED"; break;
    }
    std::printf("  [%s] %s: %.1f GB of %.1f GB (%.0f%%)\n",
                FormatTime(alert.when).c_str(), kind, alert.used.gb(), alert.limit.gb(),
                alert.fraction * 100.0);
  });

  // Quota the household's heaviest hitter (the media streamer, if any).
  for (const auto& device : household.devices()) {
    if (device.spec().type == traffic::DeviceType::kMediaStreamer ||
        device.spec().type == traffic::DeviceType::kSmartTv) {
      caps.set_device_quota(device.spec().mac, GB(12));
      std::printf("Device quota: 12 GB for the %s (%s)\n",
                  std::string(traffic::DeviceTypeName(device.spec().type)).c_str(),
                  device.spec().mac.to_string().c_str());
    }
  }

  // Run the month of traffic; the gateway charges every closed flow to its
  // device through the attached cap manager.
  sim::Engine engine(month.start);
  net::DnsResolver resolver(zones);
  household.router().attach_usage_caps(&caps);

  traffic::HomeTrafficGenerator generator(engine, catalog, resolver, household.router(),
                                          household.tz(), Rng(seed ^ 5));
  for (std::size_t i = 0; i < household.devices().size(); ++i) {
    const home::Device& device = household.devices()[i];
    const auto lease = household.router().dhcp().acquire(device.spec().mac, month.start);
    if (!lease) continue;
    traffic::DeviceWorkload workload;
    workload.mac = device.spec().mac;
    workload.ip = lease->address;
    workload.type = device.spec().type;
    workload.hunger_scale = i == household.primary_device() ? 2.0 : 1.0;
    workload.sessions_per_hour_peak = traffic::TraitsOf(device.spec().type).sessions_per_hour;
    workload.app_mix = traffic::AppMixOf(device.spec().type);
    const home::Device* dev = &device;
    const home::Household* hh = &household;
    workload.is_active = [hh, dev](TimePoint t) {
      return hh->timeline().available_at(t) && dev->wants_online(t);
    };
    generator.add_device(std::move(workload));
  }

  std::printf("\nSimulating April 2013 against a 30 GB plan...\n\n");
  generator.start(month.start, month.end);
  engine.run_until(month.end);

  std::printf("\nEnd-of-month usage table (what the Web UI renders):\n");
  TextTable table({"device", "used (GB)", "quota (GB)", "status"});
  for (const auto& row : caps.usage_table()) {
    table.add_row({row.device.to_string(), TextTable::Num(row.used.gb()),
                   row.quota ? TextTable::Num(row.quota->gb()) : "-",
                   row.over_quota ? "OVER QUOTA" : "ok"});
  }
  table.print();
  std::printf("\nHousehold: %.1f GB of %.1f GB (%.0f%%); %zu alerts this period.\n",
              caps.household_used().gb(), cap_config.household_cap.gb(),
              caps.household_fraction() * 100.0, caps.alerts().size());
  return 0;
}
