// ShaperProbe in miniature: how the 12-hourly capacity measurement behaves
// on an idle link, under cross-traffic, and on a bufferbloated uplink —
// the three regimes behind Figures 14-16.
//
//   ./examples/capacity_probe_demo
#include <cstdio>

#include "core/stats.h"
#include "core/table.h"
#include "net/access_link.h"

using namespace bismark;
using namespace bismark::net;

namespace {
RunningStats ProbeMany(AccessLink& link, Direction dir, int n, std::uint64_t seed) {
  Rng rng(seed);
  RunningStats stats;
  for (int i = 0; i < n; ++i) stats.add(link.probe_capacity(dir, rng).mbps());
  return stats;
}
}  // namespace

int main() {
  const TimePoint t0 = MakeTime({2013, 4, 1});

  AccessLinkConfig config;
  config.down_capacity = Mbps(20);
  config.up_capacity = Mbps(2);
  AccessLink link(config);

  std::printf("True capacity: %.1f Mbps down / %.1f Mbps up\n\n",
              config.down_capacity.mbps(), config.up_capacity.mbps());

  TextTable table({"scenario", "probe mean (Mbps)", "probe stddev", "bias"});

  // 1. Idle link: the estimate is accurate.
  auto idle = ProbeMany(link, Direction::kDownstream, 200, 1);
  table.add_row({"downlink, idle", TextTable::Num(idle.mean()), TextTable::Num(idle.stddev()),
                 TextTable::Pct(idle.mean() / 20.0 - 1.0)});

  // 2. Cross-traffic: a 12 Mbps stream is running during the probe.
  link.add_rate(Direction::kDownstream, 12e6, t0);
  auto busy = ProbeMany(link, Direction::kDownstream, 200, 2);
  table.add_row({"downlink, 60% cross-traffic", TextTable::Num(busy.mean()),
                 TextTable::Num(busy.stddev()), TextTable::Pct(busy.mean() / 20.0 - 1.0)});
  link.remove_rate(Direction::kDownstream, 12e6, t0 + Seconds(30));

  // 3. The bufferbloat case: uplink overdriven while probing.
  AccessLinkConfig bloated = config;
  bloated.allow_uplink_overdrive = true;
  bloated.uplink_buffer = KB(512);
  AccessLink bad_link(bloated);
  bad_link.add_rate(Direction::kUpstream, 2.6e6, t0);  // saturating upload
  auto up_busy = ProbeMany(bad_link, Direction::kUpstream, 200, 3);
  table.add_row({"uplink, saturated (bufferbloat home)", TextTable::Num(up_busy.mean()),
                 TextTable::Num(up_busy.stddev()),
                 TextTable::Pct(up_busy.mean() / 2.0 - 1.0)});
  bad_link.remove_rate(Direction::kUpstream, 2.6e6, t0 + Seconds(60));

  table.print();

  std::printf("\nQueue state after 60 s of 2.6 Mbps into the 2 Mbps uplink:\n");
  std::printf("  depth %.0f KB, standing delay %.2f s, %llu drops\n",
              bad_link.uplink_queue_depth().kb(),
              bad_link.uplink_queueing_delay().seconds(),
              static_cast<unsigned long long>(bad_link.uplink_drops()));

  std::printf(
      "\nTakeaways:\n"
      "  * idle probes are accurate -> the paper's median-of-probes is a fair capacity\n"
      "  * probes during heavy use read low -> utilisation ratios can exceed 1\n"
      "  * a saturated, deep-buffered uplink queues seconds of data (Fig. 16's homes\n"
      "    \"likely experience significant latency problems\")\n");
  return 0;
}
