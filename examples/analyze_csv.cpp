// Re-run the availability and infrastructure analyses from the *released*
// CSVs — what an external researcher could do with the paper's public data
// (http://data.gtnoise.net/bismark/imc2013/nat in the paper; a directory
// written by `world_deployment <seed> <dir>` here).
//
//   ./examples/analyze_csv <release-dir>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "analysis/diurnal.h"
#include "analysis/downtime.h"
#include "analysis/infrastructure.h"
#include "collect/import.h"
#include "core/stats.h"
#include "core/table.h"

using namespace bismark;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <release-dir>\n"
                 "hint: ./world_deployment 20131023 /tmp/bismark-data && %s /tmp/bismark-data\n",
                 argv[0], argv[0]);
    return 2;
  }

  collect::DataRepository repo(collect::DatasetWindows::Paper());
  const auto report = collect::ImportPublicDatasets(repo, argv[1]);
  std::printf("Imported %zu rows from %s (%zu heartbeat runs, %zu uptime, %zu capacity, "
              "%zu device-census, %zu wifi)\n",
              report.total_rows(), argv[1], report.heartbeat_runs(), report.uptime(),
              report.capacity(), report.device_counts(), report.wifi_scans());
  for (const auto& e : report.errors) std::fprintf(stderr, "  warning: %s\n", e.c_str());
  if (report.total_rows() == 0) {
    std::fprintf(stderr, "nothing imported — is %s a release directory?\n", argv[1]);
    return 1;
  }

  // The public release carries no home metadata (country/region), so the
  // regional splits of the paper need an external mapping. Everything
  // per-home still works; register bare home rows so the analyses run.
  {
    std::set<int> ids;
    for (const auto& run : repo.heartbeat_runs()) ids.insert(run.home.value);
    for (const auto& rec : repo.device_counts()) ids.insert(rec.home.value);
    for (int id : ids) {
      collect::HomeInfo info;
      info.id = collect::HomeId{id};
      info.country_code = "??";
      info.reports_devices = true;
      repo.register_home(info);
    }
    std::printf("Registered %zu homes (no region metadata in the public release).\n\n",
                ids.size());
  }

  // Availability from heartbeats alone.
  const auto homes = analysis::AnalyzeAvailability(repo, {Minutes(10), 25.0});
  Cdf downtimes_per_day;
  Cdf online_fraction;
  for (const auto& h : homes) {
    downtimes_per_day.add(h.downtimes_per_day());
    online_fraction.add(h.online_fraction());
  }
  PrintBanner("Availability (from heartbeats.csv)");
  std::printf("qualifying homes: %zu\n", homes.size());
  std::printf("downtimes/day: %s\n", Summarize(downtimes_per_day).c_str());
  std::printf("online fraction: %s\n", Summarize(online_fraction).c_str());

  // Infrastructure from the device census.
  PrintBanner("Infrastructure (from devices.csv)");
  const auto devices_cdf = analysis::UniqueDevicesCdf(repo);
  std::printf("unique devices/home: %s\n", Summarize(devices_cdf).c_str());
  const auto bands = analysis::UniqueDevicesPerBand(repo);
  std::printf("2.4 GHz devices/home: %s\n", Summarize(bands.band24).c_str());
  std::printf("5 GHz devices/home:   %s\n", Summarize(bands.band5).c_str());

  // WiFi crowding.
  PrintBanner("Spectrum (from wifi.csv)");
  Cdf aps24;
  std::map<int, std::vector<double>> per_home;
  for (const auto& scan : repo.wifi_scans()) {
    if (scan.band == wireless::Band::k2_4GHz) {
      per_home[scan.home.value].push_back(scan.visible_aps);
    }
  }
  for (const auto& [id, values] : per_home) aps24.add(Median(values));
  std::printf("neighbour APs on 2.4 GHz (per-home median): %s\n", Summarize(aps24).c_str());

  std::printf("\nDone — same analysis code, released data only.\n");
  return 0;
}
