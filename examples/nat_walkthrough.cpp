// Peeking behind the NAT, literally.
//
// Demonstrates the paper's core observation problem: three devices open
// flows; outside the NAT they are indistinguishable (one IP), while the
// gateway's vantage point attributes every flow to its device. Then a
// port scan from a stranger bounces off the port-restricted NAT.
//
//   ./examples/nat_walkthrough
#include <cstdio>

#include "core/table.h"
#include "net/dhcp.h"
#include "net/nat.h"
#include "net/oui.h"

using namespace bismark;
using namespace bismark::net;

int main() {
  const TimePoint t0 = MakeTime({2013, 4, 1}, 20, 15, 0);

  NatConfig config;
  config.wan_address = Ipv4Address(203, 0, 113, 7);
  NatTable nat(config);
  DhcpPool dhcp(Ipv4Cidr{Ipv4Address(192, 168, 1, 0), 24}, Ipv4Address(192, 168, 1, 1));

  struct Client {
    const char* name;
    MacAddress mac;
    Ipv4Address remote;
    std::uint16_t dst_port;
  };
  const Client clients[] = {
      {"dad's MacBook", MacAddress::FromParts(0x7CD1C3, 0x000123),
       Ipv4Address(74, 125, 21, 99), 443},                               // google
      {"the Roku", MacAddress::FromParts(0x000D4B, 0x000456),
       Ipv4Address(23, 246, 2, 10), 443},                                // netflix edge
      {"kid's Galaxy", MacAddress::FromParts(0x38AA3C, 0x000789),
       Ipv4Address(31, 13, 65, 1), 80},                                  // facebook
  };

  std::printf("Three devices lease LAN addresses and open flows:\n\n");
  TextTable table({"device", "vendor (from OUI)", "LAN address", "as seen from the Internet"});
  for (const auto& client : clients) {
    const auto lease = dhcp.acquire(client.mac, t0);
    Packet packet;
    packet.timestamp = t0;
    packet.tuple = {lease->address, client.remote, 50000, client.dst_port, Protocol::kTcp};
    packet.size = B(64);
    packet.lan_mac = client.mac;
    nat.translate_outbound(packet);

    const auto vendor = OuiRegistry::Instance().manufacturer(client.mac);
    table.add_row({client.name, std::string(vendor.value_or("?")),
                   lease->address.to_string() + ":50000",
                   packet.tuple.src_ip.to_string() + ":" +
                       std::to_string(packet.tuple.src_port)});
  }
  table.print();

  std::printf("\nFrom outside, all three flows come from %s — the home is opaque.\n",
              config.wan_address.to_string().c_str());
  std::printf("The NAT table is the only place that still knows who is who:\n\n");

  TextTable mappings({"WAN port", "LAN endpoint", "owner (device MAC)"});
  for (const auto& m : nat.snapshot()) {
    mappings.add_row({std::to_string(m.wan_port),
                      m.lan_tuple.src_ip.to_string() + ":" +
                          std::to_string(m.lan_tuple.src_port),
                      m.device_mac.to_string()});
  }
  mappings.print();

  // Replies come back to the right device.
  std::printf("\nA reply from netflix's edge returns through the NAT:\n");
  const auto roku_port = nat.snapshot()[1].wan_port;
  Packet reply;
  reply.timestamp = t0 + Seconds(1);
  reply.tuple = {clients[1].remote, config.wan_address, 443, roku_port, Protocol::kTcp};
  reply.size = B(1500);
  reply.direction = Direction::kDownstream;
  if (nat.translate_inbound(reply)) {
    std::printf("  delivered to %s (%s) — per-device attribution restored\n",
                reply.tuple.dst_ip.to_string().c_str(), reply.lan_mac.to_string().c_str());
  }

  // A stranger probing the same port is dropped (port-restricted cone).
  Packet probe;
  probe.timestamp = t0 + Seconds(2);
  probe.tuple = {Ipv4Address(198, 51, 100, 66), config.wan_address, 12345, roku_port,
                 Protocol::kTcp};
  probe.direction = Direction::kDownstream;
  const bool accepted = nat.translate_inbound(probe);
  std::printf("  a stranger probing WAN port %u: %s\n", roku_port,
              accepted ? "ACCEPTED (bug!)" : "dropped (port-restricted NAT)");

  std::printf("\nNAT stats: %llu out, %llu in, %llu unsolicited drops, %zu active mappings\n",
              static_cast<unsigned long long>(nat.stats().translations_out),
              static_cast<unsigned long long>(nat.stats().translations_in),
              static_cast<unsigned long long>(nat.stats().unknown_inbound_drops),
              nat.active_mappings());
  std::printf("\nThis is why the paper needs a vantage point *behind* the NAT.\n");
  return 0;
}
