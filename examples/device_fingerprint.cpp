// Device fingerprinting from traffic patterns (Section 7 future work).
//
// Runs a small consented deployment, then classifies each device as
// "streaming box" vs "general purpose" using only anonymised flow records
// — the MAC's OUI narrows the manufacturer, and the domain-concentration
// index separates single-purpose streamers from laptops. Ground truth from
// the simulator scores the classifier.
//
//   ./examples/device_fingerprint [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "analysis/fingerprint.h"
#include "analysis/usage.h"
#include "core/table.h"
#include "home/deployment.h"

using namespace bismark;

int main(int argc, char** argv) {
  home::DeploymentOptions options;
  options.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 99;
  options.windows =
      collect::DatasetWindows::Compressed(MakeTime({2013, 4, 1}), 2);
  options.traffic_homes = 12;
  options.bufferbloat_homes = 0;

  std::printf("Running a 12-home consented deployment for two weeks...\n");
  const auto study = home::Deployment::RunStudy(options);
  const auto& repo = study->repository();

  // Ground truth: anonymised MAC -> is the device a streamer/TV?
  const auto catalog = traffic::DomainCatalog::BuildStandard();
  gateway::Anonymizer anonymizer(catalog,
                                 gateway::AnonymizerConfig{options.seed ^ 0xA17Full, "anon-"});
  std::map<std::uint64_t, bool> truth;
  for (const auto& home : study->households()) {
    for (const auto& device : home->devices()) {
      const bool streamer = device.spec().type == traffic::DeviceType::kMediaStreamer ||
                            device.spec().type == traffic::DeviceType::kSmartTv;
      truth[anonymizer.anonymize_mac(device.spec().mac).as_u64()] = streamer;
    }
  }

  // The classifier sees only what the Traffic data set contains: it runs
  // on anonymised flow features via analysis::fingerprint.
  const auto features =
      analysis::ExtractAllDeviceFeatures(repo, study->catalog(), MB(50));
  TextTable table({"device (anon MAC)", "vendor", "GB", "streaming share",
                   "top-domain share", "verdict", "truth"});
  int correct = 0, total = 0, streamers_found = 0;
  for (const auto& f : features) {
    const auto verdict = analysis::ClassifyDevice(f);
    const bool is_streamer = verdict == analysis::DeviceClassGuess::kStreamingBox;
    const auto it = truth.find(f.device.as_u64());
    const bool actual = it != truth.end() && it->second;
    ++total;
    if (is_streamer == actual) ++correct;
    if (is_streamer) ++streamers_found;
    table.add_row({f.device.to_string(), std::string(net::VendorClassName(f.vendor)),
                   TextTable::Num(f.total_bytes.gb()), TextTable::Pct(f.streaming_share),
                   TextTable::Pct(f.top_domain_share),
                   std::string(analysis::DeviceClassGuessName(verdict)),
                   actual ? "streamer" : "general"});
  }
  table.print();

  std::printf("\nClassifier accuracy on %d devices with >= 50 MB: %d correct (%.0f%%), "
              "%d flagged as streamers\n",
              total, correct, total ? 100.0 * correct / total : 0.0, streamers_found);
  std::printf("The paper's use case: ISPs could attach security alerts to *devices*, not "
              "just households (Section 7).\n");
  return 0;
}
