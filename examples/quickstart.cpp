// Quickstart: build one home, watch its gateway measure it.
//
// This is the smallest end-to-end tour of the library: assemble a single
// household, run its measurement services over a two-week window, generate
// its traffic through the event engine, and print what the gateway saw.
//
//   ./examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/downtime.h"
#include "bismark/services.h"
#include "collect/server.h"
#include "core/table.h"
#include "home/household.h"
#include "sim/engine.h"
#include "traffic/generator.h"

using namespace bismark;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // --- 1. A study window and the shared catalogs. ---
  const TimePoint start = MakeTime({2013, 4, 1});
  const Interval window{start, start + Days(14)};
  const auto catalog = traffic::DomainCatalog::BuildStandard();
  net::ZoneCatalog zones;
  catalog.install_zones(zones);
  gateway::Anonymizer anonymizer(catalog, {});

  collect::DatasetWindows windows = collect::DatasetWindows::Compressed(start, 2);
  collect::DataRepository repo(windows);

  // --- 2. One US home with traffic consent. ---
  home::HouseholdOptions options;
  options.consent = gateway::ConsentLevel::kFullTraffic;
  options.min_devices = 4;
  home::Household household(collect::HomeId{1}, home::CountryByCode("US"), window, {window},
                            anonymizer, &repo, Rng(seed), options);

  collect::HomeInfo info = household.make_info();
  info.reports_uptime = info.reports_devices = info.reports_wifi = true;
  repo.register_home(info);

  std::printf("Built a %s home with %zu devices (power mode %d):\n",
              household.country().name.c_str(), household.devices().size(),
              static_cast<int>(household.power_mode()));
  for (const auto& device : household.devices()) {
    std::printf("  %-15s %-17s %s%s%s\n",
                std::string(traffic::DeviceTypeName(device.spec().type)).c_str(),
                device.spec().mac.to_string().c_str(),
                device.spec().wired ? "wired" : "wireless",
                device.spec().dual_band ? " dual-band" : "",
                device.spec().always_on ? " always-on" : "");
  }
  std::printf("Access link: %.1f down / %.1f up Mbps\n",
              household.link().config().down_capacity.mbps(),
              household.link().config().up_capacity.mbps());

  // --- 3. Run every measurement service the firmware runs. ---
  collect::CollectionServer server(repo, {});
  server.ingest_heartbeats(household.id(), household.timeline().online(), Rng(seed ^ 1));
  gateway::ReportUptime(repo, household.id(), household.timeline().router_on, windows.uptime);
  gateway::ReportCapacity(repo, household.id(), household.timeline().online(),
                          household.link(), Rng(seed ^ 2), windows.capacity);
  gateway::ReportDeviceCounts(repo, household.id(), household, household.timeline().router_on,
                              windows.devices);
  gateway::ReportWifiScans(repo, household.id(), household, household.neighborhood(),
                           household.timeline().router_on, windows.wifi, Rng(seed ^ 3));

  // --- 4. Generate the home's traffic through the event engine. ---
  sim::Engine engine(window.start);
  net::DnsResolver resolver(zones);
  traffic::HomeTrafficGenerator generator(engine, catalog, resolver, household.router(),
                                          household.tz(), Rng(seed ^ 4));
  for (std::size_t i = 0; i < household.devices().size(); ++i) {
    const home::Device& device = household.devices()[i];
    const auto lease = household.router().dhcp().acquire(device.spec().mac, window.start);
    if (!lease) continue;
    traffic::DeviceWorkload workload;
    workload.mac = device.spec().mac;
    workload.ip = lease->address;
    workload.type = device.spec().type;
    workload.hunger_scale = i == household.primary_device() ? 1.6 : 1.0;
    workload.sessions_per_hour_peak = traffic::TraitsOf(device.spec().type).sessions_per_hour;
    workload.app_mix = traffic::AppMixOf(device.spec().type);
    const home::Device* dev = &device;
    const home::Household* hh = &household;
    workload.is_active = [hh, dev](TimePoint t) {
      return hh->timeline().available_at(t) && dev->wants_online(t);
    };
    generator.add_device(std::move(workload));
  }
  generator.start(window.start, window.end);
  engine.run_until(window.end);
  household.router().finalize(window.end);

  // --- 5. What did the gateway see? ---
  const auto counts = repo.counts();
  std::printf("\nTwo simulated weeks produced:\n");
  std::printf("  %zu heartbeat runs, %zu uptime reports, %zu capacity probes\n",
              counts.heartbeat_runs, counts.uptime, counts.capacity);
  std::printf("  %zu device-census rows, %zu wifi scans\n", counts.device_counts,
              counts.wifi_scans);
  std::printf("  %zu flows, %zu busy minutes, %zu DNS samples (%llu engine events)\n",
              counts.flows, counts.throughput_minutes, counts.dns,
              static_cast<unsigned long long>(engine.executed()));

  Bytes total_down, total_up;
  for (const auto& flow : repo.flows()) {
    total_down += flow.bytes_down;
    total_up += flow.bytes_up;
  }
  std::printf("  volume: %.2f GB down, %.2f GB up\n", total_down.gb(), total_up.gb());

  std::printf("\nTop devices by traffic:\n");
  TextTable device_table({"device (anonymised MAC)", "vendor", "GB"});
  for (const auto& rec : repo.device_traffic()) {
    device_table.add_row({rec.device_mac.to_string(),
                          std::string(net::VendorClassName(rec.vendor)),
                          TextTable::Num(rec.bytes_total.gb())});
  }
  device_table.print();

  const auto availability = analysis::AnalyzeAvailability(repo, {Minutes(10), 1.0});
  if (!availability.empty()) {
    std::printf("\nAvailability: online %.1f%% of the window, %d downtimes >= 10 min\n",
                availability[0].online_fraction() * 100.0, availability[0].downtimes);
  }
  std::printf("\nDone. Try a different seed: ./quickstart 42\n");
  return 0;
}
