// The whole study in one program: deploy the Table 1 roster of 126 homes
// across 19 countries, run the Table 2 collection windows, and print a
// digest of every section's headline numbers. Also exports the public
// (non-PII) datasets as CSV, as the paper did.
//
//   ./examples/world_deployment [seed] [export-dir]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/diurnal.h"
#include "analysis/downtime.h"
#include "analysis/infrastructure.h"
#include "analysis/usage.h"
#include "analysis/utilization.h"
#include "collect/export.h"
#include "home/deployment.h"

using namespace bismark;

int main(int argc, char** argv) {
  home::DeploymentOptions options;
  options.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20131023;
  options.windows = collect::DatasetWindows::Paper();

  std::printf("Deploying %d BISmark routers across %zu countries...\n", home::TotalRouters(),
              home::StandardRoster().size());
  const auto study = home::Deployment::RunStudy(options);
  const auto& repo = study->repository();
  const auto counts = repo.counts();
  std::printf("Study complete: %zu heartbeat runs, %zu census rows, %zu flows.\n\n",
              counts.heartbeat_runs, counts.device_counts, counts.flows);

  // --- Section 4: availability ---
  const auto homes = analysis::AnalyzeAvailability(repo, {Minutes(10), 25.0});
  const auto summary = analysis::SummarizeRegions(homes);
  std::printf("== Availability (Section 4) ==\n");
  std::printf("  qualifying homes (>= 25 days online): %zu\n", homes.size());
  std::printf("  median days between downtimes: developed %.1f, developing %.2f\n",
              summary.median_days_between_downtimes_developed,
              summary.median_days_between_downtimes_developing);
  std::printf("  median downtime duration: developed %s, developing %s\n",
              FormatDuration(Seconds(summary.median_duration_s_developed)).c_str(),
              FormatDuration(Seconds(summary.median_duration_s_developing)).c_str());

  // --- Section 5: infrastructure ---
  std::printf("\n== Infrastructure (Section 5) ==\n");
  std::printf("  unique devices per home: median %.1f, mean %.1f\n",
              analysis::UniqueDevicesCdf(repo).median(), analysis::MeanUniqueDevices(repo));
  const auto bands = analysis::UniqueDevicesPerBand(repo);
  std::printf("  unique devices per band: 2.4 GHz median %.0f, 5 GHz median %.0f\n",
              bands.band24.median(), bands.band5.median());
  const auto neighbors = analysis::NeighborAps(repo);
  std::printf("  neighbour APs (2.4 GHz): developed median %.0f, developing median %.0f\n",
              neighbors.developed.median(), neighbors.developing.median());
  const auto table5 = analysis::AlwaysConnected(repo);
  std::printf("  always-connected homes: developed %d%% wired / %d%% wireless; "
              "developing %d%% / %d%%\n",
              static_cast<int>(table5.developed.wired_fraction() * 100),
              static_cast<int>(table5.developed.wireless_fraction() * 100),
              static_cast<int>(table5.developing.wired_fraction() * 100),
              static_cast<int>(table5.developing.wireless_fraction() * 100));

  // --- Section 6: usage ---
  std::printf("\n== Usage (Section 6) ==\n");
  const auto diurnal = analysis::WirelessDiurnalProfile(repo);
  std::printf("  weekday devices: peak %.2f / trough %.2f; weekend %.2f / %.2f\n",
              diurnal.weekday_peak(), diurnal.weekday_trough(), diurnal.weekend_peak(),
              diurnal.weekend_trough());
  const auto saturation = analysis::LinkSaturation(repo);
  int under_half = 0;
  for (const auto& p : saturation) under_half += p.utilization_down_p95 < 0.5;
  std::printf("  %d of %zu traffic homes use < 50%% of their downlink at p95\n", under_half,
              saturation.size());
  std::printf("  over-saturating uplinks (bufferbloat): %zu\n",
              analysis::OversaturatedUplinks(saturation).size());
  const auto devices = analysis::DeviceUsageShares(repo);
  std::printf("  dominant device carries %.0f%% of home traffic on average\n",
              devices.share_by_rank.empty() ? 0.0 : devices.share_by_rank[0] * 100.0);
  const auto domains = analysis::DomainUsageShares(repo);
  std::printf("  top domain: %.0f%% of volume over %.0f%% of connections; "
              "whitelist covers %.0f%% of volume\n",
              domains.by_rank[0].volume_share * 100.0,
              domains.by_rank[0].conns_by_vol_rank * 100.0,
              domains.whitelisted_volume_share * 100.0);

  // --- Public data release (Section 3.2) ---
  if (argc > 2) {
    const std::string dir = argv[2];
    const std::size_t rows = collect::ExportPublicDatasets(repo, dir);
    std::printf("\nExported %zu public (non-PII) rows to %s/\n", rows, dir.c_str());
    std::printf("(The Traffic data set is withheld, as in the paper.)\n");
  } else {
    std::printf("\nTip: pass an export directory to write the public CSVs:\n");
    std::printf("  ./world_deployment 20131023 /tmp/bismark-data\n");
  }
  return 0;
}
