# Empty dependencies file for bismark_study.
# This may be replaced when dependencies are built.
