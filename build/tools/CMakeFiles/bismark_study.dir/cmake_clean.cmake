file(REMOVE_RECURSE
  "CMakeFiles/bismark_study.dir/bismark_study.cpp.o"
  "CMakeFiles/bismark_study.dir/bismark_study.cpp.o.d"
  "bismark_study"
  "bismark_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
