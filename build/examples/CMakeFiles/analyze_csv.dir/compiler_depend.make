# Empty compiler generated dependencies file for analyze_csv.
# This may be replaced when dependencies are built.
