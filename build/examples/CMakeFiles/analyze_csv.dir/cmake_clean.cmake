file(REMOVE_RECURSE
  "CMakeFiles/analyze_csv.dir/analyze_csv.cpp.o"
  "CMakeFiles/analyze_csv.dir/analyze_csv.cpp.o.d"
  "analyze_csv"
  "analyze_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
