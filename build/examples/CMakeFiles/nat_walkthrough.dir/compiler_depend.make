# Empty compiler generated dependencies file for nat_walkthrough.
# This may be replaced when dependencies are built.
