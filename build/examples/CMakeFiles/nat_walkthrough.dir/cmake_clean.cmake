file(REMOVE_RECURSE
  "CMakeFiles/nat_walkthrough.dir/nat_walkthrough.cpp.o"
  "CMakeFiles/nat_walkthrough.dir/nat_walkthrough.cpp.o.d"
  "nat_walkthrough"
  "nat_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
