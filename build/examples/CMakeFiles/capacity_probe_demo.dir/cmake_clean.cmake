file(REMOVE_RECURSE
  "CMakeFiles/capacity_probe_demo.dir/capacity_probe_demo.cpp.o"
  "CMakeFiles/capacity_probe_demo.dir/capacity_probe_demo.cpp.o.d"
  "capacity_probe_demo"
  "capacity_probe_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_probe_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
