# Empty dependencies file for capacity_probe_demo.
# This may be replaced when dependencies are built.
