# Empty dependencies file for usage_caps.
# This may be replaced when dependencies are built.
