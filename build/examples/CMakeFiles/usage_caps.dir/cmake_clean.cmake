file(REMOVE_RECURSE
  "CMakeFiles/usage_caps.dir/usage_caps.cpp.o"
  "CMakeFiles/usage_caps.dir/usage_caps.cpp.o.d"
  "usage_caps"
  "usage_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
