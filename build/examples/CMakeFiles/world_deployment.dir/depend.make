# Empty dependencies file for world_deployment.
# This may be replaced when dependencies are built.
