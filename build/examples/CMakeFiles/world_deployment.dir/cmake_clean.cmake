file(REMOVE_RECURSE
  "CMakeFiles/world_deployment.dir/world_deployment.cpp.o"
  "CMakeFiles/world_deployment.dir/world_deployment.cpp.o.d"
  "world_deployment"
  "world_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
