
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/args.cpp" "src/core/CMakeFiles/bismark_core.dir/args.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/args.cpp.o.d"
  "/root/repo/src/core/cdf.cpp" "src/core/CMakeFiles/bismark_core.dir/cdf.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/cdf.cpp.o.d"
  "/root/repo/src/core/csv.cpp" "src/core/CMakeFiles/bismark_core.dir/csv.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/csv.cpp.o.d"
  "/root/repo/src/core/histogram.cpp" "src/core/CMakeFiles/bismark_core.dir/histogram.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/histogram.cpp.o.d"
  "/root/repo/src/core/intervals.cpp" "src/core/CMakeFiles/bismark_core.dir/intervals.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/intervals.cpp.o.d"
  "/root/repo/src/core/logging.cpp" "src/core/CMakeFiles/bismark_core.dir/logging.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/logging.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/bismark_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/rng.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/bismark_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/core/CMakeFiles/bismark_core.dir/table.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/table.cpp.o.d"
  "/root/repo/src/core/time.cpp" "src/core/CMakeFiles/bismark_core.dir/time.cpp.o" "gcc" "src/core/CMakeFiles/bismark_core.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
