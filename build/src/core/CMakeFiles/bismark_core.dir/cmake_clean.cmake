file(REMOVE_RECURSE
  "CMakeFiles/bismark_core.dir/args.cpp.o"
  "CMakeFiles/bismark_core.dir/args.cpp.o.d"
  "CMakeFiles/bismark_core.dir/cdf.cpp.o"
  "CMakeFiles/bismark_core.dir/cdf.cpp.o.d"
  "CMakeFiles/bismark_core.dir/csv.cpp.o"
  "CMakeFiles/bismark_core.dir/csv.cpp.o.d"
  "CMakeFiles/bismark_core.dir/histogram.cpp.o"
  "CMakeFiles/bismark_core.dir/histogram.cpp.o.d"
  "CMakeFiles/bismark_core.dir/intervals.cpp.o"
  "CMakeFiles/bismark_core.dir/intervals.cpp.o.d"
  "CMakeFiles/bismark_core.dir/logging.cpp.o"
  "CMakeFiles/bismark_core.dir/logging.cpp.o.d"
  "CMakeFiles/bismark_core.dir/rng.cpp.o"
  "CMakeFiles/bismark_core.dir/rng.cpp.o.d"
  "CMakeFiles/bismark_core.dir/stats.cpp.o"
  "CMakeFiles/bismark_core.dir/stats.cpp.o.d"
  "CMakeFiles/bismark_core.dir/table.cpp.o"
  "CMakeFiles/bismark_core.dir/table.cpp.o.d"
  "CMakeFiles/bismark_core.dir/time.cpp.o"
  "CMakeFiles/bismark_core.dir/time.cpp.o.d"
  "libbismark_core.a"
  "libbismark_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
