file(REMOVE_RECURSE
  "libbismark_core.a"
)
