# Empty compiler generated dependencies file for bismark_core.
# This may be replaced when dependencies are built.
