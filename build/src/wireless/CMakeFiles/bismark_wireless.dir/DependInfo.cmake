
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wireless/airtime.cpp" "src/wireless/CMakeFiles/bismark_wireless.dir/airtime.cpp.o" "gcc" "src/wireless/CMakeFiles/bismark_wireless.dir/airtime.cpp.o.d"
  "/root/repo/src/wireless/association.cpp" "src/wireless/CMakeFiles/bismark_wireless.dir/association.cpp.o" "gcc" "src/wireless/CMakeFiles/bismark_wireless.dir/association.cpp.o.d"
  "/root/repo/src/wireless/band.cpp" "src/wireless/CMakeFiles/bismark_wireless.dir/band.cpp.o" "gcc" "src/wireless/CMakeFiles/bismark_wireless.dir/band.cpp.o.d"
  "/root/repo/src/wireless/neighbor.cpp" "src/wireless/CMakeFiles/bismark_wireless.dir/neighbor.cpp.o" "gcc" "src/wireless/CMakeFiles/bismark_wireless.dir/neighbor.cpp.o.d"
  "/root/repo/src/wireless/scanner.cpp" "src/wireless/CMakeFiles/bismark_wireless.dir/scanner.cpp.o" "gcc" "src/wireless/CMakeFiles/bismark_wireless.dir/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bismark_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bismark_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
