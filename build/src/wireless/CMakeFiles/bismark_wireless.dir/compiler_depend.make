# Empty compiler generated dependencies file for bismark_wireless.
# This may be replaced when dependencies are built.
