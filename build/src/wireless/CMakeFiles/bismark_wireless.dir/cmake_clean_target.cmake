file(REMOVE_RECURSE
  "libbismark_wireless.a"
)
