file(REMOVE_RECURSE
  "CMakeFiles/bismark_wireless.dir/airtime.cpp.o"
  "CMakeFiles/bismark_wireless.dir/airtime.cpp.o.d"
  "CMakeFiles/bismark_wireless.dir/association.cpp.o"
  "CMakeFiles/bismark_wireless.dir/association.cpp.o.d"
  "CMakeFiles/bismark_wireless.dir/band.cpp.o"
  "CMakeFiles/bismark_wireless.dir/band.cpp.o.d"
  "CMakeFiles/bismark_wireless.dir/neighbor.cpp.o"
  "CMakeFiles/bismark_wireless.dir/neighbor.cpp.o.d"
  "CMakeFiles/bismark_wireless.dir/scanner.cpp.o"
  "CMakeFiles/bismark_wireless.dir/scanner.cpp.o.d"
  "libbismark_wireless.a"
  "libbismark_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
