# Empty compiler generated dependencies file for bismark_home.
# This may be replaced when dependencies are built.
