file(REMOVE_RECURSE
  "CMakeFiles/bismark_home.dir/availability.cpp.o"
  "CMakeFiles/bismark_home.dir/availability.cpp.o.d"
  "CMakeFiles/bismark_home.dir/country.cpp.o"
  "CMakeFiles/bismark_home.dir/country.cpp.o.d"
  "CMakeFiles/bismark_home.dir/deployment.cpp.o"
  "CMakeFiles/bismark_home.dir/deployment.cpp.o.d"
  "CMakeFiles/bismark_home.dir/device.cpp.o"
  "CMakeFiles/bismark_home.dir/device.cpp.o.d"
  "CMakeFiles/bismark_home.dir/household.cpp.o"
  "CMakeFiles/bismark_home.dir/household.cpp.o.d"
  "libbismark_home.a"
  "libbismark_home.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_home.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
