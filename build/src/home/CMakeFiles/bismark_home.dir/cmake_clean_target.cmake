file(REMOVE_RECURSE
  "libbismark_home.a"
)
