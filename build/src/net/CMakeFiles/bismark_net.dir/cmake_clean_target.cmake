file(REMOVE_RECURSE
  "libbismark_net.a"
)
