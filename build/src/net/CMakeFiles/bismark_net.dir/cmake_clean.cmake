file(REMOVE_RECURSE
  "CMakeFiles/bismark_net.dir/access_link.cpp.o"
  "CMakeFiles/bismark_net.dir/access_link.cpp.o.d"
  "CMakeFiles/bismark_net.dir/addr.cpp.o"
  "CMakeFiles/bismark_net.dir/addr.cpp.o.d"
  "CMakeFiles/bismark_net.dir/dhcp.cpp.o"
  "CMakeFiles/bismark_net.dir/dhcp.cpp.o.d"
  "CMakeFiles/bismark_net.dir/dns.cpp.o"
  "CMakeFiles/bismark_net.dir/dns.cpp.o.d"
  "CMakeFiles/bismark_net.dir/ethernet.cpp.o"
  "CMakeFiles/bismark_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/bismark_net.dir/flow.cpp.o"
  "CMakeFiles/bismark_net.dir/flow.cpp.o.d"
  "CMakeFiles/bismark_net.dir/nat.cpp.o"
  "CMakeFiles/bismark_net.dir/nat.cpp.o.d"
  "CMakeFiles/bismark_net.dir/oui.cpp.o"
  "CMakeFiles/bismark_net.dir/oui.cpp.o.d"
  "libbismark_net.a"
  "libbismark_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
