# Empty compiler generated dependencies file for bismark_net.
# This may be replaced when dependencies are built.
