
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/access_link.cpp" "src/net/CMakeFiles/bismark_net.dir/access_link.cpp.o" "gcc" "src/net/CMakeFiles/bismark_net.dir/access_link.cpp.o.d"
  "/root/repo/src/net/addr.cpp" "src/net/CMakeFiles/bismark_net.dir/addr.cpp.o" "gcc" "src/net/CMakeFiles/bismark_net.dir/addr.cpp.o.d"
  "/root/repo/src/net/dhcp.cpp" "src/net/CMakeFiles/bismark_net.dir/dhcp.cpp.o" "gcc" "src/net/CMakeFiles/bismark_net.dir/dhcp.cpp.o.d"
  "/root/repo/src/net/dns.cpp" "src/net/CMakeFiles/bismark_net.dir/dns.cpp.o" "gcc" "src/net/CMakeFiles/bismark_net.dir/dns.cpp.o.d"
  "/root/repo/src/net/ethernet.cpp" "src/net/CMakeFiles/bismark_net.dir/ethernet.cpp.o" "gcc" "src/net/CMakeFiles/bismark_net.dir/ethernet.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/net/CMakeFiles/bismark_net.dir/flow.cpp.o" "gcc" "src/net/CMakeFiles/bismark_net.dir/flow.cpp.o.d"
  "/root/repo/src/net/nat.cpp" "src/net/CMakeFiles/bismark_net.dir/nat.cpp.o" "gcc" "src/net/CMakeFiles/bismark_net.dir/nat.cpp.o.d"
  "/root/repo/src/net/oui.cpp" "src/net/CMakeFiles/bismark_net.dir/oui.cpp.o" "gcc" "src/net/CMakeFiles/bismark_net.dir/oui.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bismark_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
