file(REMOVE_RECURSE
  "CMakeFiles/bismark_collect.dir/export.cpp.o"
  "CMakeFiles/bismark_collect.dir/export.cpp.o.d"
  "CMakeFiles/bismark_collect.dir/import.cpp.o"
  "CMakeFiles/bismark_collect.dir/import.cpp.o.d"
  "CMakeFiles/bismark_collect.dir/records.cpp.o"
  "CMakeFiles/bismark_collect.dir/records.cpp.o.d"
  "CMakeFiles/bismark_collect.dir/repository.cpp.o"
  "CMakeFiles/bismark_collect.dir/repository.cpp.o.d"
  "CMakeFiles/bismark_collect.dir/server.cpp.o"
  "CMakeFiles/bismark_collect.dir/server.cpp.o.d"
  "libbismark_collect.a"
  "libbismark_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
