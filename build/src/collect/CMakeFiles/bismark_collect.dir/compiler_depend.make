# Empty compiler generated dependencies file for bismark_collect.
# This may be replaced when dependencies are built.
