
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collect/export.cpp" "src/collect/CMakeFiles/bismark_collect.dir/export.cpp.o" "gcc" "src/collect/CMakeFiles/bismark_collect.dir/export.cpp.o.d"
  "/root/repo/src/collect/import.cpp" "src/collect/CMakeFiles/bismark_collect.dir/import.cpp.o" "gcc" "src/collect/CMakeFiles/bismark_collect.dir/import.cpp.o.d"
  "/root/repo/src/collect/records.cpp" "src/collect/CMakeFiles/bismark_collect.dir/records.cpp.o" "gcc" "src/collect/CMakeFiles/bismark_collect.dir/records.cpp.o.d"
  "/root/repo/src/collect/repository.cpp" "src/collect/CMakeFiles/bismark_collect.dir/repository.cpp.o" "gcc" "src/collect/CMakeFiles/bismark_collect.dir/repository.cpp.o.d"
  "/root/repo/src/collect/server.cpp" "src/collect/CMakeFiles/bismark_collect.dir/server.cpp.o" "gcc" "src/collect/CMakeFiles/bismark_collect.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bismark_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bismark_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/bismark_wireless.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
