file(REMOVE_RECURSE
  "libbismark_collect.a"
)
