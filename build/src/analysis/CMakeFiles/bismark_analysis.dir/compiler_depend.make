# Empty compiler generated dependencies file for bismark_analysis.
# This may be replaced when dependencies are built.
