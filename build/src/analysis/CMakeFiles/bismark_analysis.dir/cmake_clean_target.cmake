file(REMOVE_RECURSE
  "libbismark_analysis.a"
)
