
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/capacity_stats.cpp" "src/analysis/CMakeFiles/bismark_analysis.dir/capacity_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/bismark_analysis.dir/capacity_stats.cpp.o.d"
  "/root/repo/src/analysis/collection_artifacts.cpp" "src/analysis/CMakeFiles/bismark_analysis.dir/collection_artifacts.cpp.o" "gcc" "src/analysis/CMakeFiles/bismark_analysis.dir/collection_artifacts.cpp.o.d"
  "/root/repo/src/analysis/diurnal.cpp" "src/analysis/CMakeFiles/bismark_analysis.dir/diurnal.cpp.o" "gcc" "src/analysis/CMakeFiles/bismark_analysis.dir/diurnal.cpp.o.d"
  "/root/repo/src/analysis/downtime.cpp" "src/analysis/CMakeFiles/bismark_analysis.dir/downtime.cpp.o" "gcc" "src/analysis/CMakeFiles/bismark_analysis.dir/downtime.cpp.o.d"
  "/root/repo/src/analysis/fingerprint.cpp" "src/analysis/CMakeFiles/bismark_analysis.dir/fingerprint.cpp.o" "gcc" "src/analysis/CMakeFiles/bismark_analysis.dir/fingerprint.cpp.o.d"
  "/root/repo/src/analysis/infrastructure.cpp" "src/analysis/CMakeFiles/bismark_analysis.dir/infrastructure.cpp.o" "gcc" "src/analysis/CMakeFiles/bismark_analysis.dir/infrastructure.cpp.o.d"
  "/root/repo/src/analysis/timeline_view.cpp" "src/analysis/CMakeFiles/bismark_analysis.dir/timeline_view.cpp.o" "gcc" "src/analysis/CMakeFiles/bismark_analysis.dir/timeline_view.cpp.o.d"
  "/root/repo/src/analysis/usage.cpp" "src/analysis/CMakeFiles/bismark_analysis.dir/usage.cpp.o" "gcc" "src/analysis/CMakeFiles/bismark_analysis.dir/usage.cpp.o.d"
  "/root/repo/src/analysis/utilization.cpp" "src/analysis/CMakeFiles/bismark_analysis.dir/utilization.cpp.o" "gcc" "src/analysis/CMakeFiles/bismark_analysis.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bismark_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bismark_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/bismark_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/bismark_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/bismark_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bismark_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
