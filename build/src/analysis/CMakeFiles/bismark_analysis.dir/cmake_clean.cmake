file(REMOVE_RECURSE
  "CMakeFiles/bismark_analysis.dir/capacity_stats.cpp.o"
  "CMakeFiles/bismark_analysis.dir/capacity_stats.cpp.o.d"
  "CMakeFiles/bismark_analysis.dir/collection_artifacts.cpp.o"
  "CMakeFiles/bismark_analysis.dir/collection_artifacts.cpp.o.d"
  "CMakeFiles/bismark_analysis.dir/diurnal.cpp.o"
  "CMakeFiles/bismark_analysis.dir/diurnal.cpp.o.d"
  "CMakeFiles/bismark_analysis.dir/downtime.cpp.o"
  "CMakeFiles/bismark_analysis.dir/downtime.cpp.o.d"
  "CMakeFiles/bismark_analysis.dir/fingerprint.cpp.o"
  "CMakeFiles/bismark_analysis.dir/fingerprint.cpp.o.d"
  "CMakeFiles/bismark_analysis.dir/infrastructure.cpp.o"
  "CMakeFiles/bismark_analysis.dir/infrastructure.cpp.o.d"
  "CMakeFiles/bismark_analysis.dir/timeline_view.cpp.o"
  "CMakeFiles/bismark_analysis.dir/timeline_view.cpp.o.d"
  "CMakeFiles/bismark_analysis.dir/usage.cpp.o"
  "CMakeFiles/bismark_analysis.dir/usage.cpp.o.d"
  "CMakeFiles/bismark_analysis.dir/utilization.cpp.o"
  "CMakeFiles/bismark_analysis.dir/utilization.cpp.o.d"
  "libbismark_analysis.a"
  "libbismark_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
