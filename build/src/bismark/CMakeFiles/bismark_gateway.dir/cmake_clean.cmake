file(REMOVE_RECURSE
  "CMakeFiles/bismark_gateway.dir/anonymize.cpp.o"
  "CMakeFiles/bismark_gateway.dir/anonymize.cpp.o.d"
  "CMakeFiles/bismark_gateway.dir/gateway.cpp.o"
  "CMakeFiles/bismark_gateway.dir/gateway.cpp.o.d"
  "CMakeFiles/bismark_gateway.dir/meter.cpp.o"
  "CMakeFiles/bismark_gateway.dir/meter.cpp.o.d"
  "CMakeFiles/bismark_gateway.dir/services.cpp.o"
  "CMakeFiles/bismark_gateway.dir/services.cpp.o.d"
  "CMakeFiles/bismark_gateway.dir/usage_cap.cpp.o"
  "CMakeFiles/bismark_gateway.dir/usage_cap.cpp.o.d"
  "libbismark_gateway.a"
  "libbismark_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
