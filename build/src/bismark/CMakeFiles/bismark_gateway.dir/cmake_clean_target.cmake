file(REMOVE_RECURSE
  "libbismark_gateway.a"
)
