# Empty dependencies file for bismark_gateway.
# This may be replaced when dependencies are built.
