# Empty dependencies file for bismark_traffic.
# This may be replaced when dependencies are built.
