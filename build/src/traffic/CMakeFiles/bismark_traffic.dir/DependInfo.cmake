
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/apps.cpp" "src/traffic/CMakeFiles/bismark_traffic.dir/apps.cpp.o" "gcc" "src/traffic/CMakeFiles/bismark_traffic.dir/apps.cpp.o.d"
  "/root/repo/src/traffic/device_types.cpp" "src/traffic/CMakeFiles/bismark_traffic.dir/device_types.cpp.o" "gcc" "src/traffic/CMakeFiles/bismark_traffic.dir/device_types.cpp.o.d"
  "/root/repo/src/traffic/domains.cpp" "src/traffic/CMakeFiles/bismark_traffic.dir/domains.cpp.o" "gcc" "src/traffic/CMakeFiles/bismark_traffic.dir/domains.cpp.o.d"
  "/root/repo/src/traffic/generator.cpp" "src/traffic/CMakeFiles/bismark_traffic.dir/generator.cpp.o" "gcc" "src/traffic/CMakeFiles/bismark_traffic.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bismark_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bismark_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bismark_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
