file(REMOVE_RECURSE
  "CMakeFiles/bismark_traffic.dir/apps.cpp.o"
  "CMakeFiles/bismark_traffic.dir/apps.cpp.o.d"
  "CMakeFiles/bismark_traffic.dir/device_types.cpp.o"
  "CMakeFiles/bismark_traffic.dir/device_types.cpp.o.d"
  "CMakeFiles/bismark_traffic.dir/domains.cpp.o"
  "CMakeFiles/bismark_traffic.dir/domains.cpp.o.d"
  "CMakeFiles/bismark_traffic.dir/generator.cpp.o"
  "CMakeFiles/bismark_traffic.dir/generator.cpp.o.d"
  "libbismark_traffic.a"
  "libbismark_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
