file(REMOVE_RECURSE
  "libbismark_traffic.a"
)
