file(REMOVE_RECURSE
  "CMakeFiles/bismark_sim.dir/engine.cpp.o"
  "CMakeFiles/bismark_sim.dir/engine.cpp.o.d"
  "libbismark_sim.a"
  "libbismark_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bismark_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
