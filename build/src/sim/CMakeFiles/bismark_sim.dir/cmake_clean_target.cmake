file(REMOVE_RECURSE
  "libbismark_sim.a"
)
