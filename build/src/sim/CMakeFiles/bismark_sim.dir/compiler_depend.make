# Empty compiler generated dependencies file for bismark_sim.
# This may be replaced when dependencies are built.
