# Empty dependencies file for bench_fig9_band_usage.
# This may be replaced when dependencies are built.
