# Empty compiler generated dependencies file for bench_fig13_diurnal_devices.
# This may be replaced when dependencies are built.
