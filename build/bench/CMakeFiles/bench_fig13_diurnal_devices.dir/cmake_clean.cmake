file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_diurnal_devices.dir/bench_fig13_diurnal_devices.cpp.o"
  "CMakeFiles/bench_fig13_diurnal_devices.dir/bench_fig13_diurnal_devices.cpp.o.d"
  "bench_fig13_diurnal_devices"
  "bench_fig13_diurnal_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_diurnal_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
