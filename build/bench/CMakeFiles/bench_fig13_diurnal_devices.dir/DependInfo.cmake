
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_diurnal_devices.cpp" "bench/CMakeFiles/bench_fig13_diurnal_devices.dir/bench_fig13_diurnal_devices.cpp.o" "gcc" "bench/CMakeFiles/bench_fig13_diurnal_devices.dir/bench_fig13_diurnal_devices.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bismark_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/home/CMakeFiles/bismark_home.dir/DependInfo.cmake"
  "/root/repo/build/src/bismark/CMakeFiles/bismark_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/bismark_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/bismark_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/bismark_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bismark_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bismark_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bismark_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
