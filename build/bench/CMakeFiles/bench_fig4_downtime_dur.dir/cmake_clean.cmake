file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_downtime_dur.dir/bench_fig4_downtime_dur.cpp.o"
  "CMakeFiles/bench_fig4_downtime_dur.dir/bench_fig4_downtime_dur.cpp.o.d"
  "bench_fig4_downtime_dur"
  "bench_fig4_downtime_dur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_downtime_dur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
