# Empty compiler generated dependencies file for bench_fig4_downtime_dur.
# This may be replaced when dependencies are built.
