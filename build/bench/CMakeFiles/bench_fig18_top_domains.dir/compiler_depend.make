# Empty compiler generated dependencies file for bench_fig18_top_domains.
# This may be replaced when dependencies are built.
