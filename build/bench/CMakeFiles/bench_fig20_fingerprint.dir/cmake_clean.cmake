file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_fingerprint.dir/bench_fig20_fingerprint.cpp.o"
  "CMakeFiles/bench_fig20_fingerprint.dir/bench_fig20_fingerprint.cpp.o.d"
  "bench_fig20_fingerprint"
  "bench_fig20_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
