# Empty compiler generated dependencies file for bench_fig7_device_count.
# This may be replaced when dependencies are built.
