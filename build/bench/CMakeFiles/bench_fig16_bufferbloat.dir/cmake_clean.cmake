file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_bufferbloat.dir/bench_fig16_bufferbloat.cpp.o"
  "CMakeFiles/bench_fig16_bufferbloat.dir/bench_fig16_bufferbloat.cpp.o.d"
  "bench_fig16_bufferbloat"
  "bench_fig16_bufferbloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_bufferbloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
