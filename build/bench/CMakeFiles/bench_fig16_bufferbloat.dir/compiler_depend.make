# Empty compiler generated dependencies file for bench_fig16_bufferbloat.
# This may be replaced when dependencies are built.
