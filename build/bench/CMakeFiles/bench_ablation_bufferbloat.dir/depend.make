# Empty dependencies file for bench_ablation_bufferbloat.
# This may be replaced when dependencies are built.
