file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bufferbloat.dir/bench_ablation_bufferbloat.cpp.o"
  "CMakeFiles/bench_ablation_bufferbloat.dir/bench_ablation_bufferbloat.cpp.o.d"
  "bench_ablation_bufferbloat"
  "bench_ablation_bufferbloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bufferbloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
