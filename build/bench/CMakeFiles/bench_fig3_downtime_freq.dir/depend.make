# Empty dependencies file for bench_fig3_downtime_freq.
# This may be replaced when dependencies are built.
