file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_availability_modes.dir/bench_fig6_availability_modes.cpp.o"
  "CMakeFiles/bench_fig6_availability_modes.dir/bench_fig6_availability_modes.cpp.o.d"
  "bench_fig6_availability_modes"
  "bench_fig6_availability_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_availability_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
