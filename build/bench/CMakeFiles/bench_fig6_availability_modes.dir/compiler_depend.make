# Empty compiler generated dependencies file for bench_fig6_availability_modes.
# This may be replaced when dependencies are built.
