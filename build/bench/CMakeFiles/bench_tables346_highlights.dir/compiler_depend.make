# Empty compiler generated dependencies file for bench_tables346_highlights.
# This may be replaced when dependencies are built.
