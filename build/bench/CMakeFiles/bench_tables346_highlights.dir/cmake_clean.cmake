file(REMOVE_RECURSE
  "CMakeFiles/bench_tables346_highlights.dir/bench_tables346_highlights.cpp.o"
  "CMakeFiles/bench_tables346_highlights.dir/bench_tables346_highlights.cpp.o.d"
  "bench_tables346_highlights"
  "bench_tables346_highlights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables346_highlights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
