# Empty dependencies file for bench_fig19_domain_share.
# This may be replaced when dependencies are built.
