# Empty dependencies file for bench_fig2_deployment_map.
# This may be replaced when dependencies are built.
