# Empty dependencies file for bench_capacity_by_country.
# This may be replaced when dependencies are built.
