# Empty dependencies file for bench_fig17_device_share.
# This may be replaced when dependencies are built.
