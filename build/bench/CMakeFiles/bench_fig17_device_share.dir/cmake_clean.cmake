file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_device_share.dir/bench_fig17_device_share.cpp.o"
  "CMakeFiles/bench_fig17_device_share.dir/bench_fig17_device_share.cpp.o.d"
  "bench_fig17_device_share"
  "bench_fig17_device_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_device_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
