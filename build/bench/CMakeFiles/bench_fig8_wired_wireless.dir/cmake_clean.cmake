file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_wired_wireless.dir/bench_fig8_wired_wireless.cpp.o"
  "CMakeFiles/bench_fig8_wired_wireless.dir/bench_fig8_wired_wireless.cpp.o.d"
  "bench_fig8_wired_wireless"
  "bench_fig8_wired_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_wired_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
