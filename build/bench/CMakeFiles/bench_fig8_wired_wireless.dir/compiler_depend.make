# Empty compiler generated dependencies file for bench_fig8_wired_wireless.
# This may be replaced when dependencies are built.
