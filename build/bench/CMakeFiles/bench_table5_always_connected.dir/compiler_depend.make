# Empty compiler generated dependencies file for bench_table5_always_connected.
# This may be replaced when dependencies are built.
