file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_always_connected.dir/bench_table5_always_connected.cpp.o"
  "CMakeFiles/bench_table5_always_connected.dir/bench_table5_always_connected.cpp.o.d"
  "bench_table5_always_connected"
  "bench_table5_always_connected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_always_connected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
