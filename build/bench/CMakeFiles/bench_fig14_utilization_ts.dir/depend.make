# Empty dependencies file for bench_fig14_utilization_ts.
# This may be replaced when dependencies are built.
