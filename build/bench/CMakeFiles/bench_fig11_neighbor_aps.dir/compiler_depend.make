# Empty compiler generated dependencies file for bench_fig11_neighbor_aps.
# This may be replaced when dependencies are built.
