file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_neighbor_aps.dir/bench_fig11_neighbor_aps.cpp.o"
  "CMakeFiles/bench_fig11_neighbor_aps.dir/bench_fig11_neighbor_aps.cpp.o.d"
  "bench_fig11_neighbor_aps"
  "bench_fig11_neighbor_aps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_neighbor_aps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
