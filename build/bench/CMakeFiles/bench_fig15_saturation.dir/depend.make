# Empty dependencies file for bench_fig15_saturation.
# This may be replaced when dependencies are built.
