file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_saturation.dir/bench_fig15_saturation.cpp.o"
  "CMakeFiles/bench_fig15_saturation.dir/bench_fig15_saturation.cpp.o.d"
  "bench_fig15_saturation"
  "bench_fig15_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
