# Empty compiler generated dependencies file for bench_fig12_vendors.
# This may be replaced when dependencies are built.
