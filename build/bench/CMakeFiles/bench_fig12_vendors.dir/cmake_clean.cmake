file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_vendors.dir/bench_fig12_vendors.cpp.o"
  "CMakeFiles/bench_fig12_vendors.dir/bench_fig12_vendors.cpp.o.d"
  "bench_fig12_vendors"
  "bench_fig12_vendors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vendors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
