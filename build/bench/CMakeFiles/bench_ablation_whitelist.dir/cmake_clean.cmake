file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_whitelist.dir/bench_ablation_whitelist.cpp.o"
  "CMakeFiles/bench_ablation_whitelist.dir/bench_ablation_whitelist.cpp.o.d"
  "bench_ablation_whitelist"
  "bench_ablation_whitelist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_whitelist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
