# Empty dependencies file for bench_ablation_whitelist.
# This may be replaced when dependencies are built.
