file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_capacity_stats.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_capacity_stats.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_collection_artifacts.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_collection_artifacts.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_diurnal.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_diurnal.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_downtime.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_downtime.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_fingerprint.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_fingerprint.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_infrastructure.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_infrastructure.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_timeline_view.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_timeline_view.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_usage.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_usage.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_utilization.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_utilization.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
