file(REMOVE_RECURSE
  "CMakeFiles/test_gateway.dir/bismark/test_anonymize.cpp.o"
  "CMakeFiles/test_gateway.dir/bismark/test_anonymize.cpp.o.d"
  "CMakeFiles/test_gateway.dir/bismark/test_gateway.cpp.o"
  "CMakeFiles/test_gateway.dir/bismark/test_gateway.cpp.o.d"
  "CMakeFiles/test_gateway.dir/bismark/test_meter.cpp.o"
  "CMakeFiles/test_gateway.dir/bismark/test_meter.cpp.o.d"
  "CMakeFiles/test_gateway.dir/bismark/test_services.cpp.o"
  "CMakeFiles/test_gateway.dir/bismark/test_services.cpp.o.d"
  "CMakeFiles/test_gateway.dir/bismark/test_usage_cap.cpp.o"
  "CMakeFiles/test_gateway.dir/bismark/test_usage_cap.cpp.o.d"
  "test_gateway"
  "test_gateway.pdb"
  "test_gateway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
