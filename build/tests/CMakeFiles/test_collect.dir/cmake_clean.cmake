file(REMOVE_RECURSE
  "CMakeFiles/test_collect.dir/collect/test_export.cpp.o"
  "CMakeFiles/test_collect.dir/collect/test_export.cpp.o.d"
  "CMakeFiles/test_collect.dir/collect/test_import.cpp.o"
  "CMakeFiles/test_collect.dir/collect/test_import.cpp.o.d"
  "CMakeFiles/test_collect.dir/collect/test_repository.cpp.o"
  "CMakeFiles/test_collect.dir/collect/test_repository.cpp.o.d"
  "CMakeFiles/test_collect.dir/collect/test_server.cpp.o"
  "CMakeFiles/test_collect.dir/collect/test_server.cpp.o.d"
  "test_collect"
  "test_collect.pdb"
  "test_collect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
