# Empty compiler generated dependencies file for test_collect.
# This may be replaced when dependencies are built.
