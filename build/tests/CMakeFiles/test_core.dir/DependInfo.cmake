
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_args.cpp" "tests/CMakeFiles/test_core.dir/core/test_args.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_args.cpp.o.d"
  "/root/repo/tests/core/test_cdf.cpp" "tests/CMakeFiles/test_core.dir/core/test_cdf.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cdf.cpp.o.d"
  "/root/repo/tests/core/test_histogram.cpp" "tests/CMakeFiles/test_core.dir/core/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_histogram.cpp.o.d"
  "/root/repo/tests/core/test_intervals.cpp" "tests/CMakeFiles/test_core.dir/core/test_intervals.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_intervals.cpp.o.d"
  "/root/repo/tests/core/test_logging.cpp" "tests/CMakeFiles/test_core.dir/core/test_logging.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_logging.cpp.o.d"
  "/root/repo/tests/core/test_rng.cpp" "tests/CMakeFiles/test_core.dir/core/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_rng.cpp.o.d"
  "/root/repo/tests/core/test_rng_param.cpp" "tests/CMakeFiles/test_core.dir/core/test_rng_param.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_rng_param.cpp.o.d"
  "/root/repo/tests/core/test_stats.cpp" "tests/CMakeFiles/test_core.dir/core/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_stats.cpp.o.d"
  "/root/repo/tests/core/test_table_csv.cpp" "tests/CMakeFiles/test_core.dir/core/test_table_csv.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_table_csv.cpp.o.d"
  "/root/repo/tests/core/test_time.cpp" "tests/CMakeFiles/test_core.dir/core/test_time.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_time.cpp.o.d"
  "/root/repo/tests/core/test_units.cpp" "tests/CMakeFiles/test_core.dir/core/test_units.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/bismark_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/home/CMakeFiles/bismark_home.dir/DependInfo.cmake"
  "/root/repo/build/src/bismark/CMakeFiles/bismark_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/bismark_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/bismark_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/bismark_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bismark_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bismark_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bismark_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
