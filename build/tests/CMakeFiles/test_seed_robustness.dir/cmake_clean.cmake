file(REMOVE_RECURSE
  "CMakeFiles/test_seed_robustness.dir/integration/test_seed_robustness.cpp.o"
  "CMakeFiles/test_seed_robustness.dir/integration/test_seed_robustness.cpp.o.d"
  "test_seed_robustness"
  "test_seed_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seed_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
