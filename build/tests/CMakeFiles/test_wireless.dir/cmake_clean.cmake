file(REMOVE_RECURSE
  "CMakeFiles/test_wireless.dir/wireless/test_airtime.cpp.o"
  "CMakeFiles/test_wireless.dir/wireless/test_airtime.cpp.o.d"
  "CMakeFiles/test_wireless.dir/wireless/test_association.cpp.o"
  "CMakeFiles/test_wireless.dir/wireless/test_association.cpp.o.d"
  "CMakeFiles/test_wireless.dir/wireless/test_band.cpp.o"
  "CMakeFiles/test_wireless.dir/wireless/test_band.cpp.o.d"
  "CMakeFiles/test_wireless.dir/wireless/test_neighbor.cpp.o"
  "CMakeFiles/test_wireless.dir/wireless/test_neighbor.cpp.o.d"
  "CMakeFiles/test_wireless.dir/wireless/test_scanner.cpp.o"
  "CMakeFiles/test_wireless.dir/wireless/test_scanner.cpp.o.d"
  "test_wireless"
  "test_wireless.pdb"
  "test_wireless[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
