# Empty compiler generated dependencies file for test_packet_path.
# This may be replaced when dependencies are built.
