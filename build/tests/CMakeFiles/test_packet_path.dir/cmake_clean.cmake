file(REMOVE_RECURSE
  "CMakeFiles/test_packet_path.dir/integration/test_packet_path.cpp.o"
  "CMakeFiles/test_packet_path.dir/integration/test_packet_path.cpp.o.d"
  "test_packet_path"
  "test_packet_path.pdb"
  "test_packet_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
