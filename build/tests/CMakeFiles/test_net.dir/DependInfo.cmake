
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_access_link.cpp" "tests/CMakeFiles/test_net.dir/net/test_access_link.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_access_link.cpp.o.d"
  "/root/repo/tests/net/test_addr.cpp" "tests/CMakeFiles/test_net.dir/net/test_addr.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_addr.cpp.o.d"
  "/root/repo/tests/net/test_dhcp.cpp" "tests/CMakeFiles/test_net.dir/net/test_dhcp.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_dhcp.cpp.o.d"
  "/root/repo/tests/net/test_dns.cpp" "tests/CMakeFiles/test_net.dir/net/test_dns.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_dns.cpp.o.d"
  "/root/repo/tests/net/test_ethernet.cpp" "tests/CMakeFiles/test_net.dir/net/test_ethernet.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_ethernet.cpp.o.d"
  "/root/repo/tests/net/test_flow.cpp" "tests/CMakeFiles/test_net.dir/net/test_flow.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_flow.cpp.o.d"
  "/root/repo/tests/net/test_nat.cpp" "tests/CMakeFiles/test_net.dir/net/test_nat.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_nat.cpp.o.d"
  "/root/repo/tests/net/test_nat_param.cpp" "tests/CMakeFiles/test_net.dir/net/test_nat_param.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_nat_param.cpp.o.d"
  "/root/repo/tests/net/test_oui.cpp" "tests/CMakeFiles/test_net.dir/net/test_oui.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_oui.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/bismark_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/home/CMakeFiles/bismark_home.dir/DependInfo.cmake"
  "/root/repo/build/src/bismark/CMakeFiles/bismark_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/bismark_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/bismark_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/bismark_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bismark_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bismark_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bismark_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
