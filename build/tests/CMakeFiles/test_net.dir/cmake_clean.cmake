file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_access_link.cpp.o"
  "CMakeFiles/test_net.dir/net/test_access_link.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_addr.cpp.o"
  "CMakeFiles/test_net.dir/net/test_addr.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_dhcp.cpp.o"
  "CMakeFiles/test_net.dir/net/test_dhcp.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_dns.cpp.o"
  "CMakeFiles/test_net.dir/net/test_dns.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_ethernet.cpp.o"
  "CMakeFiles/test_net.dir/net/test_ethernet.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_flow.cpp.o"
  "CMakeFiles/test_net.dir/net/test_flow.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_nat.cpp.o"
  "CMakeFiles/test_net.dir/net/test_nat.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_nat_param.cpp.o"
  "CMakeFiles/test_net.dir/net/test_nat_param.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_oui.cpp.o"
  "CMakeFiles/test_net.dir/net/test_oui.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
