file(REMOVE_RECURSE
  "CMakeFiles/test_traffic.dir/traffic/test_apps.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_apps.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_apps_param.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_apps_param.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_device_types.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_device_types.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_domains.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_domains.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_generator.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_generator.cpp.o.d"
  "test_traffic"
  "test_traffic.pdb"
  "test_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
