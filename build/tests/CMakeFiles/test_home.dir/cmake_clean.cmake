file(REMOVE_RECURSE
  "CMakeFiles/test_home.dir/home/test_availability.cpp.o"
  "CMakeFiles/test_home.dir/home/test_availability.cpp.o.d"
  "CMakeFiles/test_home.dir/home/test_availability_param.cpp.o"
  "CMakeFiles/test_home.dir/home/test_availability_param.cpp.o.d"
  "CMakeFiles/test_home.dir/home/test_country.cpp.o"
  "CMakeFiles/test_home.dir/home/test_country.cpp.o.d"
  "CMakeFiles/test_home.dir/home/test_deployment.cpp.o"
  "CMakeFiles/test_home.dir/home/test_deployment.cpp.o.d"
  "CMakeFiles/test_home.dir/home/test_device.cpp.o"
  "CMakeFiles/test_home.dir/home/test_device.cpp.o.d"
  "CMakeFiles/test_home.dir/home/test_household.cpp.o"
  "CMakeFiles/test_home.dir/home/test_household.cpp.o.d"
  "CMakeFiles/test_home.dir/home/test_household_param.cpp.o"
  "CMakeFiles/test_home.dir/home/test_household_param.cpp.o.d"
  "test_home"
  "test_home.pdb"
  "test_home[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_home.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
