# Empty compiler generated dependencies file for test_home.
# This may be replaced when dependencies are built.
