# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_wireless[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_home[1]_include.cmake")
include("/root/repo/build/tests/test_packet_path[1]_include.cmake")
include("/root/repo/build/tests/test_gateway[1]_include.cmake")
include("/root/repo/build/tests/test_collect[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
add_test(full_study_integration "/root/repo/build/tests/test_integration")
set_tests_properties(full_study_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;108;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(seed_robustness "/root/repo/build/tests/test_seed_robustness")
set_tests_properties(seed_robustness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;115;add_test;/root/repo/tests/CMakeLists.txt;0;")
