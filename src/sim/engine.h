// Discrete-event simulation engine.
//
// Drives every home, device, probe schedule and outage process in virtual
// time. Six months of a 126-home deployment runs in seconds because only
// events are simulated — there is no per-tick work.
//
// The scheduler is built for the sharded runner's hot path: events live in
// a slab arena (free-list recycled, retained across reset() so one worker
// engine serves many shards without reallocating), an indexed binary heap
// of slot ids keeps ordering with 4-byte sift moves, and callbacks are
// stored in a small-buffer-optimised EventFn — scheduling a lambda with a
// modest capture performs no heap allocation at all. Cancellation is a
// generation-tagged handle: O(log n) removal straight out of the heap, no
// shared_ptr control block per event, and a cancelled periodic event's
// closure state is destroyed immediately. Periodic events re-arm in place
// (same slot, bumped deadline and sequence number), so a six-month probe
// cadence never re-captures its closure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/time.h"
#include "obs/trace.h"

namespace bismark::sim {

class Engine;

/// Type-erased, move-only event callback with small-buffer optimisation.
/// Callables up to kInlineBytes that are nothrow-move-constructible are
/// stored in place; anything larger falls back to a single heap cell. The
/// stored callable may take (TimePoint fire_time) or no arguments.
class EventFn {
 public:
  /// Sized to the largest hot-path capture (the traffic generator's
  /// transfer continuation) so steady-state scheduling never allocates.
  static constexpr std::size_t kInlineBytes = 88;

  EventFn() = default;
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  ~EventFn() { reset(); }

  /// Store `f`; returns true when it fit the inline buffer (no allocation).
  template <typename F>
  bool emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&, TimePoint> || std::is_invocable_v<Fn&>,
                  "event callbacks must be callable as fn(TimePoint) or fn()");
    reset();
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = InlineOps<Fn>();
      return true;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = HeapOps<Fn>();
      return false;
    }
  }

  void operator()(TimePoint t) { ops_->invoke(buf_, t); }
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*, TimePoint);
    /// Move-construct the callable into `to` and destroy it at `from`.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static void Call(Fn& f, TimePoint t) {
    if constexpr (std::is_invocable_v<Fn&, TimePoint>) {
      f(t);
    } else {
      (void)t;
      f();
    }
  }

  template <typename Fn>
  static const Ops* InlineOps() {
    static constexpr Ops ops{
        [](void* p, TimePoint t) { Call(*static_cast<Fn*>(p), t); },
        [](void* from, void* to) noexcept {
          ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
          static_cast<Fn*>(from)->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }};
    return &ops;
  }

  template <typename Fn>
  static const Ops* HeapOps() {
    static constexpr Ops ops{
        [](void* p, TimePoint t) { Call(**static_cast<Fn**>(p), t); },
        [](void* from, void* to) noexcept { ::new (to) Fn*(*static_cast<Fn**>(from)); },
        [](void* p) noexcept { delete *static_cast<Fn**>(p); }};
    return &ops;
  }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_{nullptr};
};

/// Handle to a scheduled event; lets the owner cancel it. Generation-tagged:
/// a handle whose event already fired (one-shots), was cancelled, or was
/// dropped by reset() goes inert — cancel() on it is a no-op even if the
/// arena slot has been recycled for a new event. Handles must not outlive
/// the engine that issued them.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event (no-op if it already fired or was never armed).
  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint32_t slot, std::uint32_t gen)
      : engine_(engine), slot_(slot), gen_(gen) {}
  Engine* engine_{nullptr};
  std::uint32_t slot_{0};
  std::uint32_t gen_{0};
};

/// The event loop. Callbacks may schedule further events freely.
class Engine {
 public:
  explicit Engine(TimePoint start);

  /// Return to a pristine state at `start`: pending events dropped (their
  /// callbacks destroyed, their handles deactivated), clocks and counters
  /// zeroed. The arena slab and heap capacity are retained, so a worker
  /// thread reuses one engine across many shards without reallocating.
  void reset(TimePoint start);

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (clamped to now if in the past).
  /// `fn` may take the fire time as a TimePoint or nothing.
  template <typename F>
  EventHandle schedule_at(TimePoint when, F&& fn) {
    const std::uint32_t idx = arm(when < now_ ? now_ : when, Duration{0});
    note_storage(slots_[idx].fn.emplace(std::forward<F>(fn)));
    return EventHandle(this, idx, slots_[idx].gen);
  }

  /// Schedule `fn` after a relative delay.
  template <typename F>
  EventHandle schedule_after(Duration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `fn(fire_time)` every `period`, starting at now + phase.
  /// Cancelling the returned handle stops the repetition and destroys the
  /// closure immediately. The event re-arms in place: one stored closure
  /// for the lifetime of the series, not one per firing.
  template <typename F>
  EventHandle schedule_every(Duration period, F&& fn, Duration phase = Duration{0}) {
    const std::uint32_t idx = arm(now_ + phase, period);
    note_storage(slots_[idx].fn.emplace(std::forward<F>(fn)));
    return EventHandle(this, idx, slots_[idx].gen);
  }

  /// Run until the queue empties or simulated time reaches `end` (events
  /// at exactly `end` still fire; `now()` never advances past `end`).
  /// Returns events executed.
  std::size_t run_until(TimePoint end);

  /// Run a single event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  /// Events ever enqueued (including schedule_every re-arms).
  [[nodiscard]] std::uint64_t scheduled() const { return scheduled_; }
  /// Events deactivated by cancel() before they could fire (counted at
  /// cancel time — cancelled events leave the queue immediately).
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_; }

  // Queue/arena instrumentation since the last reset(). queue_peak and the
  // callback-storage counts are deterministic per simulated workload;
  // arena_slots is a high-water mark of the slab across the engine's whole
  // life (worker-dependent under sharding — volatile telemetry only).
  [[nodiscard]] std::size_t queue_peak() const { return queue_peak_; }
  [[nodiscard]] std::uint64_t callbacks_inline() const { return cb_inline_; }
  [[nodiscard]] std::uint64_t callbacks_heap() const { return cb_heap_; }
  [[nodiscard]] std::size_t arena_slots() const { return slots_.size(); }

  /// Attach a flight recorder; every executed event is then traced with
  /// its simulated fire time. The engine does not own the recorder. The
  /// per-event recording compiles out entirely under BISMARK_OBS=OFF.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

 private:
  friend class EventHandle;

  // `pos` sentinels (real heap indices stay far below these).
  static constexpr std::uint32_t kPosFree = 0xFFFFFFFFu;
  static constexpr std::uint32_t kPosFiring = 0xFFFFFFFEu;
  static constexpr std::uint32_t kPosFiringCancelled = 0xFFFFFFFDu;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Slot {
    EventFn fn;
    TimePoint when{};
    std::uint64_t seq{0};       // FIFO tiebreak for simultaneous events
    Duration period{0};         // > 0ms: re-arm in place after firing
    std::uint32_t gen{0};       // bumped on release; stale handles go inert
    std::uint32_t pos{kPosFree};  // index into heap_, or a kPos* sentinel
    std::uint32_t next_free{kNoSlot};
  };

  std::uint32_t arm(TimePoint when, Duration period);
  void release_slot(std::uint32_t idx);
  void fire_top();
  void cancel_slot(std::uint32_t idx, std::uint32_t gen);
  [[nodiscard]] bool slot_active(std::uint32_t idx, std::uint32_t gen) const;
  void note_storage(bool stored_inline) {
    if (stored_inline) {
      ++cb_inline_;
    } else {
      ++cb_heap_;
    }
  }

  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) return sa.when < sb.when;
    return sa.seq < sb.seq;
  }
  void heap_push(std::uint32_t idx);
  void heap_remove(std::uint32_t idx);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  TimePoint now_;
  std::vector<Slot> slots_;          // the event arena (slab + free list)
  std::vector<std::uint32_t> heap_;  // indexed binary min-heap of slot ids
  std::uint32_t free_head_{kNoSlot};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::uint64_t scheduled_{0};
  std::uint64_t cancelled_{0};
  std::size_t queue_peak_{0};
  std::uint64_t cb_inline_{0};
  std::uint64_t cb_heap_{0};
  obs::FlightRecorder* recorder_{nullptr};
};

}  // namespace bismark::sim
