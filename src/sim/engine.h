// Discrete-event simulation engine.
//
// Drives every home, device, probe schedule and outage process in virtual
// time. Six months of a 126-home deployment runs in seconds because only
// events are simulated — there is no per-tick work.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "core/time.h"
#include "obs/trace.h"

namespace bismark::sim {

/// Handle to a scheduled event; lets the owner cancel it.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event (no-op if it already fired or was never armed).
  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

/// The event loop. Callbacks may schedule further events freely.
class Engine {
 public:
  explicit Engine(TimePoint start);

  /// Return to a pristine state at `start`: pending events dropped, clocks
  /// and counters zeroed. Lets a worker thread reuse one engine across many
  /// shards instead of reallocating the queue each time.
  void reset(TimePoint start);

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (clamped to now if in the past).
  EventHandle schedule_at(TimePoint when, std::function<void()> fn);
  /// Schedule `fn` after a relative delay.
  EventHandle schedule_after(Duration delay, std::function<void()> fn);
  /// Schedule `fn(fire_time)` every `period`, starting at now + phase.
  /// Cancelling the returned handle stops the repetition.
  EventHandle schedule_every(Duration period, std::function<void(TimePoint)> fn,
                             Duration phase = Duration{0});

  /// Run until the queue empties or simulated time reaches `end`
  /// (events at exactly `end` still fire). Returns events executed.
  std::size_t run_until(TimePoint end);

  /// Run a single event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  /// Events ever enqueued (including schedule_every re-arms).
  [[nodiscard]] std::uint64_t scheduled() const { return scheduled_; }
  /// Cancelled events discarded at pop time.
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_; }

  /// Attach a flight recorder; every executed event is then traced with
  /// its simulated fire time. The engine does not own the recorder. The
  /// per-event recording compiles out entirely under BISMARK_OBS=OFF.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // FIFO tiebreak for simultaneous events
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::uint64_t scheduled_{0};
  std::uint64_t cancelled_{0};
  obs::FlightRecorder* recorder_{nullptr};
};

}  // namespace bismark::sim
