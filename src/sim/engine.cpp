#include "sim/engine.h"

namespace bismark::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::active() const { return cancelled_ && !*cancelled_; }

Engine::Engine(TimePoint start) : now_(start) {}

void Engine::reset(TimePoint start) {
  queue_ = {};
  now_ = start;
  next_seq_ = 0;
  executed_ = 0;
  scheduled_ = 0;
  cancelled_ = 0;
}

EventHandle Engine::schedule_at(TimePoint when, std::function<void()> fn) {
  auto cancelled = std::make_shared<bool>(false);
  if (when < now_) when = now_;
  ++scheduled_;
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

EventHandle Engine::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_every(Duration period, std::function<void(TimePoint)> fn,
                                   Duration phase) {
  auto cancelled = std::make_shared<bool>(false);
  // The repeating closure reschedules itself unless cancelled.
  auto repeat = std::make_shared<std::function<void(TimePoint)>>();
  std::weak_ptr<bool> weak_cancel = cancelled;
  *repeat = [this, period, fn = std::move(fn), repeat, weak_cancel](TimePoint fire) {
    fn(fire);
    const auto cancel_flag = weak_cancel.lock();
    if (cancel_flag && *cancel_flag) return;
    const TimePoint next = fire + period;
    ++scheduled_;
    queue_.push(Event{next, next_seq_++, [repeat, next] { (*repeat)(next); },
                      cancel_flag ? cancel_flag : std::make_shared<bool>(false)});
  };
  const TimePoint first = now_ + phase;
  ++scheduled_;
  queue_.push(Event{first, next_seq_++, [repeat, first] { (*repeat)(first); }, cancelled});
  return EventHandle(std::move(cancelled));
}

bool Engine::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.cancelled && *ev.cancelled) {
      ++cancelled_;
      continue;
    }
    now_ = ev.when;
#if BISMARK_OBS_ENABLED
    if (recorder_ != nullptr) {
      recorder_->record(obs::TraceKind::kEngineEvent, ev.when, -1, ev.seq);
    }
#endif
    ev.fn();
    ++executed_;
    return true;
  }
  return false;
}

std::size_t Engine::run_until(TimePoint end) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > end) break;
    if (step()) ++n;
  }
  if (now_ < end) now_ = end;
  return n;
}

}  // namespace bismark::sim
