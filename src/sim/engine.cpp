#include "sim/engine.h"

namespace bismark::sim {

void EventHandle::cancel() {
  if (engine_ != nullptr) engine_->cancel_slot(slot_, gen_);
}

bool EventHandle::active() const {
  return engine_ != nullptr && engine_->slot_active(slot_, gen_);
}

Engine::Engine(TimePoint start) : now_(start) {}

void Engine::reset(TimePoint start) {
  // Every live event sits in the heap (nothing can be mid-fire here), so
  // releasing the heap's slots drops all pending work. Slab capacity and
  // the free list survive for the next shard.
  for (const std::uint32_t idx : heap_) {
    Slot& s = slots_[idx];
    s.fn.reset();
    ++s.gen;  // handles issued before the reset go inert
    s.pos = kPosFree;
    s.next_free = free_head_;
    free_head_ = idx;
  }
  heap_.clear();
  now_ = start;
  next_seq_ = 0;
  executed_ = 0;
  scheduled_ = 0;
  cancelled_ = 0;
  queue_peak_ = 0;
  cb_inline_ = 0;
  cb_heap_ = 0;
}

std::uint32_t Engine::arm(TimePoint when, Duration period) {
  std::uint32_t idx;
  if (free_head_ != kNoSlot) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.when = when;
  s.seq = next_seq_++;
  s.period = period;
  ++scheduled_;
  heap_push(idx);
  return idx;
}

void Engine::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.fn.reset();
  ++s.gen;
  s.pos = kPosFree;
  s.next_free = free_head_;
  free_head_ = idx;
}

bool Engine::slot_active(std::uint32_t idx, std::uint32_t gen) const {
  if (idx >= slots_.size()) return false;
  const Slot& s = slots_[idx];
  return s.gen == gen && s.pos != kPosFree && s.pos != kPosFiringCancelled;
}

void Engine::cancel_slot(std::uint32_t idx, std::uint32_t gen) {
  if (idx >= slots_.size()) return;
  Slot& s = slots_[idx];
  if (s.gen != gen) return;  // already fired, cancelled, or reset away
  if (s.pos == kPosFiring) {
    // Cancelled from inside its own callback: suppress the re-arm. Only a
    // periodic event had anything pending left to cancel.
    s.pos = kPosFiringCancelled;
    if (s.period.ms > 0) ++cancelled_;
    return;
  }
  if (s.pos == kPosFiringCancelled || s.pos == kPosFree) return;
  heap_remove(idx);
  release_slot(idx);
  ++cancelled_;
}

void Engine::heap_push(std::uint32_t idx) {
  slots_[idx].pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(idx);
  sift_up(heap_.size() - 1);
  if (heap_.size() > queue_peak_) queue_peak_ = heap_.size();
}

void Engine::heap_remove(std::uint32_t idx) {
  const std::size_t i = slots_[idx].pos;
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (i < heap_.size()) {
    heap_[i] = last;
    slots_[last].pos = static_cast<std::uint32_t>(i);
    sift_down(i);
    sift_up(slots_[last].pos);
  }
}

void Engine::sift_up(std::size_t i) {
  const std::uint32_t idx = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(idx, heap_[parent])) break;
    heap_[i] = heap_[parent];
    slots_[heap_[i]].pos = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = idx;
  slots_[idx].pos = static_cast<std::uint32_t>(i);
}

void Engine::sift_down(std::size_t i) {
  const std::uint32_t idx = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], idx)) break;
    heap_[i] = heap_[child];
    slots_[heap_[i]].pos = static_cast<std::uint32_t>(i);
    i = child;
  }
  heap_[i] = idx;
  slots_[idx].pos = static_cast<std::uint32_t>(i);
}

void Engine::fire_top() {
  // Pop the root without a full remove: the fired slot leaves the heap.
  const std::uint32_t idx = heap_[0];
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    slots_[last].pos = 0;
    sift_down(0);
  }
  Slot* s = &slots_[idx];
  s->pos = kPosFiring;
  now_ = s->when;
#if BISMARK_OBS_ENABLED
  if (recorder_ != nullptr) {
    recorder_->record(obs::TraceKind::kEngineEvent, s->when, -1, s->seq);
  }
#endif
  const bool repeating = s->period.ms > 0;
  // Run the callback from the stack: it may schedule events, which can grow
  // the slab and relocate slots while it executes.
  EventFn fn = std::move(s->fn);
  fn(now_);
  ++executed_;
  s = &slots_[idx];  // re-resolve: the slab may have reallocated
  if (repeating && s->pos == kPosFiring) {
    // Re-arm in place: same slot and closure, next deadline, fresh seq so
    // events the callback just scheduled for that instant still fire first.
    s->fn = std::move(fn);
    s->when = now_ + s->period;
    s->seq = next_seq_++;
    ++scheduled_;
    heap_push(idx);
  } else {
    release_slot(idx);
  }
}

bool Engine::step() {
  if (heap_.empty()) return false;
  fire_top();
  return true;
}

std::size_t Engine::run_until(TimePoint end) {
  std::size_t n = 0;
  // The heap never holds cancelled events, so the root's deadline is the
  // true next event time: nothing past `end` can slip through, and `now_`
  // never overshoots the horizon.
  while (!heap_.empty() && slots_[heap_[0]].when <= end) {
    fire_top();
    ++n;
  }
  if (now_ < end) now_ = end;
  return n;
}

}  // namespace bismark::sim
