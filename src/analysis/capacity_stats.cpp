#include "analysis/capacity_stats.h"

#include <algorithm>

#include "core/stats.h"

namespace bismark::analysis {

std::vector<HomeCapacitySummary> SummarizeCapacity(const collect::DataRepository& repo) {
  std::map<int, std::pair<std::vector<double>, std::vector<double>>> samples;
  repo.for_each_row<collect::CapacityRecord>([&](const collect::CapacityRecord& rec) {
    samples[rec.home.value].first.push_back(rec.downstream.mbps());
    samples[rec.home.value].second.push_back(rec.upstream.mbps());
  });

  std::vector<HomeCapacitySummary> out;
  for (const auto& [home, pair] : samples) {
    HomeCapacitySummary s;
    s.home = collect::HomeId{home};
    if (const auto* info = repo.find_home(s.home)) {
      s.country_code = info->country_code;
      s.developed = info->developed;
    }
    s.probes = static_cast<int>(pair.first.size());
    s.median_down_mbps = Median(pair.first);
    s.median_up_mbps = Median(pair.second);
    RunningStats down;
    for (double v : pair.first) down.add(v);
    s.down_cv = down.mean() > 0.0 ? down.stddev() / down.mean() : 0.0;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const HomeCapacitySummary& a,
                                       const HomeCapacitySummary& b) {
    return a.home.value < b.home.value;
  });
  return out;
}

std::vector<CountryCapacityRow> CapacityByCountry(const collect::DataRepository& repo,
                                                  int min_homes) {
  const auto homes = SummarizeCapacity(repo);
  std::map<std::string, std::vector<const HomeCapacitySummary*>> by_country;
  for (const auto& h : homes) by_country[h.country_code].push_back(&h);

  std::vector<CountryCapacityRow> rows;
  for (const auto& [code, list] : by_country) {
    if (static_cast<int>(list.size()) < min_homes) continue;
    CountryCapacityRow row;
    row.country_code = code;
    row.developed = list.front()->developed;
    row.homes = static_cast<int>(list.size());
    std::vector<double> down, up;
    for (const auto* h : list) {
      down.push_back(h->median_down_mbps);
      up.push_back(h->median_up_mbps);
    }
    row.median_down_mbps = Median(down);
    row.median_up_mbps = Median(up);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const CountryCapacityRow& a,
                                         const CountryCapacityRow& b) {
    return a.median_down_mbps > b.median_down_mbps;
  });
  return rows;
}

CapacityCdfs CapacityDistributions(const collect::DataRepository& repo) {
  CapacityCdfs cdfs;
  for (const auto& h : SummarizeCapacity(repo)) {
    (h.developed ? cdfs.developed_down : cdfs.developing_down).add(h.median_down_mbps);
  }
  return cdfs;
}

}  // namespace bismark::analysis
