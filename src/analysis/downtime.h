// Availability analysis (Section 4).
//
// Everything here consumes the *measured* Heartbeats data set: downtime is
// a gap of >= 10 minutes in a home's heartbeat log, exactly the paper's
// definition, with no access to the simulator's ground truth.
#pragma once

#include <string>
#include <vector>

#include "collect/repository.h"
#include "core/cdf.h"
#include "core/intervals.h"
#include "core/time.h"

namespace bismark::analysis {

/// One detected downtime event.
struct Downtime {
  collect::HomeId home;
  Interval gap;
};

/// Per-home availability statistics over the heartbeat window.
struct HomeAvailability {
  collect::HomeId home;
  std::string country_code;
  bool developed{true};
  int downtimes{0};
  double window_days{0.0};
  double online_days{0.0};           // heartbeat coverage
  std::vector<double> durations_s;   // one entry per downtime

  [[nodiscard]] double downtimes_per_day() const {
    return window_days > 0.0 ? downtimes / window_days : 0.0;
  }
  [[nodiscard]] double online_fraction() const {
    return window_days > 0.0 ? online_days / window_days : 0.0;
  }
};

struct DowntimeOptions {
  Duration threshold{Minutes(10)};
  /// Homes observed online for fewer days than this are excluded
  /// (Section 3.2.2: "routers that were on for at least 25 days").
  double min_online_days{25.0};
};

/// Extract downtime gaps from one home's (sorted-by-start) heartbeat runs.
[[nodiscard]] std::vector<Downtime> ExtractDowntimes(
    const std::vector<collect::HeartbeatRun>& runs, Interval window, Duration threshold);

/// Per-home availability stats for all qualifying homes.
[[nodiscard]] std::vector<HomeAvailability> AnalyzeAvailability(
    const collect::DataRepository& repo, const DowntimeOptions& options = {});

/// Fig. 3 / Fig. 4 presentation: a CDF per region.
struct RegionalCdfs {
  Cdf developed;
  Cdf developing;
};
[[nodiscard]] RegionalCdfs DowntimeFrequencyCdfs(const std::vector<HomeAvailability>& homes);
[[nodiscard]] RegionalCdfs DowntimeDurationCdfs(const std::vector<HomeAvailability>& homes);

/// Fig. 5: per-country scatter of median downtime count vs GDP.
struct CountryDowntimeRow {
  std::string country_code;
  bool developed{true};
  int homes{0};
  double gdp_ppp{0.0};
  double median_downtimes{0.0};
  double median_duration_s{0.0};
  double median_online_fraction{0.0};
};
[[nodiscard]] std::vector<CountryDowntimeRow> CountryDowntimeScatter(
    const std::vector<HomeAvailability>& homes,
    const std::vector<std::pair<std::string, double>>& gdp_by_country, int min_homes = 3);

/// §4.1 headline: median days between downtimes, per region.
struct RegionSummary {
  double median_days_between_downtimes_developed{0.0};
  double median_days_between_downtimes_developing{0.0};
  double median_duration_s_developed{0.0};
  double median_duration_s_developing{0.0};
};
[[nodiscard]] RegionSummary SummarizeRegions(const std::vector<HomeAvailability>& homes);

}  // namespace bismark::analysis
