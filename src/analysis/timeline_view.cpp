#include "analysis/timeline_view.h"

#include <algorithm>
#include <map>

namespace bismark::analysis {

std::vector<TimelineDay> RenderTimeline(const std::vector<collect::HeartbeatRun>& runs,
                                        TimeZone tz, TimePoint from, int days,
                                        const TimelineViewOptions& options) {
  IntervalSet online;
  for (const auto& r : runs) online.add(r.start, r.end);

  std::vector<TimelineDay> out;
  TimePoint midnight = tz.local_midnight(from);
  for (int d = 0; d < days; ++d) {
    TimelineDay day;
    day.midnight = midnight;
    day.cells.reserve(static_cast<std::size_t>(options.columns_per_day));
    const Duration cell = Duration{Days(1).ms / options.columns_per_day};
    for (int c = 0; c < options.columns_per_day; ++c) {
      const TimePoint lo = midnight + cell * c;
      const TimePoint hi = lo + cell;
      const double frac = online.coverage_fraction(lo, hi);
      day.cells.push_back(frac >= 0.5 ? options.online_char : options.offline_char);
    }
    day.online_fraction = online.coverage_fraction(midnight, midnight + Days(1));
    out.push_back(std::move(day));
    midnight += Days(1);
  }
  return out;
}

collect::HomeId FindArchetype(const collect::DataRepository& repo,
                              AvailabilityArchetype archetype) {
  const Interval window = repo.windows().heartbeats;
  const double window_days = (window.end - window.start).days();

  std::map<int, IntervalSet> online_by_home;
  repo.for_each_row<collect::HeartbeatRun>([&](const collect::HeartbeatRun& run) {
    online_by_home[run.home.value].add(run.start, run.end);
  });

  collect::HomeId best{0};
  double best_score = -1.0;
  for (const auto& info : repo.homes()) {
    const auto it = online_by_home.find(info.id.value);
    if (it == online_by_home.end()) continue;
    const IntervalSet& online = it->second;
    const double coverage = online.coverage_fraction(window.start, window.end);
    const double segments_per_day = static_cast<double>(online.size()) / window_days;

    double score = 0.0;
    switch (archetype) {
      case AvailabilityArchetype::kAlwaysOn:
        // Near-complete coverage, few interruptions.
        score = coverage - segments_per_day;
        break;
      case AvailabilityArchetype::kAppliance:
        // Low coverage but regular daily use: ~1 segment per day.
        if (coverage > 0.05 && coverage < 0.5) {
          score = 1.0 - std::abs(segments_per_day - 1.2);
        }
        break;
      case AvailabilityArchetype::kFlaky:
        // Mostly up yet frequently interrupted.
        if (coverage > 0.6) score = segments_per_day;
        break;
    }
    if (score > best_score) {
      best_score = score;
      best = info.id;
    }
  }
  return best;
}

}  // namespace bismark::analysis
