#include "analysis/infrastructure.h"

#include <algorithm>

#include "core/stats.h"

namespace bismark::analysis {

namespace {
/// Per-home accumulation of the census rows.
struct HomeCensus {
  RunningStats wired;
  RunningStats wireless;
  RunningStats band24;
  RunningStats band5;
  int max_unique_total{0};
  int max_unique_24{0};
  int max_unique_5{0};
  int samples_all_ports{0};
  int samples{0};
};

std::map<int, HomeCensus> CollectCensus(const collect::DataRepository& repo) {
  std::map<int, HomeCensus> by_home;
  repo.for_each_row<collect::DeviceCountRecord>([&](const collect::DeviceCountRecord& rec) {
    HomeCensus& c = by_home[rec.home.value];
    c.wired.add(rec.wired);
    c.wireless.add(rec.wireless_total());
    c.band24.add(rec.wireless_24);
    c.band5.add(rec.wireless_5);
    c.max_unique_total = std::max(c.max_unique_total, rec.unique_total);
    c.max_unique_24 = std::max(c.max_unique_24, rec.unique_24);
    c.max_unique_5 = std::max(c.max_unique_5, rec.unique_5);
    if (rec.wired >= 4) ++c.samples_all_ports;
    ++c.samples;
  });
  return by_home;
}

MeanWithSpread AcrossHomes(const std::vector<double>& home_means) {
  RunningStats stats;
  for (double v : home_means) stats.add(v);
  return MeanWithSpread{stats.mean(), stats.stddev(), static_cast<int>(stats.count())};
}
}  // namespace

Cdf UniqueDevicesCdf(const collect::DataRepository& repo) {
  Cdf cdf;
  for (const auto& [home, census] : CollectCensus(repo)) {
    cdf.add(census.max_unique_total);
  }
  return cdf;
}

double MeanUniqueDevices(const collect::DataRepository& repo) {
  RunningStats stats;
  for (const auto& [home, census] : CollectCensus(repo)) stats.add(census.max_unique_total);
  return stats.mean();
}

ConnectedByMedium ConnectedDevices(const collect::DataRepository& repo, bool developed) {
  const auto census = CollectCensus(repo);
  std::vector<double> wired, wireless;
  for (const auto& [home, c] : census) {
    const auto* info = repo.find_home(collect::HomeId{home});
    if (!info || info->developed != developed) continue;
    wired.push_back(c.wired.mean());
    wireless.push_back(c.wireless.mean());
  }
  return ConnectedByMedium{AcrossHomes(wired), AcrossHomes(wireless)};
}

ConnectedByBand ConnectedWireless(const collect::DataRepository& repo, bool developed) {
  const auto census = CollectCensus(repo);
  std::vector<double> b24, b5;
  for (const auto& [home, c] : census) {
    const auto* info = repo.find_home(collect::HomeId{home});
    if (!info || info->developed != developed) continue;
    b24.push_back(c.band24.mean());
    b5.push_back(c.band5.mean());
  }
  return ConnectedByBand{AcrossHomes(b24), AcrossHomes(b5)};
}

BandCdfs UniqueDevicesPerBand(const collect::DataRepository& repo) {
  BandCdfs cdfs;
  for (const auto& [home, census] : CollectCensus(repo)) {
    cdfs.band24.add(census.max_unique_24);
    cdfs.band5.add(census.max_unique_5);
  }
  return cdfs;
}

namespace {
NeighborApCdfs NeighborApsOnBand(const collect::DataRepository& repo, wireless::Band band) {
  std::map<int, std::vector<double>> aps_by_home;
  repo.for_each_row<collect::WifiScanRecord>([&](const collect::WifiScanRecord& scan) {
    if (scan.band != band) return;
    aps_by_home[scan.home.value].push_back(scan.visible_aps);
  });
  NeighborApCdfs cdfs;
  for (const auto& [home, values] : aps_by_home) {
    const auto* info = repo.find_home(collect::HomeId{home});
    if (!info) continue;
    (info->developed ? cdfs.developed : cdfs.developing).add(Median(values));
  }
  return cdfs;
}
}  // namespace

NeighborApCdfs NeighborAps(const collect::DataRepository& repo) {
  return NeighborApsOnBand(repo, wireless::Band::k2_4GHz);
}

NeighborApCdfs NeighborAps5(const collect::DataRepository& repo) {
  return NeighborApsOnBand(repo, wireless::Band::k5GHz);
}

AlwaysConnectedTable AlwaysConnected(const collect::DataRepository& repo) {
  AlwaysConnectedTable table;
  for (const auto& info : repo.homes()) {
    if (!info.reports_devices) continue;
    AlwaysConnectedRow& row = info.developed ? table.developed : table.developing;
    ++row.total_homes;
    if (info.has_always_wired) ++row.with_wired;
    if (info.has_always_wireless) ++row.with_wireless;
  }
  return table;
}

double AllPortsUsedFraction(const collect::DataRepository& repo, bool developed) {
  const auto census = CollectCensus(repo);
  int homes = 0;
  int homes_all_ports = 0;
  for (const auto& [home, c] : census) {
    const auto* info = repo.find_home(collect::HomeId{home});
    if (!info || info->developed != developed) continue;
    ++homes;
    if (c.samples_all_ports > 0) ++homes_all_ports;
  }
  return homes ? static_cast<double>(homes_all_ports) / homes : 0.0;
}

}  // namespace bismark::analysis
