#include "analysis/utilization.h"

#include <algorithm>
#include <map>

#include "core/stats.h"

namespace bismark::analysis {

namespace {
struct HomeCapacity {
  double down_mbps{0.0};
  double up_mbps{0.0};
  bool valid{false};
};

std::map<int, HomeCapacity> MedianCapacities(const collect::DataRepository& repo) {
  std::map<int, std::pair<std::vector<double>, std::vector<double>>> samples;
  repo.for_each_row<collect::CapacityRecord>([&](const collect::CapacityRecord& rec) {
    samples[rec.home.value].first.push_back(rec.downstream.mbps());
    samples[rec.home.value].second.push_back(rec.upstream.mbps());
  });
  std::map<int, HomeCapacity> out;
  for (auto& [home, pair] : samples) {
    HomeCapacity cap;
    cap.down_mbps = Median(pair.first);
    cap.up_mbps = Median(pair.second);
    cap.valid = cap.down_mbps > 0.0 && cap.up_mbps > 0.0;
    out[home] = cap;
  }
  return out;
}
}  // namespace

std::vector<SaturationPoint> LinkSaturation(const collect::DataRepository& repo,
                                            const SaturationOptions& options) {
  const auto capacities = MedianCapacities(repo);
  std::map<int, std::pair<std::vector<double>, std::vector<double>>> peaks;
  repo.for_each_row<collect::ThroughputMinute>([&](const collect::ThroughputMinute& minute) {
    peaks[minute.home.value].first.push_back(minute.peak_down_bps / 1e6);
    peaks[minute.home.value].second.push_back(minute.peak_up_bps / 1e6);
  });

  std::vector<SaturationPoint> out;
  for (const auto& [home, pair] : peaks) {
    if (static_cast<int>(pair.first.size()) < options.min_minutes) continue;
    const auto cap_it = capacities.find(home);
    if (cap_it == capacities.end() || !cap_it->second.valid) continue;

    SaturationPoint p;
    p.home = collect::HomeId{home};
    p.capacity_down_mbps = cap_it->second.down_mbps;
    p.capacity_up_mbps = cap_it->second.up_mbps;
    p.utilization_down_p95 =
        Quantile(pair.first, options.quantile) / cap_it->second.down_mbps;
    p.utilization_up_p95 = Quantile(pair.second, options.quantile) / cap_it->second.up_mbps;
    p.minutes_observed = static_cast<int>(pair.first.size());
    out.push_back(p);
  }
  std::sort(out.begin(), out.end(), [](const SaturationPoint& a, const SaturationPoint& b) {
    return a.home.value < b.home.value;
  });
  return out;
}

UtilizationSeries UtilizationTimeseries(const collect::DataRepository& repo,
                                        collect::HomeId home, Duration bucket) {
  UtilizationSeries series;
  series.home = home;

  const auto capacities = MedianCapacities(repo);
  if (const auto it = capacities.find(home.value); it != capacities.end()) {
    series.capacity_down_mbps = it->second.down_mbps;
    series.capacity_up_mbps = it->second.up_mbps;
  }

  const Interval window = repo.windows().traffic;
  const std::int64_t n_buckets =
      std::max<std::int64_t>(1, (window.end - window.start).ms / bucket.ms);
  series.buckets.resize(static_cast<std::size_t>(n_buckets));
  for (std::int64_t i = 0; i < n_buckets; ++i) {
    series.buckets[static_cast<std::size_t>(i)].start = window.start + bucket * i;
  }

  repo.for_each_row<collect::ThroughputMinute>([&](const collect::ThroughputMinute& minute) {
    if (minute.home != home) return;
    const std::int64_t idx =
        std::clamp<std::int64_t>((minute.minute_start - window.start).ms / bucket.ms, 0,
                                 n_buckets - 1);
    auto& b = series.buckets[static_cast<std::size_t>(idx)];
    b.max_up_mbps = std::max(b.max_up_mbps, minute.peak_up_bps / 1e6);
    b.max_down_mbps = std::max(b.max_down_mbps, minute.peak_down_bps / 1e6);
    b.bytes_up_mb += minute.bytes_up.mb();
    b.bytes_down_mb += minute.bytes_down.mb();
  });
  return series;
}

collect::HomeId BusiestHome(const std::vector<SaturationPoint>& points) {
  collect::HomeId best{0};
  double best_score = -1.0;
  for (const auto& p : points) {
    // Busy but not bufferbloat-pathological.
    if (p.utilization_up_p95 > 1.0) continue;
    const double score = p.utilization_down_p95 * p.minutes_observed;
    if (score > best_score) {
      best_score = score;
      best = p.home;
    }
  }
  return best;
}

std::vector<collect::HomeId> OversaturatedUplinks(const std::vector<SaturationPoint>& points,
                                                  double threshold) {
  std::vector<collect::HomeId> out;
  for (const auto& p : points) {
    if (p.utilization_up_p95 > threshold) out.push_back(p.home);
  }
  return out;
}

}  // namespace bismark::analysis
