// Diurnal usage analysis (Fig. 13): mean wireless clients by local hour of
// day, weekday vs weekend, from the WiFi data set's per-scan association
// counts.
#pragma once

#include <array>

#include "collect/repository.h"
#include "core/time.h"

namespace bismark::analysis {

struct DiurnalProfile {
  std::array<double, 24> weekday{};
  std::array<double, 24> weekend{};

  [[nodiscard]] double weekday_peak() const;
  [[nodiscard]] double weekday_trough() const;
  [[nodiscard]] double weekend_peak() const;
  [[nodiscard]] double weekend_trough() const;
  /// Peak-to-trough swing ratio; Fig. 13's claim is that this is clearly
  /// larger on weekdays.
  [[nodiscard]] double weekday_swing() const;
  [[nodiscard]] double weekend_swing() const;
};

/// Mean wireless clients (both bands summed) by local hour. Hours are
/// interpreted in each home's timezone via its HomeInfo utc_offset.
[[nodiscard]] DiurnalProfile WirelessDiurnalProfile(const collect::DataRepository& repo);

/// Same profile from the hourly Devices census (a robustness cross-check —
/// the shape should agree with the WiFi-derived one).
[[nodiscard]] DiurnalProfile CensusDiurnalProfile(const collect::DataRepository& repo);

}  // namespace bismark::analysis
