// Carrier-grade NAT analysis: what living behind a NAT444 tier costs a
// home. Summarises the CgnEventRecord dataset (one accounting row per
// home that touched its CGN) into the figures the Richter et al. line of
// work reports: ports actually used per subscriber, how often the
// deterministic port-block slice or the state cap ran out, and how much
// unsolicited inbound traffic the carrier tier absorbed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "collect/repository.h"

namespace bismark::analysis {

/// One CGN instance's aggregate, rebuilt from its subscribers' rows.
struct CgnInstanceSummary {
  int cgn_id{0};
  int homes{0};  // subscribers that produced any CGN activity
  std::uint64_t translations_out{0};
  std::uint64_t translations_in{0};
  std::uint64_t exhaustion_drops{0};
  std::uint64_t inbound_drops{0};
  std::uint64_t blocks_allocated{0};
  std::uint32_t ports_peak_max{0};  // busiest subscriber's peak ports
};

/// Fleet-wide NAT444 summary.
struct CgnSummary {
  int homes{0};  // homes with CGN activity (== CgnEventRecord rows)
  int cgns{0};   // distinct CGN instances those homes hang off

  std::uint64_t translations_out{0};
  std::uint64_t translations_in{0};
  std::uint64_t exhaustion_drops{0};
  std::uint64_t inbound_drops{0};
  std::uint64_t blocks_allocated{0};

  /// Outbound packets dropped because the subscriber's slice or state cap
  /// was spent, as a fraction of outbound attempts.
  double exhaustion_drop_rate{0.0};
  /// Unsolicited/unmapped inbound as a fraction of inbound arrivals — the
  /// reachability cost of the carrier tier.
  double inbound_drop_rate{0.0};
  /// Homes that experienced at least one exhaustion drop.
  int homes_exhausted{0};

  /// Distribution of per-home peak concurrent CGN ports (the RFC 7422
  /// sizing question: how big do the blocks actually need to be?).
  std::uint32_t ports_peak_min{0};
  std::uint32_t ports_peak_max{0};
  double ports_peak_mean{0.0};
  double ports_peak_median{0.0};
  double ports_peak_p90{0.0};

  /// Per-instance aggregates, ordered by cgn_id.
  std::vector<CgnInstanceSummary> per_cgn;
};

/// Stream the CgnEventRecord dataset (resident or spilled) into a summary.
/// Returns an all-zero summary when the run had no CGN tier.
[[nodiscard]] CgnSummary SummarizeCgn(const collect::DataRepository& repo);

/// Human-readable rendering (the study tool prints this under --cgn).
void WriteCgnSummary(const CgnSummary& summary, std::ostream& out);

}  // namespace bismark::analysis
