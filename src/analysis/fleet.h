// Streaming fleet analysis: the Figures 3-20 headline distributions,
// computed from one pass over each record stream with Greenwald-Khanna
// quantile sketches (core/stats.h) instead of resident row vectors.
//
// This is the analysis path that works at fleet scale: the repository may
// be spill-backed (collect/spill.h), in which case `for_each_row` streams
// segment files and nothing here ever holds a full data set. Per-home
// scalar accumulators are the only O(homes) state (a few dozen bytes per
// home); every distribution is an eps-bounded sketch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "collect/repository.h"
#include "core/stats.h"

namespace bismark::analysis {

/// Capacity distribution of one country's homes (the §4.2 regional
/// breakdown at fleet scale, where per-home medians no longer fit in RAM:
/// every ShaperProbe sample lands in its country's sketch instead).
struct CountryCapacity {
  /// Registered homes carrying this country code (roster count, present
  /// even when none of them ran a capacity probe).
  std::size_t homes{0};
  QuantileSketch down_mbps;
  QuantileSketch up_mbps;
};

/// Headline distributions of a deployment, each a streaming quantile
/// sketch (rank error <= eps, default 0.5 %).
struct FleetSummary {
  std::size_t homes{0};
  std::uint64_t rows{0};

  // --- Per-home samples (one value per contributing home) ---
  /// Fraction of the heartbeat window the home was reachable (Figs 3-4).
  QuantileSketch availability_fraction;
  /// Heartbeat-run boundaries per day, the downtime-rate proxy (Fig. 4).
  QuantileSketch downtimes_per_day;
  /// Distinct devices ever seen in the Devices window (Figs 7, 10).
  QuantileSketch unique_devices;

  // --- Per-row samples ---
  /// ShaperProbe capacity, one sample per probe (Figs 5, 11).
  QuantileSketch capacity_down_mbps;
  QuantileSketch capacity_up_mbps;
  /// Visible neighbour APs per WiFi scan (Fig. 9).
  QuantileSketch visible_aps;
  /// Associated clients per scan (Fig. 13's instantaneous view).
  QuantileSketch associated_clients;
  /// Downstream throughput per busy minute, Mbit/s (Figs 14-15).
  QuantileSketch throughput_down_mbps;
  /// Flow sizes, kilobytes (Figs 17-20's volume distributions).
  QuantileSketch flow_kbytes;

  /// Per-country capacity distributions, keyed by HomeInfo::country_code.
  std::map<std::string, CountryCapacity> capacity_by_country;
};

/// One streaming pass per data set over `repo` (resident or spilled).
[[nodiscard]] FleetSummary SummarizeFleet(const collect::DataRepository& repo);

/// Parallel variant. On a column-backed repository (collect/
/// column_snapshot.h) every (kind, stripe) pair becomes one task on a
/// `workers`-thread pool and the per-stripe partial sketches are merged in
/// stripe index order — the stripe partition is a property of the snapshot,
/// not of the worker count, so the result is bit-identical for any
/// `workers` (the CI analyze diff gates on this). Falls back to the serial
/// pass on in-RAM or spill-backed repositories.
[[nodiscard]] FleetSummary SummarizeFleet(const collect::DataRepository& repo,
                                          std::size_t workers);

/// Render the summary as a fixed-width quantile table (p10/p50/p90/p99).
void WriteFleetSummary(const FleetSummary& summary, std::ostream& out);

/// Serialise every sketch (QuantileSketch::Serialize) plus the scalar
/// counts into one blob. A finished fleet run checkpoints this into the
/// spill manifest so a --resume of the completed run reloads the summary
/// instead of re-streaming every segment (DESIGN §12).
[[nodiscard]] std::string SerializeFleetSummary(const FleetSummary& summary);

/// Rebuild a summary from SerializeFleetSummary output. Fails closed:
/// returns false (with *error if non-null) on any malformed or truncated
/// blob — the caller recomputes rather than trusting damaged sketches.
bool DeserializeFleetSummary(const std::string& blob, FleetSummary* out,
                             std::string* error = nullptr);

}  // namespace bismark::analysis
