#include "analysis/collection_artifacts.h"

#include <algorithm>
#include <map>

namespace bismark::analysis {

CollectionOutageReport DetectCollectionOutages(const collect::DataRepository& repo,
                                               const ArtifactOptions& options) {
  CollectionOutageReport report;

  // Per-home online sets and overall activity spans (first..last heartbeat:
  // the period the home can be expected to report at all).
  std::map<int, IntervalSet> online_by_home;
  std::map<int, Interval> span_by_home;
  repo.for_each_row<collect::HeartbeatRun>([&](const collect::HeartbeatRun& run) {
    online_by_home[run.home.value].add(run.start, run.end);
    auto [it, inserted] = span_by_home.try_emplace(run.home.value, Interval{run.start, run.end});
    if (!inserted) {
      it->second.start = std::min(it->second.start, run.start);
      it->second.end = std::max(it->second.end, run.end);
    }
  });
  report.reporting_homes = static_cast<int>(online_by_home.size());
  if (report.reporting_homes == 0) return report;

  const Interval window = repo.windows().heartbeats;
  // Scan the window; at each sample, count homes silent among those whose
  // activity span covers the sample. Consecutive saturated samples merge
  // into candidate outages.
  TimePoint gap_start{};
  bool in_gap = false;
  for (TimePoint t = window.start; t < window.end; t += options.resolution) {
    int expected = 0;
    int silent = 0;
    for (const auto& [home, span] : span_by_home) {
      if (!span.contains(t)) continue;
      ++expected;
      if (!online_by_home[home].contains(t)) ++silent;
    }
    const bool saturated =
        expected >= 3 &&
        static_cast<double>(silent) >= options.min_affected_fraction * expected;
    if (saturated && !in_gap) {
      gap_start = t;
      in_gap = true;
    } else if (!saturated && in_gap) {
      if (t - gap_start >= options.min_gap) report.outages.add(gap_start, t);
      in_gap = false;
    }
  }
  if (in_gap && window.end - gap_start >= options.min_gap) {
    report.outages.add(gap_start, window.end);
  }
  return report;
}

std::vector<HomeAvailability> AnalyzeAvailabilityCorrected(
    const collect::DataRepository& repo, const CollectionOutageReport& artifacts,
    const DowntimeOptions& options) {
  // Start from the raw analysis, then re-examine each home's gaps.
  std::vector<HomeAvailability> homes = AnalyzeAvailability(repo, options);
  const Interval window = repo.windows().heartbeats;

  for (auto& home : homes) {
    const auto runs = repo.heartbeat_runs_for(home.home);
    const auto downtimes = ExtractDowntimes(runs, window, options.threshold);

    int kept = 0;
    std::vector<double> kept_durations;
    double credited_days = 0.0;
    for (const auto& d : downtimes) {
      // A gap is an artifact when the detected collection outages cover
      // (nearly) all of it.
      const Duration covered =
          artifacts.outages.covered_within(d.gap.start, d.gap.end);
      const double coverage =
          static_cast<double>(covered.ms) / static_cast<double>(d.gap.length().ms);
      if (coverage >= 0.9) {
        credited_days += d.gap.length().days();
      } else {
        ++kept;
        kept_durations.push_back(d.gap.length().seconds());
      }
    }
    home.downtimes = kept;
    home.durations_s = std::move(kept_durations);
    // Time the home was "silent" purely due to the collector is credited
    // back as online time.
    home.online_days += credited_days;
  }
  return homes;
}

}  // namespace bismark::analysis
