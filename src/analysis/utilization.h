// Link-utilisation analysis (Section 6.2, Figs 14–16).
//
// Utilisation is the gateway's per-minute peak throughput divided by the
// home's ShaperProbe capacity estimate. The 95th-percentile ratio per home
// produces the Fig. 15 scatter; ratios above 1.0 on the uplink are the
// bufferbloat signature of Fig. 16.
#pragma once

#include <vector>

#include "collect/repository.h"
#include "core/time.h"

namespace bismark::analysis {

/// One home's point in the Fig. 15 scatter.
struct SaturationPoint {
  collect::HomeId home;
  double capacity_down_mbps{0.0};
  double capacity_up_mbps{0.0};
  double utilization_down_p95{0.0};  // peak-minute rate / capacity
  double utilization_up_p95{0.0};
  int minutes_observed{0};
};

struct SaturationOptions {
  double quantile{0.95};
  /// Homes with fewer traffic minutes than this are dropped.
  int min_minutes{30};
};

[[nodiscard]] std::vector<SaturationPoint> LinkSaturation(
    const collect::DataRepository& repo, const SaturationOptions& options = {});

/// Fig. 14 / Fig. 16 timeseries: per-bucket max throughput plus the
/// capacity estimate over the traffic window.
struct UtilizationBucket {
  TimePoint start;
  double max_up_mbps{0.0};
  double max_down_mbps{0.0};
  double bytes_up_mb{0.0};
  double bytes_down_mb{0.0};
};
struct UtilizationSeries {
  collect::HomeId home;
  double capacity_down_mbps{0.0};
  double capacity_up_mbps{0.0};
  std::vector<UtilizationBucket> buckets;
};
[[nodiscard]] UtilizationSeries UtilizationTimeseries(const collect::DataRepository& repo,
                                                      collect::HomeId home,
                                                      Duration bucket = Hours(4));

/// Pick homes for the case-study figures from the measured data:
///  * the busiest well-behaved home (Fig. 14),
///  * homes whose uplink p95 utilisation exceeds 1.0 (Fig. 16).
[[nodiscard]] collect::HomeId BusiestHome(const std::vector<SaturationPoint>& points);
/// Homes whose uplink p95 utilisation exceeds `threshold`. The default sits
/// slightly above 1.0 so probe noise on a merely-saturated link does not
/// masquerade as bufferbloat.
[[nodiscard]] std::vector<collect::HomeId> OversaturatedUplinks(
    const std::vector<SaturationPoint>& points, double threshold = 1.05);

}  // namespace bismark::analysis
