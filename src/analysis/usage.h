// Usage analysis (Sections 5.4 and 6.3–6.4): device vendors, per-device
// traffic concentration, domain popularity and device fingerprinting —
// Figs 12 and 17–20, all from the (anonymised) Traffic data set.
#pragma once

#include <string>
#include <vector>

#include "collect/repository.h"
#include "net/oui.h"

namespace bismark::analysis {

/// Fig. 12: devices seen across the Traffic homes by manufacturer class,
/// counting only devices above `min_bytes` (paper: 100 KB) and excluding
/// gateway-class hardware when `exclude_gateways` (the paper removes its
/// own Netgear units).
struct VendorCount {
  net::VendorClass vendor{net::VendorClass::kUnknown};
  int devices{0};
};
[[nodiscard]] std::vector<VendorCount> VendorHistogram(const collect::DataRepository& repo,
                                                       Bytes min_bytes = KB(100),
                                                       bool exclude_gateways = true);

/// Fig. 17: average share of home traffic carried by the rank-k device.
/// share_by_rank[0] is the dominant device (~60–65 % in the paper).
struct DeviceConcentration {
  std::vector<double> share_by_rank;
  int homes{0};
};
[[nodiscard]] DeviceConcentration DeviceUsageShares(const collect::DataRepository& repo,
                                                    std::size_t max_rank = 8);

/// Fig. 18: how many homes have a given domain among their top-5 / top-10
/// whitelisted domains by volume.
struct DomainPrevalence {
  std::string domain;
  int homes_top5{0};
  int homes_top10{0};
};
[[nodiscard]] std::vector<DomainPrevalence> TopDomainPrevalence(
    const collect::DataRepository& repo);

/// Fig. 19: average per-home share of traffic volume and connections by
/// domain rank. Shares are fractions of the home's *total* traffic
/// (whitelisted + anonymised), as in the paper where the whitelisted
/// portion sums to ~65 %.
struct DomainShare {
  double volume_share{0.0};       // Fig. 19a: ranked by volume
  double conns_by_conn_rank{0.0}; // Fig. 19b: ranked by #connections
  double conns_by_vol_rank{0.0};  // Fig. 19c: connection share of the volume-ranked domain
};
struct DomainConcentration {
  std::vector<DomainShare> by_rank;
  double whitelisted_volume_share{0.0};  // the ~65 % "Total"
  double whitelisted_conn_share{0.0};
  int homes{0};
};
[[nodiscard]] DomainConcentration DomainUsageShares(const collect::DataRepository& repo,
                                                    std::size_t max_rank = 10);

/// Fig. 20: one device's domain mix (share of the device's bytes per
/// domain, descending). Identified by its anonymised MAC.
struct DeviceDomainShare {
  std::string domain;
  double share{0.0};
};
[[nodiscard]] std::vector<DeviceDomainShare> DeviceDomainProfile(
    const collect::DataRepository& repo, net::MacAddress anonymized_mac,
    std::size_t max_domains = 8);

/// Find a labelled example device for Fig. 20 by vendor class, choosing
/// the one with the most traffic. Returns zero MAC if none exists.
[[nodiscard]] net::MacAddress FindDeviceByVendor(const collect::DataRepository& repo,
                                                 net::VendorClass vendor);

/// Device fingerprinting (Section 7): classify a device as streaming-box
/// vs general-purpose from its domain mix alone. Returns the fraction of
/// its traffic going to its single top domain — streamers concentrate.
[[nodiscard]] double DomainConcentrationIndex(const collect::DataRepository& repo,
                                              net::MacAddress anonymized_mac);

}  // namespace bismark::analysis
