#include "analysis/usage.h"

#include <algorithm>
#include <map>

namespace bismark::analysis {

std::vector<VendorCount> VendorHistogram(const collect::DataRepository& repo, Bytes min_bytes,
                                         bool exclude_gateways) {
  std::map<int, int> counts;  // vendor class -> devices
  repo.for_each_row<collect::DeviceTrafficRecord>([&](const collect::DeviceTrafficRecord& rec) {
    if (rec.bytes_total < min_bytes) return;
    if (exclude_gateways && rec.vendor == net::VendorClass::kGateway) return;
    ++counts[static_cast<int>(rec.vendor)];
  });
  std::vector<VendorCount> out;
  for (const auto& [vendor, devices] : counts) {
    out.push_back(VendorCount{static_cast<net::VendorClass>(vendor), devices});
  }
  std::sort(out.begin(), out.end(),
            [](const VendorCount& a, const VendorCount& b) { return a.devices > b.devices; });
  return out;
}

DeviceConcentration DeviceUsageShares(const collect::DataRepository& repo,
                                      std::size_t max_rank) {
  // Per home: bytes per device, descending; accumulate share-by-rank.
  std::map<int, std::map<std::uint64_t, double>> per_home;  // home -> mac -> bytes
  repo.for_each_row<collect::DeviceTrafficRecord>([&](const collect::DeviceTrafficRecord& rec) {
    per_home[rec.home.value][rec.device_mac.as_u64()] +=
        static_cast<double>(rec.bytes_total.count);
  });

  DeviceConcentration result;
  result.share_by_rank.assign(max_rank, 0.0);
  std::vector<int> homes_at_rank(max_rank, 0);
  for (const auto& [home, devices] : per_home) {
    std::vector<double> bytes;
    double total = 0.0;
    for (const auto& [mac, b] : devices) {
      bytes.push_back(b);
      total += b;
    }
    if (total <= 0.0) continue;
    std::sort(bytes.rbegin(), bytes.rend());
    ++result.homes;
    for (std::size_t r = 0; r < std::min(max_rank, bytes.size()); ++r) {
      result.share_by_rank[r] += bytes[r] / total;
      ++homes_at_rank[r];
    }
  }
  for (std::size_t r = 0; r < max_rank; ++r) {
    if (homes_at_rank[r] > 0) result.share_by_rank[r] /= homes_at_rank[r];
  }
  return result;
}

namespace {
struct DomainTotals {
  double bytes{0.0};
  double conns{0.0};
};

/// Per home: domain -> totals, plus home-wide totals.
struct HomeDomains {
  std::map<std::string, DomainTotals> domains;
  double total_bytes{0.0};
  double total_conns{0.0};
};

std::map<int, HomeDomains> CollectDomains(const collect::DataRepository& repo) {
  std::map<int, HomeDomains> out;
  repo.for_each_row<collect::TrafficFlowRecord>([&](const collect::TrafficFlowRecord& flow) {
    HomeDomains& h = out[flow.home.value];
    const double bytes = static_cast<double>(flow.total_bytes().count);
    h.total_bytes += bytes;
    h.total_conns += 1.0;
    auto& d = h.domains[flow.domain];
    d.bytes += bytes;
    d.conns += 1.0;
  });
  return out;
}

bool IsWhitelistedName(const std::string& domain) { return domain.rfind("anon-", 0) != 0; }
}  // namespace

std::vector<DomainPrevalence> TopDomainPrevalence(const collect::DataRepository& repo) {
  std::map<std::string, DomainPrevalence> prevalence;
  for (const auto& [home, data] : CollectDomains(repo)) {
    // Rank this home's *whitelisted* domains by volume.
    std::vector<std::pair<std::string, double>> ranked;
    for (const auto& [domain, totals] : data.domains) {
      if (IsWhitelistedName(domain)) ranked.emplace_back(domain, totals.bytes);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i) {
      auto& p = prevalence[ranked[i].first];
      p.domain = ranked[i].first;
      if (i < 5) ++p.homes_top5;
      ++p.homes_top10;
    }
  }
  std::vector<DomainPrevalence> out;
  for (auto& [domain, p] : prevalence) out.push_back(std::move(p));
  std::sort(out.begin(), out.end(), [](const DomainPrevalence& a, const DomainPrevalence& b) {
    if (a.homes_top5 != b.homes_top5) return a.homes_top5 > b.homes_top5;
    if (a.homes_top10 != b.homes_top10) return a.homes_top10 > b.homes_top10;
    return a.domain < b.domain;
  });
  return out;
}

DomainConcentration DomainUsageShares(const collect::DataRepository& repo,
                                      std::size_t max_rank) {
  DomainConcentration result;
  result.by_rank.assign(max_rank, DomainShare{});
  std::vector<int> homes_at_rank(max_rank, 0);
  double whitelisted_bytes_sum = 0.0;
  double whitelisted_conns_sum = 0.0;

  for (const auto& [home, data] : CollectDomains(repo)) {
    if (data.total_bytes <= 0.0) continue;
    ++result.homes;

    std::vector<const std::pair<const std::string, DomainTotals>*> whitelisted;
    double wl_bytes = 0.0, wl_conns = 0.0;
    for (const auto& entry : data.domains) {
      if (IsWhitelistedName(entry.first)) {
        whitelisted.push_back(&entry);
        wl_bytes += entry.second.bytes;
        wl_conns += entry.second.conns;
      }
    }
    whitelisted_bytes_sum += wl_bytes / data.total_bytes;
    whitelisted_conns_sum += data.total_conns > 0.0 ? wl_conns / data.total_conns : 0.0;

    // (a)+(c): ranked by volume.
    std::sort(whitelisted.begin(), whitelisted.end(), [](const auto* a, const auto* b) {
      return a->second.bytes > b->second.bytes;
    });
    for (std::size_t r = 0; r < std::min(max_rank, whitelisted.size()); ++r) {
      result.by_rank[r].volume_share += whitelisted[r]->second.bytes / data.total_bytes;
      if (data.total_conns > 0.0) {
        result.by_rank[r].conns_by_vol_rank +=
            whitelisted[r]->second.conns / data.total_conns;
      }
      ++homes_at_rank[r];
    }
    // (b): ranked by connection count.
    std::sort(whitelisted.begin(), whitelisted.end(), [](const auto* a, const auto* b) {
      return a->second.conns > b->second.conns;
    });
    for (std::size_t r = 0; r < std::min(max_rank, whitelisted.size()); ++r) {
      if (data.total_conns > 0.0) {
        result.by_rank[r].conns_by_conn_rank +=
            whitelisted[r]->second.conns / data.total_conns;
      }
    }
  }

  for (std::size_t r = 0; r < max_rank; ++r) {
    if (homes_at_rank[r] > 0) {
      result.by_rank[r].volume_share /= homes_at_rank[r];
      result.by_rank[r].conns_by_vol_rank /= homes_at_rank[r];
      result.by_rank[r].conns_by_conn_rank /= homes_at_rank[r];
    }
  }
  if (result.homes > 0) {
    result.whitelisted_volume_share = whitelisted_bytes_sum / result.homes;
    result.whitelisted_conn_share = whitelisted_conns_sum / result.homes;
  }
  return result;
}

std::vector<DeviceDomainShare> DeviceDomainProfile(const collect::DataRepository& repo,
                                                   net::MacAddress anonymized_mac,
                                                   std::size_t max_domains) {
  std::map<std::string, double> bytes_by_domain;
  double total = 0.0;
  repo.for_each_row<collect::TrafficFlowRecord>([&](const collect::TrafficFlowRecord& flow) {
    if (flow.device_mac != anonymized_mac) return;
    const double b = static_cast<double>(flow.total_bytes().count);
    bytes_by_domain[flow.domain] += b;
    total += b;
  });
  std::vector<DeviceDomainShare> out;
  if (total <= 0.0) return out;
  for (const auto& [domain, b] : bytes_by_domain) {
    out.push_back(DeviceDomainShare{domain, b / total});
  }
  std::sort(out.begin(), out.end(), [](const DeviceDomainShare& a, const DeviceDomainShare& b) {
    return a.share > b.share;
  });
  if (out.size() > max_domains) out.resize(max_domains);
  return out;
}

net::MacAddress FindDeviceByVendor(const collect::DataRepository& repo,
                                   net::VendorClass vendor) {
  net::MacAddress best;
  Bytes best_bytes{0};
  repo.for_each_row<collect::DeviceTrafficRecord>([&](const collect::DeviceTrafficRecord& rec) {
    if (rec.vendor != vendor) return;
    if (rec.bytes_total > best_bytes) {
      best_bytes = rec.bytes_total;
      best = rec.device_mac;
    }
  });
  return best;
}

double DomainConcentrationIndex(const collect::DataRepository& repo,
                                net::MacAddress anonymized_mac) {
  const auto profile = DeviceDomainProfile(repo, anonymized_mac, 1);
  return profile.empty() ? 0.0 : profile.front().share;
}

}  // namespace bismark::analysis
