#include "analysis/fingerprint.h"

#include <algorithm>
#include <map>

namespace bismark::analysis {

namespace {
bool IsStreamingDomain(const traffic::DomainCatalog& catalog, const std::string& name) {
  for (const auto& d : catalog.domains()) {
    if (d.name == name) {
      return d.category == traffic::DomainCategory::kVideoStreaming ||
             d.category == traffic::DomainCategory::kAudioStreaming ||
             d.category == traffic::DomainCategory::kCdn;
    }
  }
  return false;
}
}  // namespace

DeviceFeatures ExtractDeviceFeatures(const collect::DataRepository& repo,
                                     const traffic::DomainCatalog& catalog,
                                     net::MacAddress anonymized_mac) {
  DeviceFeatures features;
  features.device = anonymized_mac;
  features.vendor = net::OuiRegistry::Instance().classify(anonymized_mac);

  std::map<std::string, double> by_domain;
  double total = 0.0;
  double streaming = 0.0;
  repo.for_each_row<collect::TrafficFlowRecord>([&](const collect::TrafficFlowRecord& flow) {
    if (flow.device_mac != anonymized_mac) return;
    const double bytes = static_cast<double>(flow.total_bytes().count);
    ++features.flows;
    total += bytes;
    by_domain[flow.domain] += bytes;
  });
  for (const auto& [domain, bytes] : by_domain) {
    if (IsStreamingDomain(catalog, domain)) streaming += bytes;
  }

  features.total_bytes = Bytes{static_cast<std::int64_t>(total)};
  features.distinct_domains = static_cast<int>(by_domain.size());
  if (total > 0.0) {
    double top = 0.0;
    for (const auto& [domain, bytes] : by_domain) top = std::max(top, bytes);
    features.top_domain_share = top / total;
    features.streaming_share = streaming / total;
  }
  if (features.flows > 0) {
    features.bytes_per_flow = total / static_cast<double>(features.flows);
  }
  return features;
}

std::vector<DeviceFeatures> ExtractAllDeviceFeatures(const collect::DataRepository& repo,
                                                     const traffic::DomainCatalog& catalog,
                                                     Bytes min_bytes) {
  // Collect the qualifying devices first so the flow scans below are not
  // nested inside another repository stream.
  std::vector<net::MacAddress> macs;
  repo.for_each_row<collect::DeviceTrafficRecord>([&](const collect::DeviceTrafficRecord& rec) {
    if (rec.bytes_total < min_bytes) return;
    macs.push_back(rec.device_mac);
  });
  std::vector<DeviceFeatures> out;
  out.reserve(macs.size());
  for (const auto& mac : macs) out.push_back(ExtractDeviceFeatures(repo, catalog, mac));
  std::sort(out.begin(), out.end(), [](const DeviceFeatures& a, const DeviceFeatures& b) {
    return a.total_bytes > b.total_bytes;
  });
  return out;
}

std::string_view DeviceClassGuessName(DeviceClassGuess g) {
  switch (g) {
    case DeviceClassGuess::kStreamingBox: return "streaming-box";
    case DeviceClassGuess::kGeneralPurpose: return "general-purpose";
    case DeviceClassGuess::kUnknown: return "unknown";
  }
  return "?";
}

DeviceClassGuess ClassifyDevice(const DeviceFeatures& features,
                                const FingerprintThresholds& thresholds) {
  if (features.flows == 0 || features.total_bytes.count <= 0) {
    return DeviceClassGuess::kUnknown;
  }
  const bool streaming_dominated = features.streaming_share >= thresholds.min_streaming_share;
  const bool concentrated = features.top_domain_share >= thresholds.min_top_domain_share;
  const bool fat_flows = features.bytes_per_flow >= thresholds.min_bytes_per_flow;
  const bool narrow = features.distinct_domains <= thresholds.max_distinct_domains;
  if (streaming_dominated && concentrated && fat_flows && narrow) {
    return DeviceClassGuess::kStreamingBox;
  }
  return DeviceClassGuess::kGeneralPurpose;
}

}  // namespace bismark::analysis
