// Fig. 6 rendering: per-day availability bars for one home, derived from
// the measured heartbeat runs (green line segments in the paper become
// '#' runs here; '.' marks downtime).
#pragma once

#include <string>
#include <vector>

#include "collect/repository.h"
#include "core/intervals.h"
#include "core/time.h"

namespace bismark::analysis {

struct TimelineViewOptions {
  int columns_per_day{48};  // 30-minute cells
  char online_char{'#'};
  char offline_char{'.'};
};

/// One rendered day.
struct TimelineDay {
  TimePoint midnight;      // local midnight (UTC instant)
  std::string cells;       // columns_per_day chars
  double online_fraction{0.0};
};

/// Render `days` days of one home's availability starting at `from`
/// (clamped to local midnight). Times are interpreted in the home's zone.
[[nodiscard]] std::vector<TimelineDay> RenderTimeline(
    const std::vector<collect::HeartbeatRun>& runs, TimeZone tz, TimePoint from, int days,
    const TimelineViewOptions& options = {});

/// Pick the home in `repo` whose measured behaviour best matches a Fig. 6
/// archetype: "always-on", "appliance" (low online fraction, evening
/// concentrated) or "flaky" (many short downtimes while powered).
enum class AvailabilityArchetype { kAlwaysOn, kAppliance, kFlaky };
[[nodiscard]] collect::HomeId FindArchetype(const collect::DataRepository& repo,
                                            AvailabilityArchetype archetype);

}  // namespace bismark::analysis
