// Collection-infrastructure artifacts (Section 3.3).
//
// "Various outages and failures — both of the routers themselves and of
// the collection infrastructure — introduced interruptions in our
// collection", and "a loss of heartbeats might simply result from problems
// along the network path between the BISmark router and Georgia Tech."
// A *server-side* outage looks like downtime in every home at once; a real
// home outage is local. This module detects simultaneous heartbeat gaps
// across the deployment and lets the availability analysis discount them —
// turning the paper's acknowledged limitation into a measurable, and
// correctable, quantity.
#pragma once

#include <vector>

#include "analysis/downtime.h"
#include "collect/repository.h"
#include "core/intervals.h"

namespace bismark::analysis {

struct ArtifactOptions {
  /// Minimum simultaneous-gap length to consider (matches the downtime
  /// threshold by default).
  Duration min_gap{Minutes(10)};
  /// A moment counts as a collection outage when at least this fraction of
  /// the homes that were reporting *around* it are silent — far more homes
  /// than any plausible set of independent failures.
  double min_affected_fraction{0.6};
  /// Sampling granularity for the overlap scan.
  Duration resolution{Minutes(5)};
};

/// Detected intervals where the collection infrastructure (not the homes)
/// was down.
struct CollectionOutageReport {
  IntervalSet outages;
  /// Homes that were reporting at some point in the study (the denominator).
  int reporting_homes{0};
  [[nodiscard]] Duration total_outage() const { return outages.total(); }
};

/// Scan the heartbeat data set for deployment-wide simultaneous gaps.
[[nodiscard]] CollectionOutageReport DetectCollectionOutages(
    const collect::DataRepository& repo, const ArtifactOptions& options = {});

/// Availability analysis with collection outages discounted: gaps entirely
/// explained by a detected collection outage are not counted as home
/// downtime, and homes are not charged offline time for them.
[[nodiscard]] std::vector<HomeAvailability> AnalyzeAvailabilityCorrected(
    const collect::DataRepository& repo, const CollectionOutageReport& artifacts,
    const DowntimeOptions& options = {});

}  // namespace bismark::analysis
