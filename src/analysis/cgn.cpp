#include "analysis/cgn.h"

#include <algorithm>
#include <map>
#include <ostream>

namespace bismark::analysis {

namespace {
/// Linear-interpolated percentile of a sorted sample (q in [0, 1]).
double Percentile(const std::vector<std::uint32_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}
}  // namespace

CgnSummary SummarizeCgn(const collect::DataRepository& repo) {
  CgnSummary s;
  std::vector<std::uint32_t> peaks;
  // Ordered so per_cgn comes out sorted by id without a second pass.
  std::map<int, CgnInstanceSummary> by_cgn;

  repo.for_each_row<collect::CgnEventRecord>([&](const collect::CgnEventRecord& r) {
    ++s.homes;
    s.translations_out += r.translations_out;
    s.translations_in += r.translations_in;
    s.exhaustion_drops += r.exhaustion_drops;
    s.inbound_drops += r.inbound_drops;
    s.blocks_allocated += r.port_blocks_allocated;
    if (r.exhaustion_drops > 0) ++s.homes_exhausted;
    peaks.push_back(static_cast<std::uint32_t>(r.ports_peak));

    CgnInstanceSummary& inst = by_cgn[r.cgn_id];
    inst.cgn_id = r.cgn_id;
    ++inst.homes;
    inst.translations_out += r.translations_out;
    inst.translations_in += r.translations_in;
    inst.exhaustion_drops += r.exhaustion_drops;
    inst.inbound_drops += r.inbound_drops;
    inst.blocks_allocated += r.port_blocks_allocated;
    inst.ports_peak_max =
        std::max(inst.ports_peak_max, static_cast<std::uint32_t>(r.ports_peak));
  });

  s.cgns = static_cast<int>(by_cgn.size());
  s.per_cgn.reserve(by_cgn.size());
  for (auto& [id, inst] : by_cgn) s.per_cgn.push_back(inst);

  const std::uint64_t out_attempts = s.translations_out + s.exhaustion_drops;
  if (out_attempts > 0) {
    s.exhaustion_drop_rate =
        static_cast<double>(s.exhaustion_drops) / static_cast<double>(out_attempts);
  }
  const std::uint64_t in_arrivals = s.translations_in + s.inbound_drops;
  if (in_arrivals > 0) {
    s.inbound_drop_rate =
        static_cast<double>(s.inbound_drops) / static_cast<double>(in_arrivals);
  }

  if (!peaks.empty()) {
    std::sort(peaks.begin(), peaks.end());
    s.ports_peak_min = peaks.front();
    s.ports_peak_max = peaks.back();
    std::uint64_t sum = 0;
    for (const std::uint32_t p : peaks) sum += p;
    s.ports_peak_mean = static_cast<double>(sum) / static_cast<double>(peaks.size());
    s.ports_peak_median = Percentile(peaks, 0.5);
    s.ports_peak_p90 = Percentile(peaks, 0.9);
  }
  return s;
}

void WriteCgnSummary(const CgnSummary& s, std::ostream& out) {
  out << "Carrier-grade NAT (NAT444) summary\n";
  if (s.homes == 0) {
    out << "  no CGN activity recorded\n";
    return;
  }
  out << "  active homes:        " << s.homes << " across " << s.cgns << " CGN(s)\n";
  out << "  translations:        " << s.translations_out << " out, " << s.translations_in
      << " in\n";
  out << "  port blocks granted: " << s.blocks_allocated << "\n";
  out << "  ports/home peak:     min " << s.ports_peak_min << ", median "
      << s.ports_peak_median << ", p90 " << s.ports_peak_p90 << ", max "
      << s.ports_peak_max << " (mean " << s.ports_peak_mean << ")\n";
  out << "  exhaustion drops:    " << s.exhaustion_drops << " ("
      << s.exhaustion_drop_rate * 100.0 << "% of outbound attempts; "
      << s.homes_exhausted << " home(s) affected)\n";
  out << "  inbound drops:       " << s.inbound_drops << " ("
      << s.inbound_drop_rate * 100.0 << "% of inbound arrivals)\n";
  for (const CgnInstanceSummary& inst : s.per_cgn) {
    out << "  cgn " << inst.cgn_id << ": " << inst.homes << " home(s), "
        << inst.translations_out << " out, " << inst.blocks_allocated << " block(s), "
        << "busiest peak " << inst.ports_peak_max << " port(s), "
        << inst.exhaustion_drops << " exhaustion drop(s)\n";
  }
}

}  // namespace bismark::analysis
