#include "analysis/diurnal.h"

#include <algorithm>

#include "core/histogram.h"

namespace bismark::analysis {

namespace {
double MaxOf(const std::array<double, 24>& a) { return *std::max_element(a.begin(), a.end()); }
double MinOf(const std::array<double, 24>& a) { return *std::min_element(a.begin(), a.end()); }
}  // namespace

double DiurnalProfile::weekday_peak() const { return MaxOf(weekday); }
double DiurnalProfile::weekday_trough() const { return MinOf(weekday); }
double DiurnalProfile::weekend_peak() const { return MaxOf(weekend); }
double DiurnalProfile::weekend_trough() const { return MinOf(weekend); }
double DiurnalProfile::weekday_swing() const {
  return weekday_trough() > 0.0 ? weekday_peak() / weekday_trough() : 0.0;
}
double DiurnalProfile::weekend_swing() const {
  return weekend_trough() > 0.0 ? weekend_peak() / weekend_trough() : 0.0;
}

DiurnalProfile WirelessDiurnalProfile(const collect::DataRepository& repo) {
  // Scans of the two bands run on separate cadences, so sum per-band hourly
  // means rather than matching individual scans: for each (band, hour,
  // day-class) we average the client counts, then add the bands.
  BinnedMean wd24(24), wd5(24), we24(24), we5(24);
  repo.for_each_row<collect::WifiScanRecord>([&](const collect::WifiScanRecord& scan) {
    const auto* info = repo.find_home(scan.home);
    if (!info) return;
    const TimeZone tz{info->utc_offset};
    const int hour = tz.local_hour(scan.scanned);
    const bool weekend = IsWeekend(tz.local_weekday(scan.scanned));
    BinnedMean& bins = scan.band == wireless::Band::k2_4GHz ? (weekend ? we24 : wd24)
                                                            : (weekend ? we5 : wd5);
    bins.add(static_cast<std::size_t>(hour), scan.associated_clients);
  });
  DiurnalProfile profile;
  for (std::size_t h = 0; h < 24; ++h) {
    profile.weekday[h] = wd24.mean(h) + wd5.mean(h);
    profile.weekend[h] = we24.mean(h) + we5.mean(h);
  }
  return profile;
}

DiurnalProfile CensusDiurnalProfile(const collect::DataRepository& repo) {
  BinnedMean wd(24), we(24);
  repo.for_each_row<collect::DeviceCountRecord>([&](const collect::DeviceCountRecord& rec) {
    const auto* info = repo.find_home(rec.home);
    if (!info) return;
    const TimeZone tz{info->utc_offset};
    const int hour = tz.local_hour(rec.sampled);
    const bool weekend = IsWeekend(tz.local_weekday(rec.sampled));
    (weekend ? we : wd).add(static_cast<std::size_t>(hour), rec.wireless_total());
  });
  DiurnalProfile profile;
  for (std::size_t h = 0; h < 24; ++h) {
    profile.weekday[h] = wd.mean(h);
    profile.weekend[h] = we.mean(h);
  }
  return profile;
}

}  // namespace bismark::analysis
