#include "analysis/downtime.h"

#include <algorithm>
#include <map>

#include "core/stats.h"

namespace bismark::analysis {

std::vector<Downtime> ExtractDowntimes(const std::vector<collect::HeartbeatRun>& runs,
                                       Interval window, Duration threshold) {
  std::vector<Downtime> out;
  if (runs.empty()) return out;

  std::vector<collect::HeartbeatRun> sorted = runs;
  std::sort(sorted.begin(), sorted.end(),
            [](const collect::HeartbeatRun& a, const collect::HeartbeatRun& b) {
              return a.start < b.start;
            });

  // Internal gaps between consecutive runs. Leading/trailing window edges
  // are not counted — the paper cannot distinguish "not yet deployed"
  // from "down" either.
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const TimePoint gap_start = sorted[i - 1].end;
    const TimePoint gap_end = sorted[i].start;
    if (gap_end <= gap_start) continue;
    if (gap_end - gap_start >= threshold && gap_start >= window.start &&
        gap_end <= window.end) {
      out.push_back(Downtime{sorted[i].home, Interval{gap_start, gap_end}});
    }
  }
  return out;
}

std::vector<HomeAvailability> AnalyzeAvailability(const collect::DataRepository& repo,
                                                  const DowntimeOptions& options) {
  const Interval window = repo.windows().heartbeats;
  std::map<int, std::vector<collect::HeartbeatRun>> runs_by_home;
  repo.for_each_row<collect::HeartbeatRun>([&](const collect::HeartbeatRun& run) {
    runs_by_home[run.home.value].push_back(run);
  });

  std::vector<HomeAvailability> out;
  for (const auto& info : repo.homes()) {
    const auto it = runs_by_home.find(info.id.value);
    if (it == runs_by_home.end()) continue;

    HomeAvailability stats;
    stats.home = info.id;
    stats.country_code = info.country_code;
    stats.developed = info.developed;
    stats.window_days = (window.end - window.start).days();

    Duration online{0};
    for (const auto& run : it->second) online += run.end - run.start;
    stats.online_days = online.days();
    if (stats.online_days < options.min_online_days) continue;

    const auto downtimes = ExtractDowntimes(it->second, window, options.threshold);
    stats.downtimes = static_cast<int>(downtimes.size());
    stats.durations_s.reserve(downtimes.size());
    for (const auto& d : downtimes) stats.durations_s.push_back(d.gap.length().seconds());
    out.push_back(std::move(stats));
  }
  return out;
}

RegionalCdfs DowntimeFrequencyCdfs(const std::vector<HomeAvailability>& homes) {
  RegionalCdfs cdfs;
  for (const auto& h : homes) {
    (h.developed ? cdfs.developed : cdfs.developing).add(h.downtimes_per_day());
  }
  return cdfs;
}

RegionalCdfs DowntimeDurationCdfs(const std::vector<HomeAvailability>& homes) {
  RegionalCdfs cdfs;
  for (const auto& h : homes) {
    for (double d : h.durations_s) {
      (h.developed ? cdfs.developed : cdfs.developing).add(d);
    }
  }
  return cdfs;
}

std::vector<CountryDowntimeRow> CountryDowntimeScatter(
    const std::vector<HomeAvailability>& homes,
    const std::vector<std::pair<std::string, double>>& gdp_by_country, int min_homes) {
  std::map<std::string, std::vector<const HomeAvailability*>> by_country;
  for (const auto& h : homes) by_country[h.country_code].push_back(&h);

  std::vector<CountryDowntimeRow> rows;
  for (const auto& [code, list] : by_country) {
    if (static_cast<int>(list.size()) < min_homes) continue;
    CountryDowntimeRow row;
    row.country_code = code;
    row.developed = list.front()->developed;
    row.homes = static_cast<int>(list.size());
    for (const auto& [c, gdp] : gdp_by_country) {
      if (c == code) row.gdp_ppp = gdp;
    }
    std::vector<double> counts, durations, online;
    for (const auto* h : list) {
      counts.push_back(h->downtimes);
      online.push_back(h->online_fraction());
      for (double d : h->durations_s) durations.push_back(d);
    }
    row.median_downtimes = Median(counts);
    row.median_duration_s = durations.empty() ? 0.0 : Median(durations);
    row.median_online_fraction = Median(online);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const CountryDowntimeRow& a,
                                         const CountryDowntimeRow& b) {
    return a.gdp_ppp < b.gdp_ppp;
  });
  return rows;
}

RegionSummary SummarizeRegions(const std::vector<HomeAvailability>& homes) {
  std::vector<double> gap_days_dev, gap_days_dvg, dur_dev, dur_dvg;
  for (const auto& h : homes) {
    // Between-downtime gaps, pooled across homes: a home with k downtimes
    // contributes k gaps of ~window/k days, so frequently-failing homes
    // dominate the pooled median — which is how "the median duration
    // between downtimes is less than a day" (§4.1) coexists with many
    // individually-quiet developing homes in Fig. 3.
    const double days_between =
        h.downtimes > 0 ? h.window_days / h.downtimes : h.window_days;
    const int copies = std::max(1, h.downtimes);
    for (int i = 0; i < copies; ++i) {
      (h.developed ? gap_days_dev : gap_days_dvg).push_back(days_between);
    }
    for (double d : h.durations_s) (h.developed ? dur_dev : dur_dvg).push_back(d);
  }
  RegionSummary s;
  s.median_days_between_downtimes_developed = Median(gap_days_dev);
  s.median_days_between_downtimes_developing = Median(gap_days_dvg);
  s.median_duration_s_developed = Median(dur_dev);
  s.median_duration_s_developing = Median(dur_dvg);
  return s;
}

}  // namespace bismark::analysis
