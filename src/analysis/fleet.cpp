#include "analysis/fleet.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <vector>

#include "collect/binio.h"

namespace bismark::analysis {

namespace {

/// Per-home scalar state for the per-home distributions. Indexed by home
/// id, which the deployment mints densely from the roster index.
struct HomeAgg {
  double covered_ms{0.0};
  std::uint32_t heartbeat_runs{0};
  int max_unique_devices{-1};
};

}  // namespace

FleetSummary SummarizeFleet(const collect::DataRepository& repo) {
  FleetSummary out;
  out.homes = repo.homes().size();
  out.rows = repo.total_rows();

  int max_id = -1;
  for (const collect::HomeInfo& info : repo.homes()) {
    max_id = std::max(max_id, info.id.value);
  }
  std::vector<HomeAgg> agg(static_cast<std::size_t>(max_id + 1));
  const auto slot = [&agg, max_id](collect::HomeId id) -> HomeAgg* {
    if (id.value < 0 || id.value > max_id) return nullptr;
    return &agg[static_cast<std::size_t>(id.value)];
  };

  repo.for_each_row<collect::HeartbeatRun>([&](const collect::HeartbeatRun& run) {
    if (HomeAgg* a = slot(run.home)) {
      a->covered_ms += static_cast<double>((run.end - run.start).ms);
      ++a->heartbeat_runs;
    }
  });
  repo.for_each_row<collect::DeviceCountRecord>([&](const collect::DeviceCountRecord& rec) {
    if (HomeAgg* a = slot(rec.home)) {
      a->max_unique_devices = std::max(a->max_unique_devices, rec.unique_total);
    }
  });
  repo.for_each_row<collect::CapacityRecord>([&](const collect::CapacityRecord& rec) {
    out.capacity_down_mbps.add(rec.downstream.mbps());
    out.capacity_up_mbps.add(rec.upstream.mbps());
  });
  repo.for_each_row<collect::WifiScanRecord>([&](const collect::WifiScanRecord& rec) {
    out.visible_aps.add(static_cast<double>(rec.visible_aps));
    out.associated_clients.add(static_cast<double>(rec.associated_clients));
  });
  repo.for_each_row<collect::ThroughputMinute>([&](const collect::ThroughputMinute& rec) {
    out.throughput_down_mbps.add(rec.peak_down_bps / 1e6);
  });
  repo.for_each_row<collect::TrafficFlowRecord>([&](const collect::TrafficFlowRecord& rec) {
    out.flow_kbytes.add(rec.total_bytes().kb());
  });

  const Interval hb = repo.windows().heartbeats;
  const double window_ms = static_cast<double>((hb.end - hb.start).ms);
  const double window_days = window_ms / (24.0 * 3600.0 * 1000.0);
  for (const collect::HomeInfo& info : repo.homes()) {
    const HomeAgg& a = agg[static_cast<std::size_t>(info.id.value)];
    if (info.reports_uptime && window_ms > 0.0) {
      out.availability_fraction.add(std::min(1.0, a.covered_ms / window_ms));
      if (a.heartbeat_runs > 0 && window_days > 0.0) {
        out.downtimes_per_day.add(static_cast<double>(a.heartbeat_runs - 1) / window_days);
      }
    }
    if (info.reports_devices && a.max_unique_devices >= 0) {
      out.unique_devices.add(static_cast<double>(a.max_unique_devices));
    }
  }
  return out;
}

void WriteFleetSummary(const FleetSummary& summary, std::ostream& out) {
  out << "Fleet summary: " << summary.homes << " homes, " << summary.rows
      << " rows (streaming sketches, eps "
      << summary.availability_fraction.eps() << ")\n";
  out << "  " << std::left << std::setw(26) << "distribution" << std::right
      << std::setw(9) << "samples";
  for (const char* col : {"p10", "p50", "p90", "p99", "max"}) {
    out << ' ' << std::setw(10) << col;
  }
  out << '\n';
  const auto row = [&out](const char* name, const QuantileSketch& s) {
    out << "  " << std::left << std::setw(26) << name << std::right
        << std::setw(9) << s.count() << std::fixed << std::setprecision(2);
    if (s.empty()) {
      for (int i = 0; i < 5; ++i) out << ' ' << std::setw(10) << "-";
    } else {
      for (const double v : {s.quantile(0.10), s.quantile(0.50), s.quantile(0.90),
                             s.quantile(0.99), s.max()}) {
        out << ' ' << std::setw(10) << v;
      }
    }
    out.unsetf(std::ios::fixed);
    out << std::setprecision(6) << '\n';
  };
  row("availability fraction", summary.availability_fraction);
  row("downtimes / day", summary.downtimes_per_day);
  row("unique devices", summary.unique_devices);
  row("capacity down (Mbps)", summary.capacity_down_mbps);
  row("capacity up (Mbps)", summary.capacity_up_mbps);
  row("visible APs / scan", summary.visible_aps);
  row("assoc clients / scan", summary.associated_clients);
  row("peak minute down (Mbps)", summary.throughput_down_mbps);
  row("flow size (KB)", summary.flow_kbytes);
}

namespace {

constexpr char kSummaryMagic[4] = {'F', 'L', 'S', '1'};

/// The nine sketches in one fixed order, shared by both codec directions so
/// they cannot drift.
template <typename S, typename Fn>
void ForEachSketch(S& summary, Fn&& fn) {
  fn(summary.availability_fraction);
  fn(summary.downtimes_per_day);
  fn(summary.unique_devices);
  fn(summary.capacity_down_mbps);
  fn(summary.capacity_up_mbps);
  fn(summary.visible_aps);
  fn(summary.associated_clients);
  fn(summary.throughput_down_mbps);
  fn(summary.flow_kbytes);
}

}  // namespace

std::string SerializeFleetSummary(const FleetSummary& summary) {
  collect::BinWriter w;
  w.raw(kSummaryMagic, sizeof(kSummaryMagic));
  w.u64(static_cast<std::uint64_t>(summary.homes));
  w.u64(summary.rows);
  ForEachSketch(summary, [&w](const QuantileSketch& s) { w.str(s.Serialize()); });
  return w.buffer();
}

bool DeserializeFleetSummary(const std::string& blob, FleetSummary* out,
                             std::string* error) {
  const auto fail = [error](const std::string& reason) {
    if (error) *error = "fleet summary: " + reason;
    return false;
  };
  collect::BinReader r(blob.data(), blob.size());
  char magic[sizeof(kSummaryMagic)] = {};
  for (auto& c : magic) c = static_cast<char>(r.u8());
  if (r.failed() || std::string_view(magic, sizeof(magic)) !=
                        std::string_view(kSummaryMagic, sizeof(kSummaryMagic))) {
    return fail("bad magic");
  }
  FleetSummary summary;
  summary.homes = static_cast<std::size_t>(r.u64());
  summary.rows = r.u64();
  bool ok = true;
  ForEachSketch(summary, [&](QuantileSketch& s) {
    if (!ok || r.failed()) {
      ok = false;
      return;
    }
    ok = QuantileSketch::Deserialize(r.str(), &s);
  });
  if (!ok || r.failed()) return fail("malformed sketch blob");
  if (!r.at_end()) return fail("trailing bytes");
  *out = std::move(summary);
  return true;
}

}  // namespace bismark::analysis
