#include "analysis/fleet.h"

#include <algorithm>
#include <functional>
#include <iomanip>
#include <ostream>
#include <utility>
#include <vector>

#include "collect/binio.h"
#include "collect/column_snapshot.h"
#include "core/thread_pool.h"

namespace bismark::analysis {

namespace {

/// Per-home scalar state for the per-home distributions. Indexed by home
/// id, which the deployment mints densely from the roster index.
/// covered_ms holds exact integer millisecond sums (every addend is an
/// int64 and the totals stay far below 2^53), so accumulation order cannot
/// change the value — that is what lets the parallel path merge per-stripe
/// partials without a floating-point ordering hazard.
struct HomeAgg {
  double covered_ms{0.0};
  std::uint32_t heartbeat_runs{0};
  int max_unique_devices{-1};
};

/// country_code pointers indexed by dense home id (nullptr for gaps).
std::vector<const std::string*> CountryByHomeId(const collect::DataRepository& repo,
                                                int max_id) {
  std::vector<const std::string*> country(static_cast<std::size_t>(max_id + 1), nullptr);
  for (const collect::HomeInfo& info : repo.homes()) {
    if (info.id.value >= 0 && info.id.value <= max_id) {
      country[static_cast<std::size_t>(info.id.value)] = &info.country_code;
    }
  }
  return country;
}

/// Pre-seed the per-country table with roster counts so a country shows up
/// (with empty sketches) even when none of its homes ran a probe.
void SeedCountries(const collect::DataRepository& repo, FleetSummary* out) {
  for (const collect::HomeInfo& info : repo.homes()) {
    ++out->capacity_by_country[info.country_code].homes;
  }
}

/// Fold `from` into `into` deterministically: the first non-empty partial
/// is adopted wholesale (QuantileSketch::merge sums the eps bounds, so
/// merging into a default-constructed sketch would inflate the error
/// budget of single-stripe kinds for nothing).
void FoldSketch(QuantileSketch* into, QuantileSketch&& from) {
  if (from.empty()) return;
  if (into->empty()) {
    *into = std::move(from);
  } else {
    into->merge(from);
  }
}

}  // namespace

FleetSummary SummarizeFleet(const collect::DataRepository& repo) {
  FleetSummary out;
  out.homes = repo.homes().size();
  out.rows = repo.total_rows();

  int max_id = -1;
  for (const collect::HomeInfo& info : repo.homes()) {
    max_id = std::max(max_id, info.id.value);
  }
  std::vector<HomeAgg> agg(static_cast<std::size_t>(max_id + 1));
  const auto slot = [&agg, max_id](collect::HomeId id) -> HomeAgg* {
    if (id.value < 0 || id.value > max_id) return nullptr;
    return &agg[static_cast<std::size_t>(id.value)];
  };
  const auto country = CountryByHomeId(repo, max_id);
  SeedCountries(repo, &out);

  repo.for_each_row<collect::HeartbeatRun>([&](const collect::HeartbeatRun& run) {
    if (HomeAgg* a = slot(run.home)) {
      a->covered_ms += static_cast<double>((run.end - run.start).ms);
      ++a->heartbeat_runs;
    }
  });
  repo.for_each_row<collect::DeviceCountRecord>([&](const collect::DeviceCountRecord& rec) {
    if (HomeAgg* a = slot(rec.home)) {
      a->max_unique_devices = std::max(a->max_unique_devices, rec.unique_total);
    }
  });
  repo.for_each_row<collect::CapacityRecord>([&](const collect::CapacityRecord& rec) {
    out.capacity_down_mbps.add(rec.downstream.mbps());
    out.capacity_up_mbps.add(rec.upstream.mbps());
    if (rec.home.value >= 0 && rec.home.value <= max_id) {
      if (const std::string* code = country[static_cast<std::size_t>(rec.home.value)]) {
        CountryCapacity& cc = out.capacity_by_country[*code];
        cc.down_mbps.add(rec.downstream.mbps());
        cc.up_mbps.add(rec.upstream.mbps());
      }
    }
  });
  repo.for_each_row<collect::WifiScanRecord>([&](const collect::WifiScanRecord& rec) {
    out.visible_aps.add(static_cast<double>(rec.visible_aps));
    out.associated_clients.add(static_cast<double>(rec.associated_clients));
  });
  repo.for_each_row<collect::ThroughputMinute>([&](const collect::ThroughputMinute& rec) {
    out.throughput_down_mbps.add(rec.peak_down_bps / 1e6);
  });
  repo.for_each_row<collect::TrafficFlowRecord>([&](const collect::TrafficFlowRecord& rec) {
    out.flow_kbytes.add(rec.total_bytes().kb());
  });

  const Interval hb = repo.windows().heartbeats;
  const double window_ms = static_cast<double>((hb.end - hb.start).ms);
  const double window_days = window_ms / (24.0 * 3600.0 * 1000.0);
  for (const collect::HomeInfo& info : repo.homes()) {
    const HomeAgg& a = agg[static_cast<std::size_t>(info.id.value)];
    if (info.reports_uptime && window_ms > 0.0) {
      out.availability_fraction.add(std::min(1.0, a.covered_ms / window_ms));
      if (a.heartbeat_runs > 0 && window_days > 0.0) {
        out.downtimes_per_day.add(static_cast<double>(a.heartbeat_runs - 1) / window_days);
      }
    }
    if (info.reports_devices && a.max_unique_devices >= 0) {
      out.unique_devices.add(static_cast<double>(a.max_unique_devices));
    }
  }
  return out;
}

namespace {

/// Per-stripe partial for the sketch-per-row kinds.
struct SketchPartial {
  QuantileSketch a;
  QuantileSketch b;
  std::map<std::string, CountryCapacity> by_country;  // capacity only
};

}  // namespace

FleetSummary SummarizeFleet(const collect::DataRepository& repo, std::size_t workers) {
  const collect::ColumnSnapshot* snap = repo.columns();
  if (snap == nullptr) return SummarizeFleet(repo);

  FleetSummary out;
  out.homes = repo.homes().size();
  out.rows = repo.total_rows();

  int max_id = -1;
  for (const collect::HomeInfo& info : repo.homes()) {
    max_id = std::max(max_id, info.id.value);
  }
  const auto country = CountryByHomeId(repo, max_id);
  SeedCountries(repo, &out);

  // One task per (kind, stripe): every task owns its partial slot, so the
  // scan itself is embarrassingly parallel. Determinism comes from the
  // merge below, which folds partials in stripe index order — a property
  // of the snapshot, not of how many threads scanned it.
  std::vector<std::function<void()>> tasks;

  const std::size_t hb_n = snap->stripes_of_kind(collect::kRecordIndexOf<collect::HeartbeatRun>);
  std::vector<std::vector<HomeAgg>> hb_parts(hb_n);
  for (std::size_t s = 0; s < hb_n; ++s) {
    tasks.emplace_back([&, s] {
      auto& agg = hb_parts[s];
      agg.assign(static_cast<std::size_t>(max_id + 1), HomeAgg{});
      snap->for_each_row_in_stripe<collect::HeartbeatRun>(
          s, [&](const collect::HeartbeatRun& run) {
            if (run.home.value < 0 || run.home.value > max_id) return;
            HomeAgg& a = agg[static_cast<std::size_t>(run.home.value)];
            a.covered_ms += static_cast<double>((run.end - run.start).ms);
            ++a.heartbeat_runs;
          });
    });
  }

  const std::size_t dev_n =
      snap->stripes_of_kind(collect::kRecordIndexOf<collect::DeviceCountRecord>);
  std::vector<std::vector<HomeAgg>> dev_parts(dev_n);
  for (std::size_t s = 0; s < dev_n; ++s) {
    tasks.emplace_back([&, s] {
      auto& agg = dev_parts[s];
      agg.assign(static_cast<std::size_t>(max_id + 1), HomeAgg{});
      snap->for_each_row_in_stripe<collect::DeviceCountRecord>(
          s, [&](const collect::DeviceCountRecord& rec) {
            if (rec.home.value < 0 || rec.home.value > max_id) return;
            HomeAgg& a = agg[static_cast<std::size_t>(rec.home.value)];
            a.max_unique_devices = std::max(a.max_unique_devices, rec.unique_total);
          });
    });
  }

  const std::size_t cap_n =
      snap->stripes_of_kind(collect::kRecordIndexOf<collect::CapacityRecord>);
  std::vector<SketchPartial> cap_parts(cap_n);
  for (std::size_t s = 0; s < cap_n; ++s) {
    tasks.emplace_back([&, s] {
      SketchPartial& p = cap_parts[s];
      snap->for_each_row_in_stripe<collect::CapacityRecord>(
          s, [&](const collect::CapacityRecord& rec) {
            p.a.add(rec.downstream.mbps());
            p.b.add(rec.upstream.mbps());
            if (rec.home.value < 0 || rec.home.value > max_id) return;
            if (const std::string* code = country[static_cast<std::size_t>(rec.home.value)]) {
              CountryCapacity& cc = p.by_country[*code];
              cc.down_mbps.add(rec.downstream.mbps());
              cc.up_mbps.add(rec.upstream.mbps());
            }
          });
    });
  }

  const std::size_t wifi_n =
      snap->stripes_of_kind(collect::kRecordIndexOf<collect::WifiScanRecord>);
  std::vector<SketchPartial> wifi_parts(wifi_n);
  for (std::size_t s = 0; s < wifi_n; ++s) {
    tasks.emplace_back([&, s] {
      SketchPartial& p = wifi_parts[s];
      snap->for_each_row_in_stripe<collect::WifiScanRecord>(
          s, [&](const collect::WifiScanRecord& rec) {
            p.a.add(static_cast<double>(rec.visible_aps));
            p.b.add(static_cast<double>(rec.associated_clients));
          });
    });
  }

  const std::size_t tp_n =
      snap->stripes_of_kind(collect::kRecordIndexOf<collect::ThroughputMinute>);
  std::vector<SketchPartial> tp_parts(tp_n);
  for (std::size_t s = 0; s < tp_n; ++s) {
    tasks.emplace_back([&, s] {
      SketchPartial& p = tp_parts[s];
      snap->for_each_row_in_stripe<collect::ThroughputMinute>(
          s, [&](const collect::ThroughputMinute& rec) {
            p.a.add(rec.peak_down_bps / 1e6);
          });
    });
  }

  const std::size_t flow_n =
      snap->stripes_of_kind(collect::kRecordIndexOf<collect::TrafficFlowRecord>);
  std::vector<SketchPartial> flow_parts(flow_n);
  for (std::size_t s = 0; s < flow_n; ++s) {
    tasks.emplace_back([&, s] {
      SketchPartial& p = flow_parts[s];
      snap->for_each_row_in_stripe<collect::TrafficFlowRecord>(
          s, [&](const collect::TrafficFlowRecord& rec) {
            p.a.add(rec.total_bytes().kb());
          });
    });
  }

  ThreadPool pool(static_cast<int>(workers));
  pool.parallel_for(tasks.size(), [&](std::size_t i, int) { tasks[i](); });

  // Stripe-order merge. HomeAgg folds are exact-integer sums and maxes
  // (order-free); the sketch folds are order-sensitive, hence the fixed
  // iteration.
  std::vector<HomeAgg> agg(static_cast<std::size_t>(max_id + 1));
  for (const auto& part : hb_parts) {
    for (std::size_t i = 0; i < agg.size(); ++i) {
      agg[i].covered_ms += part[i].covered_ms;
      agg[i].heartbeat_runs += part[i].heartbeat_runs;
    }
  }
  for (const auto& part : dev_parts) {
    for (std::size_t i = 0; i < agg.size(); ++i) {
      agg[i].max_unique_devices =
          std::max(agg[i].max_unique_devices, part[i].max_unique_devices);
    }
  }
  for (SketchPartial& p : cap_parts) {
    FoldSketch(&out.capacity_down_mbps, std::move(p.a));
    FoldSketch(&out.capacity_up_mbps, std::move(p.b));
    for (auto& [code, cc] : p.by_country) {
      CountryCapacity& into = out.capacity_by_country[code];
      FoldSketch(&into.down_mbps, std::move(cc.down_mbps));
      FoldSketch(&into.up_mbps, std::move(cc.up_mbps));
    }
  }
  for (SketchPartial& p : wifi_parts) {
    FoldSketch(&out.visible_aps, std::move(p.a));
    FoldSketch(&out.associated_clients, std::move(p.b));
  }
  for (SketchPartial& p : tp_parts) FoldSketch(&out.throughput_down_mbps, std::move(p.a));
  for (SketchPartial& p : flow_parts) FoldSketch(&out.flow_kbytes, std::move(p.a));

  const Interval hb = repo.windows().heartbeats;
  const double window_ms = static_cast<double>((hb.end - hb.start).ms);
  const double window_days = window_ms / (24.0 * 3600.0 * 1000.0);
  for (const collect::HomeInfo& info : repo.homes()) {
    const HomeAgg& a = agg[static_cast<std::size_t>(info.id.value)];
    if (info.reports_uptime && window_ms > 0.0) {
      out.availability_fraction.add(std::min(1.0, a.covered_ms / window_ms));
      if (a.heartbeat_runs > 0 && window_days > 0.0) {
        out.downtimes_per_day.add(static_cast<double>(a.heartbeat_runs - 1) / window_days);
      }
    }
    if (info.reports_devices && a.max_unique_devices >= 0) {
      out.unique_devices.add(static_cast<double>(a.max_unique_devices));
    }
  }
  return out;
}

void WriteFleetSummary(const FleetSummary& summary, std::ostream& out) {
  out << "Fleet summary: " << summary.homes << " homes, " << summary.rows
      << " rows (streaming sketches, eps "
      << summary.availability_fraction.eps() << ")\n";
  out << "  " << std::left << std::setw(26) << "distribution" << std::right
      << std::setw(9) << "samples";
  for (const char* col : {"p10", "p50", "p90", "p99", "max"}) {
    out << ' ' << std::setw(10) << col;
  }
  out << '\n';
  const auto row = [&out](const char* name, const QuantileSketch& s) {
    out << "  " << std::left << std::setw(26) << name << std::right
        << std::setw(9) << s.count() << std::fixed << std::setprecision(2);
    if (s.empty()) {
      for (int i = 0; i < 5; ++i) out << ' ' << std::setw(10) << "-";
    } else {
      for (const double v : {s.quantile(0.10), s.quantile(0.50), s.quantile(0.90),
                             s.quantile(0.99), s.max()}) {
        out << ' ' << std::setw(10) << v;
      }
    }
    out.unsetf(std::ios::fixed);
    out << std::setprecision(6) << '\n';
  };
  row("availability fraction", summary.availability_fraction);
  row("downtimes / day", summary.downtimes_per_day);
  row("unique devices", summary.unique_devices);
  row("capacity down (Mbps)", summary.capacity_down_mbps);
  row("capacity up (Mbps)", summary.capacity_up_mbps);
  row("visible APs / scan", summary.visible_aps);
  row("assoc clients / scan", summary.associated_clients);
  row("peak minute down (Mbps)", summary.throughput_down_mbps);
  row("flow size (KB)", summary.flow_kbytes);

  if (!summary.capacity_by_country.empty()) {
    out << "  capacity by country:\n";
    out << "  " << std::left << std::setw(8) << "code" << std::right << std::setw(8)
        << "homes" << std::setw(9) << "probes";
    for (const char* col : {"down p50", "down p90", "up p50", "up p90"}) {
      out << ' ' << std::setw(10) << col;
    }
    out << '\n';
    for (const auto& [code, cc] : summary.capacity_by_country) {
      out << "  " << std::left << std::setw(8) << code << std::right << std::setw(8)
          << cc.homes << std::setw(9) << cc.down_mbps.count() << std::fixed
          << std::setprecision(2);
      if (cc.down_mbps.empty()) {
        for (int i = 0; i < 4; ++i) out << ' ' << std::setw(10) << "-";
      } else {
        for (const double v :
             {cc.down_mbps.quantile(0.50), cc.down_mbps.quantile(0.90),
              cc.up_mbps.quantile(0.50), cc.up_mbps.quantile(0.90)}) {
          out << ' ' << std::setw(10) << v;
        }
      }
      out.unsetf(std::ios::fixed);
      out << std::setprecision(6) << '\n';
    }
  }
}

namespace {

// v2 appends the per-country capacity table; v1 blobs (older checkpoints)
// still deserialize, with an empty table.
constexpr char kSummaryMagic[4] = {'F', 'L', 'S', '2'};
constexpr char kSummaryMagicV1[4] = {'F', 'L', 'S', '1'};

/// The nine sketches in one fixed order, shared by both codec directions so
/// they cannot drift.
template <typename S, typename Fn>
void ForEachSketch(S& summary, Fn&& fn) {
  fn(summary.availability_fraction);
  fn(summary.downtimes_per_day);
  fn(summary.unique_devices);
  fn(summary.capacity_down_mbps);
  fn(summary.capacity_up_mbps);
  fn(summary.visible_aps);
  fn(summary.associated_clients);
  fn(summary.throughput_down_mbps);
  fn(summary.flow_kbytes);
}

}  // namespace

std::string SerializeFleetSummary(const FleetSummary& summary) {
  collect::BinWriter w;
  w.raw(kSummaryMagic, sizeof(kSummaryMagic));
  w.u64(static_cast<std::uint64_t>(summary.homes));
  w.u64(summary.rows);
  ForEachSketch(summary, [&w](const QuantileSketch& s) { w.str(s.Serialize()); });
  w.u32(static_cast<std::uint32_t>(summary.capacity_by_country.size()));
  for (const auto& [code, cc] : summary.capacity_by_country) {
    w.str(code);
    w.u64(static_cast<std::uint64_t>(cc.homes));
    w.str(cc.down_mbps.Serialize());
    w.str(cc.up_mbps.Serialize());
  }
  return w.buffer();
}

bool DeserializeFleetSummary(const std::string& blob, FleetSummary* out,
                             std::string* error) {
  const auto fail = [error](const std::string& reason) {
    if (error) *error = "fleet summary: " + reason;
    return false;
  };
  collect::BinReader r(blob.data(), blob.size());
  char magic[sizeof(kSummaryMagic)] = {};
  for (auto& c : magic) c = static_cast<char>(r.u8());
  const auto is = [&magic](const char (&want)[4]) {
    return std::string_view(magic, sizeof(magic)) == std::string_view(want, sizeof(want));
  };
  if (r.failed() || (!is(kSummaryMagic) && !is(kSummaryMagicV1))) {
    return fail("bad magic");
  }
  const bool v1 = is(kSummaryMagicV1);
  FleetSummary summary;
  summary.homes = static_cast<std::size_t>(r.u64());
  summary.rows = r.u64();
  bool ok = true;
  ForEachSketch(summary, [&](QuantileSketch& s) {
    if (!ok || r.failed()) {
      ok = false;
      return;
    }
    ok = QuantileSketch::Deserialize(r.str(), &s);
  });
  if (!ok || r.failed()) return fail("malformed sketch blob");
  if (!v1) {
    const std::uint32_t countries = r.u32();
    if (r.failed()) return fail("malformed country table");
    for (std::uint32_t i = 0; i < countries && ok; ++i) {
      std::string code = r.str();
      CountryCapacity cc;
      cc.homes = static_cast<std::size_t>(r.u64());
      ok = !r.failed() && QuantileSketch::Deserialize(r.str(), &cc.down_mbps) &&
           QuantileSketch::Deserialize(r.str(), &cc.up_mbps);
      if (ok) summary.capacity_by_country.emplace(std::move(code), std::move(cc));
    }
    if (!ok || r.failed()) return fail("malformed country table");
  }
  if (!r.at_end()) return fail("trailing bytes");
  *out = std::move(summary);
  return true;
}

}  // namespace bismark::analysis
