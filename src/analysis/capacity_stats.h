// Capacity data set analysis.
//
// The Capacity data is the one data set the paper releases publicly *and
// keeps updating* (Section 3.2) — it underpins the authors' broadband
// policy work. This module summarises it: per-home medians, per-country
// distributions, downstream/upstream asymmetry, and probe stability —
// which also backs the regulators' "are ISPs delivering what they promise"
// question from the introduction.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "collect/repository.h"
#include "core/cdf.h"

namespace bismark::analysis {

/// Per-home capacity summary over the Capacity window.
struct HomeCapacitySummary {
  collect::HomeId home;
  std::string country_code;
  bool developed{true};
  int probes{0};
  double median_down_mbps{0.0};
  double median_up_mbps{0.0};
  /// Coefficient of variation of the downstream probes — how stable the
  /// estimate is (Fig. 14's "capacity remains fairly constant").
  double down_cv{0.0};

  [[nodiscard]] double asymmetry() const {
    return median_up_mbps > 0.0 ? median_down_mbps / median_up_mbps : 0.0;
  }
};

[[nodiscard]] std::vector<HomeCapacitySummary> SummarizeCapacity(
    const collect::DataRepository& repo);

/// Per-country aggregation (median of home medians).
struct CountryCapacityRow {
  std::string country_code;
  bool developed{true};
  int homes{0};
  double median_down_mbps{0.0};
  double median_up_mbps{0.0};
};
[[nodiscard]] std::vector<CountryCapacityRow> CapacityByCountry(
    const collect::DataRepository& repo, int min_homes = 3);

/// Regional downstream-capacity CDFs (developed vs developing).
struct CapacityCdfs {
  Cdf developed_down;
  Cdf developing_down;
};
[[nodiscard]] CapacityCdfs CapacityDistributions(const collect::DataRepository& repo);

}  // namespace bismark::analysis
