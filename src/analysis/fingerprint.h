// Traffic-pattern device fingerprinting (Section 7 future work, grounded
// in the Fig. 20 observation).
//
// The MAC OUI narrows a device to its manufacturer but cannot separate a
// MacBook from an Apple TV; the *shape* of a device's traffic can. This
// module extracts per-device features from the anonymised Traffic data set
// and classifies devices as streaming boxes vs general-purpose — the
// fine-grained attribution the paper proposes for ISP security alerts.
#pragma once

#include <string>
#include <vector>

#include "collect/repository.h"
#include "net/oui.h"
#include "traffic/domains.h"

namespace bismark::analysis {

/// Features computable from anonymised flow records alone.
struct DeviceFeatures {
  net::MacAddress device;            // anonymised
  net::VendorClass vendor{net::VendorClass::kUnknown};
  Bytes total_bytes;
  std::uint64_t flows{0};
  int distinct_domains{0};
  /// Share of the device's bytes going to its single top domain.
  double top_domain_share{0.0};
  /// Share of bytes to known streaming domains (video/audio categories of
  /// the whitelist; anonymised domains cannot contribute).
  double streaming_share{0.0};
  /// Mean bytes per flow — streams are few and fat.
  double bytes_per_flow{0.0};
};

/// Extract features for one device (by anonymised MAC).
[[nodiscard]] DeviceFeatures ExtractDeviceFeatures(const collect::DataRepository& repo,
                                                   const traffic::DomainCatalog& catalog,
                                                   net::MacAddress anonymized_mac);

/// Extract features for every device in the Traffic data set with at least
/// `min_bytes` of traffic.
[[nodiscard]] std::vector<DeviceFeatures> ExtractAllDeviceFeatures(
    const collect::DataRepository& repo, const traffic::DomainCatalog& catalog,
    Bytes min_bytes = MB(50));

enum class DeviceClassGuess : int { kStreamingBox = 0, kGeneralPurpose, kUnknown };

[[nodiscard]] std::string_view DeviceClassGuessName(DeviceClassGuess g);

struct FingerprintThresholds {
  /// Streaming share alone does NOT separate devices: a laptop's bytes are
  /// video-dominated too. The discriminating signals are flow fatness (a
  /// streamer's mean flow is hundreds of MB; browsing drags a laptop's
  /// mean down) and domain diversity (people wander, boxes don't).
  double min_streaming_share{0.60};
  double min_top_domain_share{0.45};
  double min_bytes_per_flow{5e7};  // 50 MB/flow
  int max_distinct_domains{20};
};

/// Rule-based classifier over the features. A device is a streaming box
/// when its traffic is streaming-dominated, concentrated, and fat-flowed
/// (vendor class corroborates but is not required — that is the point).
[[nodiscard]] DeviceClassGuess ClassifyDevice(const DeviceFeatures& features,
                                              const FingerprintThresholds& thresholds = {});

}  // namespace bismark::analysis
