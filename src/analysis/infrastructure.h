// Infrastructure analysis (Section 5): device counts, media, spectrum
// occupancy and neighbourhood crowding — Figs 7–11 and Table 5, all
// computed from the Devices and WiFi data sets.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "collect/repository.h"
#include "core/cdf.h"

namespace bismark::analysis {

/// Fig. 7: unique devices per home (final running-unique count of the
/// Devices window).
[[nodiscard]] Cdf UniqueDevicesCdf(const collect::DataRepository& repo);
/// Mean unique devices across homes (the "seven devices on average").
[[nodiscard]] double MeanUniqueDevices(const collect::DataRepository& repo);

/// Fig. 8 / Fig. 9: average concurrently-connected devices per home,
/// aggregated over census samples, with the across-homes stddev.
struct MeanWithSpread {
  double mean{0.0};
  double stddev{0.0};
  int homes{0};
};
struct ConnectedByMedium {
  MeanWithSpread wired;
  MeanWithSpread wireless;
};
/// Per region (Fig. 8).
[[nodiscard]] ConnectedByMedium ConnectedDevices(const collect::DataRepository& repo,
                                                 bool developed);
struct ConnectedByBand {
  MeanWithSpread band24;
  MeanWithSpread band5;
};
/// Per region (Fig. 9 groups by band; we expose both splits).
[[nodiscard]] ConnectedByBand ConnectedWireless(const collect::DataRepository& repo,
                                                bool developed);

/// Fig. 10: unique devices per band per home (whole deployment).
struct BandCdfs {
  Cdf band24;
  Cdf band5;
};
[[nodiscard]] BandCdfs UniqueDevicesPerBand(const collect::DataRepository& repo);

/// Fig. 11: visible neighbour APs on the 2.4 GHz scan channel, one value
/// per home (median across its scans), split by region.
struct NeighborApCdfs {
  Cdf developed;
  Cdf developing;
};
[[nodiscard]] NeighborApCdfs NeighborAps(const collect::DataRepository& repo);
/// Same for the 5 GHz radio (Section 5.3's "about one AP" remark).
[[nodiscard]] NeighborApCdfs NeighborAps5(const collect::DataRepository& repo);

/// Table 5: homes with at least one always-connected device.
struct AlwaysConnectedRow {
  int total_homes{0};
  int with_wired{0};
  int with_wireless{0};
  [[nodiscard]] double wired_fraction() const {
    return total_homes ? static_cast<double>(with_wired) / total_homes : 0.0;
  }
  [[nodiscard]] double wireless_fraction() const {
    return total_homes ? static_cast<double>(with_wireless) / total_homes : 0.0;
  }
};
struct AlwaysConnectedTable {
  AlwaysConnectedRow developed;
  AlwaysConnectedRow developing;
};
[[nodiscard]] AlwaysConnectedTable AlwaysConnected(const collect::DataRepository& repo);

/// §5.2: fraction of homes using all four Ethernet ports, per region.
[[nodiscard]] double AllPortsUsedFraction(const collect::DataRepository& repo, bool developed);

}  // namespace bismark::analysis
