#include "traffic/device_types.h"

#include <vector>

namespace bismark::traffic {

namespace {
constexpr std::array<std::string_view, kDeviceTypeCount> kNames = {
    "laptop",     "desktop",     "smart-phone", "tablet", "media-streamer", "smart-tv",
    "game-console", "voip-phone", "printer",    "nas",    "iot-device",
};

// wired_prob, dual_band_prob, always_on_prob, hunger, sessions_per_hour.
// Session rates are calibrated so a typical home moves a few GB/day —
// `hunger` only ranks devices when the household picks its primary one.
constexpr std::array<DeviceTypeTraits, kDeviceTypeCount> kTraits = {{
    {0.08, 0.65, 0.04, 1.00, 0.70}, // laptop
    {0.75, 0.40, 0.28, 1.10, 0.60}, // desktop
    {0.00, 0.04, 0.10, 0.35, 1.00}, // smart-phone: 2.4 GHz only, light
    {0.00, 0.40, 0.05, 0.55, 0.70}, // tablet
    {0.45, 0.60, 0.70, 2.60, 0.045},// media-streamer: few sessions, huge ones
    {0.35, 0.50, 0.25, 1.80, 0.025},// smart-tv
    {0.55, 0.45, 0.20, 1.30, 0.03}, // game-console
    {0.70, 0.00, 0.90, 0.05, 0.10}, // voip-phone
    {0.60, 0.00, 0.45, 0.01, 0.02}, // printer
    {0.95, 0.00, 0.90, 0.40, 0.05}, // nas: cloud-sync heavy
    {0.20, 0.05, 0.60, 0.02, 0.30}, // iot
}};
}  // namespace

std::string_view DeviceTypeName(DeviceType t) {
  return kNames[static_cast<std::size_t>(t)];
}

const DeviceTypeTraits& TraitsOf(DeviceType t) {
  return kTraits[static_cast<std::size_t>(t)];
}

std::array<double, kAppTypeCount> AppMixOf(DeviceType t) {
  // Weights index AppType order: web, video, audio, social, cloud, email,
  // update, gaming, voip, bulk-upload, iot.
  switch (t) {
    case DeviceType::kLaptop:
      return {30, 10, 6, 14, 8, 10, 2, 1, 1, 0, 0};
    case DeviceType::kDesktop:
      return {28, 9, 6, 10, 12, 12, 3, 2, 1, 0, 0};
    case DeviceType::kSmartPhone:
      return {22, 6, 8, 30, 6, 14, 1, 1, 2, 0, 0};
    case DeviceType::kTablet:
      return {24, 16, 6, 24, 4, 8, 1, 1, 0, 0, 0};
    case DeviceType::kMediaStreamer:
      return {1, 85, 12, 0, 0, 0, 1, 0, 0, 0, 0};  // the Fig. 20b Roku shape
    case DeviceType::kSmartTv:
      return {2, 88, 6, 1, 0, 0, 2, 0, 0, 0, 0};
    case DeviceType::kGameConsole:
      return {2, 25, 2, 1, 0, 0, 8, 60, 0, 0, 0};
    case DeviceType::kVoipPhone:
      return {0, 0, 0, 0, 0, 0, 1, 0, 98, 0, 0};
    case DeviceType::kPrinter:
      return {10, 0, 0, 0, 10, 0, 30, 0, 0, 0, 50};
    case DeviceType::kNas:
      return {2, 2, 0, 0, 70, 0, 5, 0, 0, 15, 5};
    case DeviceType::kIotDevice:
      return {1, 0, 0, 0, 2, 0, 3, 0, 0, 0, 94};
  }
  return {};
}

net::VendorClass DrawVendorClass(DeviceType t, Rng& rng) {
  using VC = net::VendorClass;
  struct Weighted {
    VC vc;
    double w;
  };
  std::vector<Weighted> mix;
  switch (t) {
    case DeviceType::kLaptop:
      mix = {{VC::kApple, 42}, {VC::kIntel, 28}, {VC::kOdm, 16}, {VC::kAsus, 6},
             {VC::kHewlettPackard, 5}, {VC::kWirelessCard, 3}};
      break;
    case DeviceType::kDesktop:
      mix = {{VC::kIntel, 34}, {VC::kApple, 26}, {VC::kOdm, 14}, {VC::kHardware, 10},
             {VC::kHewlettPackard, 8}, {VC::kAsus, 5}, {VC::kVmware, 3}};
      break;
    case DeviceType::kSmartPhone:
      mix = {{VC::kApple, 45}, {VC::kSamsung, 25}, {VC::kSmartPhone, 28}, {VC::kMisc, 2}};
      break;
    case DeviceType::kTablet:
      mix = {{VC::kApple, 55}, {VC::kSamsung, 25}, {VC::kOdm, 15}, {VC::kMisc, 5}};
      break;
    case DeviceType::kMediaStreamer:
      mix = {{VC::kInternetTv, 62}, {VC::kApple, 30}, {VC::kRaspberryPi, 8}};
      break;
    case DeviceType::kSmartTv:
      mix = {{VC::kSamsung, 45}, {VC::kInternetTv, 35}, {VC::kOdm, 20}};
      break;
    case DeviceType::kGameConsole:
      mix = {{VC::kMicrosoft, 40}, {VC::kGaming, 50}, {VC::kOdm, 10}};
      break;
    case DeviceType::kVoipPhone:
      mix = {{VC::kVoip, 70}, {VC::kMisc, 30}};
      break;
    case DeviceType::kPrinter:
      mix = {{VC::kPrinter, 60}, {VC::kHewlettPackard, 40}};
      break;
    case DeviceType::kNas:
      mix = {{VC::kHardware, 40}, {VC::kOdm, 30}, {VC::kIntel, 20}, {VC::kRaspberryPi, 10}};
      break;
    case DeviceType::kIotDevice:
      mix = {{VC::kMisc, 35}, {VC::kRaspberryPi, 25}, {VC::kWirelessCard, 25},
             {VC::kHardware, 15}};
      break;
  }
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const auto& m : mix) weights.push_back(m.w);
  return mix[rng.weighted_index(weights)].vc;
}

net::MacAddress MintMac(net::VendorClass vendor, Rng& rng) {
  const auto ouis = net::OuiRegistry::Instance().ouis_for(vendor);
  std::uint32_t oui;
  if (ouis.empty()) {
    // Locally-administered fallback (should not happen for known classes).
    oui = 0x020000 | static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff));
  } else {
    oui = ouis[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ouis.size()) - 1))];
  }
  const auto nic = static_cast<std::uint32_t>(rng.uniform_int(1, 0xfffffe));
  return net::MacAddress::FromParts(oui, nic);
}

DeviceType DrawDeviceType(bool developed, Rng& rng) {
  // Regional device-slot mixes. Developed homes hold more entertainment
  // hardware (consoles, streamers, NAS); developing homes skew toward
  // laptops and phones (Section 5.1's explanation of the gap).
  struct Weighted {
    DeviceType t;
    double w;
  };
  static const std::vector<Weighted> kDeveloped = {
      {DeviceType::kLaptop, 24},      {DeviceType::kSmartPhone, 22},
      {DeviceType::kDesktop, 10},     {DeviceType::kTablet, 12},
      {DeviceType::kMediaStreamer, 9}, {DeviceType::kSmartTv, 6},
      {DeviceType::kGameConsole, 8},  {DeviceType::kVoipPhone, 2},
      {DeviceType::kPrinter, 3},      {DeviceType::kNas, 2},
      {DeviceType::kIotDevice, 2},
  };
  static const std::vector<Weighted> kDeveloping = {
      {DeviceType::kLaptop, 34},      {DeviceType::kSmartPhone, 34},
      {DeviceType::kDesktop, 12},     {DeviceType::kTablet, 8},
      {DeviceType::kMediaStreamer, 2}, {DeviceType::kSmartTv, 3},
      {DeviceType::kGameConsole, 3},  {DeviceType::kVoipPhone, 1},
      {DeviceType::kPrinter, 2},      {DeviceType::kNas, 0.5},
      {DeviceType::kIotDevice, 0.5},
  };
  const auto& mix = developed ? kDeveloped : kDeveloping;
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const auto& m : mix) weights.push_back(m.w);
  return mix[rng.weighted_index(weights)].t;
}

}  // namespace bismark::traffic
