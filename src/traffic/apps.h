// Application workload models.
//
// Every byte in the Traffic data set comes from an application session on
// some device: a Netflix binge, a Dropbox sync, a VoIP call. Each
// application type defines which domain categories it talks to and the
// shape of the flows it opens (bytes up/down, duration, connection count).
// The paper's concentration results — streaming domains carrying ~38 % of
// volume over ~14 % of connections (Fig. 19) — must *emerge* from these
// shapes, so the key invariant is: video moves many bytes over few long
// connections, web browsing moves few bytes over many short ones.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "core/units.h"
#include "net/packet.h"
#include "traffic/domains.h"

namespace bismark::traffic {

enum class AppType : int {
  kWebBrowsing = 0,
  kVideoStreaming,
  kAudioStreaming,
  kSocialMedia,
  kCloudSync,
  kEmail,
  kSoftwareUpdate,
  kOnlineGaming,
  kVoip,
  kBulkUpload,   // the Fig. 16a "scientific data upload" workload
  kIotTelemetry,
};
inline constexpr int kAppTypeCount = 11;

[[nodiscard]] std::string_view AppTypeName(AppType t);

/// The planned shape of one transport flow within a session.
struct FlowPlan {
  Bytes bytes_down;
  Bytes bytes_up;
  /// Nominal application demand while transferring. Transfer duration is
  /// bytes / granted rate, so a constrained link stretches flows.
  BitRate demand_down;
  BitRate demand_up;
  net::Protocol protocol{net::Protocol::kTcp};
  std::uint16_t dst_port{443};
  /// Delay after session start before this flow opens.
  Duration start_offset{0};
};

/// One application session: the domain visited and its flows.
struct SessionPlan {
  AppType app{AppType::kWebBrowsing};
  std::size_t domain_index{0};
  std::vector<FlowPlan> flows;

  [[nodiscard]] Bytes total_down() const;
  [[nodiscard]] Bytes total_up() const;
};

/// Draws session plans for an application type against a domain catalog.
class AppModel {
 public:
  /// Plan one session. Flow sizes/rates are drawn from per-app
  /// distributions; the domain is drawn from the app's category affinity.
  static SessionPlan PlanSession(AppType app, const DomainCatalog& catalog, Rng& rng);

  /// Probability that a session of this app type goes to an *unlisted*
  /// (tail) domain rather than a whitelisted one. Tuned so whitelisted
  /// traffic covers ~65 % of volume overall (Section 6.4).
  static double TailProbability(AppType app);

  /// Mean session volume (both directions), used by tests to sanity-check
  /// the calibration without running a full simulation.
  static Bytes ApproxMeanVolume(AppType app);
};

}  // namespace bismark::traffic
