// The device taxonomy of a home network.
//
// Section 5 ("Infrastructure") and Fig. 12 classify home devices by medium
// (wired/wireless), band capability, manufacturer and behaviour. Each
// DeviceType here bundles those attributes: which vendor classes
// manufacture it, whether it is usually wired, whether it is dual-band,
// how likely it is to stay connected around the clock, and which
// applications it runs (its traffic "fingerprint", Fig. 20).
#pragma once

#include <array>
#include <string_view>

#include "core/rng.h"
#include "net/addr.h"
#include "net/oui.h"
#include "traffic/apps.h"

namespace bismark::traffic {

enum class DeviceType : int {
  kLaptop = 0,
  kDesktop,
  kSmartPhone,
  kTablet,
  kMediaStreamer,  // Roku / TiVo / Apple TV class
  kSmartTv,
  kGameConsole,
  kVoipPhone,
  kPrinter,
  kNas,
  kIotDevice,      // thermostat / Pi / telemetry gadgets
};
inline constexpr int kDeviceTypeCount = 11;

[[nodiscard]] std::string_view DeviceTypeName(DeviceType t);

/// Static behavioural attributes of a device type.
struct DeviceTypeTraits {
  /// Probability the device is attached by Ethernet rather than WiFi.
  double wired_prob;
  /// If wireless: probability it is dual-band capable (otherwise 2.4 only).
  /// Phones in the study era were almost exclusively 2.4 GHz (Section 5.3).
  double dual_band_prob;
  /// Probability the device stays connected 24/7 while the router is up
  /// (media boxes, VoIP phones, NAS — the Table 5 population).
  double always_on_prob;
  /// Relative appetite: scales session arrival rate (drives Fig. 17's
  /// dominant-device concentration).
  double hunger;
  /// Mean application sessions per active hour at peak.
  double sessions_per_hour;
};

[[nodiscard]] const DeviceTypeTraits& TraitsOf(DeviceType t);

/// Application mix: unnormalised weights per AppType for this device type.
[[nodiscard]] std::array<double, kAppTypeCount> AppMixOf(DeviceType t);

/// Draw a manufacturer class for a device type (US market mix of the
/// study period — Apple-heavy, per Fig. 12).
[[nodiscard]] net::VendorClass DrawVendorClass(DeviceType t, Rng& rng);

/// Mint a realistic MAC for the device: a real OUI of the drawn vendor
/// class and a random NIC suffix.
[[nodiscard]] net::MacAddress MintMac(net::VendorClass vendor, Rng& rng);

/// Draw a device type for a household slot. `developed` selects the
/// regional mix (developed homes own more media/entertainment devices,
/// Section 5.1).
[[nodiscard]] DeviceType DrawDeviceType(bool developed, Rng& rng);

}  // namespace bismark::traffic
