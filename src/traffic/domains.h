// The simulated Internet's domain population.
//
// Section 3.2.2: the firmware whitelists the Alexa top-200 US domains (plus
// user additions) and obfuscates DNS lookups to everything else; Section
// 6.4 measures domain popularity against that whitelist. We embed a
// realistic top-of-Alexa catalog (with categories that drive application
// affinity) and a synthetic tail, and project the whole population into a
// net::ZoneCatalog so flows resolve through real DNS machinery.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/rng.h"
#include "net/dns.h"

namespace bismark::traffic {

/// Content category — determines which applications visit a domain and the
/// flow shapes they produce there.
enum class DomainCategory : int {
  kSearch = 0,
  kVideoStreaming,   // youtube, netflix, hulu — high volume, few connections
  kAudioStreaming,   // pandora, spotify
  kSocial,
  kShopping,
  kNews,
  kCloudSync,        // dropbox, icloud — upload heavy
  kEmail,
  kCdn,              // akamai-style; mostly CNAME targets
  kSoftwareUpdate,
  kGaming,
  kVoip,
  kPortal,           // misc popular sites
  kTail,             // outside the whitelist
};

[[nodiscard]] std::string_view DomainCategoryName(DomainCategory c);

struct DomainInfo {
  std::string name;
  DomainCategory category{DomainCategory::kPortal};
  /// Popularity weight (descending with Alexa-style rank).
  double popularity{1.0};
  /// Whether the domain is on the firmware's whitelist (Alexa top 200).
  bool whitelisted{true};
};

/// The full domain population: whitelist + tail.
class DomainCatalog {
 public:
  /// Build the standard catalog: ~200 whitelisted domains modelled on the
  /// 2013 Alexa US list plus `tail_count` synthetic unlisted domains.
  static DomainCatalog BuildStandard(std::size_t tail_count = 400, std::uint64_t seed = 17);

  [[nodiscard]] const std::vector<DomainInfo>& domains() const { return domains_; }
  [[nodiscard]] std::size_t whitelist_size() const { return whitelist_size_; }

  [[nodiscard]] bool is_whitelisted(const std::string& name) const;

  /// Indices of domains in a category (whitelisted and tail).
  [[nodiscard]] std::vector<std::size_t> in_category(DomainCategory c) const;

  /// Weighted draw of a domain index within one category.
  [[nodiscard]] std::size_t sample_in_category(DomainCategory c, Rng& rng) const;

  [[nodiscard]] const DomainInfo& domain(std::size_t idx) const { return domains_[idx]; }

  /// Populate a DNS zone catalog with A records (and CDN CNAME chains for
  /// video/CDN domains) for every domain. Deterministic in `seed`.
  void install_zones(net::ZoneCatalog& zones, std::uint64_t seed = 23) const;

 private:
  std::vector<DomainInfo> domains_;
  std::size_t whitelist_size_{0};
};

}  // namespace bismark::traffic
