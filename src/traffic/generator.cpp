#include "traffic/generator.h"

#include <algorithm>
#include <cmath>

namespace bismark::traffic {

namespace {
constexpr double kMtuPayload = 1400.0;  // bytes of payload per data packet

std::uint32_t PacketsFor(Bytes data) {
  if (data.count <= 0) return 0;
  return static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, data.count / static_cast<std::int64_t>(kMtuPayload)));
}
}  // namespace

ActivityCurve ActivityCurve::Residential() {
  ActivityCurve c;
  // Weekday: deep night trough, small morning bump, work-hours dip,
  // pronounced evening peak (Fig. 13a).
  constexpr std::array<double, 24> wd = {
      0.30, 0.20, 0.14, 0.12, 0.12, 0.15, 0.28, 0.45,  // 0-7
      0.50, 0.42, 0.38, 0.36, 0.38, 0.36, 0.35, 0.38,  // 8-15
      0.48, 0.62, 0.80, 0.95, 1.00, 0.98, 0.82, 0.55,  // 16-23
  };
  // Weekend: flatter, consistently active through the day (Fig. 13b).
  constexpr std::array<double, 24> we = {
      0.38, 0.26, 0.18, 0.14, 0.13, 0.15, 0.25, 0.40,
      0.55, 0.68, 0.75, 0.78, 0.80, 0.78, 0.76, 0.78,
      0.80, 0.84, 0.90, 0.95, 0.96, 0.92, 0.78, 0.55,
  };
  c.weekday = wd;
  c.weekend = we;
  return c;
}

double ActivityCurve::weight(Weekday day, int hour) const {
  const auto h = static_cast<std::size_t>(std::clamp(hour, 0, 23));
  return IsWeekend(day) ? weekend[h] : weekday[h];
}

double ActivityCurve::max_weight() const {
  double m = 0.0;
  for (double w : weekday) m = std::max(m, w);
  for (double w : weekend) m = std::max(m, w);
  return m;
}

HomeTrafficGenerator::HomeTrafficGenerator(sim::Engine& engine, const DomainCatalog& catalog,
                                           net::DnsResolver& resolver, TrafficSink& sink,
                                           TimeZone tz, Rng rng)
    : engine_(engine), catalog_(catalog), resolver_(resolver), sink_(sink), tz_(tz), rng_(rng),
      activity_(ActivityCurve::Residential()) {}

void HomeTrafficGenerator::add_device(DeviceWorkload workload) {
  auto state = std::make_unique<DeviceState>();
  state->rng = rng_.fork(workload.mac.as_u64());
  state->next_ephemeral_port =
      static_cast<std::uint16_t>(20000 + state->rng.uniform_int(0, 20000));
  state->workload = std::move(workload);
  devices_.push_back(std::move(state));
}

void HomeTrafficGenerator::set_burst_params(Duration burst_len, double duty_cycle) {
  burst_len_ = burst_len;
  duty_cycle_ = std::clamp(duty_cycle, 0.05, 1.0);
}

void HomeTrafficGenerator::start(TimePoint begin, TimePoint end) {
  window_end_ = end;
  for (auto& dev : devices_) {
    DeviceState* d = dev.get();
    // Stagger first draws so homes don't phase-lock.
    const Duration phase = Seconds(d->rng.uniform(0.0, 600.0));
    engine_.schedule_at(begin + phase, [this, d] { schedule_next_session(*d); });
  }
}

void HomeTrafficGenerator::schedule_next_session(DeviceState& dev) {
  // Non-homogeneous Poisson via thinning against the peak rate.
  const double peak_rate =
      dev.workload.sessions_per_hour_peak * dev.workload.hunger_scale * activity_.max_weight();
  if (peak_rate <= 0.0) return;
  const double gap_hours = dev.rng.exponential(1.0 / peak_rate);
  const TimePoint candidate = engine_.now() + Hours(gap_hours);
  if (candidate >= window_end_) return;
  engine_.schedule_at(candidate, [this, &dev] {
    const TimePoint now = engine_.now();
    const double w = activity_.weight(tz_.local_weekday(now), tz_.local_hour(now));
    const double accept = w / activity_.max_weight();
    const bool active = !dev.workload.is_active || dev.workload.is_active(now);
    if (!active) {
      ++stats_.suppressed_inactive;
    } else if (dev.rng.bernoulli(accept)) {
      run_session(dev);
    }
    schedule_next_session(dev);
  });
}

std::size_t HomeTrafficGenerator::apply_favorites(DeviceState& dev, std::size_t domain_index) {
  const DomainInfo& chosen = catalog_.domain(domain_index);
  if (!chosen.whitelisted) return domain_index;  // tail visits stay random
  switch (chosen.category) {
    case DomainCategory::kVideoStreaming:
    case DomainCategory::kAudioStreaming:
    case DomainCategory::kSocial:
    case DomainCategory::kCloudSync:
    case DomainCategory::kEmail:
    case DomainCategory::kGaming:
      break;  // sticky categories: people subscribe to services
    default:
      return domain_index;
  }
  auto& favorites = dev.favorites[static_cast<int>(chosen.category)];
  if (favorites.empty()) {
    // One strong favourite per category (a household subscribes to *one*
    // primary streaming service — the Fig. 19 concentration); sometimes a
    // secondary one.
    const std::size_t want = dev.rng.bernoulli(0.35) ? 2 : 1;
    for (int attempts = 0; attempts < 12 && favorites.size() < want; ++attempts) {
      const std::size_t candidate = catalog_.sample_in_category(chosen.category, dev.rng);
      if (catalog_.domain(candidate).whitelisted) favorites.push_back(candidate);
    }
    if (favorites.empty()) favorites.push_back(domain_index);
  }
  if (dev.rng.bernoulli(0.90)) {
    // The first favourite dominates even when a second exists.
    if (favorites.size() == 1 || dev.rng.bernoulli(0.80)) return favorites.front();
    return favorites[1];
  }
  return domain_index;
}

void HomeTrafficGenerator::run_session(DeviceState& dev) {
  const AppType app = static_cast<AppType>(dev.rng.weighted_index(dev.workload.app_mix));
  SessionPlan plan = AppModel::PlanSession(app, catalog_, dev.rng);
  plan.domain_index = apply_favorites(dev, plan.domain_index);
  ++stats_.sessions;

  for (const FlowPlan& fp : plan.flows) {
    engine_.schedule_after(fp.start_offset, [this, &dev, plan, fp] {
      if (dev.workload.is_active && !dev.workload.is_active(engine_.now())) {
        ++stats_.suppressed_inactive;
        return;
      }
      open_flow(dev, plan, fp);
    });
  }
}

void HomeTrafficGenerator::open_flow(DeviceState& dev, const SessionPlan& plan,
                                     const FlowPlan& fp) {
  const TimePoint now = engine_.now();
  const DomainInfo& domain = catalog_.domain(plan.domain_index);

  // DNS lookup through the home's caching resolver; the gateway's passive
  // monitor samples the response.
  bool cache_hit = false;
  const net::DnsResponse response = resolver_.resolve(domain.name, now, &cache_hit);
  ++stats_.dns_queries;
  if (!cache_hit) sink_.on_dns(response, dev.workload.mac, now);
  const auto dst = response.address();
  if (!dst) return;  // NXDOMAIN — nothing to connect to

  FlowOpen open;
  open.id = net::FlowId{next_flow_id_++};
  open.lan_tuple = net::FiveTuple{dev.workload.ip, *dst, dev.next_ephemeral_port, fp.dst_port,
                                  fp.protocol};
  dev.next_ephemeral_port = dev.next_ephemeral_port >= 64000
                                ? static_cast<std::uint16_t>(20000)
                                : static_cast<std::uint16_t>(dev.next_ephemeral_port + 1);
  open.device_mac = dev.workload.mac;
  open.domain = domain.name;
  open.app = plan.app;
  open.opened = now;
  sink_.on_flow_open(open);
  ++stats_.flows;

  auto record = std::make_shared<net::FlowRecord>();
  record->id = open.id;
  record->tuple = open.lan_tuple;
  record->device_mac = open.device_mac;
  record->first_packet = now;
  record->last_packet = now;
  record->domain = domain.name;

  // Admit the dominant direction's demand; the grant scales both.
  const bool down_dominant = fp.bytes_down >= fp.bytes_up;
  const double demand =
      down_dominant ? fp.demand_down.bps : fp.demand_up.bps;
  const double granted = std::max(
      1e3, sink_.admit_rate(down_dominant ? net::Direction::kDownstream : net::Direction::kUpstream,
                            demand));
  const double scale = demand > 0.0 ? granted / demand : 1.0;
  const BitRate rate_down = Bps(std::max(1e3, fp.demand_down.bps * scale));
  const BitRate rate_up = Bps(std::max(1e3, fp.demand_up.bps * scale));

  // Long flows are transferred in on/off bursts; short ones in one burst.
  const double transfer_s =
      std::max(rate_down.seconds_for(fp.bytes_down), rate_up.seconds_for(fp.bytes_up));
  const bool bursty = transfer_s > 30.0;
  transfer(dev, std::move(record), fp.bytes_up, fp.bytes_down, rate_up, rate_down, bursty);
}

void HomeTrafficGenerator::transfer(DeviceState& dev, std::shared_ptr<net::FlowRecord> record,
                                    Bytes remaining_up, Bytes remaining_down, BitRate rate_up,
                                    BitRate rate_down, bool bursty) {
  const TimePoint now = engine_.now();
  if (remaining_up.count <= 0 && remaining_down.count <= 0) {
    record->last_packet = now;
    sink_.on_flow_close(*record);
    return;
  }
  // When a home goes dark mid-flow (router powered off), the flow ends.
  if (dev.workload.is_active && !dev.workload.is_active(now)) {
    record->last_packet = now;
    sink_.on_flow_close(*record);
    return;
  }

  // Burst rates: long flows fetch at the granted rate during ON bursts and
  // go quiet between them, so the average transfer rate is duty_cycle *
  // rate while the per-second peak the gateway meters is the full rate —
  // the streaming fetch pattern behind Fig. 14's spiky utilisation.
  const BitRate burst_up = rate_up;
  const BitRate burst_down = rate_down;

  // How long this burst runs: bounded by burst length and remaining bytes.
  double burst_s = bursty ? burst_len_.seconds() : 1e18;
  if (remaining_down.count > 0) {
    burst_s = std::min(burst_s, burst_down.seconds_for(remaining_down));
  }
  if (remaining_up.count > 0) {
    burst_s = std::min(burst_s, std::max(burst_up.seconds_for(remaining_up),
                                         remaining_down.count > 0 ? 0.0 : 0.0));
  }
  burst_s = std::clamp(burst_s, 0.02, 3600.0);

  FlowChunk chunk;
  chunk.id = record->id;
  chunk.start = now;
  chunk.duration = Seconds(burst_s);
  chunk.bytes_down =
      Bytes{std::min(remaining_down.count, burst_down.bytes_in(burst_s).count)};
  chunk.bytes_up = Bytes{std::min(remaining_up.count, burst_up.bytes_in(burst_s).count)};
  chunk.packets_down = PacketsFor(chunk.bytes_down);
  chunk.packets_up = PacketsFor(chunk.bytes_up);

  const double used_down = chunk.bytes_down.bits() / burst_s;
  const double used_up = chunk.bytes_up.bits() / burst_s;
  sink_.add_rate(net::Direction::kDownstream, used_down, now);
  sink_.add_rate(net::Direction::kUpstream, used_up, now);

  record->bytes_down += chunk.bytes_down;
  record->bytes_up += chunk.bytes_up;
  record->packets_down += chunk.packets_down;
  record->packets_up += chunk.packets_up;
  record->last_packet = now + chunk.duration;
  sink_.on_chunk(chunk);
  ++stats_.chunks;

  remaining_down = remaining_down - chunk.bytes_down;
  remaining_up = remaining_up - chunk.bytes_up;

  engine_.schedule_after(chunk.duration, [this, &dev, record, remaining_up, remaining_down,
                                          rate_up, rate_down, bursty, used_down, used_up] {
    const TimePoint t = engine_.now();
    sink_.remove_rate(net::Direction::kDownstream, used_down, t);
    sink_.remove_rate(net::Direction::kUpstream, used_up, t);
    if (remaining_up.count <= 0 && remaining_down.count <= 0) {
      record->last_packet = t;
      sink_.on_flow_close(*record);
      return;
    }
    // Off period between bursts keeps the average at the nominal demand.
    const double off_s =
        bursty ? burst_len_.seconds() * (1.0 - duty_cycle_) / duty_cycle_ : 0.0;
    engine_.schedule_after(Seconds(off_s), [this, &dev, record, remaining_up, remaining_down,
                                            rate_up, rate_down, bursty] {
      transfer(dev, record, remaining_up, remaining_down, rate_up, rate_down, bursty);
    });
  });
}

}  // namespace bismark::traffic
