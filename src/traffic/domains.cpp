#include "traffic/domains.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

namespace bismark::traffic {

namespace {
struct SeedDomain {
  std::string_view name;
  DomainCategory category;
};

// Modelled on the 2013 Alexa US top sites (the paper's default whitelist).
// Popularity weight decays with position; categories drive app affinity.
constexpr std::array<SeedDomain, 96> kSeedDomains = {{
    {"google.com", DomainCategory::kSearch},
    {"youtube.com", DomainCategory::kVideoStreaming},
    {"facebook.com", DomainCategory::kSocial},
    {"amazon.com", DomainCategory::kShopping},
    {"yahoo.com", DomainCategory::kPortal},
    {"wikipedia.org", DomainCategory::kPortal},
    {"twitter.com", DomainCategory::kSocial},
    {"apple.com", DomainCategory::kSoftwareUpdate},
    {"netflix.com", DomainCategory::kVideoStreaming},
    {"bing.com", DomainCategory::kSearch},
    {"ebay.com", DomainCategory::kShopping},
    {"linkedin.com", DomainCategory::kSocial},
    {"pinterest.com", DomainCategory::kSocial},
    {"msn.com", DomainCategory::kPortal},
    {"microsoft.com", DomainCategory::kSoftwareUpdate},
    {"tumblr.com", DomainCategory::kSocial},
    {"hulu.com", DomainCategory::kVideoStreaming},
    {"pandora.com", DomainCategory::kAudioStreaming},
    {"craigslist.org", DomainCategory::kPortal},
    {"paypal.com", DomainCategory::kShopping},
    {"cnn.com", DomainCategory::kNews},
    {"wordpress.com", DomainCategory::kPortal},
    {"imgur.com", DomainCategory::kSocial},
    {"blogspot.com", DomainCategory::kPortal},
    {"instagram.com", DomainCategory::kSocial},
    {"reddit.com", DomainCategory::kSocial},
    {"espn.com", DomainCategory::kNews},
    {"dropbox.com", DomainCategory::kCloudSync},
    {"nytimes.com", DomainCategory::kNews},
    {"imdb.com", DomainCategory::kPortal},
    {"aol.com", DomainCategory::kEmail},
    {"huffingtonpost.com", DomainCategory::kNews},
    {"weather.com", DomainCategory::kNews},
    {"bankofamerica.com", DomainCategory::kPortal},
    {"yelp.com", DomainCategory::kPortal},
    {"netflix-cdn.com", DomainCategory::kCdn},
    {"akamai.net", DomainCategory::kCdn},
    {"cloudfront.net", DomainCategory::kCdn},
    {"fbcdn.net", DomainCategory::kCdn},
    {"googlevideo.com", DomainCategory::kCdn},
    {"chase.com", DomainCategory::kPortal},
    {"walmart.com", DomainCategory::kShopping},
    {"bestbuy.com", DomainCategory::kShopping},
    {"target.com", DomainCategory::kShopping},
    {"etsy.com", DomainCategory::kShopping},
    {"github.com", DomainCategory::kPortal},
    {"stackoverflow.com", DomainCategory::kPortal},
    {"flickr.com", DomainCategory::kSocial},
    {"vimeo.com", DomainCategory::kVideoStreaming},
    {"twitch.tv", DomainCategory::kVideoStreaming},
    {"spotify.com", DomainCategory::kAudioStreaming},
    {"last.fm", DomainCategory::kAudioStreaming},
    {"gmail.com", DomainCategory::kEmail},
    {"outlook.com", DomainCategory::kEmail},
    {"mail.yahoo.com", DomainCategory::kEmail},
    {"icloud.com", DomainCategory::kCloudSync},
    {"drive.google.com", DomainCategory::kCloudSync},
    {"onedrive.com", DomainCategory::kCloudSync},
    {"box.com", DomainCategory::kCloudSync},
    {"steampowered.com", DomainCategory::kGaming},
    {"xboxlive.com", DomainCategory::kGaming},
    {"playstation.com", DomainCategory::kGaming},
    {"nintendo.com", DomainCategory::kGaming},
    {"riotgames.com", DomainCategory::kGaming},
    {"skype.com", DomainCategory::kVoip},
    {"vonage.com", DomainCategory::kVoip},
    {"windowsupdate.com", DomainCategory::kSoftwareUpdate},
    {"adobe.com", DomainCategory::kSoftwareUpdate},
    {"ubuntu.com", DomainCategory::kSoftwareUpdate},
    {"foxnews.com", DomainCategory::kNews},
    {"washingtonpost.com", DomainCategory::kNews},
    {"usatoday.com", DomainCategory::kNews},
    {"bbc.co.uk", DomainCategory::kNews},
    {"reuters.com", DomainCategory::kNews},
    {"bloomberg.com", DomainCategory::kNews},
    {"zillow.com", DomainCategory::kPortal},
    {"tripadvisor.com", DomainCategory::kPortal},
    {"expedia.com", DomainCategory::kPortal},
    {"groupon.com", DomainCategory::kShopping},
    {"ask.com", DomainCategory::kSearch},
    {"duckduckgo.com", DomainCategory::kSearch},
    {"wunderground.com", DomainCategory::kNews},
    {"accuweather.com", DomainCategory::kNews},
    {"nfl.com", DomainCategory::kNews},
    {"mlb.com", DomainCategory::kNews},
    {"deviantart.com", DomainCategory::kSocial},
    {"soundcloud.com", DomainCategory::kAudioStreaming},
    {"rhapsody.com", DomainCategory::kAudioStreaming},
    {"vevo.com", DomainCategory::kVideoStreaming},
    {"dailymotion.com", DomainCategory::kVideoStreaming},
    {"crackle.com", DomainCategory::kVideoStreaming},
    {"vudu.com", DomainCategory::kVideoStreaming},
    {"mozilla.org", DomainCategory::kSoftwareUpdate},
    {"speedtest.net", DomainCategory::kPortal},
    {"wikia.com", DomainCategory::kPortal},
    {"about.com", DomainCategory::kPortal},
}};

constexpr std::array<std::string_view, 14> kCategoryNames = {
    "search", "video", "audio", "social", "shopping", "news", "cloud-sync",
    "email",  "cdn",   "software-update", "gaming", "voip", "portal", "tail",
};
}  // namespace

std::string_view DomainCategoryName(DomainCategory c) {
  const auto idx = static_cast<std::size_t>(c);
  return idx < kCategoryNames.size() ? kCategoryNames[idx] : "?";
}

DomainCatalog DomainCatalog::BuildStandard(std::size_t tail_count, std::uint64_t seed) {
  DomainCatalog catalog;
  Rng rng(seed);

  // Seed whitelist: popularity decays like 1/rank^0.9 so a handful of
  // domains carry most visits (the Fig. 18/19 concentration).
  for (std::size_t i = 0; i < kSeedDomains.size(); ++i) {
    DomainInfo info;
    info.name = std::string(kSeedDomains[i].name);
    info.category = kSeedDomains[i].category;
    info.popularity = 1.0 / std::pow(static_cast<double>(i + 1), 0.9);
    info.whitelisted = true;
    catalog.domains_.push_back(std::move(info));
  }

  // Fill the whitelist out to ~200 entries with plausible long-tail sites.
  static constexpr std::array<DomainCategory, 6> kFillerCats = {
      DomainCategory::kPortal, DomainCategory::kNews,     DomainCategory::kShopping,
      DomainCategory::kSocial, DomainCategory::kVideoStreaming, DomainCategory::kPortal,
  };
  const std::size_t filler = 200 - kSeedDomains.size();
  for (std::size_t i = 0; i < filler; ++i) {
    DomainInfo info;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "popular-site-%03zu.com", i);
    info.name = buf;
    info.category = kFillerCats[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    const std::size_t rank = kSeedDomains.size() + i + 1;
    info.popularity = 1.0 / std::pow(static_cast<double>(rank), 0.9);
    info.whitelisted = true;
    catalog.domains_.push_back(std::move(info));
  }
  catalog.whitelist_size_ = catalog.domains_.size();

  // The unlisted tail: obscure sites, regional CDNs, and the "domains we
  // removed from the whitelist". Collectively these receive ~35 % of
  // traffic volume (Section 6.4: whitelisted traffic is ~65 % of total).
  for (std::size_t i = 0; i < tail_count; ++i) {
    DomainInfo info;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "tail-site-%04zu.net", i);
    info.name = buf;
    // Sprinkle some high-volume tail categories (unlisted video/CDN).
    const double r = rng.uniform();
    if (r < 0.12) {
      info.category = DomainCategory::kVideoStreaming;
    } else if (r < 0.25) {
      info.category = DomainCategory::kCdn;
    } else if (r < 0.4) {
      info.category = DomainCategory::kSocial;
    } else {
      info.category = DomainCategory::kTail;
    }
    info.popularity = 1.0 / std::pow(static_cast<double>(i + 10), 1.1);
    info.whitelisted = false;
    catalog.domains_.push_back(std::move(info));
  }
  return catalog;
}

bool DomainCatalog::is_whitelisted(const std::string& name) const {
  for (std::size_t i = 0; i < whitelist_size_; ++i) {
    if (domains_[i].name == name) return true;
  }
  return false;
}

std::vector<std::size_t> DomainCatalog::in_category(DomainCategory c) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    if (domains_[i].category == c) out.push_back(i);
  }
  return out;
}

std::size_t DomainCatalog::sample_in_category(DomainCategory c, Rng& rng) const {
  std::vector<std::size_t> candidates = in_category(c);
  if (candidates.empty()) return 0;
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (std::size_t idx : candidates) weights.push_back(domains_[idx].popularity);
  return candidates[rng.weighted_index(weights)];
}

void DomainCatalog::install_zones(net::ZoneCatalog& zones, std::uint64_t seed) const {
  Rng rng(seed);
  for (const auto& d : domains_) {
    // Video and CDN properties front their origin with a CDN CNAME, so the
    // firmware's DNS sampler sees realistic CNAME chains.
    const bool cdn_fronted =
        d.category == DomainCategory::kVideoStreaming || d.category == DomainCategory::kCdn;
    const int addr_count = cdn_fronted ? 4 : (rng.bernoulli(0.3) ? 2 : 1);
    std::vector<net::Ipv4Address> addrs;
    for (int i = 0; i < addr_count; ++i) {
      // Public space, deterministic per domain.
      addrs.emplace_back(static_cast<std::uint8_t>(23 + rng.uniform_int(0, 150)),
                         static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                         static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                         static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
    }
    if (cdn_fronted && d.name != "akamai.net") {
      const std::string edge = "edge-" + d.name;
      zones.add_cname(d.name, edge, Minutes(5));
      zones.add_domain(edge, std::move(addrs), Minutes(1));
    } else {
      zones.add_domain(d.name, std::move(addrs), Minutes(5));
    }
  }
}

}  // namespace bismark::traffic
