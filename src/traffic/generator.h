// Per-home traffic generation.
//
// Drives application sessions on every device of one home through the
// discrete-event engine: a session resolves its domain via the home's
// caching resolver, opens flows with app-specific shapes, transfers them
// as piecewise-constant-rate bursts (so the gateway can meter per-second
// peaks, Section 6.2), and reports everything to a TrafficSink — the
// gateway firmware implements that interface.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/rng.h"
#include "core/time.h"
#include "core/units.h"
#include "net/dns.h"
#include "net/flow.h"
#include "net/packet.h"
#include "sim/engine.h"
#include "traffic/apps.h"
#include "traffic/device_types.h"
#include "traffic/domains.h"

namespace bismark::traffic {

/// Metadata reported when a flow opens. The tuple is the LAN-side
/// (pre-NAT) view; the gateway translates it outbound.
struct FlowOpen {
  net::FlowId id;
  net::FiveTuple lan_tuple;
  net::MacAddress device_mac;
  std::string domain;  // queried name (pre-anonymisation); may be empty
  AppType app{AppType::kWebBrowsing};
  TimePoint opened;
};

/// One transfer burst of a flow: `bytes_*` move uniformly over
/// [start, start + duration].
struct FlowChunk {
  net::FlowId id;
  TimePoint start;
  Duration duration{0};
  Bytes bytes_up;
  Bytes bytes_down;
  std::uint32_t packets_up{0};
  std::uint32_t packets_down{0};
};

/// Receiver of generated traffic — implemented by the BISmark gateway.
/// Rate calls bracket each burst so the sink can meter instantaneous
/// aggregate throughput exactly (piecewise-constant rates).
class TrafficSink {
 public:
  virtual ~TrafficSink() = default;

  virtual void on_dns(const net::DnsResponse& response, net::MacAddress device,
                      TimePoint now) = 0;
  virtual void on_flow_open(const FlowOpen& open) = 0;
  virtual void on_chunk(const FlowChunk& chunk) = 0;
  virtual void on_flow_close(const net::FlowRecord& record) = 0;

  /// Ask how much of `demand_bps` the access link can grant right now in
  /// `dir` (processor-sharing approximation; may exceed capacity when the
  /// sink models a bufferbloated queue absorbing the excess).
  virtual double admit_rate(net::Direction dir, double demand_bps) = 0;
  /// Bracket an active burst's contribution to the aggregate rate.
  virtual void add_rate(net::Direction dir, double bps, TimePoint now) = 0;
  virtual void remove_rate(net::Direction dir, double bps, TimePoint now) = 0;
};

/// Hour-of-day activity weights, the substrate of the Fig. 13 diurnal
/// pattern: weekday evenings peak, weekends stay flat.
struct ActivityCurve {
  std::array<double, 24> weekday;
  std::array<double, 24> weekend;

  static ActivityCurve Residential();
  [[nodiscard]] double weight(Weekday day, int hour) const;
  [[nodiscard]] double max_weight() const;
};

/// Everything the generator needs to know about one device.
struct DeviceWorkload {
  net::MacAddress mac;
  net::Ipv4Address ip;
  DeviceType type{DeviceType::kLaptop};
  /// Household-level appetite multiplier; >1 for the home's primary device.
  double hunger_scale{1.0};
  /// Peak session arrivals per hour (scaled by the activity curve).
  double sessions_per_hour_peak{4.0};
  std::array<double, kAppTypeCount> app_mix{};
  /// Presence probe: true when the device is on the network and the home
  /// is online. Sessions are only started (and bursts only emitted) while
  /// this holds.
  std::function<bool(TimePoint)> is_active;
};

struct GeneratorStats {
  std::uint64_t sessions{0};
  std::uint64_t flows{0};
  std::uint64_t chunks{0};
  std::uint64_t dns_queries{0};
  std::uint64_t suppressed_inactive{0};
};

/// Generates the traffic of one home.
class HomeTrafficGenerator {
 public:
  HomeTrafficGenerator(sim::Engine& engine, const DomainCatalog& catalog,
                       net::DnsResolver& resolver, TrafficSink& sink, TimeZone tz, Rng rng);

  void add_device(DeviceWorkload workload);

  /// Arm session scheduling over [begin, end).
  void start(TimePoint begin, TimePoint end);

  [[nodiscard]] const GeneratorStats& stats() const { return stats_; }
  [[nodiscard]] const ActivityCurve& activity() const { return activity_; }
  void set_activity(const ActivityCurve& curve) { activity_ = curve; }

  /// Burst sub-division: long flows transfer in on/off bursts of roughly
  /// this length (duty cycle below), which is what creates measurable
  /// per-second peaks above the mean rate.
  void set_burst_params(Duration burst_len, double duty_cycle);

 private:
  struct DeviceState {
    DeviceWorkload workload;
    Rng rng{0};
    std::uint16_t next_ephemeral_port{20000};
    /// Per-device favourite domains per category: a Roku streams from its
    /// two subscribed services, not from a fresh draw each session — the
    /// stickiness behind Fig. 20's per-device fingerprints.
    std::map<int, std::vector<std::size_t>> favorites;
  };

  sim::Engine& engine_;
  const DomainCatalog& catalog_;
  net::DnsResolver& resolver_;
  TrafficSink& sink_;
  TimeZone tz_;
  Rng rng_;
  ActivityCurve activity_;
  std::vector<std::unique_ptr<DeviceState>> devices_;
  TimePoint window_end_{};
  GeneratorStats stats_;
  std::uint64_t next_flow_id_{1};
  Duration burst_len_{Seconds(8).ms};
  double duty_cycle_{0.55};

  void schedule_next_session(DeviceState& dev);
  void run_session(DeviceState& dev);
  std::size_t apply_favorites(DeviceState& dev, std::size_t domain_index);
  void open_flow(DeviceState& dev, const SessionPlan& plan, const FlowPlan& fp);
  void transfer(DeviceState& dev, std::shared_ptr<net::FlowRecord> record, Bytes remaining_up,
                Bytes remaining_down, BitRate rate_up, BitRate rate_down, bool bursty);
};

}  // namespace bismark::traffic
