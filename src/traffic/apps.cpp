#include "traffic/apps.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace bismark::traffic {

namespace {
constexpr std::array<std::string_view, kAppTypeCount> kAppNames = {
    "web-browsing", "video-streaming", "audio-streaming", "social-media",
    "cloud-sync",   "email",           "software-update", "online-gaming",
    "voip",         "bulk-upload",     "iot-telemetry",
};

/// Domain-category weights per app. Order matches DomainCategory.
struct CategoryAffinity {
  DomainCategory primary;
  DomainCategory secondary;
  double secondary_prob;
};

CategoryAffinity AffinityFor(AppType app) {
  switch (app) {
    case AppType::kWebBrowsing: return {DomainCategory::kPortal, DomainCategory::kSearch, 0.35};
    case AppType::kVideoStreaming:
      return {DomainCategory::kVideoStreaming, DomainCategory::kCdn, 0.15};
    case AppType::kAudioStreaming:
      return {DomainCategory::kAudioStreaming, DomainCategory::kCdn, 0.1};
    case AppType::kSocialMedia: return {DomainCategory::kSocial, DomainCategory::kCdn, 0.2};
    case AppType::kCloudSync: return {DomainCategory::kCloudSync, DomainCategory::kCloudSync, 0.0};
    case AppType::kEmail: return {DomainCategory::kEmail, DomainCategory::kEmail, 0.0};
    case AppType::kSoftwareUpdate:
      return {DomainCategory::kSoftwareUpdate, DomainCategory::kCdn, 0.3};
    case AppType::kOnlineGaming: return {DomainCategory::kGaming, DomainCategory::kGaming, 0.0};
    case AppType::kVoip: return {DomainCategory::kVoip, DomainCategory::kVoip, 0.0};
    case AppType::kBulkUpload: return {DomainCategory::kCloudSync, DomainCategory::kTail, 0.5};
    case AppType::kIotTelemetry: return {DomainCategory::kTail, DomainCategory::kTail, 0.0};
  }
  return {DomainCategory::kPortal, DomainCategory::kPortal, 0.0};
}

Bytes DrawLognormalBytes(Rng& rng, double median_bytes, double sigma, double cap_bytes) {
  const double v = rng.lognormal(std::log(median_bytes), sigma);
  return Bytes{static_cast<std::int64_t>(std::min(v, cap_bytes))};
}
}  // namespace

std::string_view AppTypeName(AppType t) {
  const auto idx = static_cast<std::size_t>(t);
  return idx < kAppNames.size() ? kAppNames[idx] : "?";
}

Bytes SessionPlan::total_down() const {
  Bytes total;
  for (const auto& f : flows) total += f.bytes_down;
  return total;
}

Bytes SessionPlan::total_up() const {
  Bytes total;
  for (const auto& f : flows) total += f.bytes_up;
  return total;
}

double AppModel::TailProbability(AppType app) {
  switch (app) {
    case AppType::kWebBrowsing: return 0.28;   // long tail of small sites
    case AppType::kVideoStreaming: return 0.12; // unlisted video/CDN hosts
    case AppType::kAudioStreaming: return 0.10;
    case AppType::kSocialMedia: return 0.12;
    case AppType::kCloudSync: return 0.05;
    case AppType::kEmail: return 0.15;
    case AppType::kSoftwareUpdate: return 0.35;  // vendor CDNs
    case AppType::kOnlineGaming: return 0.30;
    case AppType::kVoip: return 0.20;
    case AppType::kBulkUpload: return 0.50;
    case AppType::kIotTelemetry: return 0.90;
  }
  return 0.3;
}

SessionPlan AppModel::PlanSession(AppType app, const DomainCatalog& catalog, Rng& rng) {
  SessionPlan plan;
  plan.app = app;

  // Pick the domain: category affinity, with a chance of landing in the
  // unlisted tail of the same category.
  CategoryAffinity affinity = AffinityFor(app);
  DomainCategory cat = affinity.primary;
  if (affinity.secondary_prob > 0.0 && rng.bernoulli(affinity.secondary_prob)) {
    cat = affinity.secondary;
  }
  std::size_t domain = catalog.sample_in_category(cat, rng);
  if (rng.bernoulli(TailProbability(app))) {
    // Re-draw restricted to unlisted domains of a tail-ish category.
    const DomainCategory tail_cat = (cat == DomainCategory::kVideoStreaming ||
                                     cat == DomainCategory::kCdn)
                                        ? cat
                                        : DomainCategory::kTail;
    auto candidates = catalog.in_category(tail_cat);
    std::vector<std::size_t> unlisted;
    for (std::size_t idx : candidates) {
      if (!catalog.domain(idx).whitelisted) unlisted.push_back(idx);
    }
    if (!unlisted.empty()) {
      domain = unlisted[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(unlisted.size()) - 1))];
    }
  }
  plan.domain_index = domain;

  switch (app) {
    case AppType::kWebBrowsing: {
      // Many short connections, few bytes each: a page visit plus assets.
      const int flows = static_cast<int>(rng.uniform_int(4, 24));
      Duration offset{0};
      for (int i = 0; i < flows; ++i) {
        FlowPlan f;
        f.bytes_down = DrawLognormalBytes(rng, 60e3, 1.2, 8e6);
        f.bytes_up = Bytes{static_cast<std::int64_t>(2e3 + rng.uniform(0, 8e3))};
        f.demand_down = Mbps(rng.uniform(3.0, 12.0));
        f.demand_up = Kbps(200);
        f.dst_port = rng.bernoulli(0.6) ? 80 : 443;
        f.start_offset = offset;
        offset += Seconds(rng.exponential(4.0));
        plan.flows.push_back(f);
      }
      break;
    }
    case AppType::kVideoStreaming: {
      // One or two long-running connections carrying hundreds of MB.
      const int flows = rng.bernoulli(0.3) ? 2 : 1;
      // Watch time 15 min – 2.5 h; 2013-era play-out rates (SD through
      // early HD) of 1.2–4.5 Mbps.
      const double watch_s = rng.uniform(900.0, 6600.0);
      const double rate_bps = rng.uniform(1.2e6, 4.5e6);
      for (int i = 0; i < flows; ++i) {
        FlowPlan f;
        const double share = flows == 1 ? 1.0 : (i == 0 ? 0.85 : 0.15);
        f.bytes_down = Bytes{static_cast<std::int64_t>(watch_s * rate_bps / 8.0 * share)};
        f.bytes_up = Bytes{static_cast<std::int64_t>(f.bytes_down.count * 0.012)};
        // Streaming fetches in bursts faster than the play-out rate; the
        // generator duty-cycles long flows, so the *average* lands near
        // the play-out rate while bursts peak at this demand.
        f.demand_down = Bps(rate_bps * rng.uniform(1.15, 1.55) * share);
        f.demand_up = Kbps(120);
        f.dst_port = 443;
        f.start_offset = Seconds(static_cast<double>(i) * 2.0);
        plan.flows.push_back(f);
      }
      break;
    }
    case AppType::kAudioStreaming: {
      FlowPlan f;
      const double listen_s = rng.uniform(600.0, 7200.0);
      const double rate_bps = rng.uniform(96e3, 320e3);
      f.bytes_down = Bytes{static_cast<std::int64_t>(listen_s * rate_bps / 8.0)};
      f.bytes_up = Bytes{static_cast<std::int64_t>(f.bytes_down.count * 0.02)};
      f.demand_down = Bps(rate_bps * 1.5);
      f.demand_up = Kbps(32);
      f.dst_port = 443;
      plan.flows.push_back(f);
      break;
    }
    case AppType::kSocialMedia: {
      const int flows = static_cast<int>(rng.uniform_int(3, 14));
      Duration offset{0};
      for (int i = 0; i < flows; ++i) {
        FlowPlan f;
        f.bytes_down = DrawLognormalBytes(rng, 150e3, 1.4, 30e6);  // photos, short clips
        f.bytes_up = DrawLognormalBytes(rng, 4e3, 1.0, 5e6);
        f.demand_down = Mbps(rng.uniform(2.0, 10.0));
        f.demand_up = Kbps(300);
        f.dst_port = 443;
        f.start_offset = offset;
        offset += Seconds(rng.exponential(10.0));
        plan.flows.push_back(f);
      }
      break;
    }
    case AppType::kCloudSync: {
      // Upload-dominated; occasionally a large photo/video library push.
      const int flows = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < flows; ++i) {
        FlowPlan f;
        f.bytes_up = DrawLognormalBytes(rng, 8e6, 1.8, 2e9);
        f.bytes_down = Bytes{static_cast<std::int64_t>(f.bytes_up.count * 0.05)};
        f.demand_up = Mbps(rng.uniform(1.0, 6.0));
        f.demand_down = Mbps(1.0);
        f.dst_port = 443;
        f.start_offset = Seconds(static_cast<double>(i) * 5.0);
        plan.flows.push_back(f);
      }
      break;
    }
    case AppType::kEmail: {
      const int flows = static_cast<int>(rng.uniform_int(1, 4));
      for (int i = 0; i < flows; ++i) {
        FlowPlan f;
        f.bytes_down = DrawLognormalBytes(rng, 40e3, 1.3, 20e6);
        f.bytes_up = DrawLognormalBytes(rng, 8e3, 1.5, 20e6);
        f.demand_down = Mbps(3.0);
        f.demand_up = Mbps(1.0);
        f.dst_port = rng.bernoulli(0.5) ? 993 : 443;
        f.start_offset = Seconds(static_cast<double>(i));
        plan.flows.push_back(f);
      }
      break;
    }
    case AppType::kSoftwareUpdate: {
      FlowPlan f;
      f.bytes_down = DrawLognormalBytes(rng, 60e6, 1.2, 1.5e9);
      f.bytes_up = Bytes{static_cast<std::int64_t>(f.bytes_down.count * 0.01)};
      f.demand_down = Mbps(rng.uniform(4.0, 20.0));
      f.demand_up = Kbps(200);
      f.dst_port = 80;
      plan.flows.push_back(f);
      break;
    }
    case AppType::kOnlineGaming: {
      // A low-rate long session plus a possible content download.
      FlowPlan game;
      const double play_s = rng.uniform(1800.0, 10800.0);
      game.bytes_down = Bytes{static_cast<std::int64_t>(play_s * 40e3 / 8.0)};
      game.bytes_up = Bytes{static_cast<std::int64_t>(play_s * 25e3 / 8.0)};
      game.demand_down = Kbps(60);
      game.demand_up = Kbps(40);
      game.protocol = net::Protocol::kUdp;
      game.dst_port = 3074;
      plan.flows.push_back(game);
      if (rng.bernoulli(0.15)) {
        FlowPlan patch;
        patch.bytes_down = DrawLognormalBytes(rng, 300e6, 1.0, 6e9);
        patch.bytes_up = Bytes{static_cast<std::int64_t>(patch.bytes_down.count * 0.005)};
        patch.demand_down = Mbps(rng.uniform(5.0, 25.0));
        patch.demand_up = Kbps(100);
        patch.dst_port = 80;
        plan.flows.push_back(patch);
      }
      break;
    }
    case AppType::kVoip: {
      FlowPlan f;
      const double call_s = rng.uniform(120.0, 2400.0);
      f.bytes_down = Bytes{static_cast<std::int64_t>(call_s * 80e3 / 8.0)};
      f.bytes_up = f.bytes_down;
      f.demand_down = Kbps(80);
      f.demand_up = Kbps(80);
      f.protocol = net::Protocol::kUdp;
      f.dst_port = 5060;
      plan.flows.push_back(f);
      break;
    }
    case AppType::kBulkUpload: {
      // The science-data uploader of Fig. 16a: a sustained upload whose
      // LAN-side demand exceeds the shaped uplink (bufferbloat overdrive).
      FlowPlan f;
      const double push_s = rng.uniform(1800.0, 14400.0);
      const double rate_bps = rng.uniform(2e6, 5e6);
      f.bytes_up = Bytes{static_cast<std::int64_t>(push_s * rate_bps / 8.0)};
      f.bytes_down = Bytes{static_cast<std::int64_t>(f.bytes_up.count * 0.02)};
      f.demand_up = Bps(rate_bps);
      f.demand_down = Kbps(200);
      f.dst_port = 22;
      plan.flows.push_back(f);
      break;
    }
    case AppType::kIotTelemetry: {
      FlowPlan f;
      f.bytes_up = Bytes{static_cast<std::int64_t>(rng.uniform(2e3, 40e3))};
      f.bytes_down = Bytes{static_cast<std::int64_t>(rng.uniform(1e3, 10e3))};
      f.demand_up = Kbps(64);
      f.demand_down = Kbps(64);
      f.dst_port = 8883;
      plan.flows.push_back(f);
      break;
    }
  }
  return plan;
}

Bytes AppModel::ApproxMeanVolume(AppType app) {
  switch (app) {
    case AppType::kWebBrowsing: return MB(2.5);
    case AppType::kVideoStreaming: return MB(1800);
    case AppType::kAudioStreaming: return MB(90);
    case AppType::kSocialMedia: return MB(3);
    case AppType::kCloudSync: return MB(40);
    case AppType::kEmail: return MB(0.2);
    case AppType::kSoftwareUpdate: return MB(70);
    case AppType::kOnlineGaming: return MB(80);
    case AppType::kVoip: return MB(20);
    case AppType::kBulkUpload: return MB(1500);
    case AppType::kIotTelemetry: return KB(30);
  }
  return MB(1);
}

}  // namespace bismark::traffic
