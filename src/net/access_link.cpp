#include "net/access_link.h"

#include <algorithm>

namespace bismark::net {

AccessLink::AccessLink(AccessLinkConfig config) : config_(config) {}

BitRate AccessLink::capacity(Direction dir) const {
  return dir == Direction::kUpstream ? config_.up_capacity : config_.down_capacity;
}

double AccessLink::admit(Direction dir, double demand_bps) const {
  const double cap = capacity(dir).bps;
  const double active = state(dir).active_bps;
  double available = cap - active;
  if (dir == Direction::kUpstream && config_.allow_uplink_overdrive) {
    // The modem buffer lets senders pump past the shaped rate.
    available = cap * (1.0 + config_.overdrive_headroom) - active;
  }
  // Late arrivals still get a processor-sharing floor rather than zero:
  // TCP would squeeze existing flows. 15 % of capacity approximates the
  // fair share without a full fluid reallocation.
  const double floor = cap * 0.15;
  return std::clamp(demand_bps, 0.0, std::max(available, floor));
}

void AccessLink::add_rate(Direction dir, double bps, TimePoint now) {
  integrate_queue(now);
  DirectionState& s = state(dir);
  s.active_bps += bps;
  s.peak_bps = std::max(s.peak_bps, s.active_bps);
}

void AccessLink::remove_rate(Direction dir, double bps, TimePoint now) {
  integrate_queue(now);
  DirectionState& s = state(dir);
  s.active_bps = std::max(0.0, s.active_bps - bps);
}

double AccessLink::active_rate(Direction dir) const { return state(dir).active_bps; }

double AccessLink::utilization(Direction dir) const {
  const double cap = capacity(dir).bps;
  return cap > 0.0 ? state(dir).active_bps / cap : 0.0;
}

Duration AccessLink::uplink_queueing_delay() const {
  const double cap = config_.up_capacity.bps;
  if (cap <= 0.0) return Duration{0};
  return Seconds(queue_depth_.bits() / cap);
}

void AccessLink::integrate_queue(TimePoint now) {
  if (last_queue_update_.ms == 0) {
    last_queue_update_ = now;
    return;
  }
  const double dt = (now - last_queue_update_).seconds();
  last_queue_update_ = now;
  if (dt <= 0.0) return;
  const double arrival = up_.active_bps;
  const double drain = config_.up_capacity.bps;
  const double delta_bytes = (arrival - drain) * dt / 8.0;
  double depth = static_cast<double>(queue_depth_.count) + delta_bytes;
  if (depth < 0.0) depth = 0.0;
  const double max_depth = static_cast<double>(config_.uplink_buffer.count);
  if (depth > max_depth) {
    queue_drops_ += static_cast<std::uint64_t>((depth - max_depth) / 1500.0) + 1;
    depth = max_depth;
  }
  queue_depth_ = Bytes{static_cast<std::int64_t>(depth)};
}

BitRate AccessLink::probe_capacity(Direction dir, Rng& rng) const {
  const double cap = capacity(dir).bps;
  // Cross-traffic during the packet train lowers the dispersion estimate.
  const double busy = std::min(1.0, state(dir).active_bps / std::max(cap, 1.0));
  const double cross_bias = 1.0 - 0.5 * busy;
  const double noise = std::clamp(rng.normal(1.0, config_.probe_noise), 0.85, 1.1);
  return Bps(cap * cross_bias * noise);
}

}  // namespace bismark::net
