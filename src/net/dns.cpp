#include "net/dns.h"

namespace bismark::net {

std::optional<Ipv4Address> DnsResponse::address() const {
  for (const auto& r : records) {
    if (r.type == DnsRecordType::kA) return r.address;
  }
  return std::nullopt;
}

std::string DnsResponse::canonical_name() const {
  std::string name = query;
  for (const auto& r : records) {
    if (r.type == DnsRecordType::kCname && r.name == name) name = r.target;
  }
  return name;
}

void ZoneCatalog::add_domain(const std::string& domain, std::vector<Ipv4Address> addresses,
                             Duration ttl) {
  Zone z;
  z.addresses = std::move(addresses);
  z.ttl = ttl;
  zones_[domain] = std::move(z);
}

void ZoneCatalog::add_cname(const std::string& domain, const std::string& target, Duration ttl) {
  Zone z;
  z.cname = target;
  z.ttl = ttl;
  zones_[domain] = std::move(z);
}

DnsResponse ZoneCatalog::resolve(const std::string& domain, int max_chain) const {
  DnsResponse resp;
  resp.query = domain;
  std::string current = domain;
  for (int depth = 0; depth <= max_chain; ++depth) {
    const auto it = zones_.find(current);
    if (it == zones_.end()) {
      resp.nxdomain = true;
      return resp;
    }
    const Zone& z = it->second;
    if (!z.cname.empty()) {
      resp.records.push_back(
          DnsRecord{DnsRecordType::kCname, current, z.cname, Ipv4Address{}, z.ttl});
      current = z.cname;
      continue;
    }
    for (const auto& addr : z.addresses) {
      resp.records.push_back(DnsRecord{DnsRecordType::kA, current, {}, addr, z.ttl});
    }
    return resp;
  }
  // CNAME chain too long — treat as resolution failure.
  resp.nxdomain = true;
  resp.records.clear();
  return resp;
}

bool ZoneCatalog::contains(const std::string& domain) const { return zones_.contains(domain); }

DnsResolver::DnsResolver(const ZoneCatalog& catalog) : catalog_(&catalog) {}

DnsResponse DnsResolver::resolve(const std::string& domain, TimePoint now, bool* cache_hit) {
  const auto it = cache_.find(domain);
  if (it != cache_.end() && it->second.expires > now) {
    ++hits_;
    if (cache_hit) *cache_hit = true;
    return it->second.response;
  }
  ++misses_;
  if (cache_hit) *cache_hit = false;
  DnsResponse resp = catalog_->resolve(domain);
  if (!resp.nxdomain && !resp.records.empty()) {
    Duration min_ttl = resp.records.front().ttl;
    for (const auto& r : resp.records) min_ttl = std::min(min_ttl, r.ttl);
    cache_[domain] = CacheEntry{resp, now + min_ttl};
  }
  return resp;
}

}  // namespace bismark::net
