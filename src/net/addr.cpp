#include "net/addr.h"

#include <cstdio>

namespace bismark::net {

namespace {
// 64-bit mix for MAC anonymisation (splitmix64 finaliser).
std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::optional<int> HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return std::nullopt;
}
}  // namespace

std::optional<MacAddress> MacAddress::Parse(std::string_view text) {
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    const std::size_t pos = static_cast<std::size_t>(i) * 3;
    const auto hi = HexVal(text[pos]);
    const auto lo = HexVal(text[pos + 1]);
    if (!hi || !lo) return std::nullopt;
    if (i < 5 && text[pos + 2] != ':') return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((*hi << 4) | *lo);
  }
  return MacAddress(octets);
}

MacAddress MacAddress::anonymized(std::uint64_t key) const {
  const std::uint32_t hashed_nic =
      static_cast<std::uint32_t>(Mix64(key ^ as_u64())) & 0xffffffu;
  return FromParts(oui(), hashed_nic);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  std::uint32_t value = 0;
  int octets = 0;
  std::uint32_t current = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<std::uint32_t>(c - '0');
      if (current > 255) return std::nullopt;
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || octets >= 3) return std::nullopt;
      value = (value << 8) | current;
      current = 0;
      have_digit = false;
      ++octets;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || octets != 3) return std::nullopt;
  value = (value << 8) | current;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace bismark::net
