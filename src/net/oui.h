// MAC OUI → manufacturer registry.
//
// Figure 12 classifies devices seen in the Traffic data set by manufacturer
// (Apple, ODM, Intel, Smart Phone, Samsung, Gateway, …). We embed a small
// registry of real OUI assignments covering every class the paper reports,
// plus the classification of manufacturers into those classes (including
// the paper's footnote 5 groupings).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/addr.h"

namespace bismark::net {

/// The manufacturer classes of Fig. 12, in the paper's presentation order.
enum class VendorClass : int {
  kApple = 0,
  kOdm,          // original device manufacturers: Compal, Hon Hai, Quanta, ...
  kIntel,
  kSmartPhone,   // HTC, LG, Motorola, Nokia, Murata
  kSamsung,
  kGateway,      // TP-Link, Realtek, Liteon, D-Link, Cisco-Linksys, Belkin, Askey
  kAsus,
  kMisc,         // Polycom, Prolifix, Pegatron
  kMicrosoft,
  kInternetTv,   // Roku, TiVo, ASRock
  kGaming,       // Nintendo, Mitsumi
  kWirelessCard, // AzureWave, GainSpan
  kVoip,         // UniData
  kHewlettPackard,
  kHardware,     // Giga-Byte, Microchip
  kVmware,
  kRaspberryPi,
  kPrinter,      // Epson (footnote 5)
  kUnknown,
};

[[nodiscard]] std::string_view VendorClassName(VendorClass c);
[[nodiscard]] std::size_t VendorClassCount();

struct OuiEntry {
  std::uint32_t oui;
  std::string_view manufacturer;
  VendorClass vendor_class;
};

/// Lookup service over the embedded registry.
class OuiRegistry {
 public:
  /// The process-wide registry (immutable after construction).
  static const OuiRegistry& Instance();

  /// Manufacturer name for a MAC, or nullopt if the OUI is unregistered.
  [[nodiscard]] std::optional<std::string_view> manufacturer(MacAddress mac) const;
  /// Vendor class for a MAC (kUnknown for unregistered OUIs).
  [[nodiscard]] VendorClass classify(MacAddress mac) const;

  /// All OUIs registered for a manufacturer class (used by the simulator to
  /// mint realistic MACs for synthetic devices).
  [[nodiscard]] std::vector<std::uint32_t> ouis_for(VendorClass c) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  OuiRegistry();
  std::vector<OuiEntry> entries_;  // sorted by oui
};

}  // namespace bismark::net
