#include "net/flow.h"

namespace bismark::net {

void FlowRecord::add_packet(const Packet& p) {
  if (total_packets() == 0 || p.timestamp < first_packet) first_packet = p.timestamp;
  if (p.timestamp > last_packet) last_packet = p.timestamp;
  if (p.direction == Direction::kUpstream) {
    bytes_up += p.size;
    ++packets_up;
  } else {
    bytes_down += p.size;
    ++packets_down;
  }
}

}  // namespace bismark::net
