#include "net/pcap.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "core/io.h"

namespace bismark::net {
namespace {

void PutLe16(std::span<std::byte> out, std::size_t off, std::uint16_t v) {
  out[off] = static_cast<std::byte>(v & 0xff);
  out[off + 1] = static_cast<std::byte>(v >> 8);
}

void PutLe32(std::span<std::byte> out, std::size_t off, std::uint32_t v) {
  out[off] = static_cast<std::byte>(v & 0xff);
  out[off + 1] = static_cast<std::byte>(v >> 8 & 0xff);
  out[off + 2] = static_cast<std::byte>(v >> 16 & 0xff);
  out[off + 3] = static_cast<std::byte>(v >> 24);
}

}  // namespace

void PcapBuffer::capture(TimePoint ts, int home, std::span<const std::byte> frame) {
  PcapRecord rec;
  rec.timestamp = ts;
  rec.home = home;
  rec.seq = next_seq_++;
  rec.offset = static_cast<std::uint32_t>(bytes_.size());
  rec.length = static_cast<std::uint32_t>(frame.size());
  bytes_.insert(bytes_.end(), frame.begin(), frame.end());
  records_.push_back(rec);
}

void EncodePcapFileHeader(std::span<std::byte> out) {
  PutLe32(out, 0, kPcapMagic);
  PutLe16(out, 4, kPcapVersionMajor);
  PutLe16(out, 6, kPcapVersionMinor);
  PutLe32(out, 8, 0);   // thiszone
  PutLe32(out, 12, 0);  // sigfigs
  PutLe32(out, 16, kPcapSnapLen);
  PutLe32(out, 20, kPcapLinkTypeEthernet);
}

void EncodePcapRecordHeader(std::span<std::byte> out, TimePoint ts,
                            std::uint32_t frame_bytes) {
  PutLe32(out, 0, static_cast<std::uint32_t>(ts.ms / 1000));
  PutLe32(out, 4, static_cast<std::uint32_t>(ts.ms % 1000) * 1000);  // µs
  PutLe32(out, 8, frame_bytes);   // incl_len: whole frames are captured
  PutLe32(out, 12, frame_bytes);  // orig_len
}

std::size_t WritePcapFile(const std::string& path,
                          std::span<const PcapBuffer* const> shard_buffers) {
  // Gather (shard, record) pairs and impose the canonical order. A stable
  // sort on (timestamp, home, shard, seq) makes the output independent of
  // which worker ran which shard, exactly like the record merge.
  struct Entry {
    const PcapBuffer* buf;
    const PcapRecord* rec;
    std::size_t shard;
  };
  std::vector<Entry> entries;
  for (std::size_t s = 0; s < shard_buffers.size(); ++s) {
    const PcapBuffer* buf = shard_buffers[s];
    if (buf == nullptr) continue;
    for (const PcapRecord& rec : buf->records()) entries.push_back({buf, &rec, s});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.rec->timestamp.ms, a.rec->home, a.shard, a.rec->seq) <
           std::tie(b.rec->timestamp.ms, b.rec->home, b.shard, b.rec->seq);
  });

  core::CheckedFile file;
  if (!file.open(path)) throw std::runtime_error("pcap: " + file.error());
  std::byte header[kPcapFileHeaderBytes];
  EncodePcapFileHeader(header);
  file.write(header, sizeof header);
  for (const Entry& e : entries) {
    std::byte rec_header[kPcapRecordHeaderBytes];
    EncodePcapRecordHeader(rec_header, e.rec->timestamp, e.rec->length);
    file.write(rec_header, sizeof rec_header);
    auto frame = e.buf->frame_bytes(*e.rec);
    file.write(frame.data(), frame.size());
  }
  if (!file.close()) throw std::runtime_error("pcap: " + file.error());
  std::size_t body = 0;
  for (const Entry& e : entries) body += kPcapRecordHeaderBytes + e.rec->length;
  return kPcapFileHeaderBytes + body;
}

}  // namespace bismark::net
