#include "net/oui.h"

#include <algorithm>
#include <array>

namespace bismark::net {

namespace {
// A representative slice of the IEEE OUI registry covering every vendor
// class the paper reports in Fig. 12 / footnote 5. OUIs are real
// assignments (hex, top 24 bits of the MAC).
constexpr std::array<OuiEntry, 72> kEntries = {{
    // Apple
    {0x001EC2, "Apple", VendorClass::kApple},
    {0x0023DF, "Apple", VendorClass::kApple},
    {0x7CD1C3, "Apple", VendorClass::kApple},
    {0xD89E3F, "Apple", VendorClass::kApple},
    {0xF0B479, "Apple", VendorClass::kApple},
    {0x28CFDA, "Apple", VendorClass::kApple},
    // ODMs
    {0x001E68, "Quanta", VendorClass::kOdm},
    {0x00266C, "Hon Hai Precision", VendorClass::kOdm},
    {0x0026B6, "Askey Computer (ODM)", VendorClass::kOdm},
    {0xF0DEF1, "Compal", VendorClass::kOdm},
    {0x1C7508, "Compal Information", VendorClass::kOdm},
    {0x0016D4, "Compal Communications", VendorClass::kOdm},
    {0x88532E, "Universal Global Scientific", VendorClass::kOdm},
    {0x30144A, "Wistron Infocomm", VendorClass::kOdm},
    // Intel
    {0x001B77, "Intel", VendorClass::kIntel},
    {0x0024D7, "Intel", VendorClass::kIntel},
    {0x8086F2, "Intel", VendorClass::kIntel},
    {0x606720, "Intel", VendorClass::kIntel},
    // Smart phones
    {0x002376, "HTC", VendorClass::kSmartPhone},
    {0x38E7D8, "HTC", VendorClass::kSmartPhone},
    {0x001EB2, "LG Electronics", VendorClass::kSmartPhone},
    {0x40B0FA, "LG Electronics", VendorClass::kSmartPhone},
    {0x001A1B, "Motorola Mobility", VendorClass::kSmartPhone},
    {0x0025CF, "Nokia", VendorClass::kSmartPhone},
    {0x0013E0, "Murata Manufacturing", VendorClass::kSmartPhone},
    {0x5C0A5B, "Murata Manufacturing", VendorClass::kSmartPhone},
    // Samsung
    {0x002399, "Samsung Electronics", VendorClass::kSamsung},
    {0x38AA3C, "Samsung Electronics", VendorClass::kSamsung},
    {0x5C497D, "Samsung Electronics", VendorClass::kSamsung},
    {0xE8508B, "Samsung Electronics", VendorClass::kSamsung},
    // Gateways
    {0x14144B, "TP-Link", VendorClass::kGateway},
    {0x00E04C, "Realtek", VendorClass::kGateway},
    {0x001D60, "Liteon", VendorClass::kGateway},
    {0x001195, "D-Link", VendorClass::kGateway},
    {0x001A70, "Cisco-Linksys", VendorClass::kGateway},
    {0x001150, "Belkin", VendorClass::kGateway},
    {0x0030AB, "Askey Computer", VendorClass::kGateway},
    // Asus
    {0x00248C, "ASUSTek", VendorClass::kAsus},
    {0x50465D, "ASUSTek", VendorClass::kAsus},
    {0xBCEE7B, "ASUSTek", VendorClass::kAsus},
    // Misc
    {0x0004F2, "Polycom", VendorClass::kMisc},
    {0x00163E, "Prolifix", VendorClass::kMisc},
    {0x10C37B, "Pegatron", VendorClass::kMisc},
    // Microsoft (possibly Xbox)
    {0x0017FA, "Microsoft", VendorClass::kMicrosoft},
    {0x7CED8D, "Microsoft", VendorClass::kMicrosoft},
    // Internet TV
    {0x000D4B, "Roku", VendorClass::kInternetTv},
    {0xB0A737, "Roku", VendorClass::kInternetTv},
    {0x001180, "TiVo", VendorClass::kInternetTv},
    {0xD05099, "ASRock", VendorClass::kInternetTv},
    // Gaming
    {0x0009BF, "Nintendo", VendorClass::kGaming},
    {0x002709, "Nintendo", VendorClass::kGaming},
    {0x0005C2, "Mitsumi", VendorClass::kGaming},
    // Wireless cards
    {0x74F06D, "AzureWave", VendorClass::kWirelessCard},
    {0x00B338, "GainSpan", VendorClass::kWirelessCard},
    // VoIP
    {0x00265F, "UniData Communication", VendorClass::kVoip},
    // Hewlett-Packard
    {0x001871, "Hewlett-Packard", VendorClass::kHewlettPackard},
    {0x3CD92B, "Hewlett-Packard", VendorClass::kHewlettPackard},
    // Hardware
    {0x001FD0, "Giga-Byte", VendorClass::kHardware},
    {0x0004A3, "Microchip", VendorClass::kHardware},
    // VMware
    {0x000C29, "VMware", VendorClass::kVmware},
    {0x005056, "VMware", VendorClass::kVmware},
    // Raspberry Pi
    {0xB827EB, "Raspberry Pi Foundation", VendorClass::kRaspberryPi},
    // Printer
    {0x00267C, "Epson", VendorClass::kPrinter},
    // Router vendor filtered out of Fig. 12 in the paper (BISmark units);
    // present so the pipeline can exercise the same filtering step.
    {0x204E7F, "Netgear", VendorClass::kGateway},
    {0xE0469A, "Netgear", VendorClass::kGateway},
    // Extra entries so tests can cover multi-OUI lookup behaviour.
    {0x28E02C, "Apple", VendorClass::kApple},
    {0x3C0754, "Apple", VendorClass::kApple},
    {0xA45E60, "Apple", VendorClass::kApple},
    {0x0021E9, "Apple", VendorClass::kApple},
    {0x002500, "Apple", VendorClass::kApple},
    {0xD0577B, "Intel", VendorClass::kIntel},
    {0xA0A8CD, "Intel", VendorClass::kIntel},
}};

constexpr std::array<std::string_view, 19> kClassNames = {
    "Apple",       "ODM",          "Intel",        "Smart Phone", "Samsung",
    "Gateway",     "Asus",         "Misc.",        "Microsoft",   "Internet TV",
    "Gaming",      "Wireless Card", "VoIP",        "Hewlett-Packard",
    "Hardware",    "VMware",       "Raspberry-Pi", "Printer",     "Unknown",
};
}  // namespace

std::string_view VendorClassName(VendorClass c) {
  const auto idx = static_cast<std::size_t>(c);
  return idx < kClassNames.size() ? kClassNames[idx] : kClassNames.back();
}

std::size_t VendorClassCount() { return kClassNames.size(); }

OuiRegistry::OuiRegistry() : entries_(kEntries.begin(), kEntries.end()) {
  std::sort(entries_.begin(), entries_.end(),
            [](const OuiEntry& a, const OuiEntry& b) { return a.oui < b.oui; });
}

const OuiRegistry& OuiRegistry::Instance() {
  static const OuiRegistry registry;
  return registry;
}

std::optional<std::string_view> OuiRegistry::manufacturer(MacAddress mac) const {
  const std::uint32_t oui = mac.oui();
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), oui,
                                   [](const OuiEntry& e, std::uint32_t v) { return e.oui < v; });
  if (it == entries_.end() || it->oui != oui) return std::nullopt;
  return it->manufacturer;
}

VendorClass OuiRegistry::classify(MacAddress mac) const {
  const std::uint32_t oui = mac.oui();
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), oui,
                                   [](const OuiEntry& e, std::uint32_t v) { return e.oui < v; });
  if (it == entries_.end() || it->oui != oui) return VendorClass::kUnknown;
  return it->vendor_class;
}

std::vector<std::uint32_t> OuiRegistry::ouis_for(VendorClass c) const {
  std::vector<std::uint32_t> out;
  for (const auto& e : entries_) {
    if (e.vendor_class == c) out.push_back(e.oui);
  }
  return out;
}

}  // namespace bismark::net
