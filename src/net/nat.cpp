#include "net/nat.h"

#include <algorithm>

namespace bismark::net {

NatTable::NatTable(NatConfig config)
    : config_(config), next_port_(config.port_range_lo) {}

Duration NatTable::timeout_for(Protocol proto) const {
  switch (proto) {
    case Protocol::kTcp: return config_.tcp_idle_timeout;
    case Protocol::kUdp: return config_.udp_idle_timeout;
    case Protocol::kIcmp: return config_.icmp_idle_timeout;
  }
  return config_.udp_idle_timeout;
}

std::optional<std::uint16_t> NatTable::allocate_port(Protocol proto) {
  // O(1) exhaustion check: when every port in the range is active for this
  // protocol, fail immediately instead of probing the whole range per
  // packet (the pre-fix behaviour scanned all 64k candidates on every
  // translate attempt once the table filled).
  const std::uint32_t range = port_range_size();
  if (ports_in_use_[ProtoIndex(proto)] >= range) return std::nullopt;
  // A free port exists, so the probe terminates; the counter above bounds
  // the scan to the exhaustion-free case.
  for (;;) {
    const std::uint16_t candidate = next_port_;
    next_port_ = next_port_ >= config_.port_range_hi ? config_.port_range_lo
                                                     : static_cast<std::uint16_t>(next_port_ + 1);
    if (!by_wan_.contains(WanKey{candidate, proto})) {
      ++ports_in_use_[ProtoIndex(proto)];
      return candidate;
    }
  }
}

NatMapping* NatTable::outbound_mapping(const FiveTuple& tuple, TimePoint now,
                                       MacAddress lan_mac) {
  auto it = by_lan_.find(tuple);
  if (it == by_lan_.end()) {
    const auto port = allocate_port(tuple.protocol);
    if (!port) {
      ++stats_.port_exhaustion_drops;
      return nullptr;
    }
    NatMapping mapping;
    mapping.lan_tuple = tuple;
    mapping.wan_port = *port;
    mapping.device_mac = lan_mac;
    mapping.last_activity = now;
    mapping.out_rewrite =
        wire::SourceRewrite::Make(tuple.src_ip, tuple.src_port, config_.wan_address, *port);
    mapping.in_rewrite =
        wire::SourceRewrite::Make(config_.wan_address, *port, tuple.src_ip, tuple.src_port);
    auto [inserted, ok] = by_lan_.emplace(tuple, mapping);
    (void)ok;
    by_wan_.emplace(WanKey{*port, tuple.protocol}, tuple);
    ++stats_.mappings_created;
    it = inserted;
  }
  NatMapping& m = it->second;
  m.last_activity = now;
  ++m.packets;
  return &m;
}

NatMapping* NatTable::inbound_mapping(const FiveTuple& tuple) {
  const auto wan_it = by_wan_.find(WanKey{tuple.dst_port, tuple.protocol});
  if (wan_it == by_wan_.end()) return nullptr;
  auto lan_it = by_lan_.find(wan_it->second);
  if (lan_it == by_lan_.end()) return nullptr;
  NatMapping& m = lan_it->second;
  // Port-restricted cone: only the remote endpoint the mapping was created
  // toward may send back through it.
  if (tuple.src_ip != m.lan_tuple.dst_ip || tuple.src_port != m.lan_tuple.dst_port) {
    return nullptr;
  }
  return &m;
}

bool NatTable::translate_outbound(Packet& packet) {
  NatMapping* m = outbound_mapping(packet.tuple, packet.timestamp, packet.lan_mac);
  if (m == nullptr) return false;
  packet.tuple.src_ip = config_.wan_address;
  packet.tuple.src_port = m->wan_port;
  ++stats_.translations_out;
  return true;
}

bool NatTable::translate_inbound(Packet& packet) {
  if (packet.tuple.dst_ip != config_.wan_address) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  NatMapping* m = inbound_mapping(packet.tuple);
  if (m == nullptr) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  m->last_activity = packet.timestamp;
  ++m->packets;
  packet.tuple.dst_ip = m->lan_tuple.src_ip;
  packet.tuple.dst_port = m->lan_tuple.src_port;
  packet.lan_mac = m->device_mac;
  ++stats_.translations_in;
  return true;
}

bool NatTable::translate_outbound_wire(std::span<std::byte> frame, TimePoint now,
                                       MacAddress lan_mac) {
  const auto tuple = wire::ExtractTuple(frame);
  if (!tuple) return false;
  NatMapping* m = outbound_mapping(*tuple, now, lan_mac);
  if (m == nullptr) return false;
  wire::ApplySourceRewrite(frame, m->out_rewrite);
  ++stats_.translations_out;
  return true;
}

bool NatTable::translate_inbound_wire(std::span<std::byte> frame, TimePoint now) {
  const auto tuple = wire::ExtractTuple(frame);
  if (!tuple || tuple->dst_ip != config_.wan_address) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  NatMapping* m = inbound_mapping(*tuple);
  if (m == nullptr) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  m->last_activity = now;
  ++m->packets;
  wire::ApplyDestRewrite(frame, m->in_rewrite);
  ++stats_.translations_in;
  return true;
}

std::size_t NatTable::expire_idle(TimePoint now) {
  std::size_t removed = 0;
  for (auto it = by_lan_.begin(); it != by_lan_.end();) {
    const NatMapping& m = it->second;
    if (now - m.last_activity > timeout_for(m.lan_tuple.protocol)) {
      by_wan_.erase(WanKey{m.wan_port, m.lan_tuple.protocol});
      --ports_in_use_[ProtoIndex(m.lan_tuple.protocol)];
      it = by_lan_.erase(it);
      ++removed;
      ++stats_.mappings_expired;
    } else {
      ++it;
    }
  }
  return removed;
}

std::optional<MacAddress> NatTable::owner_of_port(std::uint16_t wan_port, Protocol proto) const {
  const auto wan_it = by_wan_.find(WanKey{wan_port, proto});
  if (wan_it == by_wan_.end()) return std::nullopt;
  const auto lan_it = by_lan_.find(wan_it->second);
  if (lan_it == by_lan_.end()) return std::nullopt;
  return lan_it->second.device_mac;
}

std::vector<NatMapping> NatTable::snapshot() const {
  std::vector<NatMapping> out;
  out.reserve(by_lan_.size());
  for (const auto& [tuple, mapping] : by_lan_) out.push_back(mapping);
  std::sort(out.begin(), out.end(), [](const NatMapping& a, const NatMapping& b) {
    return a.lan_tuple < b.lan_tuple;
  });
  return out;
}

}  // namespace bismark::net
