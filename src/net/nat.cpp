#include "net/nat.h"

namespace bismark::net {

NatTable::NatTable(NatConfig config)
    : config_(config), next_port_(config.port_range_lo) {}

Duration NatTable::timeout_for(Protocol proto) const {
  switch (proto) {
    case Protocol::kTcp: return config_.tcp_idle_timeout;
    case Protocol::kUdp: return config_.udp_idle_timeout;
    case Protocol::kIcmp: return config_.icmp_idle_timeout;
  }
  return config_.udp_idle_timeout;
}

std::optional<std::uint16_t> NatTable::allocate_port(Protocol proto) {
  const std::uint32_t range = static_cast<std::uint32_t>(config_.port_range_hi) -
                              config_.port_range_lo + 1;
  for (std::uint32_t attempts = 0; attempts < range; ++attempts) {
    const std::uint16_t candidate = next_port_;
    next_port_ = next_port_ >= config_.port_range_hi ? config_.port_range_lo
                                                     : static_cast<std::uint16_t>(next_port_ + 1);
    if (!by_wan_.contains(WanKey{candidate, proto})) return candidate;
  }
  return std::nullopt;
}

bool NatTable::translate_outbound(Packet& packet) {
  auto it = by_lan_.find(packet.tuple);
  if (it == by_lan_.end()) {
    const auto port = allocate_port(packet.tuple.protocol);
    if (!port) {
      ++stats_.port_exhaustion_drops;
      return false;
    }
    NatMapping mapping;
    mapping.lan_tuple = packet.tuple;
    mapping.wan_port = *port;
    mapping.device_mac = packet.lan_mac;
    mapping.last_activity = packet.timestamp;
    auto [inserted, ok] = by_lan_.emplace(packet.tuple, mapping);
    (void)ok;
    by_wan_.emplace(WanKey{*port, packet.tuple.protocol}, packet.tuple);
    ++stats_.mappings_created;
    it = inserted;
  }

  NatMapping& m = it->second;
  m.last_activity = packet.timestamp;
  ++m.packets;

  packet.tuple.src_ip = config_.wan_address;
  packet.tuple.src_port = m.wan_port;
  ++stats_.translations_out;
  return true;
}

bool NatTable::translate_inbound(Packet& packet) {
  if (packet.tuple.dst_ip != config_.wan_address) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  const auto wan_it = by_wan_.find(WanKey{packet.tuple.dst_port, packet.tuple.protocol});
  if (wan_it == by_wan_.end()) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  auto lan_it = by_lan_.find(wan_it->second);
  if (lan_it == by_lan_.end()) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  NatMapping& m = lan_it->second;

  // Port-restricted cone: only the remote endpoint the mapping was created
  // toward may send back through it.
  if (packet.tuple.src_ip != m.lan_tuple.dst_ip || packet.tuple.src_port != m.lan_tuple.dst_port) {
    ++stats_.unknown_inbound_drops;
    return false;
  }

  m.last_activity = packet.timestamp;
  ++m.packets;

  packet.tuple.dst_ip = m.lan_tuple.src_ip;
  packet.tuple.dst_port = m.lan_tuple.src_port;
  packet.lan_mac = m.device_mac;
  ++stats_.translations_in;
  return true;
}

std::size_t NatTable::expire_idle(TimePoint now) {
  std::size_t removed = 0;
  for (auto it = by_lan_.begin(); it != by_lan_.end();) {
    const NatMapping& m = it->second;
    if (now - m.last_activity > timeout_for(m.lan_tuple.protocol)) {
      by_wan_.erase(WanKey{m.wan_port, m.lan_tuple.protocol});
      it = by_lan_.erase(it);
      ++removed;
      ++stats_.mappings_expired;
    } else {
      ++it;
    }
  }
  return removed;
}

std::optional<MacAddress> NatTable::owner_of_port(std::uint16_t wan_port, Protocol proto) const {
  const auto wan_it = by_wan_.find(WanKey{wan_port, proto});
  if (wan_it == by_wan_.end()) return std::nullopt;
  const auto lan_it = by_lan_.find(wan_it->second);
  if (lan_it == by_lan_.end()) return std::nullopt;
  return lan_it->second.device_mac;
}

std::vector<NatMapping> NatTable::snapshot() const {
  std::vector<NatMapping> out;
  out.reserve(by_lan_.size());
  for (const auto& [tuple, mapping] : by_lan_) out.push_back(mapping);
  return out;
}

}  // namespace bismark::net
