// The home's ISP access link (DSL/cable).
//
// Section 6.2 turns on the interplay of three quantities:
//   * the link's true shaped capacity per direction,
//   * ShaperProbe's periodic *estimate* of that capacity, and
//   * the per-second throughput measured LAN-side at the gateway.
// Because the gateway sits in front of the modem, LAN-side throughput is
// the *arrival* rate into the modem's (often very deep — "bufferbloat")
// buffer, and can exceed the shaped rate while the queue absorbs the
// excess. That is exactly how the paper's two over-saturating homes show
// utilisation > 1 on the uplink (Figs 15/16). This class models the shaped
// rates, a droptail byte queue on the uplink, processor-sharing admission,
// and probe estimates biased by cross-traffic.
#pragma once

#include "core/rng.h"
#include "core/time.h"
#include "core/units.h"
#include "net/packet.h"

namespace bismark::net {

struct AccessLinkConfig {
  BitRate down_capacity{Mbps(20)};
  BitRate up_capacity{Mbps(4)};
  /// Modem buffer on the uplink. Deep buffers (hundreds of KB on a
  /// few-Mbps uplink = seconds of queueing) are the bufferbloat regime.
  Bytes uplink_buffer{KB(256)};
  /// Multiplicative probe noise (1 sigma).
  double probe_noise{0.02};
  /// Whether senders may overdrive the shaped uplink into the buffer
  /// (true for the bufferbloat case-study homes).
  bool allow_uplink_overdrive{false};
  /// Max sustained overdrive as a fraction of capacity.
  double overdrive_headroom{0.35};
};

/// One direction's live state.
struct DirectionState {
  double active_bps{0.0};
  double peak_bps{0.0};
};

class AccessLink {
 public:
  explicit AccessLink(AccessLinkConfig config);

  [[nodiscard]] const AccessLinkConfig& config() const { return config_; }
  [[nodiscard]] BitRate capacity(Direction dir) const;

  /// Processor-sharing admission: how much of `demand_bps` a new flow can
  /// get. Leaves a floor share so late flows are not starved; on an
  /// overdrive-enabled uplink the grant may exceed remaining headroom
  /// (the modem queue will absorb it).
  [[nodiscard]] double admit(Direction dir, double demand_bps) const;

  /// Bracket an active flow's contribution to the aggregate rate.
  void add_rate(Direction dir, double bps, TimePoint now);
  void remove_rate(Direction dir, double bps, TimePoint now);

  [[nodiscard]] double active_rate(Direction dir) const;
  /// Aggregate LAN-side utilisation relative to shaped capacity — this is
  /// the quantity that exceeds 1.0 under bufferbloat.
  [[nodiscard]] double utilization(Direction dir) const;

  /// Current modem uplink queue depth (bytes) and the queueing delay it
  /// implies at the shaped rate. The queue integrates
  /// (arrival - capacity) while arrivals exceed capacity.
  [[nodiscard]] Bytes uplink_queue_depth() const { return queue_depth_; }
  [[nodiscard]] Duration uplink_queueing_delay() const;
  [[nodiscard]] std::uint64_t uplink_drops() const { return queue_drops_; }

  /// ShaperProbe-style capacity estimate: a packet-train dispersion
  /// measurement. Unbiased (up to noise) on an idle link; biased low by
  /// cross-traffic occupying the link during the train.
  [[nodiscard]] BitRate probe_capacity(Direction dir, Rng& rng) const;

 private:
  AccessLinkConfig config_;
  DirectionState down_;
  DirectionState up_;
  // Uplink queue integration.
  Bytes queue_depth_{};
  TimePoint last_queue_update_{};
  std::uint64_t queue_drops_{0};

  void integrate_queue(TimePoint now);
  DirectionState& state(Direction dir) { return dir == Direction::kUpstream ? up_ : down_; }
  [[nodiscard]] const DirectionState& state(Direction dir) const {
    return dir == Direction::kUpstream ? up_ : down_;
  }
};

}  // namespace bismark::net
