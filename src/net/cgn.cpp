#include "net/cgn.h"

#include <algorithm>

namespace bismark::net {

CgnTable::CgnTable(CgnConfig config) : config_(config) {
  subscribers_.resize(std::max<std::uint32_t>(config_.subscriber_count, 1));
}

std::uint32_t CgnTable::total_blocks() const {
  const std::uint32_t range = static_cast<std::uint32_t>(config_.port_range_hi) -
                              config_.port_range_lo + 1;
  const std::uint32_t block = std::max<std::uint32_t>(config_.port_block_size, 1);
  return range / block;
}

std::uint32_t CgnTable::blocks_per_subscriber() const {
  return total_blocks() / static_cast<std::uint32_t>(subscribers_.size());
}

std::uint16_t CgnTable::slice_base_port(std::uint32_t subscriber) const {
  const std::uint32_t block = std::max<std::uint32_t>(config_.port_block_size, 1);
  return static_cast<std::uint16_t>(config_.port_range_lo +
                                    subscriber * blocks_per_subscriber() * block);
}

std::uint32_t CgnTable::subscriber_port_capacity(std::uint32_t subscriber) const {
  if (subscriber >= subscribers_.size()) return 0;
  const std::uint32_t block = std::max<std::uint32_t>(config_.port_block_size, 1);
  const std::uint32_t slice_ports = blocks_per_subscriber() * block;
  return std::min(slice_ports, config_.max_ports_per_subscriber);
}

Duration CgnTable::timeout_for(Protocol proto) const {
  switch (proto) {
    case Protocol::kTcp: return config_.tcp_idle_timeout;
    case Protocol::kUdp: return config_.udp_idle_timeout;
    case Protocol::kIcmp: return config_.icmp_idle_timeout;
  }
  return config_.udp_idle_timeout;
}

std::optional<std::uint16_t> CgnTable::allocate_port(std::uint32_t subscriber) {
  Subscriber& sub = subscribers_[subscriber];
  const std::uint32_t cap = subscriber_port_capacity(subscriber);
  if (sub.stats.ports_in_use >= cap) return std::nullopt;  // state limit / slice spent
  std::uint16_t port = 0;
  if (!sub.free_ports.empty()) {
    // Recycle an expired port from an already-activated block.
    port = sub.free_ports.back();
    sub.free_ports.pop_back();
  } else {
    // Advance the never-used cursor; crossing a block-size boundary is the
    // moment a new block of the slice goes live.
    const std::uint32_t block = std::max<std::uint32_t>(config_.port_block_size, 1);
    const std::uint32_t slice_ports = blocks_per_subscriber() * block;
    if (sub.cursor >= slice_ports) return std::nullopt;
    if (sub.cursor % block == 0) ++sub.stats.blocks_allocated;
    port = static_cast<std::uint16_t>(slice_base_port(subscriber) + sub.cursor);
    ++sub.cursor;
  }
  ++sub.stats.ports_in_use;
  sub.stats.ports_peak = std::max(sub.stats.ports_peak, sub.stats.ports_in_use);
  return port;
}

CgnMapping* CgnTable::outbound_mapping(std::uint32_t subscriber, const FiveTuple& tuple,
                                       TimePoint now) {
  auto it = by_inside_.find(tuple);
  if (it == by_inside_.end()) {
    const auto port = allocate_port(subscriber);
    if (!port) {
      ++stats_.port_exhaustion_drops;
      ++subscribers_[subscriber].stats.exhaustion_drops;
      return nullptr;
    }
    CgnMapping mapping;
    mapping.inside_tuple = tuple;
    mapping.external_port = *port;
    mapping.subscriber = subscriber;
    mapping.last_activity = now;
    mapping.out_rewrite = wire::SourceRewrite::Make(tuple.src_ip, tuple.src_port,
                                                    config_.external_address, *port);
    mapping.in_rewrite = wire::SourceRewrite::Make(config_.external_address, *port,
                                                   tuple.src_ip, tuple.src_port);
    auto [inserted, ok] = by_inside_.emplace(tuple, mapping);
    (void)ok;
    by_external_.emplace(ExternalKey{*port, tuple.protocol}, tuple);
    ++stats_.mappings_created;
    it = inserted;
  }
  CgnMapping& m = it->second;
  m.last_activity = now;
  ++m.packets;
  return &m;
}

CgnMapping* CgnTable::inbound_mapping(const FiveTuple& tuple) {
  const auto ext_it = by_external_.find(ExternalKey{tuple.dst_port, tuple.protocol});
  if (ext_it == by_external_.end()) return nullptr;
  auto in_it = by_inside_.find(ext_it->second);
  if (in_it == by_inside_.end()) return nullptr;
  CgnMapping& m = in_it->second;
  // Port-restricted, like the home NAT beneath it.
  if (tuple.src_ip != m.inside_tuple.dst_ip || tuple.src_port != m.inside_tuple.dst_port) {
    return nullptr;
  }
  return &m;
}

bool CgnTable::translate_outbound(std::uint32_t subscriber, Packet& packet) {
  if (subscriber >= subscribers_.size()) return false;
  CgnMapping* m = outbound_mapping(subscriber, packet.tuple, packet.timestamp);
  if (m == nullptr) return false;
  packet.tuple.src_ip = config_.external_address;
  packet.tuple.src_port = m->external_port;
  ++stats_.translations_out;
  ++subscribers_[subscriber].stats.translations_out;
  return true;
}

bool CgnTable::translate_inbound(Packet& packet) {
  if (packet.tuple.dst_ip != config_.external_address) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  CgnMapping* m = inbound_mapping(packet.tuple);
  if (m == nullptr) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  m->last_activity = packet.timestamp;
  ++m->packets;
  packet.tuple.dst_ip = m->inside_tuple.src_ip;
  packet.tuple.dst_port = m->inside_tuple.src_port;
  ++stats_.translations_in;
  ++subscribers_[m->subscriber].stats.translations_in;
  return true;
}

bool CgnTable::translate_outbound_wire(std::uint32_t subscriber, std::span<std::byte> frame,
                                       TimePoint now) {
  if (subscriber >= subscribers_.size()) return false;
  const auto tuple = wire::ExtractTuple(frame);
  if (!tuple) return false;
  CgnMapping* m = outbound_mapping(subscriber, *tuple, now);
  if (m == nullptr) return false;
  wire::ApplySourceRewrite(frame, m->out_rewrite);
  ++stats_.translations_out;
  ++subscribers_[subscriber].stats.translations_out;
  return true;
}

bool CgnTable::translate_inbound_wire(std::span<std::byte> frame, TimePoint now) {
  const auto tuple = wire::ExtractTuple(frame);
  if (!tuple || tuple->dst_ip != config_.external_address) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  CgnMapping* m = inbound_mapping(*tuple);
  if (m == nullptr) {
    ++stats_.unknown_inbound_drops;
    return false;
  }
  m->last_activity = now;
  ++m->packets;
  wire::ApplyDestRewrite(frame, m->in_rewrite);
  ++stats_.translations_in;
  ++subscribers_[m->subscriber].stats.translations_in;
  return true;
}

std::size_t CgnTable::expire_idle(TimePoint now) {
  std::size_t removed = 0;
  for (auto it = by_inside_.begin(); it != by_inside_.end();) {
    const CgnMapping& m = it->second;
    if (now - m.last_activity > timeout_for(m.inside_tuple.protocol)) {
      by_external_.erase(ExternalKey{m.external_port, m.inside_tuple.protocol});
      Subscriber& sub = subscribers_[m.subscriber];
      sub.free_ports.push_back(m.external_port);
      --sub.stats.ports_in_use;
      it = by_inside_.erase(it);
      ++removed;
      ++stats_.mappings_expired;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace bismark::net
