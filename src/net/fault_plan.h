// Fault injection for the gateway -> collector upload path.
//
// Section 3.3 concedes the study cannot tell a home outage from a failure
// "along the network path between the BISmark router and Georgia Tech".
// A FaultPlan makes that path a first-class, repeatable experiment: each
// upload attempt is subjected to scripted collector outage windows (the
// deployment's serial ground-truth pre-pass) plus stochastic request and
// ack loss drawn from a caller-supplied deterministic stream. Ack loss is
// the interesting failure: the collector committed the batch but the
// sender does not know, so an at-least-once retry produces a duplicate the
// ingest gate must absorb (collect/upload.h).
#pragma once

#include "core/intervals.h"
#include "core/rng.h"
#include "core/time.h"

namespace bismark::net {

/// What became of one upload attempt.
enum class DeliveryOutcome {
  kDelivered,     ///< request arrived and the ack made it back
  kLostRequest,   ///< lost on the way up; the collector never saw it
  kLostAck,       ///< collector committed the batch, ack lost on the way down
  kCollectorDown, ///< collector inside a scripted outage window
};

struct FaultConfig {
  /// Per-attempt probability the request is lost before the collector.
  double upload_loss_prob{0.0};
  /// Per-attempt probability the ack is lost after a successful commit.
  double ack_loss_prob{0.0};
  /// Round-trip time of an attempt: base + uniform[0, jitter).
  Duration base_latency{Millis(80)};
  Duration latency_jitter{Millis(120)};
};

/// Immutable, shareable description of the path's failure behaviour. The
/// plan holds no RNG of its own: callers pass their per-home stream, so the
/// outcome sequence is a pure function of (fault seed, home id) and never
/// of which worker thread performed the attempt.
class FaultPlan {
 public:
  /// Fault-free: every attempt delivers, the collector never goes down.
  FaultPlan() = default;

  FaultPlan(FaultConfig config, IntervalSet collector_down)
      : config_(config), collector_down_(std::move(collector_down)) {}

  [[nodiscard]] DeliveryOutcome attempt(TimePoint when, Rng& rng) const;

  /// Sampled round-trip latency of one attempt.
  [[nodiscard]] Duration round_trip(Rng& rng) const;

  [[nodiscard]] bool collector_down_at(TimePoint t) const {
    return collector_down_.contains(t);
  }
  [[nodiscard]] const IntervalSet& collector_down() const { return collector_down_; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] bool fault_free() const {
    return config_.upload_loss_prob <= 0.0 && config_.ack_loss_prob <= 0.0 &&
           collector_down_.empty();
  }

 private:
  FaultConfig config_{};
  IntervalSet collector_down_;
};

}  // namespace bismark::net
