// Byte-level wire formats: Ethernet/IPv4/TCP/UDP/ICMP over std::byte spans.
//
// Everything upstream of here treats a packet as an abstract struct; this
// header is where those structs become real network bytes — big-endian
// fields at their RFC offsets, RFC 1071 internet checksums, and the
// RFC 1624 incremental-update arithmetic that lets a NAT rewrite an
// address/port pair by editing ten bytes and two checksums instead of
// re-serialising the frame. The encoders materialise full frames
// (headers + zeroed payload up to the simulated size), so a pcap written
// from these bytes validates cleanly under tcpdump/tshark: IP header
// checksums, TCP/UDP pseudo-header checksums and ICMP checksums are all
// exact (a zero payload contributes nothing to a ones'-complement sum).
//
// Layout reference (all offsets from the start of the Ethernet frame):
//   0  dst MAC    6  src MAC   12 ethertype
//   14 ver/ihl    15 tos       16 total_len  18 id  20 flags/frag
//   22 ttl        23 proto     24 ip csum    26 src ip   30 dst ip
//   34 L4: TCP 20B / UDP 8B / ICMP echo 8B
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "core/time.h"
#include "net/addr.h"
#include "net/packet.h"

namespace bismark::net::wire {

inline constexpr std::size_t kEthernetHeaderBytes = 14;
inline constexpr std::size_t kIpv4HeaderBytes = 20;  // no options
inline constexpr std::size_t kTcpHeaderBytes = 20;   // no options
inline constexpr std::size_t kUdpHeaderBytes = 8;
inline constexpr std::size_t kIcmpHeaderBytes = 8;   // echo request/reply
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
/// Largest frame the codec emits: standard Ethernet MTU plus the header.
inline constexpr std::size_t kMaxFrameBytes = kEthernetHeaderBytes + 1500;

// Fixed offsets into an Ethernet+IPv4 frame (no IP options, ihl = 5).
inline constexpr std::size_t kIpOffset = kEthernetHeaderBytes;
inline constexpr std::size_t kIpTotalLenOffset = kIpOffset + 2;
inline constexpr std::size_t kIpProtoOffset = kIpOffset + 9;
inline constexpr std::size_t kIpChecksumOffset = kIpOffset + 10;
inline constexpr std::size_t kIpSrcOffset = kIpOffset + 12;
inline constexpr std::size_t kIpDstOffset = kIpOffset + 16;
inline constexpr std::size_t kL4Offset = kIpOffset + kIpv4HeaderBytes;
inline constexpr std::size_t kTcpChecksumOffset = kL4Offset + 16;
inline constexpr std::size_t kUdpChecksumOffset = kL4Offset + 6;
inline constexpr std::size_t kIcmpChecksumOffset = kL4Offset + 2;
inline constexpr std::size_t kIcmpIdOffset = kL4Offset + 4;

// --- Big-endian scalar access ----------------------------------------------

[[nodiscard]] constexpr std::uint16_t GetU16(std::span<const std::byte> buf,
                                             std::size_t off) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(buf[off]) << 8 |
                                    static_cast<std::uint16_t>(buf[off + 1]));
}

[[nodiscard]] constexpr std::uint32_t GetU32(std::span<const std::byte> buf,
                                             std::size_t off) {
  return static_cast<std::uint32_t>(buf[off]) << 24 |
         static_cast<std::uint32_t>(buf[off + 1]) << 16 |
         static_cast<std::uint32_t>(buf[off + 2]) << 8 |
         static_cast<std::uint32_t>(buf[off + 3]);
}

constexpr void PutU16(std::span<std::byte> buf, std::size_t off, std::uint16_t v) {
  buf[off] = static_cast<std::byte>(v >> 8);
  buf[off + 1] = static_cast<std::byte>(v & 0xff);
}

constexpr void PutU32(std::span<std::byte> buf, std::size_t off, std::uint32_t v) {
  buf[off] = static_cast<std::byte>(v >> 24);
  buf[off + 1] = static_cast<std::byte>(v >> 16 & 0xff);
  buf[off + 2] = static_cast<std::byte>(v >> 8 & 0xff);
  buf[off + 3] = static_cast<std::byte>(v & 0xff);
}

// --- RFC 1071 checksum and RFC 1624 incremental update ----------------------

/// Sum `data` into a ones'-complement accumulator (not yet folded or
/// inverted). Odd lengths pad with a zero byte, per RFC 1071 §4.1.
[[nodiscard]] std::uint32_t ChecksumAccumulate(std::span<const std::byte> data,
                                               std::uint32_t sum = 0);

/// Fold a 32-bit accumulator to 16 bits and invert: the value that goes on
/// the wire.
[[nodiscard]] constexpr std::uint16_t ChecksumFinish(std::uint32_t sum) {
  while (sum >> 16 != 0) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

/// The RFC 1071 internet checksum of `data` (optionally seeded with a
/// pseudo-header accumulator).
[[nodiscard]] inline std::uint16_t InternetChecksum(std::span<const std::byte> data,
                                                    std::uint32_t seed = 0) {
  return ChecksumFinish(ChecksumAccumulate(data, seed));
}

/// Additive delta for changing one 16-bit header word from `old16` to
/// `new16` (RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')). Deltas for several
/// word changes compose by addition, which is what lets a NAT precompute
/// one delta per mapping and apply it per packet.
[[nodiscard]] constexpr std::uint32_t ChecksumDelta(std::uint16_t old16,
                                                    std::uint16_t new16) {
  return static_cast<std::uint32_t>(static_cast<std::uint16_t>(~old16)) + new16;
}

/// Delta for a 32-bit field change (an IPv4 address), as two word deltas.
[[nodiscard]] constexpr std::uint32_t ChecksumDelta32(std::uint32_t old32,
                                                      std::uint32_t new32) {
  return ChecksumDelta(static_cast<std::uint16_t>(old32 >> 16),
                       static_cast<std::uint16_t>(new32 >> 16)) +
         ChecksumDelta(static_cast<std::uint16_t>(old32 & 0xffff),
                       static_cast<std::uint16_t>(new32 & 0xffff));
}

/// Apply an accumulated delta to a wire checksum value.
[[nodiscard]] constexpr std::uint16_t ChecksumApply(std::uint16_t csum,
                                                    std::uint32_t delta) {
  std::uint32_t sum = static_cast<std::uint16_t>(~csum) + delta;
  while (sum >> 16 != 0) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

// --- Header structs and their codecs ----------------------------------------

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type{kEtherTypeIpv4};

  friend bool operator==(const EthernetHeader&, const EthernetHeader&) = default;
};

struct Ipv4Header {
  std::uint8_t tos{0};
  std::uint16_t total_length{kIpv4HeaderBytes};
  std::uint16_t identification{0};
  std::uint8_t ttl{64};
  Protocol protocol{Protocol::kTcp};
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t checksum{0};  ///< filled by Encode, verified by Parse

  friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

struct TcpHeader {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  std::uint8_t flags{0x02};  // SYN by default: the first packet of a flow
  std::uint16_t window{65535};
  std::uint16_t checksum{0};

  friend bool operator==(const TcpHeader&, const TcpHeader&) = default;
};

struct UdpHeader {
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint16_t length{kUdpHeaderBytes};
  std::uint16_t checksum{0};

  friend bool operator==(const UdpHeader&, const UdpHeader&) = default;
};

struct IcmpHeader {
  std::uint8_t type{8};  // echo request
  std::uint8_t code{0};
  std::uint16_t id{0};
  std::uint16_t seq{0};
  std::uint16_t checksum{0};

  friend bool operator==(const IcmpHeader&, const IcmpHeader&) = default;
};

/// Serialise one header at the front of `out` (which must be large enough);
/// returns bytes written. Checksums that need payload/pseudo-header context
/// are computed by EncodeFrame, not by these single-header encoders.
std::size_t EncodeEthernet(const EthernetHeader& h, std::span<std::byte> out);
std::size_t EncodeIpv4(const Ipv4Header& h, std::span<std::byte> out);
std::size_t EncodeTcp(const TcpHeader& h, std::span<std::byte> out);
std::size_t EncodeUdp(const UdpHeader& h, std::span<std::byte> out);
std::size_t EncodeIcmp(const IcmpHeader& h, std::span<std::byte> out);

/// Parse one header from the front of `buf`. Returns nullopt on truncated
/// or malformed input — never reads past `buf.size()`.
[[nodiscard]] std::optional<EthernetHeader> ParseEthernet(std::span<const std::byte> buf);
[[nodiscard]] std::optional<Ipv4Header> ParseIpv4(std::span<const std::byte> buf);
[[nodiscard]] std::optional<TcpHeader> ParseTcp(std::span<const std::byte> buf);
[[nodiscard]] std::optional<UdpHeader> ParseUdp(std::span<const std::byte> buf);
[[nodiscard]] std::optional<IcmpHeader> ParseIcmp(std::span<const std::byte> buf);

// --- Frame codec: Packet <-> Ethernet frame ---------------------------------

/// A fully-parsed frame: link/network headers plus whichever L4 header the
/// IP protocol selected.
struct DecodedFrame {
  EthernetHeader eth;
  Ipv4Header ip;
  TcpHeader tcp;    // valid when ip.protocol == kTcp
  UdpHeader udp;    // valid when ip.protocol == kUdp
  IcmpHeader icmp;  // valid when ip.protocol == kIcmp
  std::size_t frame_bytes{0};

  /// The transport five-tuple the NAT keys on. ICMP echoes key on the
  /// identifier: requests carry it as the source port, replies as the
  /// destination port (matching the NAT's WAN-port lookup direction).
  [[nodiscard]] FiveTuple tuple() const;
};

/// Materialise `packet` as an Ethernet frame in `out` (which must hold
/// kMaxFrameBytes): real headers, zeroed payload padding the frame to the
/// simulated size (clamped to [headers, MTU]), every checksum exact.
/// Returns the frame length in bytes.
std::size_t EncodeFrame(const Packet& packet, MacAddress src_mac, MacAddress dst_mac,
                        std::span<std::byte> out);

/// Parse an Ethernet frame. Verifies structural invariants (lengths,
/// version, ihl) and the IPv4 header checksum; returns nullopt on any
/// violation. Never reads outside `frame`.
[[nodiscard]] std::optional<DecodedFrame> ParseFrame(std::span<const std::byte> frame);

/// Rebuild the abstract Packet a frame encodes (`timestamp` is not on the
/// wire and must be supplied; `size` is the frame length).
[[nodiscard]] Packet PacketFromFrame(const DecodedFrame& frame, TimePoint timestamp,
                                     Direction direction);

/// Fast-path tuple extraction for the NAT hot path: fixed-offset reads
/// with minimal structural checks (length, ethertype, version/ihl, known
/// protocol) and NO checksum verification. Use ParseFrame for untrusted
/// input; this is for frames the dataplane itself encoded.
[[nodiscard]] std::optional<FiveTuple> ExtractTuple(std::span<const std::byte> frame);

// --- NAT rewrite: edit bytes, not structs -----------------------------------

/// A precomputed source-rewrite: the new (address, port) plus the checksum
/// deltas their substitution induces. Computed once per NAT mapping,
/// applied per packet — the fast-path header cache that keeps byte-level
/// translation at struct-path speed.
struct SourceRewrite {
  Ipv4Address new_ip;
  std::uint16_t new_port{0};
  std::uint32_t ip_csum_delta{0};  ///< for the IPv4 header checksum
  std::uint32_t l4_csum_delta{0};  ///< for the TCP/UDP/ICMP checksum

  /// Build the rewrite old -> new. The L4 delta folds the pseudo-header
  /// address change and the port change together; ICMP (whose checksum has
  /// no pseudo-header) uses only the identifier-change component, which
  /// Apply selects by protocol.
  static SourceRewrite Make(Ipv4Address old_ip, std::uint16_t old_port,
                            Ipv4Address new_ip, std::uint16_t new_port);
};

/// Apply a source rewrite to a frame in place: 4 address bytes, 2 port
/// bytes, and incremental updates to the IP and L4 checksums. The frame
/// must have passed ParseFrame (fixed offsets are assumed valid).
void ApplySourceRewrite(std::span<std::byte> frame, const SourceRewrite& rw);

/// The mirror image for inbound traffic: rewrite the *destination*
/// (address, port) with the same cached-delta arithmetic.
void ApplyDestRewrite(std::span<std::byte> frame, const SourceRewrite& rw);

}  // namespace bismark::net::wire
