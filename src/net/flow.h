// Flow bookkeeping shared by the NAT and the gateway's passive monitor.
#pragma once

#include <cstdint>
#include <string>

#include "core/time.h"
#include "core/units.h"
#include "net/addr.h"
#include "net/packet.h"

namespace bismark::net {

/// Identifier assigned to each tracked flow.
struct FlowId {
  std::uint64_t value{0};
  constexpr auto operator<=>(const FlowId&) const = default;
};

/// Accumulated statistics for one transport flow as observed at the
/// gateway. This mirrors the "Flow statistics" records of Section 3.2.2:
/// obfuscated addresses, application ports, byte/packet counts.
struct FlowRecord {
  FlowId id;
  FiveTuple tuple;            // LAN-side view (pre-NAT)
  MacAddress device_mac;      // originating device
  TimePoint first_packet;
  TimePoint last_packet;
  Bytes bytes_up;
  Bytes bytes_down;
  std::uint64_t packets_up{0};
  std::uint64_t packets_down{0};
  /// Remote domain this flow was opened to, when known from a preceding
  /// DNS lookup (empty otherwise). Anonymisation may later obfuscate it.
  std::string domain;

  [[nodiscard]] Bytes total_bytes() const { return bytes_up + bytes_down; }
  [[nodiscard]] std::uint64_t total_packets() const { return packets_up + packets_down; }
  [[nodiscard]] Duration duration() const { return last_packet - first_packet; }

  void add_packet(const Packet& p);
};

}  // namespace bismark::net
