#include "net/wire.h"

#include <algorithm>
#include <cstring>

namespace bismark::net::wire {
namespace {

/// L4 header size for a protocol (all three are fixed-size here).
constexpr std::size_t L4HeaderBytes(Protocol p) {
  switch (p) {
    case Protocol::kTcp: return kTcpHeaderBytes;
    case Protocol::kUdp: return kUdpHeaderBytes;
    case Protocol::kIcmp: return kIcmpHeaderBytes;
  }
  return 0;
}

/// Ones'-complement accumulator for the TCP/UDP pseudo-header
/// (RFC 793 / RFC 768): src, dst, zero+proto, L4 length.
constexpr std::uint32_t PseudoHeaderSum(Ipv4Address src, Ipv4Address dst, Protocol proto,
                                        std::uint16_t l4_length) {
  const std::uint32_t s = src.value();
  const std::uint32_t d = dst.value();
  return (s >> 16) + (s & 0xffff) + (d >> 16) + (d & 0xffff) +
         static_cast<std::uint32_t>(proto) + l4_length;
}

void PutMac(std::span<std::byte> buf, std::size_t off, MacAddress mac) {
  for (std::size_t i = 0; i < 6; ++i) buf[off + i] = static_cast<std::byte>(mac.octets()[i]);
}

MacAddress GetMac(std::span<const std::byte> buf, std::size_t off) {
  std::array<std::uint8_t, 6> o{};
  for (std::size_t i = 0; i < 6; ++i) o[i] = static_cast<std::uint8_t>(buf[off + i]);
  return MacAddress(o);
}

}  // namespace

std::uint32_t ChecksumAccumulate(std::span<const std::byte> data, std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(GetU16(data, i));
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  return sum;
}

std::size_t EncodeEthernet(const EthernetHeader& h, std::span<std::byte> out) {
  PutMac(out, 0, h.dst);
  PutMac(out, 6, h.src);
  PutU16(out, 12, h.ether_type);
  return kEthernetHeaderBytes;
}

std::size_t EncodeIpv4(const Ipv4Header& h, std::span<std::byte> out) {
  out[0] = static_cast<std::byte>(0x45);  // version 4, ihl 5
  out[1] = static_cast<std::byte>(h.tos);
  PutU16(out, 2, h.total_length);
  PutU16(out, 4, h.identification);
  PutU16(out, 6, 0x4000);  // DF, fragment offset 0
  out[8] = static_cast<std::byte>(h.ttl);
  out[9] = static_cast<std::byte>(h.protocol);
  PutU16(out, 10, 0);  // checksum placeholder
  PutU32(out, 12, h.src.value());
  PutU32(out, 16, h.dst.value());
  const std::uint16_t csum = InternetChecksum(out.first(kIpv4HeaderBytes));
  PutU16(out, 10, csum);
  return kIpv4HeaderBytes;
}

std::size_t EncodeTcp(const TcpHeader& h, std::span<std::byte> out) {
  PutU16(out, 0, h.src_port);
  PutU16(out, 2, h.dst_port);
  PutU32(out, 4, h.seq);
  PutU32(out, 8, h.ack);
  out[12] = static_cast<std::byte>(0x50);  // data offset 5, reserved 0
  out[13] = static_cast<std::byte>(h.flags);
  PutU16(out, 14, h.window);
  PutU16(out, 16, h.checksum);
  PutU16(out, 18, 0);  // urgent pointer
  return kTcpHeaderBytes;
}

std::size_t EncodeUdp(const UdpHeader& h, std::span<std::byte> out) {
  PutU16(out, 0, h.src_port);
  PutU16(out, 2, h.dst_port);
  PutU16(out, 4, h.length);
  PutU16(out, 6, h.checksum);
  return kUdpHeaderBytes;
}

std::size_t EncodeIcmp(const IcmpHeader& h, std::span<std::byte> out) {
  out[0] = static_cast<std::byte>(h.type);
  out[1] = static_cast<std::byte>(h.code);
  PutU16(out, 2, h.checksum);
  PutU16(out, 4, h.id);
  PutU16(out, 6, h.seq);
  return kIcmpHeaderBytes;
}

std::optional<EthernetHeader> ParseEthernet(std::span<const std::byte> buf) {
  if (buf.size() < kEthernetHeaderBytes) return std::nullopt;
  EthernetHeader h;
  h.dst = GetMac(buf, 0);
  h.src = GetMac(buf, 6);
  h.ether_type = GetU16(buf, 12);
  return h;
}

std::optional<Ipv4Header> ParseIpv4(std::span<const std::byte> buf) {
  if (buf.size() < kIpv4HeaderBytes) return std::nullopt;
  const auto ver_ihl = static_cast<std::uint8_t>(buf[0]);
  if (ver_ihl != 0x45) return std::nullopt;  // v4 with no options only
  Ipv4Header h;
  h.tos = static_cast<std::uint8_t>(buf[1]);
  h.total_length = GetU16(buf, 2);
  if (h.total_length < kIpv4HeaderBytes) return std::nullopt;
  h.identification = GetU16(buf, 4);
  h.ttl = static_cast<std::uint8_t>(buf[8]);
  const auto proto = static_cast<std::uint8_t>(buf[9]);
  switch (proto) {
    case 6: h.protocol = Protocol::kTcp; break;
    case 17: h.protocol = Protocol::kUdp; break;
    case 1: h.protocol = Protocol::kIcmp; break;
    default: return std::nullopt;
  }
  h.checksum = GetU16(buf, 10);
  h.src = Ipv4Address(GetU32(buf, 12));
  h.dst = Ipv4Address(GetU32(buf, 16));
  // A zero verification sum means the stored checksum is consistent with
  // the header contents (RFC 1071 §4.1).
  if (InternetChecksum(buf.first(kIpv4HeaderBytes)) != 0) return std::nullopt;
  return h;
}

std::optional<TcpHeader> ParseTcp(std::span<const std::byte> buf) {
  if (buf.size() < kTcpHeaderBytes) return std::nullopt;
  const auto data_offset = static_cast<std::uint8_t>(buf[12]) >> 4;
  if (data_offset != 5) return std::nullopt;  // no options in this dataplane
  TcpHeader h;
  h.src_port = GetU16(buf, 0);
  h.dst_port = GetU16(buf, 2);
  h.seq = GetU32(buf, 4);
  h.ack = GetU32(buf, 8);
  h.flags = static_cast<std::uint8_t>(buf[13]);
  h.window = GetU16(buf, 14);
  h.checksum = GetU16(buf, 16);
  return h;
}

std::optional<UdpHeader> ParseUdp(std::span<const std::byte> buf) {
  if (buf.size() < kUdpHeaderBytes) return std::nullopt;
  UdpHeader h;
  h.src_port = GetU16(buf, 0);
  h.dst_port = GetU16(buf, 2);
  h.length = GetU16(buf, 4);
  if (h.length < kUdpHeaderBytes) return std::nullopt;
  h.checksum = GetU16(buf, 6);
  return h;
}

std::optional<IcmpHeader> ParseIcmp(std::span<const std::byte> buf) {
  if (buf.size() < kIcmpHeaderBytes) return std::nullopt;
  IcmpHeader h;
  h.type = static_cast<std::uint8_t>(buf[0]);
  if (h.type != 0 && h.type != 8) return std::nullopt;  // echo reply / request
  h.code = static_cast<std::uint8_t>(buf[1]);
  if (h.code != 0) return std::nullopt;
  h.checksum = GetU16(buf, 2);
  h.id = GetU16(buf, 4);
  h.seq = GetU16(buf, 6);
  return h;
}

FiveTuple DecodedFrame::tuple() const {
  FiveTuple t;
  t.src_ip = ip.src;
  t.dst_ip = ip.dst;
  t.protocol = ip.protocol;
  switch (ip.protocol) {
    case Protocol::kTcp:
      t.src_port = tcp.src_port;
      t.dst_port = tcp.dst_port;
      break;
    case Protocol::kUdp:
      t.src_port = udp.src_port;
      t.dst_port = udp.dst_port;
      break;
    case Protocol::kIcmp:
      // Echo requests carry the NAT-relevant identifier as the "source
      // port"; replies as the "destination port" (the side a WAN-port
      // lookup matches against).
      if (icmp.type == 8) {
        t.src_port = icmp.id;
        t.dst_port = 0;
      } else {
        t.src_port = 0;
        t.dst_port = icmp.id;
      }
      break;
  }
  return t;
}

std::size_t EncodeFrame(const Packet& packet, MacAddress src_mac, MacAddress dst_mac,
                        std::span<std::byte> out) {
  const std::size_t l4_bytes = L4HeaderBytes(packet.tuple.protocol);
  const std::size_t header_bytes = kEthernetHeaderBytes + kIpv4HeaderBytes + l4_bytes;
  const auto wanted = static_cast<std::size_t>(std::max<std::int64_t>(packet.size.count, 0));
  const std::size_t frame_bytes = std::clamp(wanted, header_bytes, kMaxFrameBytes);
  const auto total_length = static_cast<std::uint16_t>(frame_bytes - kEthernetHeaderBytes);
  const auto l4_length = static_cast<std::uint16_t>(total_length - kIpv4HeaderBytes);

  EthernetHeader eth{.dst = dst_mac, .src = src_mac, .ether_type = kEtherTypeIpv4};
  EncodeEthernet(eth, out);

  Ipv4Header ip;
  ip.total_length = total_length;
  // A deterministic, flow-distinguishing IP id: fold the tuple ports with
  // the timestamp so consecutive packets of one flow differ.
  ip.identification = static_cast<std::uint16_t>(
      (packet.tuple.src_port ^ packet.tuple.dst_port) + packet.timestamp.ms);
  ip.protocol = packet.tuple.protocol;
  ip.src = packet.tuple.src_ip;
  ip.dst = packet.tuple.dst_ip;
  EncodeIpv4(ip, out.subspan(kIpOffset));

  // Zero the payload first: a zero payload contributes nothing to the
  // ones'-complement sum, so the L4 checksum below stays exact without
  // summing the padding.
  std::memset(out.data() + header_bytes, 0, frame_bytes - header_bytes);

  auto l4 = out.subspan(kL4Offset);
  switch (packet.tuple.protocol) {
    case Protocol::kTcp: {
      TcpHeader tcp;
      tcp.src_port = packet.tuple.src_port;
      tcp.dst_port = packet.tuple.dst_port;
      tcp.seq = static_cast<std::uint32_t>(packet.timestamp.ms);
      tcp.flags = l4_length > kTcpHeaderBytes ? 0x18 : 0x02;  // PSH|ACK : SYN
      EncodeTcp(tcp, l4);
      const std::uint16_t csum = InternetChecksum(
          l4.first(kTcpHeaderBytes),
          PseudoHeaderSum(ip.src, ip.dst, Protocol::kTcp, l4_length));
      PutU16(l4, 16, csum);
      break;
    }
    case Protocol::kUdp: {
      UdpHeader udp;
      udp.src_port = packet.tuple.src_port;
      udp.dst_port = packet.tuple.dst_port;
      udp.length = l4_length;
      EncodeUdp(udp, l4);
      std::uint16_t csum = InternetChecksum(
          l4.first(kUdpHeaderBytes),
          PseudoHeaderSum(ip.src, ip.dst, Protocol::kUdp, l4_length));
      if (csum == 0) csum = 0xffff;  // RFC 768: 0 on the wire means "none"
      PutU16(l4, 6, csum);
      break;
    }
    case Protocol::kIcmp: {
      IcmpHeader icmp;
      icmp.type = packet.direction == Direction::kUpstream ? 8 : 0;
      icmp.id = packet.direction == Direction::kUpstream ? packet.tuple.src_port
                                                         : packet.tuple.dst_port;
      EncodeIcmp(icmp, l4);
      // ICMP checksums cover the message with no pseudo-header.
      const std::uint16_t csum = InternetChecksum(l4.first(kIcmpHeaderBytes));
      PutU16(l4, 2, csum);
      break;
    }
  }
  return frame_bytes;
}

std::optional<DecodedFrame> ParseFrame(std::span<const std::byte> frame) {
  auto eth = ParseEthernet(frame);
  if (!eth || eth->ether_type != kEtherTypeIpv4) return std::nullopt;
  auto ip = ParseIpv4(frame.subspan(kEthernetHeaderBytes));
  if (!ip) return std::nullopt;
  // The captured frame must hold the whole datagram the IP header claims.
  if (frame.size() < kEthernetHeaderBytes + ip->total_length) return std::nullopt;
  const std::size_t l4_avail = ip->total_length - kIpv4HeaderBytes;
  if (l4_avail < L4HeaderBytes(ip->protocol)) return std::nullopt;

  DecodedFrame out;
  out.eth = *eth;
  out.ip = *ip;
  out.frame_bytes = kEthernetHeaderBytes + ip->total_length;
  auto l4 = frame.subspan(kL4Offset, l4_avail);
  switch (ip->protocol) {
    case Protocol::kTcp: {
      auto tcp = ParseTcp(l4);
      if (!tcp) return std::nullopt;
      out.tcp = *tcp;
      break;
    }
    case Protocol::kUdp: {
      auto udp = ParseUdp(l4);
      if (!udp || udp->length != l4_avail) return std::nullopt;
      out.udp = *udp;
      break;
    }
    case Protocol::kIcmp: {
      auto icmp = ParseIcmp(l4);
      if (!icmp) return std::nullopt;
      out.icmp = *icmp;
      break;
    }
  }
  return out;
}

std::optional<FiveTuple> ExtractTuple(std::span<const std::byte> frame) {
  if (frame.size() < kL4Offset + kUdpHeaderBytes) return std::nullopt;
  if (GetU16(frame, 12) != kEtherTypeIpv4) return std::nullopt;
  if (static_cast<std::uint8_t>(frame[kIpOffset]) != 0x45) return std::nullopt;
  FiveTuple t;
  t.src_ip = Ipv4Address(GetU32(frame, kIpSrcOffset));
  t.dst_ip = Ipv4Address(GetU32(frame, kIpDstOffset));
  switch (static_cast<std::uint8_t>(frame[kIpProtoOffset])) {
    case 6:
      if (frame.size() < kL4Offset + kTcpHeaderBytes) return std::nullopt;
      t.protocol = Protocol::kTcp;
      t.src_port = GetU16(frame, kL4Offset);
      t.dst_port = GetU16(frame, kL4Offset + 2);
      break;
    case 17:
      t.protocol = Protocol::kUdp;
      t.src_port = GetU16(frame, kL4Offset);
      t.dst_port = GetU16(frame, kL4Offset + 2);
      break;
    case 1: {
      t.protocol = Protocol::kIcmp;
      const auto type = static_cast<std::uint8_t>(frame[kL4Offset]);
      if (type != 0 && type != 8) return std::nullopt;
      const std::uint16_t id = GetU16(frame, kIcmpIdOffset);
      if (type == 8) t.src_port = id; else t.dst_port = id;
      break;
    }
    default:
      return std::nullopt;
  }
  return t;
}

Packet PacketFromFrame(const DecodedFrame& frame, TimePoint timestamp, Direction direction) {
  Packet p;
  p.timestamp = timestamp;
  p.tuple = frame.tuple();
  p.size = Bytes{static_cast<std::int64_t>(frame.frame_bytes)};
  p.direction = direction;
  p.lan_mac = direction == Direction::kUpstream ? frame.eth.src : frame.eth.dst;
  return p;
}

SourceRewrite SourceRewrite::Make(Ipv4Address old_ip, std::uint16_t old_port,
                                  Ipv4Address new_ip, std::uint16_t new_port) {
  SourceRewrite rw;
  rw.new_ip = new_ip;
  rw.new_port = new_port;
  rw.ip_csum_delta = ChecksumDelta32(old_ip.value(), new_ip.value());
  // TCP/UDP checksums cover the pseudo-header, so the address change
  // contributes the same delta there, plus the port-word change.
  rw.l4_csum_delta = rw.ip_csum_delta + ChecksumDelta(old_port, new_port);
  return rw;
}

namespace {

/// Shared core of the source/dest rewrites: `ip_field_off`/`port_off`
/// select which (address, port) pair is edited.
void ApplyRewrite(std::span<std::byte> frame, const SourceRewrite& rw,
                  std::size_t ip_field_off, bool rewrite_src_port) {
  const Protocol proto = [&] {
    switch (static_cast<std::uint8_t>(frame[kIpProtoOffset])) {
      case 17: return Protocol::kUdp;
      case 1: return Protocol::kIcmp;
      default: return Protocol::kTcp;
    }
  }();

  PutU32(frame, ip_field_off, rw.new_ip.value());
  PutU16(frame, kIpChecksumOffset,
         ChecksumApply(GetU16(frame, kIpChecksumOffset), rw.ip_csum_delta));

  switch (proto) {
    case Protocol::kTcp: {
      PutU16(frame, rewrite_src_port ? kL4Offset : kL4Offset + 2, rw.new_port);
      PutU16(frame, kTcpChecksumOffset,
             ChecksumApply(GetU16(frame, kTcpChecksumOffset), rw.l4_csum_delta));
      break;
    }
    case Protocol::kUdp: {
      PutU16(frame, rewrite_src_port ? kL4Offset : kL4Offset + 2, rw.new_port);
      // A zero UDP checksum means "not computed" — leave it alone (RFC 3022 §4.1).
      const std::uint16_t csum = GetU16(frame, kUdpChecksumOffset);
      if (csum != 0) {
        PutU16(frame, kUdpChecksumOffset, ChecksumApply(csum, rw.l4_csum_delta));
      }
      break;
    }
    case Protocol::kIcmp: {
      // ICMP rewrites the identifier; its checksum has no pseudo-header,
      // so only the id-word component of the delta applies.
      const std::uint16_t old_id = GetU16(frame, kIcmpIdOffset);
      PutU16(frame, kIcmpIdOffset, rw.new_port);
      PutU16(frame, kIcmpChecksumOffset,
             ChecksumApply(GetU16(frame, kIcmpChecksumOffset),
                           ChecksumDelta(old_id, rw.new_port)));
      break;
    }
  }
}

}  // namespace

void ApplySourceRewrite(std::span<std::byte> frame, const SourceRewrite& rw) {
  ApplyRewrite(frame, rw, kIpSrcOffset, /*rewrite_src_port=*/true);
}

void ApplyDestRewrite(std::span<std::byte> frame, const SourceRewrite& rw) {
  ApplyRewrite(frame, rw, kIpDstOffset, /*rewrite_src_port=*/false);
}

}  // namespace bismark::net::wire
