// Minimal DNS substrate: an authoritative catalog, a caching stub resolver,
// and the A/CNAME response records the firmware's passive monitor samples
// (Section 3.2.2, "DNS responses").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "net/addr.h"

namespace bismark::net {

enum class DnsRecordType : std::uint8_t { kA, kCname };

/// One resource record in a response.
struct DnsRecord {
  DnsRecordType type{DnsRecordType::kA};
  std::string name;    // queried / owner name
  std::string target;  // CNAME target (empty for A records)
  Ipv4Address address; // A record address (zero for CNAMEs)
  Duration ttl{Minutes(5).ms};
};

/// A full answer to one query: the CNAME chain (possibly empty) followed by
/// A records, exactly the shape the gateway monitor records.
struct DnsResponse {
  std::string query;
  std::vector<DnsRecord> records;
  bool nxdomain{false};

  /// First A-record address, if any.
  [[nodiscard]] std::optional<Ipv4Address> address() const;
  /// The canonical (post-CNAME-chain) name.
  [[nodiscard]] std::string canonical_name() const;
};

/// Authoritative data for the simulated Internet: domains map either to a
/// set of A records or to a CNAME (e.g. CDN-fronted sites).
class ZoneCatalog {
 public:
  /// Register `domain` with one or more addresses.
  void add_domain(const std::string& domain, std::vector<Ipv4Address> addresses,
                  Duration ttl = Minutes(5));
  /// Register `domain` as a CNAME to `target` (which must resolve).
  void add_cname(const std::string& domain, const std::string& target,
                 Duration ttl = Minutes(5));

  /// Resolve a name, following at most `max_chain` CNAME links.
  [[nodiscard]] DnsResponse resolve(const std::string& domain, int max_chain = 8) const;

  [[nodiscard]] bool contains(const std::string& domain) const;
  [[nodiscard]] std::size_t size() const { return zones_.size(); }

 private:
  struct Zone {
    std::vector<Ipv4Address> addresses;
    std::string cname;
    Duration ttl{Minutes(5).ms};
  };
  std::map<std::string, Zone> zones_;
};

/// A caching stub resolver, one per home gateway. Cache hits do not emit
/// new DNS traffic; misses query the catalog and cache by TTL.
class DnsResolver {
 public:
  explicit DnsResolver(const ZoneCatalog& catalog);

  /// Resolve at simulated time `now`. `cache_hit` (optional out) reports
  /// whether the answer came from cache.
  DnsResponse resolve(const std::string& domain, TimePoint now, bool* cache_hit = nullptr);

  void flush() { cache_.clear(); }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct CacheEntry {
    DnsResponse response;
    TimePoint expires;
  };
  const ZoneCatalog* catalog_;
  std::map<std::string, CacheEntry> cache_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
};

}  // namespace bismark::net
