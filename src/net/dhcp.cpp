#include "net/dhcp.h"

namespace bismark::net {

DhcpPool::DhcpPool(Ipv4Cidr prefix, Ipv4Address gateway, Duration lease_time)
    : prefix_(prefix), gateway_(gateway), lease_time_(lease_time) {}

std::optional<Ipv4Address> DhcpPool::find_free_address() {
  const std::uint32_t hosts = prefix_.host_count();
  for (std::uint32_t attempts = 0; attempts < hosts; ++attempts) {
    const std::uint32_t idx = (next_host_ - 1) % hosts + 1;
    ++next_host_;
    const Ipv4Address candidate = prefix_.host(idx);
    if (candidate == gateway_) continue;
    if (!by_addr_.contains(candidate)) return candidate;
  }
  return std::nullopt;
}

std::optional<DhcpLease> DhcpPool::acquire(MacAddress mac, TimePoint now) {
  if (const auto it = by_mac_.find(mac); it != by_mac_.end()) {
    // Sticky lease: refresh and return the existing binding.
    it->second.issued = now;
    it->second.expires = now + lease_time_;
    return it->second;
  }
  const auto addr = find_free_address();
  if (!addr) return std::nullopt;
  DhcpLease lease{mac, *addr, now, now + lease_time_};
  by_mac_[mac] = lease;
  by_addr_[*addr] = mac;
  return lease;
}

bool DhcpPool::renew(MacAddress mac, TimePoint now) {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return false;
  it->second.issued = now;
  it->second.expires = now + lease_time_;
  return true;
}

void DhcpPool::release(MacAddress mac) {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return;
  by_addr_.erase(it->second.address);
  by_mac_.erase(it);
}

std::size_t DhcpPool::expire(TimePoint now) {
  std::size_t reclaimed = 0;
  for (auto it = by_mac_.begin(); it != by_mac_.end();) {
    if (it->second.expires <= now) {
      by_addr_.erase(it->second.address);
      it = by_mac_.erase(it);
      ++reclaimed;
    } else {
      ++it;
    }
  }
  return reclaimed;
}

std::optional<Ipv4Address> DhcpPool::address_of(MacAddress mac) const {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return std::nullopt;
  return it->second.address;
}

std::optional<MacAddress> DhcpPool::owner_of(Ipv4Address addr) const {
  const auto it = by_addr_.find(addr);
  if (it == by_addr_.end()) return std::nullopt;
  return it->second;
}

std::vector<DhcpLease> DhcpPool::leases() const {
  std::vector<DhcpLease> out;
  out.reserve(by_mac_.size());
  for (const auto& [mac, lease] : by_mac_) out.push_back(lease);
  return out;
}

}  // namespace bismark::net
