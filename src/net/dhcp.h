// DHCP lease pool for the home LAN. Devices obtain a private address from
// the gateway on association; the NAT later maps those addresses out.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/time.h"
#include "net/addr.h"

namespace bismark::net {

struct DhcpLease {
  MacAddress mac;
  Ipv4Address address;
  TimePoint issued;
  TimePoint expires;
};

/// Simple DHCP server over one prefix. Leases are sticky per MAC (the same
/// device gets the same address back while its lease is fresh or free),
/// mirroring common home-router behaviour.
class DhcpPool {
 public:
  DhcpPool(Ipv4Cidr prefix, Ipv4Address gateway, Duration lease_time = Hours(24));

  /// Request an address for `mac` at time `now`. Returns nullopt when the
  /// pool is exhausted.
  std::optional<DhcpLease> acquire(MacAddress mac, TimePoint now);

  /// Renew an existing lease; returns false if none exists.
  bool renew(MacAddress mac, TimePoint now);

  /// Explicit release (device leaves the network).
  void release(MacAddress mac);

  /// Drop expired leases as of `now`; returns the number reclaimed.
  std::size_t expire(TimePoint now);

  [[nodiscard]] std::optional<Ipv4Address> address_of(MacAddress mac) const;
  [[nodiscard]] std::optional<MacAddress> owner_of(Ipv4Address addr) const;
  [[nodiscard]] std::size_t active_leases() const { return by_mac_.size(); }
  [[nodiscard]] std::vector<DhcpLease> leases() const;
  [[nodiscard]] Ipv4Address gateway() const { return gateway_; }

 private:
  Ipv4Cidr prefix_;
  Ipv4Address gateway_;
  Duration lease_time_;
  std::map<MacAddress, DhcpLease> by_mac_;
  std::map<Ipv4Address, MacAddress> by_addr_;
  std::uint32_t next_host_{1};

  std::optional<Ipv4Address> find_free_address();
};

}  // namespace bismark::net
