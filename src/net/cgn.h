// Carrier-grade NAT (NAT444) — the ISP-side translator in front of homes.
//
// Richter et al. (PAPERS.md) measure that a large share of home deployments
// sit behind a second, carrier-grade NAT. We model the deployment style
// their ISP traces show: deterministic *port-block* allocation (RFC 7422) —
// each subscriber owns a disjoint, statically computable slice of the
// external port range, so logging one block assignment identifies the
// subscriber for any port, and (for us) per-subscriber state is independent
// of every other subscriber, which keeps sharded simulation deterministic
// at any worker count.
//
// Within its slice a subscriber's blocks are activated lazily, ports are
// recycled on idle expiry, and allocation fails — an exhaustion drop — when
// the slice or the per-subscriber port cap is spent. Those drops, and the
// ports-per-subscriber peaks, are what the new analysis summary and the
// CgnEventRecord dataset report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/time.h"
#include "net/addr.h"
#include "net/packet.h"
#include "net/wire.h"

namespace bismark::net {

/// Shape of one CGN instance.
struct CgnConfig {
  Ipv4Address external_address{Ipv4Address(198, 51, 100, 1)};
  std::uint16_t port_range_lo{1024};
  std::uint16_t port_range_hi{65535};
  /// Ports per allocation block (RFC 7422 deterministic NAT block size).
  std::uint16_t port_block_size{512};
  /// Hard cap on concurrently active ports per subscriber (state limit).
  std::uint32_t max_ports_per_subscriber{2048};
  /// Subscribers sharing this CGN; the port range is partitioned evenly
  /// (and disjointly) across them.
  std::uint32_t subscriber_count{64};
  Duration tcp_idle_timeout{Hours(2).ms};
  Duration udp_idle_timeout{Minutes(5).ms};
  Duration icmp_idle_timeout{Seconds(30).ms};
};

/// One active CGN translation.
struct CgnMapping {
  FiveTuple inside_tuple;  // post-home-NAT tuple (home WAN addr + port)
  std::uint16_t external_port{0};
  std::uint32_t subscriber{0};
  TimePoint last_activity;
  std::uint64_t packets{0};
  wire::SourceRewrite out_rewrite;  // inside src -> (external addr, port)
  wire::SourceRewrite in_rewrite;   // (external addr, port) -> inside src
};

/// Aggregate counters for one CGN instance.
struct CgnStats {
  std::uint64_t translations_out{0};
  std::uint64_t translations_in{0};
  std::uint64_t mappings_created{0};
  std::uint64_t mappings_expired{0};
  std::uint64_t port_exhaustion_drops{0};
  std::uint64_t unknown_inbound_drops{0};
};

/// Per-subscriber accounting — the unit the paper-style analysis wants
/// (ports per home, exhaustion experienced by a home).
struct CgnSubscriberStats {
  std::uint32_t blocks_allocated{0};
  std::uint32_t ports_in_use{0};
  std::uint32_t ports_peak{0};
  std::uint64_t translations_out{0};
  std::uint64_t translations_in{0};
  std::uint64_t exhaustion_drops{0};
  std::uint64_t inbound_drops{0};
};

/// NAT444 translator with deterministic per-subscriber port blocks.
class CgnTable {
 public:
  explicit CgnTable(CgnConfig config);

  /// Total blocks in the external port range.
  [[nodiscard]] std::uint32_t total_blocks() const;
  /// Blocks each subscriber's slice holds (disjoint, deterministic).
  [[nodiscard]] std::uint32_t blocks_per_subscriber() const;
  /// First external port of `subscriber`'s slice (the logged block base).
  [[nodiscard]] std::uint16_t slice_base_port(std::uint32_t subscriber) const;
  /// Ports a subscriber can ever hold: min(slice, max_ports_per_subscriber).
  [[nodiscard]] std::uint32_t subscriber_port_capacity(std::uint32_t subscriber) const;

  /// Translate an outbound packet already translated by the home NAT: the
  /// source (home WAN addr + port) becomes the CGN external address and a
  /// port from the subscriber's block slice. Returns false (drop) when the
  /// slice or the per-subscriber cap is exhausted.
  bool translate_outbound(std::uint32_t subscriber, Packet& packet);

  /// Inbound: external (addr, port) back to the inside (home WAN) endpoint.
  /// Port-restricted, like the home NAT. Returns false on no mapping.
  bool translate_inbound(Packet& packet);

  /// Wire-path variants: edit frame bytes in place with cached deltas.
  bool translate_outbound_wire(std::uint32_t subscriber, std::span<std::byte> frame,
                               TimePoint now);
  bool translate_inbound_wire(std::span<std::byte> frame, TimePoint now);

  /// Expire idle mappings; expired ports return to their subscriber's free
  /// list (block recycling). Returns how many mappings were removed.
  std::size_t expire_idle(TimePoint now);

  [[nodiscard]] const CgnStats& stats() const { return stats_; }
  [[nodiscard]] const CgnSubscriberStats& subscriber_stats(std::uint32_t s) const {
    return subscribers_[s].stats;
  }
  [[nodiscard]] std::size_t active_mappings() const { return by_inside_.size(); }
  [[nodiscard]] const CgnConfig& config() const { return config_; }

 private:
  struct ExternalKey {
    std::uint16_t port;
    Protocol proto;
    auto operator<=>(const ExternalKey&) const = default;
  };
  struct ExternalKeyHash {
    [[nodiscard]] std::size_t operator()(const ExternalKey& k) const noexcept {
      return static_cast<std::size_t>(HashMix64(
          static_cast<std::uint64_t>(k.port) << 8 | static_cast<std::uint64_t>(k.proto)));
    }
  };

  struct Subscriber {
    /// Ports recycled by expiry, reused LIFO before fresh cursor advance.
    std::vector<std::uint16_t> free_ports;
    /// Next never-used offset within the slice; crossing a block boundary
    /// lazily "allocates" the next block.
    std::uint32_t cursor{0};
    CgnSubscriberStats stats;
  };

  CgnConfig config_;
  std::vector<Subscriber> subscribers_;
  std::unordered_map<FiveTuple, CgnMapping, FiveTupleHash> by_inside_;
  std::unordered_map<ExternalKey, FiveTuple, ExternalKeyHash> by_external_;
  CgnStats stats_;

  [[nodiscard]] Duration timeout_for(Protocol proto) const;
  std::optional<std::uint16_t> allocate_port(std::uint32_t subscriber);
  CgnMapping* outbound_mapping(std::uint32_t subscriber, const FiveTuple& tuple, TimePoint now);
  CgnMapping* inbound_mapping(const FiveTuple& tuple);
};

}  // namespace bismark::net
