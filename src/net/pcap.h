// Deterministic libpcap-format capture of simulated traffic.
//
// Classic pcap (the libpcap 2.4 file format, not pcapng), written with no
// external dependencies so a study run can emit a capture that tcpdump and
// tshark read directly. Frames are staged per shard in PcapBuffer objects
// while workers run, then merged in canonical (timestamp, home, seq) order
// by WritePcapFile — the same discipline the record pipeline uses — so the
// capture is byte-identical at any --workers count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/time.h"

namespace bismark::net {

/// File magic for microsecond-resolution classic pcap, written in native
/// (little-endian) byte order as the format specifies.
inline constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
inline constexpr std::uint16_t kPcapVersionMajor = 2;
inline constexpr std::uint16_t kPcapVersionMinor = 4;
inline constexpr std::uint32_t kPcapSnapLen = 65535;
inline constexpr std::uint32_t kPcapLinkTypeEthernet = 1;  // LINKTYPE_EN10MB
inline constexpr std::size_t kPcapFileHeaderBytes = 24;
inline constexpr std::size_t kPcapRecordHeaderBytes = 16;

/// One captured frame plus the keys the merge sorts on. `home` is the
/// HomeId value — kept as a plain int so net does not depend on collect.
struct PcapRecord {
  TimePoint timestamp;
  int home{0};
  std::uint64_t seq{0};  ///< capture order within (shard, timestamp, home)
  std::uint32_t offset{0};
  std::uint32_t length{0};
};

/// A per-shard staging buffer: frames append in simulation order; bytes
/// live in one contiguous arena.
class PcapBuffer {
 public:
  /// Record one frame captured at `ts` on `home`'s WAN side.
  void capture(TimePoint ts, int home, std::span<const std::byte> frame);

  [[nodiscard]] std::size_t frame_count() const { return records_.size(); }
  [[nodiscard]] std::size_t byte_count() const { return bytes_.size(); }
  [[nodiscard]] const std::vector<PcapRecord>& records() const { return records_; }
  [[nodiscard]] std::span<const std::byte> frame_bytes(const PcapRecord& r) const {
    return std::span<const std::byte>(bytes_).subspan(r.offset, r.length);
  }

 private:
  std::vector<PcapRecord> records_;
  std::vector<std::byte> bytes_;
  std::uint64_t next_seq_{0};
};

/// Serialise the pcap global header into `out` (little-endian fields).
void EncodePcapFileHeader(std::span<std::byte> out);

/// Serialise one record header: timestamps from simulated milliseconds,
/// incl_len == orig_len == `frame_bytes` (whole frames are materialised).
void EncodePcapRecordHeader(std::span<std::byte> out, TimePoint ts,
                            std::uint32_t frame_bytes);

/// Merge the per-shard buffers (given in shard-index order) into canonical
/// (timestamp, home, shard, seq) order and write a classic pcap file.
/// Returns the total bytes written. Throws std::runtime_error on I/O
/// failure (via the checked-file seam).
std::size_t WritePcapFile(const std::string& path,
                          std::span<const PcapBuffer* const> shard_buffers);

}  // namespace bismark::net
