// Packet and five-tuple types flowing through the simulated home network.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>

#include "core/time.h"
#include "core/units.h"
#include "net/addr.h"

namespace bismark::net {

enum class Protocol : std::uint8_t { kTcp = 6, kUdp = 17, kIcmp = 1 };

[[nodiscard]] constexpr const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kTcp: return "tcp";
    case Protocol::kUdp: return "udp";
    case Protocol::kIcmp: return "icmp";
  }
  return "?";
}

/// Direction relative to the home network the gateway serves.
enum class Direction : std::uint8_t { kUpstream, kDownstream };

/// The classic transport five-tuple.
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  Protocol protocol{Protocol::kTcp};

  constexpr auto operator<=>(const FiveTuple&) const = default;

  /// The tuple as seen from the reply direction.
  [[nodiscard]] constexpr FiveTuple reversed() const {
    return {dst_ip, src_ip, dst_port, src_port, protocol};
  }
};

/// splitmix64-style finalizer: a full-avalanche 64-bit mix for hashing
/// tuple-like keys into unordered containers.
[[nodiscard]] constexpr std::uint64_t HashMix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hasher for unordered_map<FiveTuple, ...> (the NAT/CGN flow tables).
struct FiveTupleHash {
  [[nodiscard]] std::size_t operator()(const FiveTuple& t) const noexcept {
    const auto addrs = static_cast<std::uint64_t>(t.src_ip.value()) << 32 | t.dst_ip.value();
    const auto rest = static_cast<std::uint64_t>(t.src_port) << 24 |
                      static_cast<std::uint64_t>(t.dst_port) << 8 |
                      static_cast<std::uint64_t>(t.protocol);
    return static_cast<std::size_t>(HashMix64(addrs ^ HashMix64(rest)));
  }
};

/// A simulated packet at the gateway. We carry only the headers the
/// firmware's passive monitor inspects — no payloads are synthesised,
/// matching the paper's packet-statistics collection (size + timestamp).
struct Packet {
  TimePoint timestamp;
  FiveTuple tuple;
  Bytes size;
  Direction direction{Direction::kUpstream};
  /// Link-layer source on the LAN side (the device), used by the gateway
  /// for per-device attribution; zero for downstream packets until the NAT
  /// maps them back to a device.
  MacAddress lan_mac;
};

}  // namespace bismark::net
