// NAT44 — the technology the paper "peeks behind".
//
// The gateway's NAT rewrites every LAN flow onto the single WAN address, so
// the outside world sees one device where the home has many; the firmware's
// privileged position *behind* the NAT is what makes per-device attribution
// possible at all. We implement a full port-restricted NAT44: per-flow
// mappings, WAN port allocation, idle expiry with protocol-specific
// timeouts, inbound translation back to the owning device, and counters.
//
// Two translation entry points share one mapping table: the struct path
// (`translate_outbound`, the historical hot path) and the wire path
// (`translate_outbound_wire`), which edits a real Ethernet frame in place —
// fixed-offset tuple extraction, hash lookup, then an 8-byte rewrite plus
// two incremental checksum updates using deltas cached on the mapping when
// it was created (the fast-path header cache).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/time.h"
#include "net/addr.h"
#include "net/packet.h"
#include "net/wire.h"

namespace bismark::net {

/// Behaviour/configuration knobs for the translator.
struct NatConfig {
  Ipv4Address wan_address{Ipv4Address(203, 0, 113, 1)};
  std::uint16_t port_range_lo{1024};
  std::uint16_t port_range_hi{65535};
  Duration tcp_idle_timeout{Hours(2).ms};   // conservative conntrack-style default
  Duration udp_idle_timeout{Minutes(5).ms};
  Duration icmp_idle_timeout{Seconds(30).ms};
};

/// One active translation entry. The two SourceRewrite caches are computed
/// once at mapping creation so per-packet byte translation never touches
/// checksum arithmetic beyond one fold.
struct NatMapping {
  FiveTuple lan_tuple;        // original LAN five-tuple
  std::uint16_t wan_port{0};  // allocated external source port
  MacAddress device_mac;      // LAN device owning the flow
  TimePoint last_activity;
  std::uint64_t packets{0};
  wire::SourceRewrite out_rewrite;  // LAN src -> (WAN addr, wan_port)
  wire::SourceRewrite in_rewrite;   // (WAN addr, wan_port) -> LAN src
};

/// Counters exposed for tests and the NAT micro-benchmark.
struct NatStats {
  std::uint64_t translations_out{0};
  std::uint64_t translations_in{0};
  std::uint64_t mappings_created{0};
  std::uint64_t mappings_expired{0};
  std::uint64_t port_exhaustion_drops{0};
  std::uint64_t unknown_inbound_drops{0};
  [[nodiscard]] std::uint64_t active() const { return mappings_created - mappings_expired; }
};

/// Index for per-protocol counters: tcp, udp, icmp.
[[nodiscard]] constexpr std::size_t ProtoIndex(Protocol p) {
  switch (p) {
    case Protocol::kTcp: return 0;
    case Protocol::kUdp: return 1;
    case Protocol::kIcmp: return 2;
  }
  return 1;
}

/// Port-restricted cone NAT44.
class NatTable {
 public:
  explicit NatTable(NatConfig config);

  /// Translate an outbound (LAN→WAN) packet in place: the source becomes
  /// the WAN address and an allocated port. Creates a mapping on the first
  /// packet of a flow. Returns false (drop) on port exhaustion.
  bool translate_outbound(Packet& packet);

  /// Translate an inbound (WAN→LAN) packet in place: the destination
  /// (WAN addr + port) is rewritten back to the owning LAN endpoint, and
  /// `lan_mac` is restored for attribution. Returns false for packets with
  /// no matching mapping (unsolicited inbound — dropped, as a NAT does).
  bool translate_inbound(Packet& packet);

  /// Wire-path outbound translation: edit an Ethernet frame's bytes in
  /// place (source address/port + incremental IP/L4 checksum updates).
  /// `lan_mac` attributes a newly created mapping to its device. Returns
  /// false on malformed frames or port exhaustion.
  bool translate_outbound_wire(std::span<std::byte> frame, TimePoint now, MacAddress lan_mac);

  /// Wire-path inbound translation: destination rewrite back to the LAN
  /// endpoint with the same cached-delta arithmetic.
  bool translate_inbound_wire(std::span<std::byte> frame, TimePoint now);

  /// Expire idle mappings as of `now`. Returns how many were removed.
  std::size_t expire_idle(TimePoint now);

  /// Lookup the device owning an active WAN port (e.g. for diagnostics).
  [[nodiscard]] std::optional<MacAddress> owner_of_port(std::uint16_t wan_port,
                                                        Protocol proto) const;

  [[nodiscard]] const NatStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active_mappings() const { return by_lan_.size(); }
  [[nodiscard]] const NatConfig& config() const { return config_; }

  /// Snapshot of current mappings, sorted by LAN five-tuple. The backing
  /// tables are hash maps, so determinism comes from sorting here, not
  /// from iteration order.
  [[nodiscard]] std::vector<NatMapping> snapshot() const;

 private:
  struct WanKey {
    std::uint16_t port;
    Protocol proto;
    auto operator<=>(const WanKey&) const = default;
  };
  struct WanKeyHash {
    [[nodiscard]] std::size_t operator()(const WanKey& k) const noexcept {
      return static_cast<std::size_t>(HashMix64(
          static_cast<std::uint64_t>(k.port) << 8 | static_cast<std::uint64_t>(k.proto)));
    }
  };

  NatConfig config_;
  std::unordered_map<FiveTuple, NatMapping, FiveTupleHash> by_lan_;
  std::unordered_map<WanKey, FiveTuple, WanKeyHash> by_wan_;
  std::uint16_t next_port_;
  /// Active allocations per protocol — makes full-range exhaustion an O(1)
  /// check instead of a 64k-probe scan on every packet.
  std::array<std::uint32_t, 3> ports_in_use_{};
  NatStats stats_;

  [[nodiscard]] Duration timeout_for(Protocol proto) const;
  [[nodiscard]] std::uint32_t port_range_size() const {
    return static_cast<std::uint32_t>(config_.port_range_hi) - config_.port_range_lo + 1;
  }
  std::optional<std::uint16_t> allocate_port(Protocol proto);
  /// Find-or-create the mapping for an outbound tuple; nullptr on
  /// exhaustion (the drop counter is bumped here, once per attempt).
  NatMapping* outbound_mapping(const FiveTuple& tuple, TimePoint now, MacAddress lan_mac);
  /// Inbound lookup + port-restricted-cone check; nullptr on no match.
  NatMapping* inbound_mapping(const FiveTuple& tuple);
};

}  // namespace bismark::net
