// NAT44 — the technology the paper "peeks behind".
//
// The gateway's NAT rewrites every LAN flow onto the single WAN address, so
// the outside world sees one device where the home has many; the firmware's
// privileged position *behind* the NAT is what makes per-device attribution
// possible at all. We implement a full port-restricted NAT44: per-flow
// mappings, WAN port allocation, idle expiry with protocol-specific
// timeouts, inbound translation back to the owning device, and counters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/time.h"
#include "net/addr.h"
#include "net/packet.h"

namespace bismark::net {

/// Behaviour/configuration knobs for the translator.
struct NatConfig {
  Ipv4Address wan_address{Ipv4Address(203, 0, 113, 1)};
  std::uint16_t port_range_lo{1024};
  std::uint16_t port_range_hi{65535};
  Duration tcp_idle_timeout{Hours(2).ms};   // conservative conntrack-style default
  Duration udp_idle_timeout{Minutes(5).ms};
  Duration icmp_idle_timeout{Seconds(30).ms};
};

/// One active translation entry.
struct NatMapping {
  FiveTuple lan_tuple;        // original LAN five-tuple
  std::uint16_t wan_port{0};  // allocated external source port
  MacAddress device_mac;      // LAN device owning the flow
  TimePoint last_activity;
  std::uint64_t packets{0};
};

/// Counters exposed for tests and the NAT micro-benchmark.
struct NatStats {
  std::uint64_t translations_out{0};
  std::uint64_t translations_in{0};
  std::uint64_t mappings_created{0};
  std::uint64_t mappings_expired{0};
  std::uint64_t port_exhaustion_drops{0};
  std::uint64_t unknown_inbound_drops{0};
  [[nodiscard]] std::uint64_t active() const { return mappings_created - mappings_expired; }
};

/// Port-restricted cone NAT44.
class NatTable {
 public:
  explicit NatTable(NatConfig config);

  /// Translate an outbound (LAN→WAN) packet in place: the source becomes
  /// the WAN address and an allocated port. Creates a mapping on the first
  /// packet of a flow. Returns false (drop) on port exhaustion.
  bool translate_outbound(Packet& packet);

  /// Translate an inbound (WAN→LAN) packet in place: the destination
  /// (WAN addr + port) is rewritten back to the owning LAN endpoint, and
  /// `lan_mac` is restored for attribution. Returns false for packets with
  /// no matching mapping (unsolicited inbound — dropped, as a NAT does).
  bool translate_inbound(Packet& packet);

  /// Expire idle mappings as of `now`. Returns how many were removed.
  std::size_t expire_idle(TimePoint now);

  /// Lookup the device owning an active WAN port (e.g. for diagnostics).
  [[nodiscard]] std::optional<MacAddress> owner_of_port(std::uint16_t wan_port,
                                                        Protocol proto) const;

  [[nodiscard]] const NatStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active_mappings() const { return by_lan_.size(); }
  [[nodiscard]] const NatConfig& config() const { return config_; }

  /// Snapshot of current mappings (for the NAT walkthrough example).
  [[nodiscard]] std::vector<NatMapping> snapshot() const;

 private:
  struct WanKey {
    std::uint16_t port;
    Protocol proto;
    auto operator<=>(const WanKey&) const = default;
  };

  NatConfig config_;
  std::map<FiveTuple, NatMapping> by_lan_;
  std::map<WanKey, FiveTuple> by_wan_;
  std::uint16_t next_port_;
  NatStats stats_;

  [[nodiscard]] Duration timeout_for(Protocol proto) const;
  std::optional<std::uint16_t> allocate_port(Protocol proto);
};

}  // namespace bismark::net
