// Link-layer and network-layer address types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bismark::net {

/// A 48-bit MAC address. The study hashes the *lower 24 bits* of every MAC
/// before storage (Section 3.2), keeping the OUI so vendors can still be
/// identified (Fig. 12) — `anonymized()` implements exactly that.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

  /// Build from a 24-bit OUI and a 24-bit NIC-specific suffix.
  static constexpr MacAddress FromParts(std::uint32_t oui, std::uint32_t nic) {
    return MacAddress({static_cast<std::uint8_t>(oui >> 16), static_cast<std::uint8_t>(oui >> 8),
                       static_cast<std::uint8_t>(oui), static_cast<std::uint8_t>(nic >> 16),
                       static_cast<std::uint8_t>(nic >> 8), static_cast<std::uint8_t>(nic)});
  }

  /// Parse "aa:bb:cc:dd:ee:ff"; returns nullopt on malformed input.
  static std::optional<MacAddress> Parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t oui() const {
    return (static_cast<std::uint32_t>(octets_[0]) << 16) |
           (static_cast<std::uint32_t>(octets_[1]) << 8) | octets_[2];
  }
  [[nodiscard]] constexpr std::uint32_t nic() const {
    return (static_cast<std::uint32_t>(octets_[3]) << 16) |
           (static_cast<std::uint32_t>(octets_[4]) << 8) | octets_[5];
  }
  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const { return octets_; }

  /// The anonymised form used in the Traffic data set: OUI preserved,
  /// lower 24 bits replaced by a keyed hash of themselves.
  [[nodiscard]] MacAddress anonymized(std::uint64_t key) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] constexpr std::uint64_t as_u64() const {
    std::uint64_t v = 0;
    for (auto o : octets_) v = (v << 8) | o;
    return v;
  }

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// An IPv4 address as a host-order 32-bit integer.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  static std::optional<Ipv4Address> Parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// True for RFC 1918 private space (the home side of the NAT).
  [[nodiscard]] constexpr bool is_private() const {
    return (value_ >> 24) == 10 ||                       // 10/8
           (value_ >> 20) == 0xac1 ||                    // 172.16/12
           (value_ >> 16) == 0xc0a8;                     // 192.168/16
  }

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_{0};
};

/// An IPv4 prefix, e.g. 192.168.1.0/24.
struct Ipv4Cidr {
  Ipv4Address base;
  int prefix_len{24};

  [[nodiscard]] constexpr std::uint32_t mask() const {
    return prefix_len == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_len);
  }
  [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
    return (a.value() & mask()) == (base.value() & mask());
  }
  /// Number of host addresses (excluding network/broadcast for /30 and wider).
  [[nodiscard]] constexpr std::uint32_t host_count() const {
    const std::uint32_t total = prefix_len >= 32 ? 1u : (1u << (32 - prefix_len));
    return total > 2 ? total - 2 : total;
  }
  /// The i-th host address (1-based within the prefix).
  [[nodiscard]] constexpr Ipv4Address host(std::uint32_t i) const {
    return Ipv4Address((base.value() & mask()) + i);
  }
};

}  // namespace bismark::net
