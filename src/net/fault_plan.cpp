#include "net/fault_plan.h"

namespace bismark::net {

DeliveryOutcome FaultPlan::attempt(TimePoint when, Rng& rng) const {
  if (collector_down_.contains(when)) return DeliveryOutcome::kCollectorDown;
  if (config_.upload_loss_prob > 0.0 && rng.bernoulli(config_.upload_loss_prob)) {
    return DeliveryOutcome::kLostRequest;
  }
  if (config_.ack_loss_prob > 0.0 && rng.bernoulli(config_.ack_loss_prob)) {
    return DeliveryOutcome::kLostAck;
  }
  return DeliveryOutcome::kDelivered;
}

Duration FaultPlan::round_trip(Rng& rng) const {
  Duration rtt = config_.base_latency;
  if (config_.latency_jitter.ms > 0) {
    rtt += Millis(rng.uniform_int(0, config_.latency_jitter.ms - 1));
  }
  return rtt;
}

}  // namespace bismark::net
