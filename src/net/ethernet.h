// The gateway's wired side: a 4-port learning switch, as on the WNDR3800.
// Section 5.2 observes that few homes use more than two of the four ports;
// modelling the ports explicitly lets the Devices dataset count wired
// clients the way the firmware does.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/time.h"
#include "net/addr.h"

namespace bismark::net {

/// A small learning switch with a fixed number of ports.
class EthernetSwitch {
 public:
  explicit EthernetSwitch(int port_count = 4);

  /// Plug a device into the first free port; returns the port index or
  /// nullopt when all ports are occupied.
  std::optional<int> plug_in(MacAddress mac, TimePoint now);

  /// Unplug whichever port `mac` occupies; no-op if absent.
  void unplug(MacAddress mac);

  /// Record a frame from `mac` (refreshes the learning-table entry).
  void observe_frame(MacAddress mac, TimePoint now);

  [[nodiscard]] int port_count() const { return static_cast<int>(ports_.size()); }
  [[nodiscard]] int ports_in_use() const;
  [[nodiscard]] bool is_connected(MacAddress mac) const;
  [[nodiscard]] std::optional<int> port_of(MacAddress mac) const;
  /// MACs of all currently-connected devices.
  [[nodiscard]] std::vector<MacAddress> connected() const;
  /// Last time a frame was seen from `mac` (nullopt if never / unplugged).
  [[nodiscard]] std::optional<TimePoint> last_seen(MacAddress mac) const;

 private:
  struct Port {
    bool occupied{false};
    MacAddress mac;
    TimePoint last_seen;
  };
  std::vector<Port> ports_;
  std::map<MacAddress, int> by_mac_;
};

}  // namespace bismark::net
