#include "net/ethernet.h"

namespace bismark::net {

EthernetSwitch::EthernetSwitch(int port_count)
    : ports_(static_cast<std::size_t>(port_count < 1 ? 1 : port_count)) {}

std::optional<int> EthernetSwitch::plug_in(MacAddress mac, TimePoint now) {
  if (const auto existing = port_of(mac)) return existing;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (!ports_[i].occupied) {
      ports_[i] = Port{true, mac, now};
      by_mac_[mac] = static_cast<int>(i);
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

void EthernetSwitch::unplug(MacAddress mac) {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return;
  ports_[static_cast<std::size_t>(it->second)] = Port{};
  by_mac_.erase(it);
}

void EthernetSwitch::observe_frame(MacAddress mac, TimePoint now) {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return;
  ports_[static_cast<std::size_t>(it->second)].last_seen = now;
}

int EthernetSwitch::ports_in_use() const {
  int used = 0;
  for (const auto& p : ports_) used += p.occupied ? 1 : 0;
  return used;
}

bool EthernetSwitch::is_connected(MacAddress mac) const { return by_mac_.contains(mac); }

std::optional<int> EthernetSwitch::port_of(MacAddress mac) const {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return std::nullopt;
  return it->second;
}

std::vector<MacAddress> EthernetSwitch::connected() const {
  std::vector<MacAddress> out;
  out.reserve(by_mac_.size());
  for (const auto& [mac, port] : by_mac_) out.push_back(mac);
  return out;
}

std::optional<TimePoint> EthernetSwitch::last_seen(MacAddress mac) const {
  const auto it = by_mac_.find(mac);
  if (it == by_mac_.end()) return std::nullopt;
  return ports_[static_cast<std::size_t>(it->second)].last_seen;
}

}  // namespace bismark::net
