#include "core/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace bismark {

namespace {
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::uint64_t HashString(std::string_view s) {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; one draw per call keeps the stream trivially forkable.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double log_mean, double log_stddev) {
  return std::exp(normal(log_mean, log_stddev));
}

double Rng::pareto(double x_m, double alpha) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_m / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  if (weights.empty()) return 0;
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(0.0, weights[i]);
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t tag) const {
  std::uint64_t mix = seed_ ^ (tag * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  std::uint64_t sm = mix;
  // Run splitmix a couple of rounds so nearby tags diverge fully.
  (void)SplitMix64(sm);
  return Rng(SplitMix64(sm));
}

Rng Rng::fork(std::string_view tag) const { return fork(HashString(tag)); }

Rng Rng::Stream(std::uint64_t seed, std::uint64_t salt, std::uint64_t stream) {
  return Rng(seed ^ salt).fork(stream);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha) {
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), alpha);
    cdf_.push_back(total);
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t i) const {
  if (i >= cdf_.size()) return 0.0;
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace bismark
