// Sets of disjoint time intervals.
//
// Availability timelines (router on-periods, Fig. 6), device presence
// schedules, and downtime detection (gaps between heartbeats, Section 4)
// all reduce to interval arithmetic over simulated time.
#pragma once

#include <vector>

#include "core/time.h"

namespace bismark {

/// A half-open interval [start, end).
struct Interval {
  TimePoint start;
  TimePoint end;

  [[nodiscard]] Duration length() const { return end - start; }
  [[nodiscard]] bool contains(TimePoint t) const { return t >= start && t < end; }
  [[nodiscard]] bool empty() const { return end <= start; }
};

/// An ordered set of disjoint half-open intervals. Adding an interval that
/// touches or overlaps existing ones merges them.
class IntervalSet {
 public:
  IntervalSet() = default;

  void add(Interval iv);
  void add(TimePoint start, TimePoint end) { add(Interval{start, end}); }

  [[nodiscard]] bool contains(TimePoint t) const;
  /// The interval covering `t`, if any.
  [[nodiscard]] const Interval* containing(TimePoint t) const;
  [[nodiscard]] const std::vector<Interval>& intervals() const { return intervals_; }
  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  [[nodiscard]] std::size_t size() const { return intervals_.size(); }

  /// Total covered duration.
  [[nodiscard]] Duration total() const;
  /// Covered duration within [lo, hi).
  [[nodiscard]] Duration covered_within(TimePoint lo, TimePoint hi) const;
  /// Fraction of [lo, hi) covered, in [0, 1].
  [[nodiscard]] double coverage_fraction(TimePoint lo, TimePoint hi) const;

  /// The uncovered gaps strictly inside [lo, hi).
  [[nodiscard]] std::vector<Interval> gaps_within(TimePoint lo, TimePoint hi) const;

  /// Set intersection.
  [[nodiscard]] IntervalSet intersect(const IntervalSet& other) const;
  /// Clip to a window.
  [[nodiscard]] IntervalSet clipped(TimePoint lo, TimePoint hi) const;

 private:
  std::vector<Interval> intervals_;  // sorted, disjoint, non-touching
};

}  // namespace bismark
