// Fixed-bin histograms, used for diurnal profiles (Fig. 13) and
// per-category counts (Fig. 12, Fig. 18).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bismark {

/// Histogram over [lo, hi) with uniform-width bins. Values outside the
/// range clamp into the first/last bin so no sample is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }
  /// Fraction of total weight in bin i (0 if the histogram is empty).
  [[nodiscard]] double fraction(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_{0.0};
};

/// Mean-of-values-per-bin accumulator: add (bin, value) observations and
/// read back per-bin means — exactly what the hour-of-day device plots need.
class BinnedMean {
 public:
  explicit BinnedMean(std::size_t bins);

  void add(std::size_t bin, double value);

  [[nodiscard]] std::size_t bins() const { return sums_.size(); }
  [[nodiscard]] double mean(std::size_t bin) const;
  [[nodiscard]] double stddev(std::size_t bin) const;
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_[bin]; }

 private:
  std::vector<double> sums_;
  std::vector<double> sq_sums_;
  std::vector<std::size_t> counts_;
};

/// Counter over string categories, sorted by descending count for output.
class CategoryCounter {
 public:
  void add(const std::string& key, double weight = 1.0);

  struct Entry {
    std::string key;
    double count;
  };
  /// Entries sorted by descending count (ties broken by key).
  [[nodiscard]] std::vector<Entry> sorted() const;
  [[nodiscard]] double total() const { return total_; }
  [[nodiscard]] double count_of(const std::string& key) const;
  [[nodiscard]] std::size_t distinct() const;

 private:
  std::vector<Entry> entries_;  // linear; category sets here are small
  double total_{0.0};
};

}  // namespace bismark
