#include "core/stats.h"

#include <algorithm>
#include <cmath>

namespace bismark {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double QuantileSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Quantile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return QuantileSorted(copy, q);
}

double Median(std::span<const double> values) { return Quantile(values, 0.5); }

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double Sum(std::span<const double> values) {
  double s = 0.0;
  for (double v : values) s += v;
  return s;
}

double Correlation(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const double mx = Mean(x.subspan(0, n));
  const double my = Mean(y.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void Sample::ensure_sorted() const {
  if (dirty_) {
    std::sort(values_.begin(), values_.end());
    dirty_ = false;
  }
}

double Sample::quantile(double q) const {
  ensure_sorted();
  return QuantileSorted(values_, q);
}

double Sample::mean() const { return Mean(values_); }

double Sample::min() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Sample::max() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.back();
}

}  // namespace bismark
