#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>

namespace bismark {

namespace {

// Little-endian scalar codec for the sketch checkpoint blobs. Kept local:
// core cannot depend on collect's BinWriter, and the blobs are opaque to
// everything but these two classes.
void PutU64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, 8);
}

void PutF64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

struct BlobReader {
  const char* p;
  std::size_t left;

  bool u64(std::uint64_t* v) {
    if (left < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
    }
    p += 8;
    left -= 8;
    return true;
  }

  bool f64(double* v) {
    std::uint64_t bits;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }

  bool tag(const char* magic) {
    if (left < 4 || std::memcmp(p, magic, 4) != 0) return false;
    p += 4;
    left -= 4;
    return true;
  }
};

}  // namespace

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double QuantileSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Quantile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return QuantileSorted(copy, q);
}

double Median(std::span<const double> values) { return Quantile(values, 0.5); }

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double Sum(std::span<const double> values) {
  double s = 0.0;
  for (double v : values) s += v;
  return s;
}

double Correlation(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const double mx = Mean(x.subspan(0, n));
  const double my = Mean(y.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

QuantileSketch::QuantileSketch(double eps) : eps_(std::clamp(eps, 1e-6, 0.5)) {}

void QuantileSketch::add(double v) {
  // Find insertion point: first tuple with value >= v.
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), v,
                             [](const Tuple& t, double x) { return t.v < x; });
  Tuple fresh{v, 1, 0};
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insert: the successor may carry mass folded up from values
    // below v, so the new tuple inherits that rank uncertainty. Extremes
    // (new min/max) are exact, which keeps min()/max() precise.
    fresh.delta = it->g + it->delta - 1;
  }
  tuples_.insert(it, fresh);
  ++n_;
  // Amortize compression: every 1/(2 eps) inserts keeps the invariant
  // g + delta <= 2 eps n while touching the array O(1) amortized.
  if (++since_compress_ >= static_cast<std::size_t>(1.0 / (2.0 * eps_))) {
    compress();
    since_compress_ = 0;
  }
}

void QuantileSketch::compress() {
  if (tuples_.size() < 3) return;
  const auto cap = static_cast<std::uint64_t>(2.0 * eps_ * static_cast<double>(n_));
  // Fold each tuple into its successor when the combined slack fits; the
  // first and last tuples are kept so min/max stay exact.
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  std::uint64_t carry = 0;
  out.push_back(tuples_.front());
  for (std::size_t i = 1; i < tuples_.size(); ++i) {
    Tuple t = tuples_[i];
    t.g += carry;
    carry = 0;
    const bool last = (i + 1 == tuples_.size());
    if (!last && t.g + tuples_[i + 1].g + tuples_[i + 1].delta < cap) {
      carry = t.g;  // fold this tuple into its successor
    } else {
      out.push_back(t);
    }
  }
  tuples_ = std::move(out);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Standard GK merge: interleave the tuple lists by value; each side's
  // rank uncertainty adds, so the result honours eps_a + eps_b.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(), other.tuples_.end(),
             std::back_inserter(merged),
             [](const Tuple& a, const Tuple& b) { return a.v < b.v; });
  tuples_ = std::move(merged);
  n_ += other.n_;
  eps_ = std::min(eps_ + other.eps_, 0.5);
  compress();
}

double QuantileSketch::quantile(double q) const {
  if (tuples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return tuples_.front().v;  // extremes are kept exact
  if (q == 1.0) return tuples_.back().v;
  // Canonical GK query: target 1-based rank r; return the value of the last
  // tuple whose maximum possible rank still fits under r + eps*n. Together
  // with the g + delta <= 2*eps*n invariant this bounds rank error by eps*n.
  const double target = 1.0 + q * static_cast<double>(n_ - 1);
  const double limit = target + eps_ * static_cast<double>(n_);
  std::uint64_t r_min = tuples_.front().g;
  for (std::size_t i = 1; i < tuples_.size(); ++i) {
    if (static_cast<double>(r_min + tuples_[i].g + tuples_[i].delta) > limit) {
      return tuples_[i - 1].v;
    }
    r_min += tuples_[i].g;
  }
  return tuples_.back().v;
}

std::string QuantileSketch::Serialize() const {
  std::string out;
  out.reserve(36 + 24 * tuples_.size());
  out.append("GKS1", 4);
  PutF64(out, eps_);
  PutU64(out, n_);
  PutU64(out, since_compress_);
  PutU64(out, tuples_.size());
  for (const Tuple& t : tuples_) {
    PutF64(out, t.v);
    PutU64(out, t.g);
    PutU64(out, t.delta);
  }
  return out;
}

bool QuantileSketch::Deserialize(const std::string& blob, QuantileSketch* out) {
  BlobReader r{blob.data(), blob.size()};
  if (!r.tag("GKS1")) return false;
  QuantileSketch sketch;
  std::uint64_t n = 0, since = 0, count = 0;
  if (!r.f64(&sketch.eps_) || !r.u64(&n) || !r.u64(&since) || !r.u64(&count)) return false;
  if (!(sketch.eps_ >= 1e-6 && sketch.eps_ <= 0.5)) return false;  // rejects NaN too
  if (count > blob.size() / 24 + 1) return false;
  sketch.n_ = static_cast<std::size_t>(n);
  sketch.since_compress_ = static_cast<std::size_t>(since);
  sketch.tuples_.reserve(static_cast<std::size_t>(count));
  std::uint64_t mass = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Tuple t{};
    if (!r.f64(&t.v) || !r.u64(&t.g) || !r.u64(&t.delta)) return false;
    if (t.g == 0 || std::isnan(t.v)) return false;
    if (!sketch.tuples_.empty() && t.v < sketch.tuples_.back().v) return false;
    mass += t.g;
    sketch.tuples_.push_back(t);
  }
  if (r.left != 0 || mass != n) return false;  // trailing bytes / rank-mass mismatch
  *out = std::move(sketch);
  return true;
}

double QuantileSketch::min() const { return tuples_.empty() ? 0.0 : tuples_.front().v; }

double QuantileSketch::max() const { return tuples_.empty() ? 0.0 : tuples_.back().v; }

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::add(double v) {
  if (n_ < 5) {
    heights_[n_] = v;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
    }
    return;
  }
  // Locate the cell containing v and clamp the extreme markers.
  int k;
  if (v < heights_[0]) {
    heights_[0] = v;
    k = 0;
  } else if (v >= heights_[4]) {
    heights_[4] = v;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && v >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++n_;
  // Adjust interior markers toward their desired positions (parabolic, with
  // linear fallback when the parabola would break monotonicity).
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double hp =
          heights_[i] + s / (positions_[i + 1] - positions_[i - 1]) *
                            ((below + s) * (heights_[i + 1] - heights_[i]) / above +
                             (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        const int j = i + static_cast<int>(s);
        heights_[i] += s * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    double copy[5];
    std::copy(heights_, heights_ + n_, copy);
    std::sort(copy, copy + n_);
    return QuantileSorted(std::span<const double>(copy, n_), q_);
  }
  return heights_[2];
}

std::string P2Quantile::Serialize() const {
  std::string out;
  out.reserve(180);
  out.append("P2Q1", 4);
  PutF64(out, q_);
  PutU64(out, n_);
  for (double h : heights_) PutF64(out, h);
  for (double p : positions_) PutF64(out, p);
  for (double d : desired_) PutF64(out, d);
  for (double i : increments_) PutF64(out, i);
  return out;
}

bool P2Quantile::Deserialize(const std::string& blob, P2Quantile* out) {
  BlobReader r{blob.data(), blob.size()};
  if (!r.tag("P2Q1")) return false;
  P2Quantile est(0.5);
  std::uint64_t n = 0;
  if (!r.f64(&est.q_) || !r.u64(&n)) return false;
  if (!(est.q_ >= 0.0 && est.q_ <= 1.0)) return false;  // rejects NaN too
  est.n_ = static_cast<std::size_t>(n);
  for (double& h : est.heights_) {
    if (!r.f64(&h)) return false;
  }
  for (double& p : est.positions_) {
    if (!r.f64(&p)) return false;
  }
  for (double& d : est.desired_) {
    if (!r.f64(&d)) return false;
  }
  for (double& i : est.increments_) {
    if (!r.f64(&i)) return false;
  }
  if (r.left != 0) return false;
  *out = est;
  return true;
}

void Sample::ensure_sorted() const {
  if (dirty_) {
    std::sort(values_.begin(), values_.end());
    dirty_ = false;
  }
}

double Sample::quantile(double q) const {
  ensure_sorted();
  return QuantileSorted(values_, q);
}

double Sample::mean() const { return Mean(values_); }

double Sample::min() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Sample::max() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.back();
}

}  // namespace bismark
