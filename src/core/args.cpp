#include "core/args.h"

#include <charconv>

namespace bismark {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, true, std::nullopt};
  declaration_order_.push_back(name);
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           std::optional<std::string> default_value) {
  specs_[name] = Spec{help, false, std::move(default_value)};
  declaration_order_.push_back(name);
}

bool ArgParser::parse(const std::vector<std::string>& args) {
  values_.clear();
  positional_.clear();
  error_.clear();

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      error_ = "unknown option --" + name;
      return false;
    }
    if (it->second.is_flag) {
      if (inline_value) {
        error_ = "flag --" + name + " does not take a value";
        return false;
      }
      values_[name] = "true";
    } else if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= args.size()) {
        error_ = "option --" + name + " requires a value";
        return false;
      }
      values_[name] = args[++i];
    }
  }
  return true;
}

bool ArgParser::parse(int argc, char** argv, int skip) {
  std::vector<std::string> args;
  for (int i = skip; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool ArgParser::has(const std::string& name) const { return values_.contains(name); }

std::optional<std::string> ArgParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  if (const auto it = specs_.find(name); it != specs_.end()) return it->second.default_value;
  return std::nullopt;
}

std::string ArgParser::get_or(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  std::int64_t out{};
  const char* begin = value->data();
  const char* end = begin + value->size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return (ec == std::errc() && ptr == end) ? out : fallback;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*value, &pos);
    return pos == value->size() ? out : fallback;
  } catch (...) {
    return fallback;
  }
}

std::string ArgParser::help(const std::string& program_name) const {
  std::string out = description_ + "\n\nusage: " + program_name + " [options]\n\noptions:\n";
  for (const auto& name : declaration_order_) {
    const Spec& spec = specs_.at(name);
    out += "  --" + name;
    if (!spec.is_flag) {
      out += " <value>";
      if (spec.default_value) out += " (default: " + *spec.default_value + ")";
    }
    out += "\n      " + spec.help + "\n";
  }
  return out;
}

}  // namespace bismark
