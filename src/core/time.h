// Simulated time for the BISmark reproduction.
//
// All simulation time is carried as integer milliseconds since the Unix
// epoch (UTC). Using real calendar time (rather than "seconds since sim
// start") matters for this paper: the analyses split on weekday vs weekend
// (Fig. 13) and render dated availability timelines (Fig. 6), and homes in
// different countries observe different local times of day.
#pragma once

#include <cstdint>
#include <string>

namespace bismark {

/// Millisecond-resolution duration. A plain strong type rather than
/// std::chrono so that arithmetic with TimePoint stays trivially inlineable
/// and serialisable.
struct Duration {
  std::int64_t ms{0};

  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ms) / 1e3; }
  [[nodiscard]] constexpr double minutes() const { return static_cast<double>(ms) / 60e3; }
  [[nodiscard]] constexpr double hours() const { return static_cast<double>(ms) / 3600e3; }
  [[nodiscard]] constexpr double days() const { return static_cast<double>(ms) / 86400e3; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return {ms + o.ms}; }
  constexpr Duration operator-(Duration o) const { return {ms - o.ms}; }
  constexpr Duration operator*(std::int64_t k) const { return {ms * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {ms / k}; }
  constexpr Duration& operator+=(Duration o) { ms += o.ms; return *this; }
};

constexpr Duration Millis(std::int64_t v) { return {v}; }
constexpr Duration Seconds(double v) { return {static_cast<std::int64_t>(v * 1e3)}; }
constexpr Duration Minutes(double v) { return {static_cast<std::int64_t>(v * 60e3)}; }
constexpr Duration Hours(double v) { return {static_cast<std::int64_t>(v * 3600e3)}; }
constexpr Duration Days(double v) { return {static_cast<std::int64_t>(v * 86400e3)}; }

enum class Weekday : int { kMonday = 0, kTuesday, kWednesday, kThursday, kFriday, kSaturday, kSunday };

[[nodiscard]] constexpr bool IsWeekend(Weekday d) {
  return d == Weekday::kSaturday || d == Weekday::kSunday;
}

/// A point in simulated time: milliseconds since 1970-01-01T00:00Z.
struct TimePoint {
  std::int64_t ms{0};

  constexpr auto operator<=>(const TimePoint&) const = default;
  constexpr TimePoint operator+(Duration d) const { return {ms + d.ms}; }
  constexpr TimePoint operator-(Duration d) const { return {ms - d.ms}; }
  constexpr Duration operator-(TimePoint o) const { return {ms - o.ms}; }
  constexpr TimePoint& operator+=(Duration d) { ms += d.ms; return *this; }

  /// Whole days since the epoch (UTC midnight boundaries).
  [[nodiscard]] std::int64_t utc_day() const;
};

/// Civil (proleptic Gregorian) date.
struct CivilDate {
  int year{1970};
  int month{1};  // 1..12
  int day{1};    // 1..31
};

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
[[nodiscard]] std::int64_t DaysFromCivil(CivilDate d);

/// Inverse of DaysFromCivil.
[[nodiscard]] CivilDate CivilFromDays(std::int64_t days);

/// Construct a TimePoint from a civil UTC date/time.
[[nodiscard]] TimePoint MakeTime(CivilDate d, int hour = 0, int minute = 0, int second = 0);

/// Weekday of a TimePoint interpreted in UTC.
[[nodiscard]] Weekday WeekdayOf(TimePoint t);

/// A fixed offset from UTC, standing in for a home's local timezone.
/// Diurnal behaviour (Fig. 13) is driven by *local* hours.
struct TimeZone {
  Duration utc_offset{0};

  [[nodiscard]] TimePoint to_local(TimePoint utc) const { return utc + utc_offset; }
  /// Local hour of day in [0, 24).
  [[nodiscard]] int local_hour(TimePoint utc) const;
  /// Fractional local hour of day in [0, 24).
  [[nodiscard]] double local_hour_frac(TimePoint utc) const;
  [[nodiscard]] Weekday local_weekday(TimePoint utc) const { return WeekdayOf(to_local(utc)); }
  /// Local midnight at or before the given instant.
  [[nodiscard]] TimePoint local_midnight(TimePoint utc) const;
};

/// "YYYY-MM-DD HH:MM" rendering (UTC) for logs and bench output.
[[nodiscard]] std::string FormatTime(TimePoint t);
/// "MM-DD" rendering (UTC), mirroring the paper's Fig. 6 axis labels.
[[nodiscard]] std::string FormatMonthDay(TimePoint t);
/// Compact duration rendering, e.g. "1d 4h", "23m", "45s".
[[nodiscard]] std::string FormatDuration(Duration d);

}  // namespace bismark
