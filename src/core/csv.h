// Minimal CSV writer used when exporting the released datasets
// (the paper publishes everything without PII).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace bismark {

/// Streams rows of a CSV file, handling quoting of commas/quotes/newlines.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// Escape a single cell per RFC 4180.
  static std::string Escape(const std::string& cell);

 private:
  std::ostream& out_;
  std::size_t rows_{0};
};

}  // namespace bismark
