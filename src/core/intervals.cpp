#include "core/intervals.h"

#include <algorithm>

namespace bismark {

void IntervalSet::add(Interval iv) {
  if (iv.empty()) return;
  // Find first interval whose end >= iv.start (merge candidates).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.start,
      [](const Interval& a, TimePoint t) { return a.end < t; });
  auto last = first;
  while (last != intervals_.end() && last->start <= iv.end) {
    iv.start = std::min(iv.start, last->start);
    iv.end = std::max(iv.end, last->end);
    ++last;
  }
  const auto pos = intervals_.erase(first, last);
  intervals_.insert(pos, iv);
}

bool IntervalSet::contains(TimePoint t) const { return containing(t) != nullptr; }

const Interval* IntervalSet::containing(TimePoint t) const {
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimePoint v, const Interval& a) { return v < a.start; });
  if (it == intervals_.begin()) return nullptr;
  const Interval& candidate = *std::prev(it);
  return candidate.contains(t) ? &candidate : nullptr;
}

Duration IntervalSet::total() const {
  Duration d{0};
  for (const auto& iv : intervals_) d += iv.length();
  return d;
}

Duration IntervalSet::covered_within(TimePoint lo, TimePoint hi) const {
  Duration d{0};
  for (const auto& iv : intervals_) {
    const TimePoint s = std::max(iv.start, lo);
    const TimePoint e = std::min(iv.end, hi);
    if (e > s) d += e - s;
  }
  return d;
}

double IntervalSet::coverage_fraction(TimePoint lo, TimePoint hi) const {
  if (hi <= lo) return 0.0;
  return static_cast<double>(covered_within(lo, hi).ms) / static_cast<double>((hi - lo).ms);
}

std::vector<Interval> IntervalSet::gaps_within(TimePoint lo, TimePoint hi) const {
  std::vector<Interval> gaps;
  TimePoint cursor = lo;
  for (const auto& iv : intervals_) {
    if (iv.end <= lo) continue;
    if (iv.start >= hi) break;
    if (iv.start > cursor) gaps.push_back(Interval{cursor, std::min(iv.start, hi)});
    cursor = std::max(cursor, iv.end);
    if (cursor >= hi) break;
  }
  if (cursor < hi) gaps.push_back(Interval{cursor, hi});
  return gaps;
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet out;
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    const TimePoint s = std::max(a->start, b->start);
    const TimePoint e = std::min(a->end, b->end);
    if (e > s) out.add(Interval{s, e});
    if (a->end < b->end) {
      ++a;
    } else {
      ++b;
    }
  }
  return out;
}

IntervalSet IntervalSet::clipped(TimePoint lo, TimePoint hi) const {
  IntervalSet out;
  for (const auto& iv : intervals_) {
    const TimePoint s = std::max(iv.start, lo);
    const TimePoint e = std::min(iv.end, hi);
    if (e > s) out.add(Interval{s, e});
  }
  return out;
}

}  // namespace bismark
