#include "core/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

namespace bismark::core {

namespace {

std::string Errno(const std::string& path, const char* op, int err) {
  return path + ": " + op + " failed: " + std::strerror(err);
}

class RealIo final : public Io {};

// --- fault wrapper ----------------------------------------------------------

struct FaultState {
  IoFaultPlan plan;
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> fired{0};
  std::atomic<bool> sticky_tripped{false};
  std::atomic<bool> shortwrite_spent{false};
};

FaultState& State() {
  static FaultState state;
  return state;
}

class FaultyIo final : public Io {
 public:
  bool write(int fd, const std::string& path, const char* data, std::size_t n,
             std::string* error) override {
    FaultState& s = State();
    if (!Matches(path)) return Io::write(fd, path, data, n, error);
    const std::uint64_t op = s.ops.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t total = s.bytes.fetch_add(n, std::memory_order_relaxed) + n;
    switch (s.plan.kind) {
      case IoFaultPlan::Kind::kEnospc:
        if (Armed(op, total)) {
          s.fired.fetch_add(1, std::memory_order_relaxed);
          if (error != nullptr) {
            *error = path + ": write failed: No space left on device (injected ENOSPC)";
          }
          return false;
        }
        break;
      case IoFaultPlan::Kind::kShortWrite:
        if (Armed(op, total) && !s.shortwrite_spent.exchange(true)) {
          s.fired.fetch_add(1, std::memory_order_relaxed);
          // A torn write: half the bytes land, success is reported. Only
          // checksums can catch this — exactly what the corruption suite
          // asserts.
          return Io::write(fd, path, data, n / 2, error);
        }
        break;
      case IoFaultPlan::Kind::kKill:
        if (Armed(op, total)) {
          std::string ignored;
          Io::write(fd, path, data, n / 2, &ignored);
          std::_Exit(137);  // kill -9: no flush, no destructors
        }
        break;
      case IoFaultPlan::Kind::kFsyncFail:
      case IoFaultPlan::Kind::kNone:
        break;
    }
    return Io::write(fd, path, data, n, error);
  }

  bool sync(int fd, const std::string& path, std::string* error) override {
    FaultState& s = State();
    if (!Matches(path)) return Io::sync(fd, path, error);
    const std::uint64_t op = s.ops.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t total = s.bytes.load(std::memory_order_relaxed);
    if (s.plan.kind == IoFaultPlan::Kind::kFsyncFail && Armed(op, total)) {
      s.fired.fetch_add(1, std::memory_order_relaxed);
      if (error != nullptr) *error = Errno(path, "fsync (injected)", EIO);
      return false;
    }
    if (s.plan.kind == IoFaultPlan::Kind::kKill && Armed(op, total)) std::_Exit(137);
    return Io::sync(fd, path, error);
  }

 private:
  static bool Matches(const std::string& path) {
    const IoFaultPlan& plan = State().plan;
    return plan.path_substr.empty() || path.find(plan.path_substr) != std::string::npos;
  }

  /// Trigger check; sticky kinds stay armed once tripped.
  static bool Armed(std::uint64_t op, std::uint64_t total_bytes) {
    FaultState& s = State();
    if (s.sticky_tripped.load(std::memory_order_relaxed)) return true;
    const bool hit = (s.plan.at_op != 0 && op >= s.plan.at_op) ||
                     (s.plan.at_bytes != 0 && total_bytes >= s.plan.at_bytes);
    if (hit && (s.plan.kind == IoFaultPlan::Kind::kEnospc ||
                s.plan.kind == IoFaultPlan::Kind::kFsyncFail)) {
      s.sticky_tripped.store(true, std::memory_order_relaxed);
    }
    return hit;
  }
};

std::atomic<Io*> g_active{nullptr};

Io& Real() {
  static RealIo real;
  return real;
}

}  // namespace

// --- Io ---------------------------------------------------------------------

int Io::open_write(const std::string& path, bool append, std::string* error) {
  const int flags = O_WRONLY | O_CREAT | O_CLOEXEC | (append ? O_APPEND : O_TRUNC);
  int fd = -1;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0 && error != nullptr) *error = Errno(path, "open", errno);
  return fd;
}

bool Io::write(int fd, const std::string& path, const char* data, std::size_t n,
               std::string* error) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno(path, "write", errno);
      return false;
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool Io::sync(int fd, const std::string& path, std::string* error) {
  int rc = 0;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (error != nullptr) *error = Errno(path, "fsync", errno);
    return false;
  }
  return true;
}

void Io::close(int fd) {
  if (fd >= 0) ::close(fd);
}

Io& Io::Active() {
  Io* io = g_active.load(std::memory_order_acquire);
  return io != nullptr ? *io : Real();
}

// --- fault installation -----------------------------------------------------

void InstallIoFaultPlan(const IoFaultPlan& plan) {
  static FaultyIo faulty;
  FaultState& s = State();
  g_active.store(nullptr, std::memory_order_release);
  s.plan = plan;
  s.ops.store(0);
  s.bytes.store(0);
  s.fired.store(0);
  s.sticky_tripped.store(false);
  s.shortwrite_spent.store(false);
  if (plan.kind != IoFaultPlan::Kind::kNone) {
    g_active.store(&faulty, std::memory_order_release);
  }
}

void ClearIoFaults() { InstallIoFaultPlan(IoFaultPlan{}); }

IoFaultStats CurrentIoFaultStats() {
  const FaultState& s = State();
  IoFaultStats out;
  out.ops = s.ops.load(std::memory_order_relaxed);
  out.bytes = s.bytes.load(std::memory_order_relaxed);
  out.faults_fired = s.fired.load(std::memory_order_relaxed);
  return out;
}

bool ParseIoFaultSpec(const std::string& spec, IoFaultPlan* plan, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "bad I/O fault spec \"" + spec + "\": " + why +
               " (expected KIND@writes=N|bytes=N[:path=SUBSTR], KIND one of "
               "enospc|shortwrite|fsyncfail|kill)";
    }
    return false;
  };
  const std::size_t at = spec.find('@');
  if (at == std::string::npos) return fail("missing '@'");
  const std::string kind = spec.substr(0, at);
  IoFaultPlan out;
  if (kind == "enospc") {
    out.kind = IoFaultPlan::Kind::kEnospc;
  } else if (kind == "shortwrite") {
    out.kind = IoFaultPlan::Kind::kShortWrite;
  } else if (kind == "fsyncfail") {
    out.kind = IoFaultPlan::Kind::kFsyncFail;
  } else if (kind == "kill") {
    out.kind = IoFaultPlan::Kind::kKill;
  } else {
    return fail("unknown fault kind \"" + kind + "\"");
  }
  std::string trigger = spec.substr(at + 1);
  const std::size_t colon = trigger.find(':');
  if (colon != std::string::npos) {
    const std::string tail = trigger.substr(colon + 1);
    if (tail.rfind("path=", 0) != 0) return fail("expected :path=SUBSTR after trigger");
    out.path_substr = tail.substr(5);
    trigger = trigger.substr(0, colon);
  }
  const std::size_t eq = trigger.find('=');
  if (eq == std::string::npos) return fail("missing trigger value");
  const std::string key = trigger.substr(0, eq);
  const std::string value = trigger.substr(eq + 1);
  char* end = nullptr;
  errno = 0;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0' || errno != 0 || n == 0) {
    return fail("trigger value must be a positive integer");
  }
  if (key == "writes") {
    out.at_op = n;
  } else if (key == "bytes") {
    out.at_bytes = n;
  } else {
    return fail("unknown trigger \"" + key + "\"");
  }
  *plan = out;
  return true;
}

bool InstallIoFaultPlanFromEnv(std::string* error) {
  const char* spec = std::getenv("BISMARK_IO_FAULT");
  if (spec == nullptr || *spec == '\0') return true;
  IoFaultPlan plan;
  if (!ParseIoFaultSpec(spec, &plan, error)) return false;
  InstallIoFaultPlan(plan);
  return true;
}

// --- CheckedFile ------------------------------------------------------------

CheckedFile::~CheckedFile() {
  // Last-resort close; errors here are lost, which is why every durable
  // path calls close() (or sync()) explicitly and checks it.
  if (fd_ >= 0) {
    flush();
    Io::Active().close(fd_);
    fd_ = -1;
  }
}

bool CheckedFile::open(const std::string& path, bool append) {
  if (fd_ >= 0) close();
  path_ = path;
  error_.clear();
  accepted_ = 0;
  buf_.clear();
  buf_.reserve(kBufferBytes);
  fd_ = Io::Active().open_write(path, append, &error_);
  return fd_ >= 0;
}

bool CheckedFile::write(const void* data, std::size_t n) {
  if (!error_.empty()) return false;
  if (fd_ < 0) {
    error_ = path_.empty() ? std::string("write to unopened file") : path_ + ": not open";
    return false;
  }
  buf_.append(static_cast<const char*>(data), n);
  accepted_ += n;
  if (buf_.size() >= kBufferBytes) return flush();
  return true;
}

bool CheckedFile::flush() {
  if (!error_.empty()) return false;
  if (fd_ < 0 || buf_.empty()) return error_.empty();
  const bool ok = Io::Active().write(fd_, path_, buf_.data(), buf_.size(), &error_);
  buf_.clear();
  return ok;
}

bool CheckedFile::sync() {
  if (!flush()) return false;
  return Io::Active().sync(fd_, path_, &error_);
}

bool CheckedFile::close() {
  if (fd_ < 0) return error_.empty();
  flush();
  Io::Active().close(fd_);
  fd_ = -1;
  return error_.empty();
}

// --- read-side seam ---------------------------------------------------------

namespace {

struct ReadState {
  std::mutex mu;
  std::vector<std::string> paths;
  std::atomic<std::uint64_t> files{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<bool> force_buffered{false};
};

ReadState& Reads() {
  static ReadState state;
  return state;
}

void RecordRead(const std::string& path, std::size_t bytes) {
  ReadState& s = Reads();
  s.files.fetch_add(1, std::memory_order_relaxed);
  s.bytes.fetch_add(bytes, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mu);
  s.paths.push_back(path);
}

}  // namespace

IoReadStats CurrentIoReadStats() {
  const ReadState& s = Reads();
  IoReadStats out;
  out.files_opened = s.files.load(std::memory_order_relaxed);
  out.bytes_mapped = s.bytes.load(std::memory_order_relaxed);
  return out;
}

std::vector<std::string> IoReadPaths() {
  ReadState& s = Reads();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.paths;
}

void ResetIoReadStats() {
  ReadState& s = Reads();
  std::lock_guard<std::mutex> lock(s.mu);
  s.paths.clear();
  s.files.store(0, std::memory_order_relaxed);
  s.bytes.store(0, std::memory_order_relaxed);
}

void ForceBufferedReadsForTest(bool on) {
  Reads().force_buffered.store(on, std::memory_order_relaxed);
}

MappedFile::~MappedFile() { close(); }

bool MappedFile::open(const std::string& path, std::string* error) {
  close();
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (error != nullptr) *error = Errno(path, "open", errno);
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    if (error != nullptr) *error = Errno(path, "fstat", errno);
    ::close(fd);
    return false;
  }
  path_ = path;
  size_ = static_cast<std::size_t>(st.st_size);
  // Empty files have nothing to map; mmap would fail with EINVAL anyway.
  if (size_ > 0 && !Reads().force_buffered.load(std::memory_order_relaxed)) {
    void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped != MAP_FAILED) {
      data_ = static_cast<const char*>(mapped);
      mmapped_ = true;
    }
  }
  if (!mmapped_ && size_ > 0) {
    fallback_.resize(size_);
    std::size_t got = 0;
    while (got < size_) {
      const ssize_t n = ::read(fd, fallback_.data() + got, size_ - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (error != nullptr) *error = Errno(path, "read", errno);
        ::close(fd);
        fallback_.clear();
        size_ = 0;
        return false;
      }
      if (n == 0) break;  // truncated under us: expose the shorter view
      got += static_cast<std::size_t>(n);
    }
    size_ = got;
    data_ = fallback_.data();
  }
  ::close(fd);
  open_ = true;
  RecordRead(path_, size_);
  return true;
}

void MappedFile::close() {
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  fallback_.clear();
  fallback_.shrink_to_fit();
  data_ = nullptr;
  size_ = 0;
  mmapped_ = false;
  open_ = false;
  path_.clear();
}

}  // namespace bismark::core
