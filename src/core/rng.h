// Deterministic random number generation for the simulator.
//
// Everything in the reproduction must be reproducible from a single seed:
// every home, device and workload derives its own stream by hierarchical
// splitting (`Rng::fork`), so adding a device to home 37 never perturbs
// home 38's draws.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace bismark {

/// xoshiro256** with splitmix64 seeding. Small, fast, and good enough
/// statistical quality for workload synthesis (we are not doing crypto).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential with the given mean (inter-arrival times, outage gaps).
  double exponential(double mean);
  /// Standard-normal-based draw with given mean and stddev.
  double normal(double mean, double stddev);
  /// Log-normal parameterised by the mean/stddev of the *underlying* normal.
  double lognormal(double log_mean, double log_stddev);
  /// Pareto (heavy tail) with scale x_m > 0 and shape alpha > 0; used for
  /// flow sizes and downtime tails.
  double pareto(double x_m, double alpha);

  /// Index draw from unnormalised non-negative weights. Returns
  /// weights.size() == 0 ? 0 : a valid index even if all weights are zero.
  std::size_t weighted_index(std::span<const double> weights);

  /// Derive an independent child stream. Deterministic in (parent seed, tag).
  [[nodiscard]] Rng fork(std::uint64_t tag) const;
  /// Derive a child stream from a string tag (e.g. device name).
  [[nodiscard]] Rng fork(std::string_view tag) const;

  /// A named per-entity stream: deterministic in (seed, salt, stream) and
  /// nothing else. Equivalent to Rng(seed ^ salt).fork(stream). This is the
  /// derivation the sharded deployment runner uses per home — any worker,
  /// on any shard, reconstructs the identical stream from the home id, so
  /// results cannot depend on thread schedule or shard count.
  [[nodiscard]] static Rng Stream(std::uint64_t seed, std::uint64_t salt,
                                  std::uint64_t stream);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

/// Ranks 1..n with P(rank k) proportional to 1 / k^alpha. Precomputes the
/// CDF; used for domain popularity (Fig. 18/19 concentration).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double alpha);

  /// Draw a 0-based index in [0, n).
  std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  /// Probability mass of 0-based index i.
  [[nodiscard]] double pmf(std::size_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace bismark
