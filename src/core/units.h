// Byte-count and bit-rate value types.
//
// The paper's evaluation mixes units constantly (KB thresholds, MB consent
// cut-offs, Mbps capacities); carrying them as strong types keeps the
// conversions in one place.
#pragma once

#include <compare>
#include <cstdint>

namespace bismark {

/// A byte count (traffic volume).
struct Bytes {
  std::int64_t count{0};

  [[nodiscard]] constexpr double kb() const { return static_cast<double>(count) / 1e3; }
  [[nodiscard]] constexpr double mb() const { return static_cast<double>(count) / 1e6; }
  [[nodiscard]] constexpr double gb() const { return static_cast<double>(count) / 1e9; }
  [[nodiscard]] constexpr double bits() const { return static_cast<double>(count) * 8.0; }

  constexpr auto operator<=>(const Bytes&) const = default;
  constexpr Bytes operator+(Bytes o) const { return {count + o.count}; }
  constexpr Bytes operator-(Bytes o) const { return {count - o.count}; }
  constexpr Bytes& operator+=(Bytes o) { count += o.count; return *this; }
};

constexpr Bytes B(std::int64_t v) { return {v}; }
constexpr Bytes KB(double v) { return {static_cast<std::int64_t>(v * 1e3)}; }
constexpr Bytes MB(double v) { return {static_cast<std::int64_t>(v * 1e6)}; }
constexpr Bytes GB(double v) { return {static_cast<std::int64_t>(v * 1e9)}; }

/// A data rate in bits per second.
struct BitRate {
  double bps{0.0};

  [[nodiscard]] constexpr double kbps() const { return bps / 1e3; }
  [[nodiscard]] constexpr double mbps() const { return bps / 1e6; }
  /// Time in seconds to transfer `b` at this rate (infinity-safe: returns a
  /// very large value for a zero rate).
  [[nodiscard]] constexpr double seconds_for(Bytes b) const {
    return bps > 0.0 ? b.bits() / bps : 1e18;
  }
  /// Bytes transferred in `seconds` at this rate.
  [[nodiscard]] constexpr Bytes bytes_in(double seconds) const {
    return {static_cast<std::int64_t>(bps * seconds / 8.0)};
  }

  constexpr auto operator<=>(const BitRate&) const = default;
};

constexpr BitRate Bps(double v) { return {v}; }
constexpr BitRate Kbps(double v) { return {v * 1e3}; }
constexpr BitRate Mbps(double v) { return {v * 1e6}; }

}  // namespace bismark
