// Tiny leveled logger. Simulation components log sparingly (the interesting
// output goes through datasets), but examples use this to narrate runs.
#pragma once

#include <cstdarg>
#include <string>

namespace bismark {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; defaults to kWarn so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
[[nodiscard]] LogLevel GetLogLevel();

/// printf-style logging. `component` is a short tag like "nat" or "heartbeat".
void Log(LogLevel level, const char* component, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

#define BISMARK_LOG_DEBUG(component, ...) ::bismark::Log(::bismark::LogLevel::kDebug, component, __VA_ARGS__)
#define BISMARK_LOG_INFO(component, ...) ::bismark::Log(::bismark::LogLevel::kInfo, component, __VA_ARGS__)
#define BISMARK_LOG_WARN(component, ...) ::bismark::Log(::bismark::LogLevel::kWarn, component, __VA_ARGS__)
#define BISMARK_LOG_ERROR(component, ...) ::bismark::Log(::bismark::LogLevel::kError, component, __VA_ARGS__)

}  // namespace bismark
