#include "core/table.h"

#include <algorithm>
#include <cstdio>

namespace bismark {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += cell;
      out.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

void PrintBanner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace bismark
