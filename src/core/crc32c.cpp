#include "core/crc32c.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <nmmintrin.h>
#define BISMARK_CRC32C_X86 1
#endif

namespace bismark::core {

namespace {

// Slice-by-8 tables for the reflected Castagnoli polynomial, built once at
// first use. ~1 GB/s on commodity cores — the fallback, not the fast path.
struct Crc32cTables {
  std::uint32_t t[8][256];

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (int s = 1; s < 8; ++s) {
        crc = (crc >> 8) ^ t[0][crc & 0xffu];
        t[s][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

#if defined(BISMARK_CRC32C_X86)

__attribute__((target("sse4.2"))) std::uint32_t Crc32cHardware(const std::uint8_t* p,
                                                               std::size_t n,
                                                               std::uint32_t crc) {
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  while (n >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    crc = static_cast<std::uint32_t>(_mm_crc32_u64(crc, word));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return crc;
}

bool DetectSse42() { return __builtin_cpu_supports("sse4.2") != 0; }

#endif  // BISMARK_CRC32C_X86

std::uint32_t Crc32cSoftwareRaw(const std::uint8_t* p, std::size_t n, std::uint32_t crc) {
  const auto& t = Tables().t;
  while (n >= 8) {
    crc ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    crc = t[7][crc & 0xffu] ^ t[6][(crc >> 8) & 0xffu] ^ t[5][(crc >> 16) & 0xffu] ^
          t[4][crc >> 24] ^ t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
          t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xffu];
  return crc;
}

}  // namespace

std::uint32_t Crc32cSoftware(const void* data, std::size_t n, std::uint32_t seed) {
  return ~Crc32cSoftwareRaw(static_cast<const std::uint8_t*>(data), n, ~seed);
}

bool Crc32cHardwareActive() {
#if defined(BISMARK_CRC32C_X86)
  static const bool active = DetectSse42();
  return active;
#else
  return false;
#endif
}

std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed) {
#if defined(BISMARK_CRC32C_X86)
  if (Crc32cHardwareActive()) {
    return ~Crc32cHardware(static_cast<const std::uint8_t*>(data), n, ~seed);
  }
#endif
  return Crc32cSoftware(data, n, seed);
}

}  // namespace bismark::core
