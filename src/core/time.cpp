#include "core/time.h"

#include <cmath>
#include <cstdio>

namespace bismark {

namespace {
constexpr std::int64_t kMsPerDay = 86400000;

// Floor division that is correct for negative numerators.
constexpr std::int64_t FloorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

constexpr std::int64_t FloorMod(std::int64_t a, std::int64_t b) {
  return a - FloorDiv(a, b) * b;
}
}  // namespace

std::int64_t TimePoint::utc_day() const { return FloorDiv(ms, kMsPerDay); }

std::int64_t DaysFromCivil(CivilDate d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  const int y = d.year - (d.month <= 2 ? 1 : 0);
  const std::int64_t era = FloorDiv(y, 400);
  const unsigned yoe = static_cast<unsigned>(y - era * 400);                   // [0, 399]
  const unsigned doy = (153u * static_cast<unsigned>(d.month + (d.month > 2 ? -3 : 9)) + 2u) / 5u +
                       static_cast<unsigned>(d.day) - 1u;                      // [0, 365]
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;               // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate CivilFromDays(std::int64_t z) {
  z += 719468;
  const std::int64_t era = FloorDiv(z, 146097);
  const unsigned doe = static_cast<unsigned>(z - era * 146097);                // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);                // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                     // [0, 11]
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;                           // [1, 31]
  const unsigned month = mp + (mp < 10 ? 3 : -9);                              // [1, 12]
  return CivilDate{static_cast<int>(y + (month <= 2 ? 1 : 0)), static_cast<int>(month),
                   static_cast<int>(day)};
}

TimePoint MakeTime(CivilDate d, int hour, int minute, int second) {
  const std::int64_t days = DaysFromCivil(d);
  return TimePoint{days * kMsPerDay +
                   (static_cast<std::int64_t>(hour) * 3600 + minute * 60 + second) * 1000};
}

Weekday WeekdayOf(TimePoint t) {
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  const std::int64_t day = t.utc_day();
  return static_cast<Weekday>(FloorMod(day + 3, 7));
}

int TimeZone::local_hour(TimePoint utc) const {
  const std::int64_t local_ms = (utc + utc_offset).ms;
  return static_cast<int>(FloorMod(local_ms, kMsPerDay) / 3600000);
}

double TimeZone::local_hour_frac(TimePoint utc) const {
  const std::int64_t local_ms = (utc + utc_offset).ms;
  return static_cast<double>(FloorMod(local_ms, kMsPerDay)) / 3600000.0;
}

TimePoint TimeZone::local_midnight(TimePoint utc) const {
  const std::int64_t local_ms = (utc + utc_offset).ms;
  const std::int64_t midnight_local = FloorDiv(local_ms, kMsPerDay) * kMsPerDay;
  return TimePoint{midnight_local} - utc_offset;
}

std::string FormatTime(TimePoint t) {
  const CivilDate d = CivilFromDays(t.utc_day());
  const std::int64_t in_day = FloorMod(t.ms, kMsPerDay);
  const int hour = static_cast<int>(in_day / 3600000);
  const int minute = static_cast<int>((in_day / 60000) % 60);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d", d.year, d.month, d.day, hour,
                minute);
  return buf;
}

std::string FormatMonthDay(TimePoint t) {
  const CivilDate d = CivilFromDays(t.utc_day());
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d-%d", d.month, d.day);
  return buf;
}

std::string FormatDuration(Duration d) {
  char buf[48];
  const std::int64_t total_s = d.ms / 1000;
  if (total_s < 60) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(total_s));
  } else if (total_s < 3600) {
    std::snprintf(buf, sizeof(buf), "%lldm %llds", static_cast<long long>(total_s / 60),
                  static_cast<long long>(total_s % 60));
  } else if (total_s < 86400) {
    std::snprintf(buf, sizeof(buf), "%lldh %lldm", static_cast<long long>(total_s / 3600),
                  static_cast<long long>((total_s % 3600) / 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldd %lldh", static_cast<long long>(total_s / 86400),
                  static_cast<long long>((total_s % 86400) / 3600));
  }
  return buf;
}

}  // namespace bismark
