#include "core/logging.h"

#include <atomic>
#include <cstdio>

namespace bismark {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void Log(LogLevel level, const char* component, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load()) return;
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), component, msg);
}

}  // namespace bismark
