// Summary statistics used throughout the analysis layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bismark {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Quantile of a sample by linear interpolation between order statistics
/// (the common "R-7" definition). q in [0, 1]. Copies and sorts.
[[nodiscard]] double Quantile(std::span<const double> values, double q);

/// Quantile of an already-sorted sample (no copy).
[[nodiscard]] double QuantileSorted(std::span<const double> sorted, double q);

[[nodiscard]] double Median(std::span<const double> values);
[[nodiscard]] double Mean(std::span<const double> values);
[[nodiscard]] double Sum(std::span<const double> values);

/// Pearson correlation coefficient; 0 if either side is constant.
[[nodiscard]] double Correlation(std::span<const double> x, std::span<const double> y);

/// Greenwald–Khanna streaming quantile sketch.
///
/// Holds O((1/eps) * log(eps * n)) tuples instead of the full sample and
/// answers any quantile query with rank error at most eps * n: the value
/// returned for quantile q is an element whose true rank r satisfies
/// |r - q * n| <= eps * n. This is what lets `analyze` compute the paper's
/// distribution figures from a fleet-scale record stream without the full
/// dataset resident (DESIGN §11).
class QuantileSketch {
 public:
  explicit QuantileSketch(double eps = 0.005);

  void add(double v);
  /// Fold another sketch in (per-shard sketches merged post-run). The
  /// merged sketch keeps the rank-error bound eps_a + eps_b, so merging
  /// same-eps sketches doubles the tolerance — budget eps accordingly.
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double eps() const { return eps_; }
  /// Tuples currently held (memory footprint; grows ~ (1/eps) log(eps n)).
  [[nodiscard]] std::size_t tuples() const { return tuples_.size(); }

  /// Value at quantile q in [0, 1], within eps * n rank error.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Self-contained little-endian blob of the full sketch state; a
  /// deserialized sketch answers every query — and absorbs every future
  /// add/merge — exactly like the original. Used by checkpoint/resume
  /// (DESIGN §12).
  [[nodiscard]] std::string Serialize() const;
  /// Rebuild from Serialize() output. Fails closed: returns false on any
  /// malformed blob (bad length, unsorted tuples, mass/count mismatch)
  /// leaving *out untouched.
  static bool Deserialize(const std::string& blob, QuantileSketch* out);

 private:
  /// One GK tuple: value v covers ranks [r_min, r_min + delta], where
  /// r_min is the sum of g over this and all preceding tuples.
  struct Tuple {
    double v;
    std::uint64_t g;
    std::uint64_t delta;
  };
  void compress();

  double eps_;
  std::size_t n_{0};
  std::size_t since_compress_{0};
  std::vector<Tuple> tuples_;  // sorted by v
};

/// P² (Jain/Chlamtac) single-quantile estimator: five markers, O(1) memory,
/// no rank-error guarantee but excellent accuracy on smooth distributions.
/// Used where one fixed percentile is tracked per key (e.g. per-home p95
/// utilisation) and even a GK sketch per key would be too heavy.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double v);
  [[nodiscard]] std::size_t count() const { return n_; }
  /// Current estimate; exact while n <= 5.
  [[nodiscard]] double value() const;

  /// Marker-state blob; same contract as QuantileSketch::Serialize.
  [[nodiscard]] std::string Serialize() const;
  static bool Deserialize(const std::string& blob, P2Quantile* out);

 private:
  double q_;
  std::size_t n_{0};
  double heights_[5]{};
  double positions_[5]{};
  double desired_[5]{};
  double increments_[5]{};
};

/// Convenience: collect values, then answer quantile queries repeatedly.
class Sample {
 public:
  void add(double v) { values_.push_back(v); dirty_ = true; }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool dirty_{true};
  void ensure_sorted() const;
};

}  // namespace bismark
