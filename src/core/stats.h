// Summary statistics used throughout the analysis layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bismark {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Quantile of a sample by linear interpolation between order statistics
/// (the common "R-7" definition). q in [0, 1]. Copies and sorts.
[[nodiscard]] double Quantile(std::span<const double> values, double q);

/// Quantile of an already-sorted sample (no copy).
[[nodiscard]] double QuantileSorted(std::span<const double> sorted, double q);

[[nodiscard]] double Median(std::span<const double> values);
[[nodiscard]] double Mean(std::span<const double> values);
[[nodiscard]] double Sum(std::span<const double> values);

/// Pearson correlation coefficient; 0 if either side is constant.
[[nodiscard]] double Correlation(std::span<const double> x, std::span<const double> y);

/// Convenience: collect values, then answer quantile queries repeatedly.
class Sample {
 public:
  void add(double v) { values_.push_back(v); dirty_ = true; }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool dirty_{true};
  void ensure_sorted() const;
};

}  // namespace bismark
