// Injectable write-side I/O seam (DESIGN §12).
//
// Every durable byte the fleet substrate writes — segment sections, the
// spill manifest, snapshots — goes through `Io::Active()`. In production
// that is a thin wrapper over open/write/fsync/close; under test a fault
// plan wraps it to inject the failures a real fleet hits: ENOSPC, torn
// (short) writes, fsync failure, and kill -9 mid-write. The seam exists so
// those failures exercise the *real* commit protocol and recovery code, not
// mocks of them.
//
// Fault plans can be installed programmatically (InstallIoFaultPlan) or via
// the environment, which is how the CI chaos job drives an unmodified
// binary:
//
//   BISMARK_IO_FAULT="kill@writes=40:path=.bsmkseg"  bismark_study run ...
//
// Spec grammar: KIND@TRIGGER[:path=SUBSTR]
//   KIND    = enospc | shortwrite | fsyncfail | kill
//   TRIGGER = writes=N (fire on the Nth matching write/fsync op, 1-based)
//           | bytes=N  (fire on the op that crosses N cumulative bytes)
//   SUBSTR  = only paths containing SUBSTR are faulted (default: all)
//
// enospc and fsyncfail are sticky — once triggered, every later matching op
// fails, like a genuinely full or broken disk. shortwrite fires once: it
// writes half the requested bytes and *reports success*, the torn write a
// crash between write() and durability produces; readers must catch it by
// CRC, never by return code. kill writes half the bytes and _Exit(137)s the
// process — the kill -9 the chaos matrix resumes from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bismark::core {

struct IoFaultPlan {
  enum class Kind : std::uint8_t { kNone, kEnospc, kShortWrite, kFsyncFail, kKill };
  Kind kind{Kind::kNone};
  /// Fire on the Nth matching write/fsync op (1-based). 0 = not call-triggered.
  std::uint64_t at_op{0};
  /// Fire on the op that crosses N cumulative matching bytes. 0 = not
  /// byte-triggered.
  std::uint64_t at_bytes{0};
  /// Only fault paths containing this substring; empty matches every path.
  std::string path_substr;
};

/// Parse the BISMARK_IO_FAULT grammar above. On failure returns false and
/// sets *error to a one-line diagnostic.
bool ParseIoFaultSpec(const std::string& spec, IoFaultPlan* plan, std::string* error);

/// Write-side I/O. All calls report failure via return value + *error (a
/// "<path>: <strerror>" style message); none throw.
class Io {
 public:
  virtual ~Io() = default;

  /// Open `path` for writing; returns an fd or -1. `append` seeks to the
  /// end instead of truncating.
  virtual int open_write(const std::string& path, bool append, std::string* error);
  /// Write all `n` bytes (retrying genuine short writes / EINTR).
  virtual bool write(int fd, const std::string& path, const char* data, std::size_t n,
                     std::string* error);
  virtual bool sync(int fd, const std::string& path, std::string* error);
  virtual void close(int fd);

  /// The active implementation: the real one, or a fault wrapper when a
  /// plan is installed.
  static Io& Active();
};

/// Route Io::Active() through a fault wrapper. Replaces any earlier plan.
void InstallIoFaultPlan(const IoFaultPlan& plan);
/// Restore the real Io and reset fault counters.
void ClearIoFaults();
/// Install a plan from $BISMARK_IO_FAULT if set. Returns false (with
/// *error) on a malformed spec; true otherwise (including "unset").
bool InstallIoFaultPlanFromEnv(std::string* error);

/// Counters maintained by the fault wrapper (all zero when none installed).
struct IoFaultStats {
  std::uint64_t ops{0};
  std::uint64_t bytes{0};
  std::uint64_t faults_fired{0};
};
[[nodiscard]] IoFaultStats CurrentIoFaultStats();

/// Buffered, error-latching file writer over Io::Active(). Replaces the
/// unchecked std::ofstream on every durable write path: the first failure
/// latches `error()` and every later call no-ops returning false, so a full
/// disk surfaces as one clear diagnostic instead of silent truncation.
class CheckedFile {
 public:
  static constexpr std::size_t kBufferBytes = 256 * 1024;

  CheckedFile() = default;
  ~CheckedFile();
  CheckedFile(const CheckedFile&) = delete;
  CheckedFile& operator=(const CheckedFile&) = delete;

  bool open(const std::string& path, bool append = false);
  bool write(const void* data, std::size_t n);
  bool write(const std::string& s) { return write(s.data(), s.size()); }
  /// Push the buffer to the OS (data survives process death, not power loss).
  bool flush();
  /// flush + fsync: data is durable.
  bool sync();
  bool close();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Bytes accepted by write() — what the file should hold after flush().
  [[nodiscard]] std::uint64_t bytes_accepted() const { return accepted_; }

 private:
  std::string path_;
  std::string buf_;
  std::string error_;
  std::uint64_t accepted_{0};
  int fd_{-1};
};

// --- Read-side seam ---------------------------------------------------------
//
// The columnar snapshot (DESIGN §14) promises that a single-figure query
// touches only the kind segments the figure needs. That promise is only
// testable if reads are observable, so every MappedFile open records its
// path and byte count here — the I/O-seam read counter the selectivity
// tests assert against.

/// Counters over every MappedFile opened since the last reset.
struct IoReadStats {
  std::uint64_t files_opened{0};
  std::uint64_t bytes_mapped{0};
};
[[nodiscard]] IoReadStats CurrentIoReadStats();
/// Paths opened by MappedFile since the last ResetIoReadStats(), in open
/// order (duplicates preserved).
[[nodiscard]] std::vector<std::string> IoReadPaths();
void ResetIoReadStats();

/// Force MappedFile onto its buffered-read fallback so both code paths are
/// testable on any platform. Affects subsequent open() calls only.
void ForceBufferedReadsForTest(bool on);

/// Read-only whole-file view: mmap(2) when the kernel grants it, falling
/// back to one buffered read into heap memory (empty files, filesystems
/// without mmap support, or the test override above). Either way data() /
/// size() expose the same contiguous bytes, so the columnar reader never
/// needs to know which path it got.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map (or read) all of `path`. On failure returns false with a
  /// "<path>: <op> failed: <why>" message in *error.
  bool open(const std::string& path, std::string* error);
  void close();

  [[nodiscard]] bool is_open() const { return open_; }
  [[nodiscard]] const char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// True when the bytes come from a live mapping (false: heap fallback).
  [[nodiscard]] bool mmapped() const { return mmapped_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string fallback_;
  const char* data_{nullptr};
  std::size_t size_{0};
  bool mmapped_{false};
  bool open_{false};
};

}  // namespace bismark::core
