// Minimal command-line argument parsing for the tools/ binaries.
//
// Supports subcommands and long options: `--name value`, `--name=value`,
// and boolean `--flag`. Unknown options are errors; positional arguments
// are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bismark {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Declare a boolean flag (present => true).
  void add_flag(const std::string& name, const std::string& help);
  /// Declare a string option with an optional default.
  void add_option(const std::string& name, const std::string& help,
                  std::optional<std::string> default_value = std::nullopt);

  /// Parse argv (excluding argv[0]). Returns false and sets error() on
  /// unknown options or missing values.
  bool parse(const std::vector<std::string>& args);
  bool parse(int argc, char** argv, int skip = 1);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name, const std::string& fallback) const;
  /// Numeric accessors; return fallback on missing/malformed values.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Render a usage/help string from the declared flags and options.
  [[nodiscard]] std::string help(const std::string& program_name) const;

 private:
  struct Spec {
    std::string help;
    bool is_flag{false};
    std::optional<std::string> default_value;
  };
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> declaration_order_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace bismark
