#include "core/histogram.h"

#include <algorithm>
#include <cmath>

namespace bismark {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0.0) {}

void Histogram::add(double x, double weight) {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::fraction(std::size_t i) const {
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

BinnedMean::BinnedMean(std::size_t bins) : sums_(bins, 0.0), sq_sums_(bins, 0.0), counts_(bins, 0) {}

void BinnedMean::add(std::size_t bin, double value) {
  if (bin >= sums_.size()) return;
  sums_[bin] += value;
  sq_sums_[bin] += value * value;
  ++counts_[bin];
}

double BinnedMean::mean(std::size_t bin) const {
  return counts_[bin] ? sums_[bin] / static_cast<double>(counts_[bin]) : 0.0;
}

double BinnedMean::stddev(std::size_t bin) const {
  if (counts_[bin] == 0) return 0.0;
  const double n = static_cast<double>(counts_[bin]);
  const double m = sums_[bin] / n;
  const double var = std::max(0.0, sq_sums_[bin] / n - m * m);
  return std::sqrt(var);
}

void CategoryCounter::add(const std::string& key, double weight) {
  total_ += weight;
  for (auto& e : entries_) {
    if (e.key == key) {
      e.count += weight;
      return;
    }
  }
  entries_.push_back({key, weight});
}

std::vector<CategoryCounter::Entry> CategoryCounter::sorted() const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

double CategoryCounter::count_of(const std::string& key) const {
  for (const auto& e : entries_) {
    if (e.key == key) return e.count;
  }
  return 0.0;
}

std::size_t CategoryCounter::distinct() const { return entries_.size(); }

}  // namespace bismark
