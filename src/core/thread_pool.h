// A small fixed-size worker pool for sharded simulation runs.
//
// The pool hands out task indices dynamically (an atomic cursor), so load
// imbalance between shards — e.g. the few traffic-consented homes costing
// far more than the rest — self-levels without any static assignment.
// Determinism is the caller's contract: tasks must not communicate except
// through their own outputs, so the schedule can never change results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bismark {

class ThreadPool {
 public:
  /// `workers` is clamped to >= 1. With one worker no threads are spawned
  /// and tasks run inline on the calling thread (zero-overhead serial path,
  /// handy under debuggers and sanitizers).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workers() const { return workers_; }

  /// Run `count` tasks, calling `fn(task_index, worker_index)` for each.
  /// worker_index is in [0, workers()): use it to reuse per-worker state
  /// (e.g. one sim::Engine per worker, reset between shards). Blocks until
  /// every task finished; the calling thread participates as worker 0.
  /// The first exception thrown by a task is rethrown here after the round
  /// completes (remaining tasks are skipped, running ones finish).
  void parallel_for(std::size_t count, const std::function<void(std::size_t, int)>& fn);

  /// Per-worker utilization of the last parallel_for round. Dynamic task
  /// dealing makes these schedule-dependent, so they feed only the
  /// *volatile* section of run reports — never the deterministic metrics.
  struct WorkerStats {
    std::uint64_t tasks{0};
    double busy_s{0.0};  ///< wall time spent inside task bodies
  };
  [[nodiscard]] const std::vector<WorkerStats>& last_round_stats() const {
    return last_stats_;
  }

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static int HardwareWorkers();

 private:
  struct Round;  // one parallel_for invocation's shared state

  int workers_;
  std::vector<std::thread> threads_;
  std::vector<WorkerStats> last_stats_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  Round* round_{nullptr};  // non-null while a round is being executed
  std::uint64_t round_seq_{0};  // guards against re-joining a drained round
  bool shutdown_{false};

  void worker_loop(int worker_index);
  static void run_tasks(Round& round, int worker_index);
};

}  // namespace bismark
