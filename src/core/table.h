// Fixed-width text tables for bench output — every bench binary prints the
// rows/series of one paper table or figure through this.
#pragma once

#include <string>
#include <vector>

namespace bismark {

/// Builds and renders an aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);  // 0.38 -> "38.0%"
  static std::string Int(long long v);

  /// Render with column alignment and a separator under the header.
  [[nodiscard]] std::string render() const;
  /// Render and write to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// A banner line for bench output, e.g. "== Figure 3: ... ==".
void PrintBanner(const std::string& title);

}  // namespace bismark
