#include "core/cdf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/stats.h"

namespace bismark {

Cdf::Cdf(std::span<const double> values) : values_(values.begin(), values.end()), dirty_(true) {}

void Cdf::add(double v) {
  values_.push_back(v);
  dirty_ = true;
}

void Cdf::ensure_sorted() const {
  if (dirty_) {
    std::sort(values_.begin(), values_.end());
    dirty_ = false;
  }
}

double Cdf::at(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

double Cdf::quantile(double q) const {
  ensure_sorted();
  return QuantileSorted(values_, q);
}

std::vector<Cdf::Point> Cdf::points() const {
  ensure_sorted();
  std::vector<Point> pts;
  const auto n = static_cast<double>(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const bool last_of_run = (i + 1 == values_.size()) || (values_[i + 1] != values_[i]);
    if (last_of_run) pts.push_back({values_[i], static_cast<double>(i + 1) / n});
  }
  return pts;
}

std::vector<Cdf::Point> Cdf::sampled_points(int n, bool log_spaced) const {
  std::vector<Point> pts;
  if (values_.empty() || n <= 0) return pts;
  ensure_sorted();
  const double lo = values_.front();
  const double hi = values_.back();
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double f = n == 1 ? 1.0 : static_cast<double>(i) / (n - 1);
    double x;
    if (log_spaced && lo > 0.0 && hi > lo) {
      x = std::exp(std::log(lo) + f * (std::log(hi) - std::log(lo)));
    } else {
      x = lo + f * (hi - lo);
    }
    pts.push_back({x, at(x)});
  }
  return pts;
}

std::string Summarize(const Cdf& cdf) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.3g p25=%.3g median=%.3g p75=%.3g p90=%.3g max=%.3g", cdf.size(),
                cdf.quantile(0.0), cdf.quantile(0.25), cdf.quantile(0.5), cdf.quantile(0.75),
                cdf.quantile(0.9), cdf.quantile(1.0));
  return buf;
}

}  // namespace bismark
