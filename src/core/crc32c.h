// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum that
// frames every spill section, manifest record, and snapshot (DESIGN §12).
//
// Chosen over CRC32 (IEEE) because x86 carries it in silicon: SSE 4.2's
// crc32 instruction retires 8 bytes/cycle, so checksumming the fleet spill
// stream costs well under the 5% throughput budget the bench gate enforces.
// Dispatch happens once at startup; the software slice-by-8 fallback keeps
// the format identical on machines without the instruction.
//
// Convention: Crc32c(data, n) is the standard finalized CRC32C (matches the
// iSCSI/RFC 3720 test vectors). To checksum a stream incrementally, thread
// the previous return value through `seed`:
//   crc = Crc32c(a, na);
//   crc = Crc32c(b, nb, crc);   // == Crc32c(concat(a, b))
#pragma once

#include <cstddef>
#include <cstdint>

namespace bismark::core {

/// CRC32C of `n` bytes, chained from `seed` (0 for a fresh stream).
[[nodiscard]] std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Portable slice-by-8 implementation; exposed so tests can pin the
/// hardware path against it byte-for-byte.
[[nodiscard]] std::uint32_t Crc32cSoftware(const void* data, std::size_t n,
                                           std::uint32_t seed = 0);

/// True when the running CPU dispatches to the hardware instruction.
[[nodiscard]] bool Crc32cHardwareActive();

}  // namespace bismark::core
