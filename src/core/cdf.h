// Empirical CDFs — the paper's dominant presentation (Figs 3, 4, 7, 10, 11).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace bismark {

/// An empirical cumulative distribution over a sample.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::span<const double> values);

  void add(double v);

  /// Fraction of the sample <= x.
  [[nodiscard]] double at(double x) const;
  /// Inverse CDF (quantile).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Evaluation points: each distinct sample value with its cumulative
  /// fraction, suitable for printing a CDF series as the paper plots them.
  struct Point {
    double x;
    double p;
  };
  [[nodiscard]] std::vector<Point> points() const;

  /// Evaluate the CDF at n log- or linearly-spaced points covering the
  /// sample range; handy for fixed-size bench output rows.
  [[nodiscard]] std::vector<Point> sampled_points(int n, bool log_spaced = false) const;

 private:
  mutable std::vector<double> values_;
  mutable bool dirty_{false};
  void ensure_sorted() const;
};

/// Render a one-line summary "n=… min=… p25=… median=… p75=… p90=… max=…".
[[nodiscard]] std::string Summarize(const Cdf& cdf);

}  // namespace bismark
