#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

namespace bismark {

struct ThreadPool::Round {
  std::size_t count{0};
  const std::function<void(std::size_t, int)>* fn{nullptr};
  std::atomic<std::size_t> cursor{0};
  std::atomic<int> in_flight{0};  // workers currently inside run_tasks
  std::vector<WorkerStats> stats;  // one slot per worker, single-writer each
  std::atomic<bool> failed{false};  // lock-free per-task check
  std::mutex error_mu;              // guards first_error only
  std::exception_ptr first_error;
  std::condition_variable done_cv;
  std::mutex done_mu;
  bool done{false};
};

ThreadPool::ThreadPool(int workers) : workers_(std::max(1, workers)) {
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

int ThreadPool::HardwareWorkers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::run_tasks(Round& round, int worker_index) {
  while (true) {
    // Stop dealing tasks once a task has thrown; in-flight tasks finish.
    if (round.failed.load(std::memory_order_relaxed)) break;
    const std::size_t task = round.cursor.fetch_add(1);
    if (task >= round.count) break;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      (*round.fn)(task, worker_index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(round.error_mu);
      if (!round.first_error) round.first_error = std::current_exception();
      round.failed.store(true, std::memory_order_relaxed);
    }
    WorkerStats& ws = round.stats[static_cast<std::size_t>(worker_index)];
    ++ws.tasks;
    ws.busy_s += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
}

void ThreadPool::worker_loop(int worker_index) {
  // Each round gets one visit per worker. Without the sequence check, a
  // worker that drained the cursor would see round_ still published (the
  // caller is busy running tasks of its own), re-join instantly, find no
  // work, and spin through the mutex until the round ends — a hot loop
  // that starves the workers still doing real work and is a big part of
  // why sharded runs used to lose to serial.
  std::uint64_t seen_seq = 0;
  while (true) {
    Round* round = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_seq] {
        return shutdown_ || (round_ != nullptr && round_seq_ != seen_seq);
      });
      if (shutdown_) return;
      round = round_;
      seen_seq = round_seq_;
      round->in_flight.fetch_add(1);
    }
    run_tasks(*round, worker_index);
    if (round->in_flight.fetch_sub(1) == 1) {
      const std::lock_guard<std::mutex> lock(round->done_mu);
      round->done = true;
      round->done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t, int)>& fn) {
  if (count == 0) {
    last_stats_.assign(static_cast<std::size_t>(workers_), WorkerStats{});
    return;
  }
  Round round;
  round.count = count;
  round.fn = &fn;
  round.stats.assign(static_cast<std::size_t>(workers_), WorkerStats{});

  round.in_flight.fetch_add(1);  // the caller works too, as worker 0
  if (workers_ > 1) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      round_ = &round;
      ++round_seq_;
    }
    work_cv_.notify_all();
  }

  run_tasks(round, 0);

  if (workers_ > 1) {
    // Unpublish first: workers join a round (and bump in_flight) only while
    // holding mu_ with round_ set, so after this no new participant can
    // appear and in_flight is monotonically decreasing.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      round_ = nullptr;
    }
    if (round.in_flight.fetch_sub(1) > 1) {
      std::unique_lock<std::mutex> lock(round.done_mu);
      round.done_cv.wait(lock, [&round] { return round.done; });
    }
  } else {
    round.in_flight.fetch_sub(1);
  }

  last_stats_ = std::move(round.stats);
  if (round.first_error) std::rethrow_exception(round.first_error);
}

}  // namespace bismark
