// Wireless bands and channels.
//
// The BISmark WNDR3800 has one 802.11gn radio (2.4 GHz) and one 802.11an
// radio (5 GHz); by default the 2.4 GHz radio sits on channel 11 and the
// 5 GHz radio on channel 36 (Section 3.2.2). Sections 5.2–5.3 compare
// occupancy of the two bands.
#pragma once

#include <string_view>
#include <vector>

namespace bismark::wireless {

enum class Band : int { k2_4GHz = 0, k5GHz = 1 };

[[nodiscard]] std::string_view BandName(Band b);

/// Channels usable in each band (US allocations: 1–11 for 2.4 GHz, the
/// UNII-1 set for 5 GHz — enough for the contention model).
[[nodiscard]] const std::vector<int>& ChannelsFor(Band b);

/// Default channel for each band as BISmark configures its radios.
[[nodiscard]] int DefaultChannel(Band b);

/// Whether transmissions on `a` and `b` interfere within a band. In
/// 2.4 GHz, 20 MHz channels overlap unless they are >= 5 channel numbers
/// apart; 5 GHz channels are non-overlapping.
[[nodiscard]] bool ChannelsOverlap(Band band, int a, int b);

/// Radio configuration of one access point.
struct RadioConfig {
  Band band{Band::k2_4GHz};
  int channel{11};
  bool enabled{true};
};

}  // namespace bismark::wireless
