#include "wireless/neighbor.h"

#include <algorithm>
#include <cstdio>

namespace bismark::wireless {

namespace {
std::string MakeBssid(Rng& rng) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>(rng.uniform_int(0, 255)) & 0xfe,  // unicast
                static_cast<unsigned>(rng.uniform_int(0, 255)),
                static_cast<unsigned>(rng.uniform_int(0, 255)),
                static_cast<unsigned>(rng.uniform_int(0, 255)),
                static_cast<unsigned>(rng.uniform_int(0, 255)),
                static_cast<unsigned>(rng.uniform_int(0, 255)));
  return buf;
}

int DrawChannel24(const NeighborhoodProfile& profile, Rng& rng) {
  if (rng.bernoulli(profile.popular_channel_frac)) {
    static const int popular[] = {1, 6, 11};
    return popular[rng.uniform_int(0, 2)];
  }
  const auto& channels = ChannelsFor(Band::k2_4GHz);
  return channels[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(channels.size()) - 1))];
}

int DrawChannel5(Rng& rng) {
  const auto& channels = ChannelsFor(Band::k5GHz);
  return channels[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(channels.size()) - 1))];
}

std::size_t DrawCount(double mean, Rng& rng) {
  // Approximately Poisson via exponential gaps; clamp to a sane ceiling.
  if (mean <= 0.0) return 0;
  double t = 0.0;
  std::size_t n = 0;
  while (n < 120) {
    t += rng.exponential(1.0);
    if (t > mean) break;
    ++n;
  }
  return n;
}
}  // namespace

Neighborhood Neighborhood::Generate(const NeighborhoodProfile& profile, Rng rng) {
  Neighborhood hood;
  const bool dense = rng.bernoulli(profile.dense_prob);
  const double mean24 = dense ? profile.dense_mean_24 : profile.sparse_mean_24;
  const double mean5 = dense ? profile.dense_mean_5 : profile.sparse_mean_5;

  const std::size_t n24 = DrawCount(mean24, rng);
  for (std::size_t i = 0; i < n24; ++i) {
    NeighborAp ap;
    ap.bssid = MakeBssid(rng);
    ap.band = Band::k2_4GHz;
    ap.channel = DrawChannel24(profile, rng);
    // Dense mode skews nearer/stronger.
    ap.rssi_dbm = rng.normal(dense ? -72.0 : -82.0, 8.0);
    hood.aps_.push_back(std::move(ap));
  }

  const std::size_t n5 = DrawCount(mean5, rng);
  for (std::size_t i = 0; i < n5; ++i) {
    NeighborAp ap;
    ap.bssid = MakeBssid(rng);
    ap.band = Band::k5GHz;
    ap.channel = DrawChannel5(rng);
    // 5 GHz attenuates faster through walls.
    ap.rssi_dbm = rng.normal(dense ? -78.0 : -86.0, 7.0);
    hood.aps_.push_back(std::move(ap));
  }
  return hood;
}

std::vector<NeighborAp> Neighborhood::audible_on(Band band, int channel,
                                                 double sensitivity_dbm) const {
  std::vector<NeighborAp> out;
  for (const auto& ap : aps_) {
    if (ap.band != band) continue;
    if (!ChannelsOverlap(band, ap.channel, channel)) continue;
    if (ap.rssi_dbm < sensitivity_dbm) continue;
    out.push_back(ap);
  }
  return out;
}

std::size_t Neighborhood::count_on_band(Band band) const {
  return static_cast<std::size_t>(
      std::count_if(aps_.begin(), aps_.end(),
                    [band](const NeighborAp& ap) { return ap.band == band; }));
}

}  // namespace bismark::wireless
