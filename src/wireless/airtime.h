// Airtime-contention estimate for a radio channel.
//
// Section 5.3 frames the crowding of 2.4 GHz as a contention problem:
// "many devices talking to many access points in the vicinity causes
// contention and interference problems, which in turn reduces the
// available bandwidth of the wireless channel." This model turns the
// observable quantities (neighbour APs on overlapping channels, associated
// clients) into an effective-throughput multiplier, used by the ablation
// bench to show how neighbourhood density erodes usable wireless capacity.
#pragma once

#include <cstddef>

namespace bismark::wireless {

struct ContentionInput {
  std::size_t overlapping_neighbor_aps{0};
  /// Assumed mean activity duty-cycle of each neighbour AP's BSS.
  double neighbor_duty_cycle{0.10};
  std::size_t own_clients{0};
};

/// Fraction of nominal channel capacity left to this BSS after CSMA/CA
/// sharing with overlapping neighbours, in (0, 1].
[[nodiscard]] double EffectiveAirtimeShare(const ContentionInput& input);

/// Expected per-client share when `own_clients` contend within the BSS.
[[nodiscard]] double PerClientShare(const ContentionInput& input);

}  // namespace bismark::wireless
