#include "wireless/association.h"

namespace bismark::wireless {

bool AssociationTable::associate(net::MacAddress mac, TimePoint now) {
  if (!config_.enabled) return false;
  auto it = clients_.find(mac);
  if (it == clients_.end()) {
    clients_.emplace(mac, Association{mac, now, now});
  } else {
    it->second.last_activity = now;
  }
  return true;
}

void AssociationTable::disassociate(net::MacAddress mac) { clients_.erase(mac); }

void AssociationTable::clear() { clients_.clear(); }

void AssociationTable::touch(net::MacAddress mac, TimePoint now) {
  const auto it = clients_.find(mac);
  if (it != clients_.end()) it->second.last_activity = now;
}

bool AssociationTable::is_associated(net::MacAddress mac) const { return clients_.contains(mac); }

std::vector<Association> AssociationTable::clients() const {
  std::vector<Association> out;
  out.reserve(clients_.size());
  for (const auto& [mac, assoc] : clients_) out.push_back(assoc);
  return out;
}

void AssociationTable::set_enabled(bool enabled) {
  config_.enabled = enabled;
  if (!enabled) clients_.clear();
}

}  // namespace bismark::wireless
