#include "wireless/association.h"

#include <algorithm>

namespace bismark::wireless {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

std::size_t AssociationTable::find(net::MacAddress mac) const {
  const auto it = std::lower_bound(macs_.begin(), macs_.end(), mac);
  if (it == macs_.end() || !(*it == mac)) return kNpos;
  return static_cast<std::size_t>(it - macs_.begin());
}

bool AssociationTable::associate(net::MacAddress mac, TimePoint now) {
  if (!config_.enabled) return false;
  const auto it = std::lower_bound(macs_.begin(), macs_.end(), mac);
  if (it != macs_.end() && *it == mac) {
    last_activity_[static_cast<std::size_t>(it - macs_.begin())] = now;
    return true;
  }
  const auto pos = static_cast<std::size_t>(it - macs_.begin());
  macs_.insert(it, mac);
  associated_at_.insert(associated_at_.begin() + static_cast<std::ptrdiff_t>(pos), now);
  last_activity_.insert(last_activity_.begin() + static_cast<std::ptrdiff_t>(pos), now);
  return true;
}

void AssociationTable::disassociate(net::MacAddress mac) {
  const std::size_t pos = find(mac);
  if (pos == kNpos) return;
  macs_.erase(macs_.begin() + static_cast<std::ptrdiff_t>(pos));
  associated_at_.erase(associated_at_.begin() + static_cast<std::ptrdiff_t>(pos));
  last_activity_.erase(last_activity_.begin() + static_cast<std::ptrdiff_t>(pos));
}

void AssociationTable::clear() {
  macs_.clear();
  associated_at_.clear();
  last_activity_.clear();
}

void AssociationTable::touch(net::MacAddress mac, TimePoint now) {
  const std::size_t pos = find(mac);
  if (pos != kNpos) last_activity_[pos] = now;
}

bool AssociationTable::is_associated(net::MacAddress mac) const { return find(mac) != kNpos; }

std::vector<Association> AssociationTable::clients() const {
  std::vector<Association> out;
  out.reserve(macs_.size());
  for (std::size_t i = 0; i < macs_.size(); ++i) {
    out.push_back(Association{macs_[i], associated_at_[i], last_activity_[i]});
  }
  return out;
}

void AssociationTable::set_enabled(bool enabled) {
  config_.enabled = enabled;
  if (!enabled) clear();
}

}  // namespace bismark::wireless
