#include "wireless/band.h"

#include <cstdlib>

namespace bismark::wireless {

std::string_view BandName(Band b) { return b == Band::k2_4GHz ? "2.4 GHz" : "5 GHz"; }

const std::vector<int>& ChannelsFor(Band b) {
  static const std::vector<int> k24 = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  static const std::vector<int> k5 = {36, 40, 44, 48, 149, 153, 157, 161, 165};
  return b == Band::k2_4GHz ? k24 : k5;
}

int DefaultChannel(Band b) { return b == Band::k2_4GHz ? 11 : 36; }

bool ChannelsOverlap(Band band, int a, int b) {
  if (band == Band::k2_4GHz) return std::abs(a - b) < 5;
  return a == b;
}

}  // namespace bismark::wireless
