#include "wireless/airtime.h"

#include <algorithm>
#include <cmath>

namespace bismark::wireless {

double EffectiveAirtimeShare(const ContentionInput& input) {
  // Each overlapping neighbour BSS independently occupies the channel for
  // its duty cycle; the medium is free with probability (1-d)^n. CSMA/CA
  // lets us use the free fraction, with a small per-neighbour management
  // overhead (beacons, probe traffic) even from idle BSSes.
  const double free_air = std::pow(1.0 - input.neighbor_duty_cycle,
                                   static_cast<double>(input.overlapping_neighbor_aps));
  const double beacon_overhead =
      0.005 * static_cast<double>(std::min<std::size_t>(input.overlapping_neighbor_aps, 40));
  return std::clamp(free_air - beacon_overhead, 0.01, 1.0);
}

double PerClientShare(const ContentionInput& input) {
  const double bss_share = EffectiveAirtimeShare(input);
  const double clients = static_cast<double>(std::max<std::size_t>(input.own_clients, 1));
  return bss_share / clients;
}

}  // namespace bismark::wireless
