// The firmware's WiFi scanner.
//
// Section 3.2.2: "Each router attempts to scan for clients and access
// points every 10 minutes; unfortunately, the scanning process can
// sometimes cause wireless clients to disassociate from the router, so we
// reduce the scanning frequency if the router has associated clients."
// Both quirks are modelled: scans can knock clients off, and the scan
// scheduler backs off when clients are present.
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "wireless/association.h"
#include "wireless/band.h"
#include "wireless/neighbor.h"

namespace bismark::wireless {

/// Result of one scan on one radio.
struct ScanResult {
  TimePoint timestamp;
  Band band{Band::k2_4GHz};
  int channel{0};
  std::size_t visible_aps{0};
  std::size_t associated_clients{0};
  std::size_t clients_disassociated{0};  // collateral damage of the scan
};

struct ScannerConfig {
  Duration base_interval{Minutes(10).ms};
  /// Multiplier applied when clients are associated (reduced frequency).
  int backoff_factor{3};
  /// Per-client probability that the off-channel dwell drops it.
  double disassociation_prob{0.02};
  double sensitivity_dbm{-92.0};
};

/// Scans one radio's channel against the home's neighbourhood.
class WifiScanner {
 public:
  WifiScanner(ScannerConfig config, Rng rng);

  /// Perform a scan now. May disassociate clients from `associations`.
  ScanResult scan(const Neighborhood& neighborhood, AssociationTable& associations,
                  TimePoint now);

  /// When the next scan should run, given the current client count.
  [[nodiscard]] Duration next_interval(std::size_t associated_clients) const;

 private:
  ScannerConfig config_;
  Rng rng_;
};

}  // namespace bismark::wireless
