// The radio neighbourhood of one home: other people's access points.
//
// Figure 11 reports the number of neighbour APs visible on the scan channel
// — median ~20 in developed countries, ~2 in developing, with a bimodal
// shape (dense apartment blocks vs detached houses). We model a home's
// neighbourhood as a static population of APs with band/channel/RSSI, from
// which the scanner observes the subset that is audible on its channel.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "wireless/band.h"

namespace bismark::wireless {

/// One neighbouring access point as visible over the air.
struct NeighborAp {
  std::string bssid;   // rendered MAC-like id
  Band band{Band::k2_4GHz};
  int channel{1};
  double rssi_dbm{-70.0};
};

/// Parameters describing how dense a home's radio neighbourhood is.
/// The bimodal mixture: with probability `dense_prob` the home draws from
/// the dense mode (apartments), otherwise from the sparse mode.
struct NeighborhoodProfile {
  double dense_prob{0.5};
  double dense_mean_24{22.0};   // mean APs on 2.4 GHz in the dense mode
  double sparse_mean_24{2.5};
  double dense_mean_5{3.0};     // 5 GHz adoption was thin in 2012/13
  double sparse_mean_5{0.6};
  /// Fraction of 2.4 GHz neighbour APs sitting on the popular channels
  /// 1/6/11 (the rest scatter uniformly).
  double popular_channel_frac{0.8};
};

/// The generated neighbourhood for one home.
class Neighborhood {
 public:
  /// Deterministically generate a neighbourhood from the profile.
  static Neighborhood Generate(const NeighborhoodProfile& profile, Rng rng);

  /// All APs in the air, regardless of channel.
  [[nodiscard]] const std::vector<NeighborAp>& aps() const { return aps_; }

  /// APs that a scan on (band, channel) can hear: same band, overlapping
  /// channel, and RSSI above the scanner's sensitivity floor.
  [[nodiscard]] std::vector<NeighborAp> audible_on(Band band, int channel,
                                                   double sensitivity_dbm = -92.0) const;

  /// Count of APs per band (any channel).
  [[nodiscard]] std::size_t count_on_band(Band band) const;

 private:
  std::vector<NeighborAp> aps_;
};

}  // namespace bismark::wireless
