#include "wireless/scanner.h"

namespace bismark::wireless {

WifiScanner::WifiScanner(ScannerConfig config, Rng rng) : config_(config), rng_(rng) {}

ScanResult WifiScanner::scan(const Neighborhood& neighborhood, AssociationTable& associations,
                             TimePoint now) {
  ScanResult result;
  result.timestamp = now;
  result.band = associations.config().band;
  result.channel = associations.config().channel;

  const auto audible =
      neighborhood.audible_on(result.band, result.channel, config_.sensitivity_dbm);
  result.visible_aps = audible.size();

  // Off-channel dwell can drop associated clients.
  for (const auto& client : associations.clients()) {
    if (rng_.bernoulli(config_.disassociation_prob)) {
      associations.disassociate(client.mac);
      ++result.clients_disassociated;
    }
  }
  result.associated_clients = associations.client_count();
  return result;
}

Duration WifiScanner::next_interval(std::size_t associated_clients) const {
  if (associated_clients == 0) return config_.base_interval;
  return config_.base_interval * config_.backoff_factor;
}

}  // namespace bismark::wireless
