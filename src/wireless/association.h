// Client association state for one radio of the home AP.
#pragma once

#include <map>
#include <vector>

#include "core/time.h"
#include "net/addr.h"
#include "wireless/band.h"

namespace bismark::wireless {

/// One associated client.
struct Association {
  net::MacAddress mac;
  TimePoint associated_at;
  TimePoint last_activity;
};

/// Tracks which client MACs are associated with a radio. The Devices
/// dataset's hourly "associated clients per frequency" counts (Section
/// 3.2.2) are read directly from two of these.
class AssociationTable {
 public:
  explicit AssociationTable(RadioConfig config) : config_(config) {}

  /// Associate a client; refreshes activity if already present.
  /// Returns false if the radio is disabled.
  bool associate(net::MacAddress mac, TimePoint now);
  /// Remove a client; no-op if absent.
  void disassociate(net::MacAddress mac);
  /// Disassociate everyone (radio reset / router power-off).
  void clear();
  /// Record traffic from an associated client.
  void touch(net::MacAddress mac, TimePoint now);

  [[nodiscard]] bool is_associated(net::MacAddress mac) const;
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] std::vector<Association> clients() const;
  [[nodiscard]] const RadioConfig& config() const { return config_; }
  void set_enabled(bool enabled);

 private:
  RadioConfig config_;
  std::map<net::MacAddress, Association> clients_;
};

}  // namespace bismark::wireless
