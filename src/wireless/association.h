// Client association state for one radio of the home AP.
#pragma once

#include <vector>

#include "core/time.h"
#include "net/addr.h"
#include "wireless/band.h"

namespace bismark::wireless {

/// One associated client.
struct Association {
  net::MacAddress mac;
  TimePoint associated_at;
  TimePoint last_activity;
};

/// Tracks which client MACs are associated with a radio. The Devices
/// dataset's hourly "associated clients per frequency" counts (Section
/// 3.2.2) are read directly from two of these.
///
/// Stored as parallel arrays sorted by MAC (a structure of arrays rather
/// than a node-based map): a radio holds at most a dozen clients, and a
/// fleet run holds two tables per home, so the flat layout trades
/// per-entry node/pointer overhead for a cache-resident binary search.
class AssociationTable {
 public:
  explicit AssociationTable(RadioConfig config) : config_(config) {}

  /// Associate a client; refreshes activity if already present.
  /// Returns false if the radio is disabled.
  bool associate(net::MacAddress mac, TimePoint now);
  /// Remove a client; no-op if absent.
  void disassociate(net::MacAddress mac);
  /// Disassociate everyone (radio reset / router power-off).
  void clear();
  /// Record traffic from an associated client.
  void touch(net::MacAddress mac, TimePoint now);

  [[nodiscard]] bool is_associated(net::MacAddress mac) const;
  [[nodiscard]] std::size_t client_count() const { return macs_.size(); }
  /// AoS view in MAC order (the former map's iteration order).
  [[nodiscard]] std::vector<Association> clients() const;
  [[nodiscard]] const RadioConfig& config() const { return config_; }
  void set_enabled(bool enabled);

 private:
  /// Index of `mac` in the sorted arrays, or npos.
  [[nodiscard]] std::size_t find(net::MacAddress mac) const;

  RadioConfig config_;
  // Parallel arrays sorted by MAC.
  std::vector<net::MacAddress> macs_;
  std::vector<TimePoint> associated_at_;
  std::vector<TimePoint> last_activity_;
};

}  // namespace bismark::wireless
