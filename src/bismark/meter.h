// Per-minute throughput metering at the gateway.
//
// Section 6.2: "We measure utilization by computing the maximum per-second
// throughput every minute." The generator reports piecewise-constant
// aggregate rates (add_rate/remove_rate bracketing each burst), so the
// meter can integrate bytes exactly and track the true per-minute peak
// rate without per-packet sampling.
#pragma once

#include <functional>

#include "collect/records.h"
#include "core/time.h"
#include "net/packet.h"

namespace bismark::gateway {

class ThroughputMeter {
 public:
  using MinuteCallback = std::function<void(const collect::ThroughputMinute&)>;

  /// Completed minutes with nonzero traffic are handed to `cb` (the paper
  /// "only consider[s] instances when there is some device exchanging
  /// traffic", so silent minutes are not emitted).
  ThroughputMeter(collect::HomeId home, MinuteCallback cb);

  void add_rate(net::Direction dir, double bps, TimePoint now);
  void remove_rate(net::Direction dir, double bps, TimePoint now);

  /// Advance time without a rate change (e.g. end of window), flushing any
  /// completed minutes.
  void advance_to(TimePoint now);

  [[nodiscard]] double current_rate(net::Direction dir) const {
    return dir == net::Direction::kUpstream ? rate_up_ : rate_down_;
  }

 private:
  collect::HomeId home_;
  MinuteCallback cb_;
  double rate_up_{0.0};
  double rate_down_{0.0};
  TimePoint last_update_{};
  bool started_{false};
  collect::ThroughputMinute bucket_{};
  std::int64_t bucket_minute_{-1};
  // Per-second byte accumulators for the peak computation.
  std::int64_t current_second_{-1};
  double sec_bytes_up_{0.0};
  double sec_bytes_down_{0.0};

  void integrate(TimePoint now);
  void roll_to_minute(std::int64_t minute_index, TimePoint minute_start);
  void flush_bucket();
  void finalize_second();
};

}  // namespace bismark::gateway
