#include "bismark/meter.h"

#include <algorithm>

namespace bismark::gateway {

namespace {
constexpr std::int64_t kMinuteMs = 60000;
constexpr std::int64_t kSecondMs = 1000;
}  // namespace

ThroughputMeter::ThroughputMeter(collect::HomeId home, MinuteCallback cb)
    : home_(home), cb_(std::move(cb)) {}

void ThroughputMeter::flush_bucket() {
  if (bucket_minute_ < 0) return;
  if (cb_ && (bucket_.bytes_up.count > 0 || bucket_.bytes_down.count > 0)) cb_(bucket_);
  bucket_ = collect::ThroughputMinute{};
  bucket_minute_ = -1;
}

void ThroughputMeter::roll_to_minute(std::int64_t minute_index, TimePoint minute_start) {
  if (minute_index == bucket_minute_) return;
  flush_bucket();
  bucket_minute_ = minute_index;
  bucket_.home = home_;
  bucket_.minute_start = minute_start;
}

void ThroughputMeter::finalize_second() {
  // A completed second's byte count is the "per-second throughput" sample
  // whose maximum the paper reports each minute (Section 6.2).
  if (sec_bytes_up_ > 0.0 || sec_bytes_down_ > 0.0) {
    bucket_.peak_up_bps = std::max(bucket_.peak_up_bps, sec_bytes_up_ * 8.0);
    bucket_.peak_down_bps = std::max(bucket_.peak_down_bps, sec_bytes_down_ * 8.0);
  }
  sec_bytes_up_ = 0.0;
  sec_bytes_down_ = 0.0;
}

void ThroughputMeter::integrate(TimePoint now) {
  if (!started_) {
    started_ = true;
    last_update_ = now;
    current_second_ = now.ms / kSecondMs;
    roll_to_minute(now.ms / kMinuteMs, TimePoint{(now.ms / kMinuteMs) * kMinuteMs});
    return;
  }
  if (now <= last_update_) return;

  TimePoint t = last_update_;
  while (t < now) {
    const std::int64_t second_index = t.ms / kSecondMs;
    if (second_index != current_second_) {
      finalize_second();
      current_second_ = second_index;
    }
    const std::int64_t minute_index = t.ms / kMinuteMs;
    roll_to_minute(minute_index, TimePoint{minute_index * kMinuteMs});

    const TimePoint second_end{(second_index + 1) * kSecondMs};
    const TimePoint seg_end = std::min(second_end, now);
    const double dt = (seg_end - t).seconds();
    if (dt > 0.0 && (rate_up_ > 0.0 || rate_down_ > 0.0)) {
      const double up_bytes = rate_up_ * dt / 8.0;
      const double down_bytes = rate_down_ * dt / 8.0;
      sec_bytes_up_ += up_bytes;
      sec_bytes_down_ += down_bytes;
      bucket_.bytes_up += Bytes{static_cast<std::int64_t>(up_bytes)};
      bucket_.bytes_down += Bytes{static_cast<std::int64_t>(down_bytes)};
    }
    t = seg_end;
  }
  last_update_ = now;
}

void ThroughputMeter::add_rate(net::Direction dir, double bps, TimePoint now) {
  integrate(now);
  if (dir == net::Direction::kUpstream) {
    rate_up_ += bps;
  } else {
    rate_down_ += bps;
  }
}

void ThroughputMeter::remove_rate(net::Direction dir, double bps, TimePoint now) {
  integrate(now);
  if (dir == net::Direction::kUpstream) {
    rate_up_ = std::max(0.0, rate_up_ - bps);
  } else {
    rate_down_ = std::max(0.0, rate_down_ - bps);
  }
}

void ThroughputMeter::advance_to(TimePoint now) {
  integrate(now);
  if (rate_up_ <= 0.0 && rate_down_ <= 0.0) {
    finalize_second();
    flush_bucket();
  }
}

}  // namespace bismark::gateway
