// Usage-cap management — the "uCap" feature of the BISmark firmware.
//
// Section 3.2.2: "we gave them access to a Web interface that allowed them
// to observe and manage their usage over time and across devices; this
// feature turns out to be quite useful for users who have Internet service
// plans with low data caps", building on the authors' earlier uCap work
// (reference [24]). This module implements that feature's logic: a monthly
// household cap, per-device quotas, consumption tracking from the
// gateway's per-device accounting, threshold alerts, and optional
// enforcement (throttling a device that blew its quota).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/time.h"
#include "core/units.h"
#include "net/addr.h"

namespace bismark::gateway {

/// Why an alert fired.
enum class CapAlertKind : int {
  kHouseholdThreshold = 0,  // household usage crossed an alert threshold
  kHouseholdExceeded,       // household cap blown
  kDeviceThreshold,         // a device crossed its quota threshold
  kDeviceExceeded,          // a device blew its quota
};

struct CapAlert {
  CapAlertKind kind{CapAlertKind::kHouseholdThreshold};
  TimePoint when;
  /// Device the alert concerns (zero MAC for household-level alerts).
  net::MacAddress device;
  Bytes used;
  Bytes limit;
  double fraction{0.0};
};

struct UsageCapConfig {
  /// Household monthly allowance (0 = uncapped).
  Bytes household_cap{GB(50)};
  /// Alert thresholds as fractions of the cap, ascending.
  std::vector<double> alert_fractions{0.5, 0.8, 0.95};
  /// Day of month the allowance resets (1..28).
  int reset_day{1};
  /// Throttle rate applied to devices over quota when enforcement is on.
  BitRate throttle_rate{Kbps(128)};
  bool enforce{false};
};

/// Tracks consumption against caps and emits alerts. Byte counts arrive
/// from the gateway's per-device accounting (on_flow_close), so this sees
/// exactly what the household's Web interface would show.
class UsageCapManager {
 public:
  using AlertCallback = std::function<void(const CapAlert&)>;

  UsageCapManager(UsageCapConfig config, AlertCallback on_alert = nullptr);

  /// Set (or clear, with 0 bytes) a per-device quota.
  void set_device_quota(net::MacAddress device, Bytes quota);
  [[nodiscard]] std::optional<Bytes> device_quota(net::MacAddress device) const;

  /// Record traffic attributed to `device` at time `now`. Handles the
  /// monthly rollover and fires alerts exactly once per threshold per
  /// billing period.
  void record(net::MacAddress device, Bytes bytes, TimePoint now);

  /// Current billing-period usage.
  [[nodiscard]] Bytes household_used() const { return household_used_; }
  [[nodiscard]] Bytes device_used(net::MacAddress device) const;
  /// Fraction of the household cap consumed (0 when uncapped).
  [[nodiscard]] double household_fraction() const;
  /// Days (possibly fractional) until the allowance resets.
  [[nodiscard]] double days_until_reset(TimePoint now) const;

  /// Whether a device should currently be throttled, and to what rate.
  [[nodiscard]] std::optional<BitRate> throttle_for(net::MacAddress device) const;

  /// The per-device breakdown the Web UI renders, descending by usage.
  struct DeviceUsageRow {
    net::MacAddress device;
    Bytes used;
    std::optional<Bytes> quota;
    bool over_quota{false};
  };
  [[nodiscard]] std::vector<DeviceUsageRow> usage_table() const;

  [[nodiscard]] const UsageCapConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<CapAlert>& alerts() const { return alerts_; }

  /// Start of the billing period containing `now` (UTC midnight of the
  /// reset day; clamps reset_day into the month).
  [[nodiscard]] TimePoint period_start(TimePoint now) const;

 private:
  struct DeviceState {
    Bytes used;
    Bytes quota;       // 0 = no quota
    std::size_t alerts_fired{0};
    bool exceeded_fired{false};
  };

  UsageCapConfig config_;
  AlertCallback on_alert_;
  Bytes household_used_;
  std::size_t household_alerts_fired_{0};
  bool household_exceeded_fired_{false};
  std::map<net::MacAddress, DeviceState> devices_;
  std::vector<CapAlert> alerts_;
  std::optional<TimePoint> current_period_;

  void maybe_roll_period(TimePoint now);
  void fire(CapAlertKind kind, TimePoint now, net::MacAddress device, Bytes used, Bytes limit);
};

}  // namespace bismark::gateway
