// Anonymisation, as the firmware applies it before anything leaves the home
// (Section 3.2.2):
//   * domain names are obfuscated unless on the whitelist (Alexa top 200
//     plus user additions; the user can also remove entries — the paper
//     explicitly strips pornographic domains),
//   * the lower 24 bits of every MAC address are hashed (vendor OUI kept),
//   * entire data sets are gated on the household's consent level.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "net/addr.h"
#include "traffic/domains.h"

namespace bismark::gateway {

/// What the household agreed to (Section 3.2's IRB consent tiers).
enum class ConsentLevel : int {
  kBasic = 0,   // active measurements + device counts only (no PII)
  kFullTraffic, // + packet/flow/DNS/MAC collection, anonymised
};

struct AnonymizerConfig {
  /// Per-deployment secret key for the keyed hashes.
  std::uint64_t key{0x5157434bULL};
  std::string anon_prefix{"anon-"};
};

class Anonymizer {
 public:
  /// Whitelist seeded from the catalog's whitelisted domains.
  Anonymizer(const traffic::DomainCatalog& catalog, AnonymizerConfig config);

  /// User-driven whitelist edits (the router's Web interface).
  void whitelist_add(const std::string& domain);
  void whitelist_remove(const std::string& domain);
  [[nodiscard]] bool is_whitelisted(const std::string& domain) const;
  [[nodiscard]] std::size_t whitelist_size() const { return whitelist_.size(); }

  /// Returns the domain unchanged if whitelisted, else "anon-<hash>".
  /// Deterministic: the same domain always maps to the same token, so
  /// per-domain aggregation still works on anonymised data.
  [[nodiscard]] std::string anonymize_domain(const std::string& domain) const;
  [[nodiscard]] static bool IsAnonToken(const std::string& domain);

  /// OUI-preserving MAC anonymisation (lower 24 bits keyed-hashed).
  [[nodiscard]] net::MacAddress anonymize_mac(net::MacAddress mac) const;

 private:
  std::set<std::string> whitelist_;
  AnonymizerConfig config_;
};

}  // namespace bismark::gateway
