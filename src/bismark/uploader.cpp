#include "bismark/uploader.h"

#include <algorithm>
#include <cassert>

namespace bismark::gateway {

// --- UploadSpool -----------------------------------------------------------

void UploadSpool::push(collect::Record r) {
  assert(!sealed_ && "UploadSpool: no pushes after seal()");
  ++accepted_;
  staged_.push_back(std::move(r));
}

void UploadSpool::seal() {
  if (sealed_) return;
  sealed_ = true;
  // Stable: simultaneous records keep their (deterministic) service order.
  std::stable_sort(staged_.begin(), staged_.end(),
                   [](const collect::Record& a, const collect::Record& b) {
                     return collect::RecordTime(a) < collect::RecordTime(b);
                   });
}

void UploadSpool::arrive_until(TimePoint now) {
  assert(sealed_ && "UploadSpool: seal() before replaying arrivals");
  while (next_arrival_ < staged_.size() &&
         collect::RecordTime(staged_[next_arrival_]) <= now) {
    queue_.push_back(std::move(staged_[next_arrival_]));
    ++next_arrival_;
    if (queue_.size() > capacity_) {
      ++dropped_.by_kind[queue_.front().index()];
      ++dropped_.total;
      queue_.pop_front();
    }
  }
  // Reclaim the staging prefix once fully replayed.
  if (next_arrival_ == staged_.size() && !staged_.empty()) {
    staged_.clear();
    next_arrival_ = 0;
  }
}

std::vector<collect::Record> UploadSpool::take(std::size_t max_records) {
  const std::size_t n = std::min(max_records, queue_.size());
  std::vector<collect::Record> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

// --- Uploader --------------------------------------------------------------

Uploader::Uploader(sim::Engine& engine, UploadSpool& spool, const net::FaultPlan& plan,
                   collect::IdempotentIngest& ingest, collect::HomeId home,
                   UploadPolicy policy, Rng rng)
    : engine_(engine),
      spool_(spool),
      plan_(plan),
      ingest_(ingest),
      home_(home),
      policy_(policy),
      rng_(rng) {}

void Uploader::attach_obs(obs::MetricsShard* shard, obs::FlightRecorder* recorder) {
#if BISMARK_OBS_ENABLED
  if (shard != nullptr) {
    // Occupancy as a fraction of capacity: ten 10%-wide buckets.
    occupancy_ = shard->histogram("bismark_spool_occupancy_ratio",
                                  obs::HistoSpec{0.0, 1.0, 10});
    // Delays cap at 6 h (policy default); half-hour buckets cover the range.
    backoff_minutes_ = shard->histogram("bismark_upload_backoff_delay_minutes",
                                        obs::HistoSpec{0.0, 360.0, 12});
  }
  recorder_ = recorder;
#else
  (void)shard;
  (void)recorder;
#endif
}

#if BISMARK_OBS_ENABLED
void Uploader::note_drops(TimePoint now) {
  const std::uint64_t total = spool_.dropped().total;
  if (total > dropped_seen_ && recorder_ != nullptr) {
    recorder_->record(obs::TraceKind::kSpoolDrop, now, home_.value, total - dropped_seen_,
                      total);
  }
  dropped_seen_ = total;
}
#endif

Duration Uploader::BackoffDelay(const UploadPolicy& policy, int attempt, Rng& rng) {
  Duration d = policy.backoff_base;
  for (int i = 1; i < attempt && d < policy.backoff_cap; ++i) d = d * 2;
  d = std::min(d, policy.backoff_cap);
  if (policy.jitter_frac > 0.0) {
    d = Millis(static_cast<std::int64_t>(
        static_cast<double>(d.ms) *
        rng.uniform(1.0 - policy.jitter_frac, 1.0 + policy.jitter_frac)));
  }
  return d;
}

void Uploader::start(Interval window) {
  spool_.seal();
  // Real deployments jitter their upload cron; a deterministic per-home
  // phase keeps 126 homes from flushing in lockstep.
  const Duration phase = Millis(rng_.uniform_int(0, policy_.flush_period.ms - 1));
  flush_handle_ =
      engine_.schedule_every(policy_.flush_period, [this](TimePoint t) { flush(t); }, phase);
  // A sweep exactly at window end picks up the tail regardless of phase.
  engine_.schedule_at(window.end, [this] { flush(engine_.now()); });
}

void Uploader::stop() {
  flush_handle_.cancel();
  retry_handle_.cancel();
}

std::uint64_t Uploader::stranded() const {
  return spool_.queued() + spool_.staged_remaining() + in_flight_records();
}

void Uploader::flush(TimePoint now) {
  spool_.arrive_until(now);
#if BISMARK_OBS_ENABLED
  note_drops(now);
  occupancy_.observe(static_cast<double>(spool_.queued()) /
                     static_cast<double>(spool_.capacity()));
  if (recorder_ != nullptr) {
    recorder_->record(obs::TraceKind::kFlushAttempt, now, home_.value, spool_.queued(),
                      next_seq_);
  }
#endif
  if (in_flight_) return;  // the retry timer owns the channel
  pump(now);
}

void Uploader::pump(TimePoint now) {
  while (!in_flight_) {
    auto records = spool_.take(policy_.max_batch_records);
    if (records.empty()) return;
    in_flight_ = collect::UploadBatch{home_, next_seq_++, std::move(records)};
    attempt_in_flight(now);
  }
}

void Uploader::attempt_in_flight(TimePoint now) {
  ++stats_.attempts;
  const net::DeliveryOutcome outcome = plan_.attempt(now, rng_);
  switch (outcome) {
    case net::DeliveryOutcome::kDelivered:
    case net::DeliveryOutcome::kLostAck:
      // The batch reached the collector either way; only the ack differs.
      if (ingest_.deliver(*in_flight_)) {
        ++stats_.batches_delivered;
        stats_.records_delivered += in_flight_->records.size();
#if BISMARK_OBS_ENABLED
        if (recorder_ != nullptr) {
          recorder_->record(obs::TraceKind::kBatchDelivered, now, home_.value,
                            in_flight_->records.size(), in_flight_->seq);
        }
#endif
      } else {
        ++stats_.duplicates_sent;
#if BISMARK_OBS_ENABLED
        if (recorder_ != nullptr) {
          recorder_->record(obs::TraceKind::kBatchDeduped, now, home_.value, 0,
                            in_flight_->seq);
        }
#endif
      }
      if (outcome == net::DeliveryOutcome::kDelivered) {
#if BISMARK_OBS_ENABLED
        if (failed_attempts_ > 0 && recorder_ != nullptr && streak_begin_ms_ >= 0) {
          recorder_->record(obs::TraceEvent{streak_begin_ms_, now.ms,
                                            obs::TraceKind::kBackoffSpan, home_.value,
                                            static_cast<std::uint64_t>(failed_attempts_),
                                            in_flight_->seq});
        }
        streak_begin_ms_ = -1;
#endif
        in_flight_.reset();
        failed_attempts_ = 0;
      } else {
        schedule_retry(now);
      }
      break;
    case net::DeliveryOutcome::kLostRequest:
    case net::DeliveryOutcome::kCollectorDown:
      schedule_retry(now);
      break;
  }
}

void Uploader::schedule_retry(TimePoint now) {
  ++failed_attempts_;
  ++stats_.retries;
  const Duration delay = BackoffDelay(policy_, failed_attempts_, rng_);
#if BISMARK_OBS_ENABLED
  if (streak_begin_ms_ < 0) streak_begin_ms_ = now.ms;
  backoff_minutes_.observe(delay.minutes());
  if (recorder_ != nullptr) {
    recorder_->record(obs::TraceKind::kRetryArmed, now, home_.value,
                      static_cast<std::uint64_t>(failed_attempts_),
                      static_cast<std::uint64_t>(delay.ms));
  }
#else
  (void)now;
#endif
  retry_handle_ = engine_.schedule_after(delay, [this] {
    const TimePoint at = engine_.now();
    spool_.arrive_until(at);
#if BISMARK_OBS_ENABLED
    note_drops(at);
#endif
    attempt_in_flight(at);
    if (!in_flight_) pump(at);  // acked: drain backlog accumulated meanwhile
  });
}

}  // namespace bismark::gateway
