#include "bismark/usage_cap.h"

#include <algorithm>

namespace bismark::gateway {

UsageCapManager::UsageCapManager(UsageCapConfig config, AlertCallback on_alert)
    : config_(config), on_alert_(std::move(on_alert)) {
  config_.reset_day = std::clamp(config_.reset_day, 1, 28);
  std::sort(config_.alert_fractions.begin(), config_.alert_fractions.end());
}

TimePoint UsageCapManager::period_start(TimePoint now) const {
  CivilDate date = CivilFromDays(now.utc_day());
  if (date.day < config_.reset_day) {
    // Previous month's reset day.
    date.month -= 1;
    if (date.month == 0) {
      date.month = 12;
      date.year -= 1;
    }
  }
  date.day = config_.reset_day;
  return MakeTime(date);
}

void UsageCapManager::maybe_roll_period(TimePoint now) {
  const TimePoint start = period_start(now);
  if (current_period_ && *current_period_ == start) return;
  current_period_ = start;
  household_used_ = Bytes{0};
  household_alerts_fired_ = 0;
  household_exceeded_fired_ = false;
  for (auto& [mac, state] : devices_) {
    state.used = Bytes{0};
    state.alerts_fired = 0;
    state.exceeded_fired = false;
  }
}

void UsageCapManager::set_device_quota(net::MacAddress device, Bytes quota) {
  devices_[device].quota = quota;
}

std::optional<Bytes> UsageCapManager::device_quota(net::MacAddress device) const {
  const auto it = devices_.find(device);
  if (it == devices_.end() || it->second.quota.count <= 0) return std::nullopt;
  return it->second.quota;
}

void UsageCapManager::fire(CapAlertKind kind, TimePoint now, net::MacAddress device,
                           Bytes used, Bytes limit) {
  CapAlert alert;
  alert.kind = kind;
  alert.when = now;
  alert.device = device;
  alert.used = used;
  alert.limit = limit;
  alert.fraction = limit.count > 0
                       ? static_cast<double>(used.count) / static_cast<double>(limit.count)
                       : 0.0;
  alerts_.push_back(alert);
  if (on_alert_) on_alert_(alert);
}

void UsageCapManager::record(net::MacAddress device, Bytes bytes, TimePoint now) {
  maybe_roll_period(now);
  if (bytes.count <= 0) return;

  household_used_ += bytes;
  DeviceState& state = devices_[device];
  state.used += bytes;

  // Household thresholds, each at most once per period, in order.
  if (config_.household_cap.count > 0) {
    const double frac = household_fraction();
    while (household_alerts_fired_ < config_.alert_fractions.size() &&
           frac >= config_.alert_fractions[household_alerts_fired_]) {
      fire(CapAlertKind::kHouseholdThreshold, now, net::MacAddress{}, household_used_,
           config_.household_cap);
      ++household_alerts_fired_;
    }
    if (!household_exceeded_fired_ && household_used_ > config_.household_cap) {
      fire(CapAlertKind::kHouseholdExceeded, now, net::MacAddress{}, household_used_,
           config_.household_cap);
      household_exceeded_fired_ = true;
    }
  }

  // Per-device quota thresholds.
  if (state.quota.count > 0) {
    const double frac =
        static_cast<double>(state.used.count) / static_cast<double>(state.quota.count);
    while (state.alerts_fired < config_.alert_fractions.size() &&
           frac >= config_.alert_fractions[state.alerts_fired]) {
      fire(CapAlertKind::kDeviceThreshold, now, device, state.used, state.quota);
      ++state.alerts_fired;
    }
    if (!state.exceeded_fired && state.used > state.quota) {
      fire(CapAlertKind::kDeviceExceeded, now, device, state.used, state.quota);
      state.exceeded_fired = true;
    }
  }
}

Bytes UsageCapManager::device_used(net::MacAddress device) const {
  const auto it = devices_.find(device);
  return it == devices_.end() ? Bytes{0} : it->second.used;
}

double UsageCapManager::household_fraction() const {
  if (config_.household_cap.count <= 0) return 0.0;
  return static_cast<double>(household_used_.count) /
         static_cast<double>(config_.household_cap.count);
}

double UsageCapManager::days_until_reset(TimePoint now) const {
  CivilDate date = CivilFromDays(period_start(now).utc_day());
  date.month += 1;
  if (date.month == 13) {
    date.month = 1;
    date.year += 1;
  }
  return (MakeTime(date) - now).days();
}

std::optional<BitRate> UsageCapManager::throttle_for(net::MacAddress device) const {
  if (!config_.enforce) return std::nullopt;
  const auto it = devices_.find(device);
  if (it == devices_.end()) return std::nullopt;
  const DeviceState& state = it->second;
  if (state.quota.count > 0 && state.used > state.quota) return config_.throttle_rate;
  if (config_.household_cap.count > 0 && household_used_ > config_.household_cap) {
    return config_.throttle_rate;
  }
  return std::nullopt;
}

std::vector<UsageCapManager::DeviceUsageRow> UsageCapManager::usage_table() const {
  std::vector<DeviceUsageRow> rows;
  for (const auto& [mac, state] : devices_) {
    DeviceUsageRow row;
    row.device = mac;
    row.used = state.used;
    if (state.quota.count > 0) {
      row.quota = state.quota;
      row.over_quota = state.used > state.quota;
    }
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const DeviceUsageRow& a, const DeviceUsageRow& b) { return a.used > b.used; });
  return rows;
}

}  // namespace bismark::gateway
