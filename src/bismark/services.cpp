#include "bismark/services.h"

#include <algorithm>

namespace bismark::gateway {

void ReportUptime(collect::RecordSink& sink, collect::HomeId home,
                  const IntervalSet& router_on, Interval window, Duration interval) {
  for (TimePoint t = window.start; t < window.end; t += interval) {
    const Interval* on = router_on.containing(t);
    if (!on) continue;  // powered off: nothing reports
    sink.add_uptime(collect::UptimeRecord{home, t, t - on->start});
  }
}

void ReportCapacity(collect::RecordSink& sink, collect::HomeId home,
                    const IntervalSet& online, const net::AccessLink& link, Rng rng,
                    Interval window, Duration interval) {
  for (TimePoint t = window.start; t < window.end; t += interval) {
    if (!online.contains(t)) continue;  // probe needs a working uplink
    collect::CapacityRecord rec;
    rec.home = home;
    rec.measured = t;
    rec.downstream = link.probe_capacity(net::Direction::kDownstream, rng);
    rec.upstream = link.probe_capacity(net::Direction::kUpstream, rng);
    sink.add_capacity(rec);
  }
}

void ReportDeviceCounts(collect::RecordSink& sink, collect::HomeId home,
                        const ClientCensus& census, const IntervalSet& router_on,
                        Interval window, Duration interval) {
  for (TimePoint t = window.start; t < window.end; t += interval) {
    if (!router_on.contains(t)) continue;
    collect::DeviceCountRecord rec;
    rec.home = home;
    rec.sampled = t;
    rec.wired = census.wired_connected(t);
    rec.wireless_24 = census.wireless_connected(wireless::Band::k2_4GHz, t);
    rec.wireless_5 = census.wireless_connected(wireless::Band::k5GHz, t);
    rec.unique_total = census.unique_seen_total(window.start, t + interval);
    rec.unique_24 =
        census.unique_seen_band(wireless::Band::k2_4GHz, window.start, t + interval);
    rec.unique_5 = census.unique_seen_band(wireless::Band::k5GHz, window.start, t + interval);
    sink.add_device_count(rec);
  }
}

void ReportWifiScans(collect::RecordSink& sink, collect::HomeId home,
                     const ClientCensus& census, const wireless::Neighborhood& neighborhood,
                     const IntervalSet& router_on, Interval window, Rng rng,
                     const WifiServiceConfig& config) {
  const wireless::Band bands[] = {wireless::Band::k2_4GHz, wireless::Band::k5GHz};
  for (wireless::Band band : bands) {
    const int channel =
        band == wireless::Band::k2_4GHz ? config.channel_24 : config.channel_5;
    const auto audible = neighborhood.audible_on(band, channel, config.scanner.sensitivity_dbm);
    Rng band_rng = rng.fork(static_cast<std::uint64_t>(band));

    TimePoint t = window.start;
    while (t < window.end) {
      if (!router_on.contains(t)) {
        // Fast-forward to the next power-on rather than stepping minutes.
        const auto gaps = router_on.gaps_within(t, window.end);
        if (gaps.empty() || gaps.front().start > t) {
          t += config.scanner.base_interval;
          continue;
        }
        t = gaps.front().end;
        continue;
      }
      const int clients = census.wireless_connected(band, t);
      // Fading: each audible AP is decoded with detection_prob per scan.
      int seen = 0;
      for (std::size_t i = 0; i < audible.size(); ++i) {
        if (band_rng.bernoulli(config.detection_prob)) ++seen;
      }
      collect::WifiScanRecord rec;
      rec.home = home;
      rec.scanned = t;
      rec.band = band;
      rec.channel = channel;
      rec.visible_aps = seen;
      rec.associated_clients = clients;
      sink.add_wifi_scan(rec);

      const Duration next = clients > 0
                                ? config.scanner.base_interval * config.scanner.backoff_factor
                                : config.scanner.base_interval;
      t += next;
    }
  }
}

}  // namespace bismark::gateway
