#include "bismark/anonymize.h"

#include <cstdio>

namespace bismark::gateway {

namespace {
std::uint64_t HashMix(std::uint64_t key, std::uint64_t v) {
  std::uint64_t z = key ^ (v + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t HashString(std::uint64_t key, const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ key;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return HashMix(key, h);
}
}  // namespace

Anonymizer::Anonymizer(const traffic::DomainCatalog& catalog, AnonymizerConfig config)
    : config_(config) {
  for (std::size_t i = 0; i < catalog.whitelist_size(); ++i) {
    whitelist_.insert(catalog.domain(i).name);
  }
}

void Anonymizer::whitelist_add(const std::string& domain) { whitelist_.insert(domain); }

void Anonymizer::whitelist_remove(const std::string& domain) { whitelist_.erase(domain); }

bool Anonymizer::is_whitelisted(const std::string& domain) const {
  return whitelist_.contains(domain);
}

std::string Anonymizer::anonymize_domain(const std::string& domain) const {
  if (is_whitelisted(domain)) return domain;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%016llx", config_.anon_prefix.c_str(),
                static_cast<unsigned long long>(HashString(config_.key, domain)));
  return buf;
}

bool Anonymizer::IsAnonToken(const std::string& domain) {
  return domain.rfind("anon-", 0) == 0;
}

net::MacAddress Anonymizer::anonymize_mac(net::MacAddress mac) const {
  return mac.anonymized(config_.key);
}

}  // namespace bismark::gateway
