// The BISmark gateway: the router firmware's data path and passive monitor.
//
// Sits where the paper's WNDR3800 sits — between the access link and the
// home LAN — and is therefore the one vantage point that sees per-device
// traffic *before* the NAT collapses it onto a single address. Implements
// traffic::TrafficSink: every generated DNS answer, flow and burst passes
// through here, gets NAT-translated, metered and (under consent)
// anonymised into the Traffic data set.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "bismark/anonymize.h"
#include "bismark/meter.h"
#include "bismark/usage_cap.h"
#include "collect/repository.h"
#include "net/access_link.h"
#include "net/cgn.h"
#include "net/dhcp.h"
#include "net/ethernet.h"
#include "net/nat.h"
#include "net/pcap.h"
#include "traffic/generator.h"
#include "wireless/association.h"

namespace bismark::gateway {

/// Where this home sits in the ISP's NAT444 topology. When enabled, every
/// outbound packet is translated twice — home NAT, then the carrier-grade
/// tier — through the byte-level wire path (DESIGN §13).
struct CgnPlacement {
  bool enabled{false};
  net::CgnConfig config;
  /// This home's subscriber slot on its CGN (owns a disjoint port slice).
  std::uint32_t subscriber_index{0};
  /// Which CGN instance serves the home (reported in CgnEventRecord).
  int cgn_id{0};
};

struct GatewayConfig {
  collect::HomeId home;
  ConsentLevel consent{ConsentLevel::kBasic};
  net::NatConfig nat;
  CgnPlacement cgn;
  net::Ipv4Cidr lan_prefix{net::Ipv4Address(192, 168, 1, 0), 24};
  /// NAT conntrack GC cadence.
  Duration nat_gc_interval{Minutes(10).ms};
};

/// Per-device traffic totals the gateway accumulates (Figs 12/17/20).
struct DeviceUsage {
  net::MacAddress mac;  // original; anonymised on export
  Bytes bytes_total;
  std::uint64_t flows{0};
};

class Gateway final : public traffic::TrafficSink {
 public:
  Gateway(GatewayConfig config, net::AccessLink& link, const Anonymizer& anonymizer,
          collect::RecordSink* sink);

  // --- LAN-side plumbing ---
  net::DhcpPool& dhcp() { return dhcp_; }
  net::EthernetSwitch& ethernet() { return ethernet_; }
  net::NatTable& nat() { return nat_; }
  wireless::AssociationTable& radio(wireless::Band band);
  [[nodiscard]] const net::AccessLink& link() const { return link_; }

  // --- traffic::TrafficSink ---
  void on_dns(const net::DnsResponse& response, net::MacAddress device,
              TimePoint now) override;
  void on_flow_open(const traffic::FlowOpen& open) override;
  void on_chunk(const traffic::FlowChunk& chunk) override;
  void on_flow_close(const net::FlowRecord& record) override;
  double admit_rate(net::Direction dir, double demand_bps) override;
  void add_rate(net::Direction dir, double bps, TimePoint now) override;
  void remove_rate(net::Direction dir, double bps, TimePoint now) override;

  /// Flush meters and per-device usage into the record sink (end of study).
  void finalize(TimePoint now);

  /// Repoint where collected records go. The sharded deployment runner
  /// targets a per-shard staging batch for the traffic window and rebinds
  /// back to the repository afterwards. Must not be called while traffic
  /// is flowing through the gateway.
  void rebind_sink(collect::RecordSink* sink) { repo_ = sink; }

  /// Attach the uCap usage manager (Section 3.2.2's cap-management Web
  /// interface). Once attached, every closed flow is charged to its device.
  /// The gateway does not own the manager.
  void attach_usage_caps(UsageCapManager* caps) { caps_ = caps; }
  [[nodiscard]] UsageCapManager* usage_caps() const { return caps_; }

  /// Attach a WAN-egress capture buffer (the deployment's per-shard pcap
  /// staging). While attached — or whenever a CGN tier is configured —
  /// outbound packets travel the byte-level wire path: encoded once as a
  /// real Ethernet frame, then translated in place by incremental checksum
  /// rewrites. Pass nullptr to detach. Not owned.
  void attach_pcap(net::PcapBuffer* buf) { pcap_ = buf; }

  /// The carrier-grade tier in front of this home, or nullptr (NAT44 only).
  [[nodiscard]] net::CgnTable* cgn() { return cgn_.get(); }

  [[nodiscard]] const std::map<net::MacAddress, DeviceUsage>& device_usage() const {
    return usage_;
  }
  [[nodiscard]] const GatewayConfig& config() const { return config_; }

 private:
  GatewayConfig config_;
  net::AccessLink& link_;
  const Anonymizer& anonymizer_;
  collect::RecordSink* repo_;  // may be null (standalone examples)

  net::NatTable nat_;
  std::unique_ptr<net::CgnTable> cgn_;  // non-null iff config.cgn.enabled
  net::PcapBuffer* pcap_{nullptr};
  net::MacAddress wan_mac_;  // the gateway's WAN-side source MAC
  net::MacAddress isp_mac_;  // next-hop (ISP edge) MAC on captured frames
  net::DhcpPool dhcp_;
  net::EthernetSwitch ethernet_;
  wireless::AssociationTable radio24_;
  wireless::AssociationTable radio5_;
  ThroughputMeter meter_;
  UsageCapManager* caps_{nullptr};
  std::map<net::MacAddress, DeviceUsage> usage_;
  // Open-flow conntrack as parallel arrays sorted by flow id (SoA). Flow
  // ids mint monotonically, so inserts are almost always appends; the
  // table holds tens of concurrently-open flows, making the flat layout
  // both smaller and faster than a node-based map at fleet scale.
  std::vector<net::FlowId> open_flow_ids_;
  std::vector<net::FiveTuple> open_flow_tuples_;
  [[nodiscard]] std::size_t find_open_flow(net::FlowId id) const;
  TimePoint last_nat_gc_{};
  // The meter sees *shaped* rates: downstream is policed by the ISP before
  // it reaches the gateway; upstream demand beyond capacity only shows up
  // at the gateway when a deep modem buffer absorbs it (bufferbloat homes).
  double meter_view_up_{0.0};
  double meter_view_down_{0.0};
  void sync_meter(net::Direction dir, TimePoint now);

  [[nodiscard]] bool traffic_consented() const {
    return config_.consent == ConsentLevel::kFullTraffic;
  }
  void maybe_gc_nat(TimePoint now);
  /// Outbound translation dispatch: the struct fast path when no CGN/pcap
  /// is configured, else the byte-level wire path (encode → NAT rewrite →
  /// CGN rewrite → capture). Returns false when the packet is dropped.
  bool process_outbound(net::Packet& pkt);
};

}  // namespace bismark::gateway
