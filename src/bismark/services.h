// The firmware's periodic measurement services (Table 2 cadences):
//   * Uptime        — every 12 h, seconds since last boot
//   * Capacity      — every 12 h, ShaperProbe-style up/down estimates
//   * Devices       — hourly census of wired ports and per-band clients
//   * WiFi          — ~10-minute channel scans, backed off when clients
//                     are associated (Section 3.2.2)
//
// Each service reports only while the router is powered, and the active
// ones only while the home is actually online — the root cause of every
// visibility limitation Section 3.3 discusses.
#pragma once

#include "collect/repository.h"
#include "collect/sink.h"
#include "core/intervals.h"
#include "core/rng.h"
#include "net/access_link.h"
#include "wireless/neighbor.h"
#include "wireless/scanner.h"

namespace bismark::gateway {

/// What the device-census services can see of the LAN at a given time.
/// Implemented by home::Household in the full simulation and by the
/// gateway's live tables in standalone use.
class ClientCensus {
 public:
  virtual ~ClientCensus() = default;
  virtual int wired_connected(TimePoint t) const = 0;
  virtual int wireless_connected(wireless::Band band, TimePoint t) const = 0;
  /// Distinct devices actually seen connected at some point in [since, until).
  virtual int unique_seen_total(TimePoint since, TimePoint until) const = 0;
  /// Distinct devices seen on `band` at some point in [since, until).
  virtual int unique_seen_band(wireless::Band band, TimePoint since, TimePoint until) const = 0;
};

/// Report router uptime every `interval` within `window`; the counter
/// resets at each power-on, letting analysis tell "powered off" from
/// "offline".
void ReportUptime(collect::RecordSink& sink, collect::HomeId home,
                  const IntervalSet& router_on, Interval window,
                  Duration interval = Hours(12));

/// Run the capacity probe every `interval` while the home is online.
void ReportCapacity(collect::RecordSink& sink, collect::HomeId home,
                    const IntervalSet& online, const net::AccessLink& link, Rng rng,
                    Interval window, Duration interval = Hours(12));

/// Hourly device census while the router is powered.
void ReportDeviceCounts(collect::RecordSink& sink, collect::HomeId home,
                        const ClientCensus& census, const IntervalSet& router_on,
                        Interval window, Duration interval = Hours(1));

struct WifiServiceConfig {
  wireless::ScannerConfig scanner;
  /// Fraction of audible APs actually decoded in one scan pass (fading).
  double detection_prob{0.92};
  /// Channels the two radios are configured for. Defaults match BISmark's
  /// shipping config (11 / 36); Section 3.2.2 notes users may change them.
  int channel_24{wireless::DefaultChannel(wireless::Band::k2_4GHz)};
  int channel_5{wireless::DefaultChannel(wireless::Band::k5GHz)};
};

/// Channel scans on both radios while the router is powered. Scans run at
/// the base cadence when the radio has no clients and back off by
/// `scanner.backoff_factor` otherwise.
void ReportWifiScans(collect::RecordSink& sink, collect::HomeId home,
                     const ClientCensus& census, const wireless::Neighborhood& neighborhood,
                     const IntervalSet& router_on, Interval window, Rng rng,
                     const WifiServiceConfig& config = {});

}  // namespace bismark::gateway
