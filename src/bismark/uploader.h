// Store-and-forward upload pipeline on the gateway.
//
// The paper's routers do not stream their periodic measurements — they log
// locally and upload in batches, surviving collector outages and flaky
// uplinks (Section 3.2.2/3.3). This module is that machinery: every
// measurement service writes through a bounded UploadSpool instead of
// straight into a RecordSink, and an Uploader flushes spooled records on a
// Table-2-style cadence via the sim engine, retrying failed uploads with
// exponential backoff + jitter. When the spool fills — a long collector
// outage, say — it degrades gracefully by dropping the oldest records into
// a counted, queryable ledger rather than blocking the services.
//
// Heartbeats are the deliberate exception: they are live liveness packets
// (a spooled heartbeat would be a contradiction), so the deployment keeps
// sending them through collect::CollectionServer directly.
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "collect/upload.h"
#include "core/rng.h"
#include "net/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace bismark::gateway {

/// Per-kind and total counts of records the bounded spool discarded.
struct SpoolDropLedger {
  std::array<std::uint64_t, collect::kRecordKinds> by_kind{};
  std::uint64_t total{0};
};

/// A bounded, time-aware store-and-forward buffer with drop-oldest
/// overflow. Producers (the measurement services) write records through the
/// RecordSink interface ahead of time; the uploader then replays them
/// against the simulated clock: a record only occupies spool capacity once
/// its measurement timestamp has passed, and leaves it when an upload batch
/// takes it.
class UploadSpool final : public collect::RecordSink {
 public:
  explicit UploadSpool(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  // RecordSink — stages the record (keyed by its measurement timestamp).
  // One override covers every record kind; the drop ledger below is sized
  // by the same typelist, so a new kind cannot miss a ledger slot.
  void add_record(collect::Record r) override { push(std::move(r)); }

  /// Impose the global arrival order on staged records (stable sort by
  /// measurement timestamp — producers append service-by-service, so the
  /// staging area is only sorted per service). Must be called once, before
  /// the first arrive_until(); further pushes are rejected afterwards.
  void seal();

  /// Admit staged records with timestamp <= now into the bounded live
  /// queue, dropping the oldest queued record (into the ledger) for each
  /// admission beyond capacity.
  void arrive_until(TimePoint now);

  /// Pop up to `max_records` from the front of the live queue.
  [[nodiscard]] std::vector<collect::Record> take(std::size_t max_records);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  /// Staged records whose arrival time has not been replayed yet.
  [[nodiscard]] std::size_t staged_remaining() const { return staged_.size() - next_arrival_; }
  /// Total records ever accepted through the RecordSink interface.
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] const SpoolDropLedger& dropped() const { return dropped_; }

 private:
  void push(collect::Record r);

  std::size_t capacity_;
  bool sealed_{false};
  std::vector<collect::Record> staged_;  // arrival-ordered once sealed
  std::size_t next_arrival_{0};
  std::deque<collect::Record> queue_;    // live, bounded
  std::uint64_t accepted_{0};
  SpoolDropLedger dropped_;
};

/// Upload cadence and retry policy (defaults sized for the Table 2 service
/// cadences: a 6 h flush holds at most a handful of device censuses and a
/// few dozen WiFi scans per batch).
struct UploadPolicy {
  std::size_t spool_capacity{8192};
  Duration flush_period{Hours(6)};
  std::size_t max_batch_records{512};
  /// Exponential backoff: base * 2^(attempt-1), capped, times a jitter
  /// factor drawn uniformly from [1 - jitter_frac, 1 + jitter_frac).
  Duration backoff_base{Minutes(1)};
  Duration backoff_cap{Hours(6)};
  double jitter_frac{0.25};
  /// How long past the collection window the uploader keeps draining, so
  /// records spooled during a tail-end outage still get delivered.
  Duration drain_grace{Days(2)};
};

/// Flushes one home's spool through a FaultPlan-governed path into the
/// collector's idempotent ingest gate, entirely on the sim engine's clock.
/// At-least-once: a batch is resent (same sequence number) until an ack is
/// observed; the ingest gate turns the resulting duplicates into
/// exactly-once repository contents. All randomness (jitter, loss, latency)
/// comes from the per-home Rng handed in, so behaviour is a pure function
/// of (fault seed, home id).
class Uploader {
 public:
  Uploader(sim::Engine& engine, UploadSpool& spool, const net::FaultPlan& plan,
           collect::IdempotentIngest& ingest, collect::HomeId home, UploadPolicy policy,
           Rng rng);

  Uploader(const Uploader&) = delete;
  Uploader& operator=(const Uploader&) = delete;

  /// Hook this uploader into a metrics shard and flight recorder. Resolves
  /// the handles once (cold); afterwards each flush samples spool occupancy
  /// into `bismark_spool_occupancy_ratio`, each armed retry feeds
  /// `bismark_upload_backoff_delay_minutes`, and delivery/retry/dedup
  /// events land in the recorder with sim-time stamps. A failure streak
  /// (first failed attempt .. successful delivery) is recorded as one
  /// kBackoffSpan. Compiles to nothing under BISMARK_OBS=OFF. Call before
  /// start(); both pointers may be null.
  void attach_obs(obs::MetricsShard* shard, obs::FlightRecorder* recorder);

  /// Seal the spool and schedule periodic flushes over `window` (plus the
  /// drain grace, bounded by how far the caller runs the engine). The first
  /// flush lands at a deterministic per-home phase inside one period.
  void start(Interval window);

  /// Cancel the flush schedule and any pending retry. Safe to call twice.
  void stop();

  struct Stats {
    std::uint64_t attempts{0};            ///< transmissions, incl. retransmissions
    std::uint64_t batches_delivered{0};   ///< batches committed by the collector
    std::uint64_t records_delivered{0};
    std::uint64_t retries{0};             ///< backoff timers armed
    std::uint64_t duplicates_sent{0};     ///< retransmissions the gate deduped
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool retry_pending() const { return retry_handle_.active(); }
  /// Records in the transmit buffer awaiting an ack (0 or one batch).
  [[nodiscard]] std::size_t in_flight_records() const {
    return in_flight_ ? in_flight_->records.size() : 0;
  }
  /// Accepted records that were neither delivered nor dropped when the
  /// engine stopped: still queued, staged, or in flight.
  [[nodiscard]] std::uint64_t stranded() const;

  /// Deterministic backoff delay for the `attempt`-th consecutive failure
  /// (attempt >= 1). Exposed for the exact-sequence unit tests.
  [[nodiscard]] static Duration BackoffDelay(const UploadPolicy& policy, int attempt,
                                             Rng& rng);

 private:
  void flush(TimePoint now);
  void pump(TimePoint now);
  void attempt_in_flight(TimePoint now);
  void schedule_retry(TimePoint now);
#if BISMARK_OBS_ENABLED
  /// Trace new spool-ledger drops since the last call.
  void note_drops(TimePoint now);
#endif

  sim::Engine& engine_;
  UploadSpool& spool_;
  const net::FaultPlan& plan_;
  collect::IdempotentIngest& ingest_;
  collect::HomeId home_;
  UploadPolicy policy_;
  Rng rng_;
  std::uint64_t next_seq_{0};
  std::optional<collect::UploadBatch> in_flight_;
  int failed_attempts_{0};
  sim::EventHandle flush_handle_;
  sim::EventHandle retry_handle_;
  Stats stats_;

#if BISMARK_OBS_ENABLED
  obs::Histo occupancy_;          // spool fill fraction, sampled per flush
  obs::Histo backoff_minutes_;    // armed backoff delays
  obs::FlightRecorder* recorder_{nullptr};
  std::int64_t streak_begin_ms_{-1};   // first failure of the current streak
  std::uint64_t dropped_seen_{0};      // spool ledger total already traced
#endif
};

}  // namespace bismark::gateway
