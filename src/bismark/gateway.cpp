#include "bismark/gateway.h"

#include <algorithm>
#include <array>
#include <span>

#include "net/wire.h"

namespace bismark::gateway {

Gateway::Gateway(GatewayConfig config, net::AccessLink& link, const Anonymizer& anonymizer,
                 collect::RecordSink* sink)
    : config_(config),
      link_(link),
      anonymizer_(anonymizer),
      repo_(sink),
      nat_(config.nat),
      cgn_(config.cgn.enabled ? std::make_unique<net::CgnTable>(config.cgn.config) : nullptr),
      // Locally-administered MACs, deterministic per home / per CGN: these
      // appear in pcap frames, never in exported datasets.
      wan_mac_(net::MacAddress::FromParts(0x02b15a,
                                          static_cast<std::uint32_t>(config.home.value))),
      isp_mac_(net::MacAddress::FromParts(0x02157e,
                                          static_cast<std::uint32_t>(config.cgn.cgn_id))),
      dhcp_(config.lan_prefix, config.lan_prefix.host(1)),
      ethernet_(4),
      radio24_(wireless::RadioConfig{wireless::Band::k2_4GHz,
                                     wireless::DefaultChannel(wireless::Band::k2_4GHz), true}),
      radio5_(wireless::RadioConfig{wireless::Band::k5GHz,
                                    wireless::DefaultChannel(wireless::Band::k5GHz), true}),
      meter_(config.home, [this](const collect::ThroughputMinute& m) {
        if (repo_ && traffic_consented()) repo_->add_throughput_minute(m);
      }) {}

wireless::AssociationTable& Gateway::radio(wireless::Band band) {
  return band == wireless::Band::k2_4GHz ? radio24_ : radio5_;
}

void Gateway::on_dns(const net::DnsResponse& response, net::MacAddress device, TimePoint now) {
  if (!repo_ || !traffic_consented()) return;
  collect::DnsLogRecord rec;
  rec.home = config_.home;
  rec.when = now;
  rec.device_mac = anonymizer_.anonymize_mac(device);
  rec.query = anonymizer_.anonymize_domain(response.query);
  rec.anonymized = Anonymizer::IsAnonToken(rec.query);
  for (const auto& r : response.records) {
    if (r.type == net::DnsRecordType::kA) {
      ++rec.a_records;
    } else {
      ++rec.cname_records;
    }
  }
  repo_->add_dns(std::move(rec));
}

bool Gateway::process_outbound(net::Packet& pkt) {
  if (cgn_ == nullptr && pcap_ == nullptr) {
    // Struct fast path — byte-identical behaviour to the pre-wire gateway.
    return nat_.translate_outbound(pkt);
  }
  // Wire path: the packet becomes a real Ethernet frame once, and both NAT
  // tiers translate it by editing bytes (cached-delta checksum updates).
  std::array<std::byte, net::wire::kMaxFrameBytes> buf;
  const std::size_t len = net::wire::EncodeFrame(pkt, wan_mac_, isp_mac_, buf);
  const std::span<std::byte> frame(buf.data(), len);
  if (!nat_.translate_outbound_wire(frame, pkt.timestamp, pkt.lan_mac)) return false;
  if (cgn_ != nullptr &&
      !cgn_->translate_outbound_wire(config_.cgn.subscriber_index, frame, pkt.timestamp)) {
    return false;  // CGN port exhaustion: the packet never reaches the WAN
  }
  if (pcap_ != nullptr) pcap_->capture(pkt.timestamp, config_.home.value, frame);
  if (const auto t = net::wire::ExtractTuple(frame)) pkt.tuple = *t;
  return true;
}

void Gateway::on_flow_open(const traffic::FlowOpen& open) {
  // Push the first packet of the flow through the NAT so a WAN mapping
  // exists for the whole transfer — the same path a real SYN takes.
  net::Packet syn;
  syn.timestamp = open.opened;
  syn.tuple = open.lan_tuple;
  syn.size = B(64);
  syn.direction = net::Direction::kUpstream;
  syn.lan_mac = open.device_mac;
  process_outbound(syn);
  const auto it = std::lower_bound(open_flow_ids_.begin(), open_flow_ids_.end(), open.id);
  if (it != open_flow_ids_.end() && *it == open.id) {
    open_flow_tuples_[static_cast<std::size_t>(it - open_flow_ids_.begin())] = open.lan_tuple;
  } else {
    const auto pos = it - open_flow_ids_.begin();
    open_flow_ids_.insert(it, open.id);
    open_flow_tuples_.insert(open_flow_tuples_.begin() + pos, open.lan_tuple);
  }
  maybe_gc_nat(open.opened);

  // Let the LAN-side learning tables see the device.
  ethernet_.observe_frame(open.device_mac, open.opened);
  radio24_.touch(open.device_mac, open.opened);
  radio5_.touch(open.device_mac, open.opened);
}

std::size_t Gateway::find_open_flow(net::FlowId id) const {
  const auto it = std::lower_bound(open_flow_ids_.begin(), open_flow_ids_.end(), id);
  if (it == open_flow_ids_.end() || !(*it == id)) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - open_flow_ids_.begin());
}

void Gateway::on_chunk(const traffic::FlowChunk& chunk) {
  // Keep the conntrack entry warm, as continuing packets would.
  const std::size_t pos = find_open_flow(chunk.id);
  if (pos != static_cast<std::size_t>(-1)) {
    net::Packet pkt;
    pkt.timestamp = chunk.start;
    pkt.tuple = open_flow_tuples_[pos];
    pkt.size = B(1500);
    pkt.direction = net::Direction::kUpstream;
    process_outbound(pkt);
  }
}

void Gateway::on_flow_close(const net::FlowRecord& record) {
  if (const std::size_t pos = find_open_flow(record.id); pos != static_cast<std::size_t>(-1)) {
    open_flow_ids_.erase(open_flow_ids_.begin() + static_cast<std::ptrdiff_t>(pos));
    open_flow_tuples_.erase(open_flow_tuples_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  // Per-device accounting feeds Figs 12/17/20 regardless of consent; it
  // leaves the home only in anonymised, aggregate form.
  auto& usage = usage_[record.device_mac];
  usage.mac = record.device_mac;
  usage.bytes_total += record.total_bytes();
  ++usage.flows;
  if (caps_) caps_->record(record.device_mac, record.total_bytes(), record.last_packet);

  if (!repo_ || !traffic_consented()) return;
  collect::TrafficFlowRecord rec;
  rec.home = config_.home;
  rec.flow = record.id;
  rec.first_packet = record.first_packet;
  rec.last_packet = record.last_packet;
  rec.protocol = record.tuple.protocol;
  rec.dst_port = record.tuple.dst_port;
  rec.device_mac = anonymizer_.anonymize_mac(record.device_mac);
  rec.bytes_up = record.bytes_up;
  rec.bytes_down = record.bytes_down;
  rec.packets_up = record.packets_up;
  rec.packets_down = record.packets_down;
  rec.domain = anonymizer_.anonymize_domain(record.domain);
  rec.domain_anonymized = Anonymizer::IsAnonToken(rec.domain);
  repo_->add_flow(std::move(rec));
}

double Gateway::admit_rate(net::Direction dir, double demand_bps) {
  return link_.admit(dir, demand_bps);
}

void Gateway::sync_meter(net::Direction dir, TimePoint now) {
  const double raw = link_.active_rate(dir);
  double cap = link_.capacity(dir).bps;
  if (dir == net::Direction::kUpstream && link_.config().allow_uplink_overdrive) {
    cap *= 1.0 + link_.config().overdrive_headroom;
  }
  const double clamped = std::min(raw, cap);
  double& view = dir == net::Direction::kUpstream ? meter_view_up_ : meter_view_down_;
  const double delta = clamped - view;
  if (delta > 0.0) {
    meter_.add_rate(dir, delta, now);
  } else if (delta < 0.0) {
    meter_.remove_rate(dir, -delta, now);
  }
  view = clamped;
}

void Gateway::add_rate(net::Direction dir, double bps, TimePoint now) {
  link_.add_rate(dir, bps, now);
  sync_meter(dir, now);
}

void Gateway::remove_rate(net::Direction dir, double bps, TimePoint now) {
  link_.remove_rate(dir, bps, now);
  sync_meter(dir, now);
}

void Gateway::maybe_gc_nat(TimePoint now) {
  if ((now - last_nat_gc_) >= config_.nat_gc_interval) {
    nat_.expire_idle(now);
    if (cgn_) cgn_->expire_idle(now);
    last_nat_gc_ = now;
  }
}

void Gateway::finalize(TimePoint now) {
  meter_.advance_to(now);
  if (!repo_) return;
  for (const auto& [mac, usage] : usage_) {
    collect::DeviceTrafficRecord rec;
    rec.home = config_.home;
    rec.device_mac = anonymizer_.anonymize_mac(mac);
    rec.vendor = net::OuiRegistry::Instance().classify(mac);
    rec.bytes_total = usage.bytes_total;
    rec.flows = usage.flows;
    repo_->add_device_traffic(rec);
  }
  // One CGN accounting row per home that actually touched its CGN; homes
  // with no CGN (or no traffic through it) contribute nothing, so CGN-off
  // runs keep every export stream byte-identical.
  if (cgn_ != nullptr) {
    const std::uint32_t sub = config_.cgn.subscriber_index;
    const net::CgnSubscriberStats& ss = cgn_->subscriber_stats(sub);
    if (ss.translations_out + ss.translations_in + ss.exhaustion_drops + ss.inbound_drops >
        0) {
      collect::CgnEventRecord rec;
      rec.home = config_.home;
      rec.when = now;
      rec.cgn_id = config_.cgn.cgn_id;
      rec.port_block = cgn_->slice_base_port(sub);
      rec.port_block_size = cgn_->config().port_block_size;
      rec.port_blocks_allocated = ss.blocks_allocated;
      rec.ports_peak = ss.ports_peak;
      rec.port_capacity = cgn_->subscriber_port_capacity(sub);
      rec.translations_out = ss.translations_out;
      rec.translations_in = ss.translations_in;
      rec.exhaustion_drops = ss.exhaustion_drops;
      rec.inbound_drops = ss.inbound_drops;
      repo_->add_cgn_event(rec);
    }
  }
}

}  // namespace bismark::gateway
