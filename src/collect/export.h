// CSV export of the public (non-PII) data sets.
//
// The paper releases everything except the Traffic data set
// (Section 3.2): Heartbeats, Uptime, Capacity, Devices and WiFi go out;
// Traffic stays private. `ExportPublicDatasets` enforces exactly that
// split; `ExportTrafficDataset` exists for consented internal use and
// only ever writes the anonymised forms.
#pragma once

#include <ostream>
#include <string>

#include "collect/repository.h"

namespace bismark::collect {

/// Write one data set as CSV to a stream. Returns rows written.
std::size_t ExportHeartbeats(const DataRepository& repo, std::ostream& out);
std::size_t ExportUptime(const DataRepository& repo, std::ostream& out);
std::size_t ExportCapacity(const DataRepository& repo, std::ostream& out);
std::size_t ExportDevices(const DataRepository& repo, std::ostream& out);
std::size_t ExportWifi(const DataRepository& repo, std::ostream& out);
/// Anonymised traffic flows — PII-bearing, not part of the public release.
std::size_t ExportTrafficFlows(const DataRepository& repo, std::ostream& out);

/// Write the five public data sets into `directory` (created if needed) as
/// heartbeats.csv, uptime.csv, capacity.csv, devices.csv, wifi.csv.
/// Returns total rows written; throws std::runtime_error on I/O failure.
std::size_t ExportPublicDatasets(const DataRepository& repo, const std::string& directory);

}  // namespace bismark::collect
