// CSV export generated from the schema layer.
//
// Two views exist per data set:
//
//  * The *release* view (Schema<T>::Release()) — the historical public CSV
//    formats, byte-identical to the original hand-written exporters. The
//    paper releases everything except the Traffic data set (Section 3.2):
//    Heartbeats, Uptime, Capacity, Devices and WiFi go out; Traffic stays
//    private. `ExportPublicDatasets` enforces exactly that split;
//    `ExportTrafficFlows` exists for consented internal use and only ever
//    writes the anonymised forms.
//
//  * The *full-fidelity* view (Schema<T>::Fields()) — every field with
//    lossless codecs, for all nine data sets. `ExportAllDatasets` +
//    `ImportAllDatasets` reproduce a repository exactly (tested), which is
//    what archival hand-off between studies uses when the binary snapshot
//    (collect/snapshot.h) is not wanted.
#pragma once

#include <ostream>
#include <string>

#include "collect/repository.h"

namespace bismark::collect {

/// Write one data set's release view as CSV to a stream. Returns rows
/// written (excluding the header).
std::size_t ExportHeartbeats(const DataRepository& repo, std::ostream& out);
std::size_t ExportUptime(const DataRepository& repo, std::ostream& out);
std::size_t ExportCapacity(const DataRepository& repo, std::ostream& out);
std::size_t ExportDevices(const DataRepository& repo, std::ostream& out);
std::size_t ExportWifi(const DataRepository& repo, std::ostream& out);
/// Anonymised traffic flows — PII-bearing, not part of the public release.
std::size_t ExportTrafficFlows(const DataRepository& repo, std::ostream& out);

/// Write the five public data sets into `directory` (created if needed) as
/// heartbeats.csv, uptime.csv, capacity.csv, devices.csv, wifi.csv.
/// Returns total rows written; throws std::runtime_error on I/O failure.
/// `workers` > 1 exports kinds in parallel (each kind owns its file, and a
/// spilled repository reduces one kind into scratch at a time under the
/// merge lock, so the per-file bytes are identical at any worker count).
std::size_t ExportPublicDatasets(const DataRepository& repo, const std::string& directory,
                                 std::size_t workers = 1);

/// Schema-generated full-fidelity export of one data set: every field, in
/// Schema<T>::Fields() order, with exact codecs. Returns rows written.
template <typename T>
std::size_t ExportDatasetCsv(const DataRepository& repo, std::ostream& out);

/// Full-fidelity export of all registered data sets into `directory`
/// (created if needed), one Schema<T>::kCsvFile per kind. Returns total
/// rows written; throws std::runtime_error on I/O failure. `workers` > 1
/// exports kinds in parallel with byte-identical per-file output.
std::size_t ExportAllDatasets(const DataRepository& repo, const std::string& directory,
                              std::size_t workers = 1);

}  // namespace bismark::collect
