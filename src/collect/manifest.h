// Write-ahead manifest for the spill directory (DESIGN §12).
//
// A fleet run's segment files are only half the durable state — the other
// half is *which byte ranges of them are committed*. The manifest is an
// append-only log of checksummed records, one per durable event, written in
// strict WAL order: section bytes are flushed to the OS before the record
// that references them is appended, so a record's presence proves its data
// exists. Recovery replays the manifest, truncates a torn tail at the first
// record whose length or CRC fails, re-verifies every referenced section's
// framing + CRC32C, and quarantines anything that does not check out —
// dropping the owning shard back to "pending" so the resumed run regenerates
// it (per-home content is a pure function of (seed, home id), so a re-run
// shard reproduces the same bytes).
//
// Record framing: u32 body_len | body | u32 crc32c(body), body = u8 type +
// payload. File starts with the 8-byte magic "BSMKMAN2".
//
// Layering: collect/ knows nothing about deployment knobs. The run
// configuration travels as an opaque `options_blob` that home/deployment
// encodes and decodes; the manifest only compares it byte-for-byte on
// resume.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "collect/repository.h"
#include "core/io.h"

namespace bismark::collect {

/// On-disk spill format version (segment framing + manifest records).
inline constexpr std::uint32_t kSpillFormatVersion = 2;

/// Fingerprint of the registered record schemas (kind names, field names,
/// wire order). A resumed run must match the writer's fingerprint exactly —
/// segments are not readable across schema changes.
[[nodiscard]] std::uint64_t SchemaFingerprint();

/// The kConfig record: everything a resume needs to rebuild the run.
struct ManifestConfig {
  std::uint32_t spill_format{kSpillFormatVersion};
  std::uint64_t schema_fingerprint{0};
  std::uint64_t budget_bytes{0};
  std::uint32_t workers{1};     // informational; resume may use any count
  std::uint32_t generation{0};  // bumped once per resume attempt
  std::uint32_t shard_count{0};
  /// Deployment-encoded options (opaque here); resume decodes it and a
  /// mismatching blob on a later generation is a hard error.
  std::string options_blob;
};

/// The kCheckpoint record.
struct ManifestCheckpoint {
  std::int64_t sim_clock_ms{0};   ///< high-water sim-engine clock
  std::uint64_t shards_done{0};   ///< committed shards at checkpoint time
  std::string sketch_blob;        ///< serialized sketches (may be empty)
};

/// Serialised writer for the manifest file. Thread-compatible; SpillDir
/// serialises access under its own mutex. All methods throw on I/O failure
/// — a manifest that cannot be appended means durability is gone.
class ManifestWriter {
 public:
  /// Create (`fresh`) or re-open for append after recovery.
  void open(const std::string& path, bool fresh);

  void config(const ManifestConfig& cfg);
  void file(std::uint32_t file_id, const std::string& name);
  void section(const SectionRef& ref);
  void shard_done(std::uint32_t shard, const std::vector<HomeInfo>& homes);
  void checkpoint(const ManifestCheckpoint& ckpt);

  /// fsync the manifest (checkpoints call this; plain records only flush).
  void sync();

  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return out_.path(); }

 private:
  void append(std::uint8_t type, const std::string& payload);

  core::CheckedFile out_;
};

/// Everything recovery learned from a spill directory.
struct SpillRecovery {
  bool has_config{false};
  ManifestConfig config;

  bool has_checkpoint{false};
  ManifestCheckpoint checkpoint;

  /// File table: id -> name relative to the spill dir.
  std::vector<std::string> files;
  /// Committed, CRC-verified sections of completed shards, per kind.
  std::array<std::vector<SectionRef>, kRecordKinds> sections;
  /// Homes registered by completed shards, in shard order.
  std::vector<HomeInfo> homes;
  /// Shard-plan indices whose kShardDone record and sections all verified.
  std::vector<std::uint32_t> done_shards;

  // Recovery accounting (mirrored into obs counters by the deployment).
  std::uint64_t manifest_bytes_truncated{0};
  std::uint64_t segment_bytes_truncated{0};
  std::uint64_t sections_verified{0};
  std::uint64_t sections_quarantined{0};
  std::uint64_t shards_dropped{0};
  /// One line per recovery action worth telling the operator about.
  std::vector<std::string> diagnostics;
};

/// Replay `dir`'s manifest and verify every referenced section. Truncates
/// the manifest's torn tail and segment-file garbage past the last committed
/// byte (mutates the directory — recovery is a write operation). Returns
/// false with *error when the directory is not resumable at all (missing or
/// unrecognisable manifest, no committed config, schema mismatch).
bool RecoverSpillDir(const std::string& dir, SpillRecovery* out, std::string* error);

/// Cheap config-only replay: no section verification, no mutation. For CLI
/// startup (`--resume` rebuilds its options from this before committing to
/// a full recovery).
bool ReadManifestConfig(const std::string& dir, ManifestConfig* out, std::string* error);

}  // namespace bismark::collect
