// Write-side interface to the collection system.
//
// Everything that *produces* records — the collection server, the firmware
// services, the gateway's passive monitor — writes through this interface
// rather than against the concrete DataRepository. That indirection is what
// lets the sharded deployment runner point each worker at a private staging
// buffer (collect::IngestBatch) and merge the shards deterministically
// afterwards, while single-threaded callers keep handing a DataRepository
// straight to the producers.
//
// The dispatch surface is add_record(Record) plus a bulk add_records()
// that defaults to it, so a sink implementation covers every record kind
// by construction — a new entry in RecordTypes reaches every sink without
// touching them. The named add_* entry points are non-virtual
// conveniences over add_record.
#pragma once

#include <utility>
#include <vector>

#include "collect/schema.h"

namespace bismark::collect {

class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// The single dispatch point: every producer path funnels through here.
  virtual void add_record(Record r) = 0;

  /// Bulk entry point for staged producers (the collection server's
  /// heartbeat runs, the collector's ingest gate): one virtual dispatch
  /// per batch instead of one per record. The default forwards
  /// record-by-record; sinks with native bulk storage (IngestBatch,
  /// DataRepository) override it.
  virtual void add_records(std::vector<Record> records) {
    for (Record& r : records) add_record(std::move(r));
  }

  /// Typed convenience: wraps the record into the variant.
  template <typename T>
  void add(T rec) {
    add_record(Record(std::in_place_type<T>, std::move(rec)));
  }

  // Named entry points kept for producer-code readability.
  void add_heartbeat_run(HeartbeatRun run) { add(std::move(run)); }
  void add_uptime(UptimeRecord rec) { add(std::move(rec)); }
  void add_capacity(CapacityRecord rec) { add(std::move(rec)); }
  void add_device_count(DeviceCountRecord rec) { add(std::move(rec)); }
  void add_wifi_scan(WifiScanRecord rec) { add(std::move(rec)); }
  void add_flow(TrafficFlowRecord rec) { add(std::move(rec)); }
  void add_throughput_minute(ThroughputMinute rec) { add(std::move(rec)); }
  void add_dns(DnsLogRecord rec) { add(std::move(rec)); }
  void add_device_traffic(DeviceTrafficRecord rec) { add(std::move(rec)); }
  void add_cgn_event(CgnEventRecord rec) { add(std::move(rec)); }
};

/// Replay one record into a sink.
inline void DeliverRecord(RecordSink& sink, const Record& r) { sink.add_record(r); }

}  // namespace bismark::collect
