// Write-side interface to the collection system.
//
// Everything that *produces* records — the collection server, the firmware
// services, the gateway's passive monitor — writes through this interface
// rather than against the concrete DataRepository. That indirection is what
// lets the sharded deployment runner point each worker at a private staging
// buffer (collect::IngestBatch) and merge the shards deterministically
// afterwards, while single-threaded callers keep handing a DataRepository
// straight to the producers.
#pragma once

#include "collect/records.h"

namespace bismark::collect {

class RecordSink {
 public:
  virtual ~RecordSink() = default;

  virtual void add_heartbeat_run(HeartbeatRun run) = 0;
  virtual void add_uptime(UptimeRecord rec) = 0;
  virtual void add_capacity(CapacityRecord rec) = 0;
  virtual void add_device_count(DeviceCountRecord rec) = 0;
  virtual void add_wifi_scan(WifiScanRecord rec) = 0;
  virtual void add_flow(TrafficFlowRecord rec) = 0;
  virtual void add_throughput_minute(ThroughputMinute rec) = 0;
  virtual void add_dns(DnsLogRecord rec) = 0;
  virtual void add_device_traffic(DeviceTrafficRecord rec) = 0;
};

}  // namespace bismark::collect
