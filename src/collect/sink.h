// Write-side interface to the collection system.
//
// Everything that *produces* records — the collection server, the firmware
// services, the gateway's passive monitor — writes through this interface
// rather than against the concrete DataRepository. That indirection is what
// lets the sharded deployment runner point each worker at a private staging
// buffer (collect::IngestBatch) and merge the shards deterministically
// afterwards, while single-threaded callers keep handing a DataRepository
// straight to the producers.
//
// There is exactly one virtual dispatch point, add_record(Record), so a
// sink implementation covers every record kind by construction — a new
// entry in RecordTypes reaches every sink without touching them. The named
// add_* entry points are non-virtual conveniences over it.
#pragma once

#include <utility>

#include "collect/schema.h"

namespace bismark::collect {

class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// The single dispatch point: every producer path funnels through here.
  virtual void add_record(Record r) = 0;

  /// Typed convenience: wraps the record into the variant.
  template <typename T>
  void add(T rec) {
    add_record(Record(std::in_place_type<T>, std::move(rec)));
  }

  // Named entry points kept for producer-code readability.
  void add_heartbeat_run(HeartbeatRun run) { add(std::move(run)); }
  void add_uptime(UptimeRecord rec) { add(std::move(rec)); }
  void add_capacity(CapacityRecord rec) { add(std::move(rec)); }
  void add_device_count(DeviceCountRecord rec) { add(std::move(rec)); }
  void add_wifi_scan(WifiScanRecord rec) { add(std::move(rec)); }
  void add_flow(TrafficFlowRecord rec) { add(std::move(rec)); }
  void add_throughput_minute(ThroughputMinute rec) { add(std::move(rec)); }
  void add_dns(DnsLogRecord rec) { add(std::move(rec)); }
  void add_device_traffic(DeviceTrafficRecord rec) { add(std::move(rec)); }
};

/// Replay one record into a sink.
inline void DeliverRecord(RecordSink& sink, const Record& r) { sink.add_record(r); }

}  // namespace bismark::collect
