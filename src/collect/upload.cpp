#include "collect/upload.h"

namespace bismark::collect {

bool IdempotentIngest::deliver(const UploadBatch& batch) {
  const auto [it, fresh] = seen_.emplace(batch.home.value, batch.seq);
  if (!fresh) {
    ++stats_.batches_deduped;
    return false;
  }
  // The batch stays owned by the uploader (it may need to retransmit a
  // lost ack), so the sink gets a copy — but committed in bulk, one
  // virtual dispatch for the whole batch.
  sink_->add_records(batch.records);
  ++stats_.batches_committed;
  stats_.records_committed += batch.records.size();
  return true;
}

}  // namespace bismark::collect
