#include "collect/upload.h"

namespace bismark::collect {

namespace {
template <class... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;
}  // namespace

TimePoint RecordTime(const Record& r) {
  return std::visit(
      Overloaded{
          [](const HeartbeatRun& v) { return v.start; },
          [](const UptimeRecord& v) { return v.reported; },
          [](const CapacityRecord& v) { return v.measured; },
          [](const DeviceCountRecord& v) { return v.sampled; },
          [](const WifiScanRecord& v) { return v.scanned; },
          [](const TrafficFlowRecord& v) { return v.first_packet; },
          [](const ThroughputMinute& v) { return v.minute_start; },
          [](const DnsLogRecord& v) { return v.when; },
          [](const DeviceTrafficRecord&) { return TimePoint{0}; },
      },
      r);
}

const char* RecordKindName(std::size_t variant_index) {
  static constexpr const char* kNames[kRecordKinds] = {
      "heartbeat_run", "uptime",     "capacity",       "device_count",  "wifi_scan",
      "traffic_flow",  "throughput", "dns",            "device_traffic"};
  return variant_index < kRecordKinds ? kNames[variant_index] : "unknown";
}

void DeliverRecord(RecordSink& sink, const Record& r) {
  std::visit(Overloaded{
                 [&](const HeartbeatRun& v) { sink.add_heartbeat_run(v); },
                 [&](const UptimeRecord& v) { sink.add_uptime(v); },
                 [&](const CapacityRecord& v) { sink.add_capacity(v); },
                 [&](const DeviceCountRecord& v) { sink.add_device_count(v); },
                 [&](const WifiScanRecord& v) { sink.add_wifi_scan(v); },
                 [&](const TrafficFlowRecord& v) { sink.add_flow(v); },
                 [&](const ThroughputMinute& v) { sink.add_throughput_minute(v); },
                 [&](const DnsLogRecord& v) { sink.add_dns(v); },
                 [&](const DeviceTrafficRecord& v) { sink.add_device_traffic(v); },
             },
             r);
}

bool IdempotentIngest::deliver(const UploadBatch& batch) {
  const auto [it, fresh] = seen_.emplace(batch.home.value, batch.seq);
  if (!fresh) {
    ++stats_.batches_deduped;
    return false;
  }
  for (const Record& r : batch.records) DeliverRecord(*sink_, r);
  ++stats_.batches_committed;
  stats_.records_committed += batch.records.size();
  return true;
}

}  // namespace bismark::collect
