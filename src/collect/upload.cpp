#include "collect/upload.h"

namespace bismark::collect {

bool IdempotentIngest::deliver(const UploadBatch& batch) {
  const auto [it, fresh] = seen_.emplace(batch.home.value, batch.seq);
  if (!fresh) {
    ++stats_.batches_deduped;
    return false;
  }
  for (const Record& r : batch.records) DeliverRecord(*sink_, r);
  ++stats_.batches_committed;
  stats_.records_committed += batch.records.size();
  return true;
}

}  // namespace bismark::collect
