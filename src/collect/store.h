// Generic dataset store derived from the schema typelist.
//
// One std::vector per registered record kind, held in a tuple. This is the
// storage both IngestBatch (thread-private staging) and DataRepository (the
// merged study corpus) are built on — replacing nine hand-written vector
// members, add_* overloads, and per-set sort calls in each. Window
// admission, the canonical sort key, and the kind set itself all come from
// Schema<T>, so a new data set gets storage, merging, and deterministic
// ordering without touching this file.
#pragma once

#include <algorithm>
#include <iterator>
#include <tuple>
#include <utility>
#include <vector>

#include "collect/schema.h"

namespace bismark::collect {

template <typename... Ts>
class StoreOf {
 public:
  template <typename T>
  [[nodiscard]] const std::vector<T>& rows() const {
    return std::get<std::vector<T>>(data_);
  }
  template <typename T>
  [[nodiscard]] std::vector<T>& rows() {
    return std::get<std::vector<T>>(data_);
  }

  /// Window-gated append: Schema<T>::Admit clips or rejects the record.
  /// Returns whether the record was kept.
  template <typename T>
  bool add(const DatasetWindows& windows, T rec) {
    if (!Schema<T>::Admit(windows, rec)) return false;
    rows<T>().push_back(std::move(rec));
    return true;
  }
  bool add(const DatasetWindows& windows, Record&& r) {
    return std::visit([&](auto&& rec) { return add(windows, std::move(rec)); }, std::move(r));
  }

  /// Move-append every data set of `other`, which is left empty.
  void append(StoreOf&& other) { (absorb_one<Ts>(other), ...); }

  /// Canonical per-dataset order: stable sort by Schema<T>::SortKey.
  /// Per-home generation is deterministic and each home lives in exactly
  /// one shard, so after this sort the contents are identical for every
  /// worker/shard configuration.
  void sort_canonical() { (sort_one<Ts>(), ...); }

  [[nodiscard]] std::size_t total_rows() const { return (rows<Ts>().size() + ...); }

 private:
  template <typename T>
  void absorb_one(StoreOf& other) {
    auto& dst = rows<T>();
    auto& src = other.rows<T>();
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
    src.clear();
  }
  template <typename T>
  void sort_one() {
    auto& vec = rows<T>();
    std::stable_sort(vec.begin(), vec.end(), [](const T& a, const T& b) {
      return Schema<T>::SortKey(a) < Schema<T>::SortKey(b);
    });
  }

  std::tuple<std::vector<Ts>...> data_;
};

namespace schema_detail {
template <typename List>
struct StoreOfList;
template <typename... Ts>
struct StoreOfList<TypeList<Ts...>> {
  using type = StoreOf<Ts...>;
};
}  // namespace schema_detail

/// The store over every registered record kind.
using RecordStore = schema_detail::StoreOfList<RecordTypes>::type;

}  // namespace bismark::collect
