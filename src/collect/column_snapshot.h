// BSMKSNAP v3: the columnar snapshot substrate (DESIGN §14).
//
// v1/v2 snapshots are one row-oriented blob: loading any figure's input
// means decoding every row of every data set. v3 turns the snapshot into
// the native analytical layout — a *directory* with one meta file plus one
// column file per non-empty kind, so `analyze` maps only the kinds a
// figure needs and scans them without a decode pass:
//
//   <dir>/snapshot.bsmkmeta      magic/version/windows/homes + the full
//                                per-kind section table, CRC32C-trailed
//                                exactly like the v2 snapshot
//   <dir>/<kind>.bsmkcol         one file per kind with rows, e.g.
//                                capacity.bsmkcol — stripes of per-field
//                                column sections
//
// Column file layout (all integers little-endian):
//
//   file header   u32 magic "BCL3" | u32 kind index | u32 field count
//                 | u32 reserved                                16 bytes
//   per stripe (up to kStripeRows rows), per field in schema order:
//     header      u32 magic "CSC3" | u32 field | u32 stripe
//                 | u32 encoding (fixed width, 0 = string)      16 bytes
//     body        fixed: rows × width raw LE values
//                 string: rows × u32 cumulative end offsets, then blob
//     footer      u64 rows | u64 body bytes | u32 CRC32C of body
//                 | u32 end magic "END3"                        24 bytes
//     padding     zero bytes to the next 8-byte boundary
//
// This is the PR-8 section frame (16-byte header, 24-byte CRC footer)
// applied per column, so the crash-safety story carries over: the reader
// verifies every frame and CRC of a kind file against the meta table the
// first time that kind is touched, and fails closed on any mismatch.
// Readers get the bytes through core::MappedFile — mmap when the kernel
// grants it, a buffered read otherwise — and every open is recorded in the
// core::IoReadStats counters, which is how tests prove a single-figure
// query touched only its own kind segments.
//
// The writer streams through DataRepository::for_each_row, so it works
// from the in-RAM store, a spill directory (bounded by one stripe of
// buffered columns — fleet mode under --memory-budget-mb), or another
// snapshot, and writes kinds in parallel on bismark::ThreadPool (each kind
// owns its file, so bytes are identical at any worker count).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "collect/column_view.h"
#include "collect/repository.h"
#include "core/io.h"

namespace bismark::collect {

inline constexpr std::uint32_t kColumnSnapshotVersion = 3;
inline constexpr char kColumnMetaFile[] = "snapshot.bsmkmeta";
inline constexpr char kColumnFileSuffix[] = ".bsmkcol";
inline constexpr std::uint32_t kColumnFileMagic = 0x334C4342;     // "BCL3"
inline constexpr std::uint32_t kColumnSectionMagic = 0x33435343;  // "CSC3"
inline constexpr std::uint32_t kColumnSectionEndMagic = 0x33444E45;  // "END3"
inline constexpr std::size_t kColumnFileHeaderBytes = 16;
inline constexpr std::size_t kColumnSectionHeaderBytes = 16;
inline constexpr std::size_t kColumnSectionFooterBytes = 24;
/// Stripe bounds: a stripe closes at this many rows or this much buffered
/// column data, whichever comes first — the writer's only O(data) state.
inline constexpr std::uint64_t kColumnStripeRows = 64 * 1024;
inline constexpr std::size_t kColumnStripeBytes = 64 * 1024 * 1024;

/// One column section's place in its kind file (meta-table entry).
struct ColumnSectionMeta {
  std::uint64_t body_offset{0};  // from file start, past the 16-byte header
  std::uint64_t body_bytes{0};
  std::uint32_t crc{0};
  std::uint32_t encoding{0};  // fixed width in bytes; 0 = string offsets+blob
};

struct ColumnStripeMeta {
  std::uint64_t rows{0};
  std::vector<ColumnSectionMeta> sections;  // one per field, schema order
};

struct ColumnKindMeta {
  std::string file;  // empty when the kind has no rows (no file written)
  std::uint64_t rows{0};
  std::vector<ColumnStripeMeta> stripes;
};

/// Write `repo` as a v3 snapshot directory (created if missing; existing
/// snapshot files are overwritten). Kind files are written in parallel on
/// `workers` threads. Returns false with *error on any I/O or encoding
/// failure — partial output may remain, but the meta file is written last
/// and fsynced, so a directory with a valid meta is complete.
bool SaveColumnSnapshot(const DataRepository& repo, const std::string& dir,
                        std::string* error, std::size_t workers = 1);

/// True when `path` names a directory holding a v3 meta file.
[[nodiscard]] bool IsColumnSnapshotDir(const std::string& path);

/// An opened v3 snapshot. The meta file is read and CRC-verified eagerly;
/// kind files are mapped and verified lazily, on the first read touching
/// that kind — the laziness *is* the product guarantee (a figure's query
/// maps only its own kinds) so it is not an optimisation to remove.
/// Thread-safe for concurrent reads; lazy opens are mutex-serialised.
class ColumnSnapshot {
 public:
  /// Parse + checksum <dir>/snapshot.bsmkmeta. nullptr + *error on failure
  /// (bad magic/version/CRC, schema drift, malformed section table).
  static std::shared_ptr<const ColumnSnapshot> Open(const std::string& dir,
                                                    std::string* error);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const DatasetWindows& windows() const { return windows_; }
  [[nodiscard]] const std::vector<HomeInfo>& homes() const { return homes_; }

  [[nodiscard]] std::uint64_t rows_of_kind(std::size_t kind) const {
    return kinds_[kind].meta.rows;
  }
  [[nodiscard]] std::uint64_t total_rows() const { return total_rows_; }
  [[nodiscard]] std::size_t stripes_of_kind(std::size_t kind) const {
    return kinds_[kind].meta.stripes.size();
  }

  /// Map + frame/CRC-verify kind's column file. First call per kind does
  /// the work; later calls are a fence check. Throws std::runtime_error
  /// ("snapshot: corrupt ...") on any mismatch with the meta table.
  void ensure_kind_open(std::size_t kind) const;

  /// Zero-copy view of one stripe of kind T (maps the kind file on first
  /// use). The view borrows the mapping: valid while this object lives.
  template <typename T>
  [[nodiscard]] TableView<T> stripe(std::size_t stripe_index) const {
    constexpr std::size_t kKind = kRecordIndexOf<T>;
    ensure_kind_open(kKind);
    const KindState& ks = kinds_[kKind];
    const ColumnStripeMeta& sm = ks.meta.stripes[stripe_index];
    std::array<const char*, TableView<T>::kNumFields> bodies{};
    for (std::size_t f = 0; f < bodies.size(); ++f) {
      bodies[f] = ks.map.data() + sm.sections[f].body_offset;
    }
    return TableView<T>(bodies, sm.rows);
  }

  /// Stream one stripe's rows in canonical order (rows materialised).
  template <typename T>
  void for_each_row_in_stripe(std::size_t stripe_index,
                              const std::function<void(const T&)>& fn) const {
    const TableView<T> view = stripe<T>(stripe_index);
    T row{};
    for (std::uint64_t i = 0; i < view.rows(); ++i) {
      view.row(i, &row);
      fn(row);
    }
  }

  /// Stream every row of kind T. Zero-row kinds touch no file at all.
  template <typename T>
  void for_each_row(const std::function<void(const T&)>& fn) const {
    constexpr std::size_t kKind = kRecordIndexOf<T>;
    if (kinds_[kKind].meta.rows == 0) return;
    for (std::size_t s = 0; s < stripes_of_kind(kKind); ++s) {
      for_each_row_in_stripe<T>(s, fn);
    }
  }

 private:
  ColumnSnapshot() = default;

  struct KindState {
    ColumnKindMeta meta;
    mutable core::MappedFile map;
    mutable std::atomic<bool> opened{false};
  };

  std::string dir_;
  DatasetWindows windows_;
  std::vector<HomeInfo> homes_;
  std::uint64_t total_rows_{0};
  std::array<KindState, kRecordKinds> kinds_;
  mutable std::mutex open_mu_;
};

/// Open a v3 snapshot as a column-backed DataRepository: windows and homes
/// registered, every for_each_row routed through the columnar reader.
std::unique_ptr<DataRepository> OpenColumnSnapshot(const std::string& dir,
                                                   std::string* error);

}  // namespace bismark::collect
