#include "collect/export.h"

#include <array>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/csv.h"
#include "core/thread_pool.h"

namespace bismark::collect {

namespace {
/// The release view, generated from Schema<T>::Release() — byte-identical
/// to the original per-dataset exporters.
template <typename T>
std::size_t WriteReleaseCsv(const DataRepository& repo, std::ostream& out) {
  CsvWriter csv(out);
  const auto& cols = Schema<T>::Release();
  std::vector<std::string> cells;
  cells.reserve(cols.size());
  for (const auto& c : cols) cells.emplace_back(c.name);
  csv.write_row(cells);
  repo.for_each_row<T>([&](const T& r) {
    cells.clear();
    for (const auto& c : cols) cells.push_back(c.encode(r));
    csv.write_row(cells);
  });
  return csv.rows_written() - 1;
}
}  // namespace

std::size_t ExportHeartbeats(const DataRepository& repo, std::ostream& out) {
  return WriteReleaseCsv<HeartbeatRun>(repo, out);
}
std::size_t ExportUptime(const DataRepository& repo, std::ostream& out) {
  return WriteReleaseCsv<UptimeRecord>(repo, out);
}
std::size_t ExportCapacity(const DataRepository& repo, std::ostream& out) {
  return WriteReleaseCsv<CapacityRecord>(repo, out);
}
std::size_t ExportDevices(const DataRepository& repo, std::ostream& out) {
  return WriteReleaseCsv<DeviceCountRecord>(repo, out);
}
std::size_t ExportWifi(const DataRepository& repo, std::ostream& out) {
  return WriteReleaseCsv<WifiScanRecord>(repo, out);
}
std::size_t ExportTrafficFlows(const DataRepository& repo, std::ostream& out) {
  return WriteReleaseCsv<TrafficFlowRecord>(repo, out);
}

namespace {
/// Run one file-writing task per kind on `workers` threads and sum the row
/// counts in fixed slot order. Each kind owns its output file, so the bytes
/// on disk are identical at any worker count; parallel_for rethrows the
/// first exception, preserving the throw-on-open-failure contract.
std::size_t RunExportTasks(std::vector<std::function<std::size_t()>>& tasks,
                           std::size_t workers) {
  std::array<std::size_t, kRecordKinds> counts{};
  ThreadPool pool(static_cast<int>(workers));
  pool.parallel_for(tasks.size(),
                    [&](std::size_t i, int) { counts[i] = tasks[i](); });
  std::size_t total = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) total += counts[i];
  return total;
}
}  // namespace

std::size_t ExportPublicDatasets(const DataRepository& repo, const std::string& directory,
                                 std::size_t workers) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  std::vector<std::function<std::size_t()>> tasks;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    if constexpr (Schema<T>::kHasRelease && Schema<T>::kPublicRelease) {
      tasks.emplace_back([&repo, &directory]() -> std::size_t {
        std::ofstream out(fs::path(directory) / Schema<T>::kCsvFile);
        if (!out) {
          throw std::runtime_error(std::string("cannot open ") + Schema<T>::kCsvFile +
                                   " for writing");
        }
        return WriteReleaseCsv<T>(repo, out);
      });
    }
  });
  return RunExportTasks(tasks, workers);
}

template <typename T>
std::size_t ExportDatasetCsv(const DataRepository& repo, std::ostream& out) {
  CsvWriter csv(out);
  std::vector<std::string> cells;
  std::apply([&cells](const auto&... field) { (cells.emplace_back(field.name), ...); },
             Schema<T>::Fields());
  csv.write_row(cells);
  repo.for_each_row<T>([&](const T& r) {
    cells.clear();
    std::apply(
        [&cells, &r](const auto&... field) {
          (cells.push_back(CsvEncode(r.*(field.member))), ...);
        },
        Schema<T>::Fields());
    csv.write_row(cells);
  });
  return csv.rows_written() - 1;
}

// One instantiation per registered record kind.
template std::size_t ExportDatasetCsv<HeartbeatRun>(const DataRepository&, std::ostream&);
template std::size_t ExportDatasetCsv<UptimeRecord>(const DataRepository&, std::ostream&);
template std::size_t ExportDatasetCsv<CapacityRecord>(const DataRepository&, std::ostream&);
template std::size_t ExportDatasetCsv<DeviceCountRecord>(const DataRepository&, std::ostream&);
template std::size_t ExportDatasetCsv<WifiScanRecord>(const DataRepository&, std::ostream&);
template std::size_t ExportDatasetCsv<TrafficFlowRecord>(const DataRepository&, std::ostream&);
template std::size_t ExportDatasetCsv<ThroughputMinute>(const DataRepository&, std::ostream&);
template std::size_t ExportDatasetCsv<DnsLogRecord>(const DataRepository&, std::ostream&);
template std::size_t ExportDatasetCsv<DeviceTrafficRecord>(const DataRepository&,
                                                           std::ostream&);

std::size_t ExportAllDatasets(const DataRepository& repo, const std::string& directory,
                              std::size_t workers) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  std::vector<std::function<std::size_t()>> tasks;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    tasks.emplace_back([&repo, &directory]() -> std::size_t {
      std::ofstream out(fs::path(directory) / Schema<T>::kCsvFile);
      if (!out) {
        throw std::runtime_error(std::string("cannot open ") + Schema<T>::kCsvFile +
                                 " for writing");
      }
      return ExportDatasetCsv<T>(repo, out);
    });
  });
  return RunExportTasks(tasks, workers);
}

}  // namespace bismark::collect
