#include "collect/export.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/csv.h"

namespace bismark::collect {

namespace {
std::string Ms(TimePoint t) { return std::to_string(t.ms); }
std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}
}  // namespace

std::size_t ExportHeartbeats(const DataRepository& repo, std::ostream& out) {
  CsvWriter csv(out);
  csv.write_row({"home", "run_start_ms", "run_end_ms", "heartbeats"});
  for (const auto& r : repo.heartbeat_runs()) {
    csv.write_row({std::to_string(r.home.value), Ms(r.start), Ms(r.end),
                   std::to_string(r.heartbeat_count())});
  }
  return csv.rows_written() - 1;
}

std::size_t ExportUptime(const DataRepository& repo, std::ostream& out) {
  CsvWriter csv(out);
  csv.write_row({"home", "reported_ms", "uptime_s"});
  for (const auto& r : repo.uptime()) {
    csv.write_row({std::to_string(r.home.value), Ms(r.reported), Num(r.uptime.seconds())});
  }
  return csv.rows_written() - 1;
}

std::size_t ExportCapacity(const DataRepository& repo, std::ostream& out) {
  CsvWriter csv(out);
  csv.write_row({"home", "measured_ms", "down_mbps", "up_mbps"});
  for (const auto& r : repo.capacity()) {
    csv.write_row({std::to_string(r.home.value), Ms(r.measured), Num(r.downstream.mbps()),
                   Num(r.upstream.mbps())});
  }
  return csv.rows_written() - 1;
}

std::size_t ExportDevices(const DataRepository& repo, std::ostream& out) {
  CsvWriter csv(out);
  csv.write_row({"home", "sampled_ms", "wired", "wireless_24", "wireless_5", "unique_total",
                 "unique_24", "unique_5"});
  for (const auto& r : repo.device_counts()) {
    csv.write_row({std::to_string(r.home.value), Ms(r.sampled), std::to_string(r.wired),
                   std::to_string(r.wireless_24), std::to_string(r.wireless_5),
                   std::to_string(r.unique_total), std::to_string(r.unique_24),
                   std::to_string(r.unique_5)});
  }
  return csv.rows_written() - 1;
}

std::size_t ExportWifi(const DataRepository& repo, std::ostream& out) {
  CsvWriter csv(out);
  csv.write_row({"home", "scanned_ms", "band", "channel", "visible_aps", "associated"});
  for (const auto& r : repo.wifi_scans()) {
    csv.write_row({std::to_string(r.home.value), Ms(r.scanned),
                   std::string(wireless::BandName(r.band)), std::to_string(r.channel),
                   std::to_string(r.visible_aps), std::to_string(r.associated_clients)});
  }
  return csv.rows_written() - 1;
}

std::size_t ExportTrafficFlows(const DataRepository& repo, std::ostream& out) {
  CsvWriter csv(out);
  csv.write_row({"home", "first_ms", "last_ms", "proto", "dst_port", "device_mac", "bytes_up",
                 "bytes_down", "domain", "domain_anonymized"});
  for (const auto& r : repo.flows()) {
    csv.write_row({std::to_string(r.home.value), Ms(r.first_packet), Ms(r.last_packet),
                   net::ProtocolName(r.protocol), std::to_string(r.dst_port),
                   r.device_mac.to_string(), std::to_string(r.bytes_up.count),
                   std::to_string(r.bytes_down.count), r.domain,
                   r.domain_anonymized ? "1" : "0"});
  }
  return csv.rows_written() - 1;
}

std::size_t ExportPublicDatasets(const DataRepository& repo, const std::string& directory) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  std::size_t total = 0;
  const auto write = [&](const std::string& file, auto exporter) {
    std::ofstream out(fs::path(directory) / file);
    if (!out) throw std::runtime_error("cannot open " + file + " for writing");
    total += exporter(repo, out);
  };
  write("heartbeats.csv", ExportHeartbeats);
  write("uptime.csv", ExportUptime);
  write("capacity.csv", ExportCapacity);
  write("devices.csv", ExportDevices);
  write("wifi.csv", ExportWifi);
  return total;
}

}  // namespace bismark::collect
