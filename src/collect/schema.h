// One definition per data set: compile-time field reflection.
//
// The paper's Table 2 data sets (plus our throughput/DNS/device-traffic
// extensions) used to be hand-replicated across six layers — the RecordSink
// interface, IngestBatch, DataRepository, export.cpp, import.cpp, and the
// upload path's Record variant. Each Schema<T> specialisation below is now
// the *only* per-dataset definition; everything else derives from it:
//
//   RecordTypes            — the typelist all derived paths expand over
//   Record                 — std::variant over RecordTypes (wire order)
//   Schema<T>::Fields()    — member-pointer field list with exact CSV and
//                            binary codecs (full-fidelity export/import and
//                            the snapshot format iterate this)
//   Schema<T>::Release()   — the historical public-release CSV view, byte-
//                            identical to the original hand-written
//                            exporters (lossy %.3f columns, derived counts)
//   Schema<T>::SortKey     — canonical (timestamp, home) repository order
//   Schema<T>::Admit       — collection-window clipping on ingest
//   Schema<T>::Time        — spool arrival / flush-eligibility timestamp
//   kRecordKindNames       — drop-ledger and obs counter labels
//
// Adding a data set is a two-file change: the struct in records.h and one
// Schema<> specialisation + typelist entry here. The static_asserts at the
// bottom make a missing or drifting entry a compile error, not a silently
// unlabeled ledger slot.
#pragma once

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <type_traits>
#include <variant>

#include "collect/records.h"
#include "core/intervals.h"
#include "core/time.h"
#include "core/units.h"

namespace bismark::collect {

// --- Typelist and the Record variant ---------------------------------------

template <typename... Ts>
struct TypeList {
  static constexpr std::size_t size = sizeof...(Ts);
};

template <typename T>
struct TypeTag {
  using type = T;
};

/// Every record kind, in wire order. The variant alternative indices key
/// the spool drop ledger and appear in committed artifacts (BENCH tables,
/// metric labels), so this list is append-only.
using RecordTypes =
    TypeList<HeartbeatRun, UptimeRecord, CapacityRecord, DeviceCountRecord, WifiScanRecord,
             TrafficFlowRecord, ThroughputMinute, DnsLogRecord, DeviceTrafficRecord,
             CgnEventRecord>;

namespace schema_detail {
template <typename List>
struct VariantOf;
template <typename... Ts>
struct VariantOf<TypeList<Ts...>> {
  using type = std::variant<Ts...>;
};

template <typename T, typename... Ts>
constexpr std::size_t IndexOf(TypeList<Ts...>) {
  constexpr bool match[] = {std::is_same_v<T, Ts>...};
  for (std::size_t i = 0; i < sizeof...(Ts); ++i) {
    if (match[i]) return i;
  }
  return sizeof...(Ts);
}
}  // namespace schema_detail

/// Any one measurement record, as spooled and shipped by the uploader.
using Record = schema_detail::VariantOf<RecordTypes>::type;

inline constexpr std::size_t kRecordKinds = std::variant_size_v<Record>;

/// Variant alternative index of a record type (the ledger/label key).
template <typename T>
inline constexpr std::size_t kRecordIndexOf = schema_detail::IndexOf<T>(RecordTypes{});

/// Apply `fn(TypeTag<T>{})` to every registered record type, in wire order.
template <typename Fn>
constexpr void ForEachRecordType(Fn&& fn) {
  [&fn]<typename... Ts>(TypeList<Ts...>) { (fn(TypeTag<Ts>{}), ...); }(RecordTypes{});
}

// --- Collection windows -----------------------------------------------------

/// Collection windows per data set (Table 2). Defaults reproduce the
/// paper's dates. Lives with the schemas because window admission
/// (Schema<T>::Admit) is part of each data set's definition.
struct DatasetWindows {
  Interval heartbeats;  // Oct 1 2012 – Apr 15 2013
  Interval uptime;      // Mar 6 – Apr 15 2013
  Interval capacity;    // Apr 1 – Apr 15 2013
  Interval devices;     // Mar 6 – Apr 15 2013
  Interval wifi;        // Nov 1 – Nov 15 2012
  Interval traffic;     // Apr 1 – Apr 15 2013

  static DatasetWindows Paper();
  /// A compressed variant for fast tests: same relative structure over a
  /// `scale`-week heartbeat window starting at `start`.
  static DatasetWindows Compressed(TimePoint start, int heartbeat_weeks);
};

// --- Field descriptors ------------------------------------------------------

/// One reflected field: a stable column name and the member it reads.
template <typename T, typename M>
struct Field {
  const char* name;
  M T::* member;
};

/// One column of the historical public-release CSV view. Release views are
/// deliberately lossy (%.3f numbers, derived counts, withheld columns), so
/// they carry their own codecs instead of the exact per-member ones.
template <typename T>
struct ReleaseColumn {
  const char* name;
  std::string (*encode)(const T&);
  bool (*decode)(const std::string&, T&);
};

// --- Exact CSV codecs, one overload per member type -------------------------
//
// These are lossless: CsvDecode(CsvEncode(v)) == v bit-for-bit, which is
// what lets the full-fidelity export reproduce a repository exactly.

[[nodiscard]] inline bool ParseCsvI64(const std::string& s, std::int64_t& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

[[nodiscard]] inline bool ParseCsvU64(const std::string& s, std::uint64_t& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

[[nodiscard]] inline bool ParseCsvDouble(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

[[nodiscard]] inline std::string CsvEncode(bool v) { return v ? "1" : "0"; }
[[nodiscard]] inline std::string CsvEncode(int v) { return std::to_string(v); }
[[nodiscard]] inline std::string CsvEncode(std::uint16_t v) { return std::to_string(v); }
[[nodiscard]] inline std::string CsvEncode(std::int64_t v) { return std::to_string(v); }
[[nodiscard]] inline std::string CsvEncode(std::uint64_t v) { return std::to_string(v); }
[[nodiscard]] inline std::string CsvEncode(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // shortest exact round-trip
  return buf;
}
[[nodiscard]] inline std::string CsvEncode(const std::string& v) { return v; }
[[nodiscard]] inline std::string CsvEncode(HomeId v) { return std::to_string(v.value); }
[[nodiscard]] inline std::string CsvEncode(TimePoint v) { return std::to_string(v.ms); }
[[nodiscard]] inline std::string CsvEncode(Duration v) { return std::to_string(v.ms); }
[[nodiscard]] inline std::string CsvEncode(Bytes v) { return std::to_string(v.count); }
[[nodiscard]] inline std::string CsvEncode(BitRate v) { return CsvEncode(v.bps); }
[[nodiscard]] inline std::string CsvEncode(net::FlowId v) { return std::to_string(v.value); }
[[nodiscard]] inline std::string CsvEncode(net::MacAddress v) { return v.to_string(); }
[[nodiscard]] inline std::string CsvEncode(net::Protocol v) { return net::ProtocolName(v); }
[[nodiscard]] inline std::string CsvEncode(wireless::Band v) {
  return std::string(wireless::BandName(v));
}
[[nodiscard]] inline std::string CsvEncode(net::VendorClass v) {
  return std::string(net::VendorClassName(v));
}

[[nodiscard]] inline bool CsvDecode(const std::string& s, bool& out) {
  if (s == "1") {
    out = true;
  } else if (s == "0") {
    out = false;
  } else {
    return false;
  }
  return true;
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, int& out) {
  std::int64_t v = 0;
  if (!ParseCsvI64(s, v)) return false;
  out = static_cast<int>(v);
  return true;
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, std::uint16_t& out) {
  std::uint64_t v = 0;
  if (!ParseCsvU64(s, v) || v > 0xffff) return false;
  out = static_cast<std::uint16_t>(v);
  return true;
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, std::int64_t& out) {
  return ParseCsvI64(s, out);
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, std::uint64_t& out) {
  return ParseCsvU64(s, out);
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, double& out) {
  return ParseCsvDouble(s, out);
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, std::string& out) {
  out = s;
  return true;
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, HomeId& out) {
  return CsvDecode(s, out.value);
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, TimePoint& out) {
  return ParseCsvI64(s, out.ms);
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, Duration& out) {
  return ParseCsvI64(s, out.ms);
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, Bytes& out) {
  return ParseCsvI64(s, out.count);
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, BitRate& out) {
  return ParseCsvDouble(s, out.bps);
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, net::FlowId& out) {
  return ParseCsvU64(s, out.value);
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, net::MacAddress& out) {
  const auto mac = net::MacAddress::Parse(s);
  if (!mac) return false;
  out = *mac;
  return true;
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, net::Protocol& out) {
  for (const auto p : {net::Protocol::kTcp, net::Protocol::kUdp, net::Protocol::kIcmp}) {
    if (s == net::ProtocolName(p)) {
      out = p;
      return true;
    }
  }
  return false;
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, wireless::Band& out) {
  for (const auto b : {wireless::Band::k2_4GHz, wireless::Band::k5GHz}) {
    if (s == wireless::BandName(b)) {
      out = b;
      return true;
    }
  }
  return false;
}
[[nodiscard]] inline bool CsvDecode(const std::string& s, net::VendorClass& out) {
  for (std::size_t i = 0; i < net::VendorClassCount(); ++i) {
    const auto c = static_cast<net::VendorClass>(i);
    if (s == net::VendorClassName(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

/// The historical exporters' lossy numeric rendering ("%.3f"), preserved
/// verbatim so the public release stays byte-identical.
[[nodiscard]] inline std::string ReleaseNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// --- Schema specialisations -------------------------------------------------

template <typename T>
struct Schema;  // one specialisation per RecordTypes entry; no primary

template <>
struct Schema<HeartbeatRun> {
  using R = HeartbeatRun;
  static constexpr const char* kKindName = "heartbeat_run";
  static constexpr const char* kCsvFile = "heartbeats.csv";
  static constexpr bool kHasRelease = true;
  static constexpr bool kPublicRelease = true;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home}, Field{"run_start_ms", &R::start},
                      Field{"run_end_ms", &R::end}};
  }
  [[nodiscard]] static TimePoint Time(const R& r) { return r.start; }
  [[nodiscard]] static auto SortKey(const R& r) { return std::tuple(r.start.ms, r.home.value); }
  /// Runs are clipped to the heartbeat window; empty clips are rejected.
  static bool Admit(const DatasetWindows& w, R& r) {
    r.start = std::max(r.start, w.heartbeats.start);
    r.end = std::min(r.end, w.heartbeats.end);
    return r.end > r.start;
  }
  static const auto& Release() {
    static const std::array<ReleaseColumn<R>, 4> cols{{
        {"home", [](const R& r) { return CsvEncode(r.home); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.home); }},
        {"run_start_ms", [](const R& r) { return CsvEncode(r.start); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.start); }},
        {"run_end_ms", [](const R& r) { return CsvEncode(r.end); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.end); }},
        // Derived column: the release publishes the per-run heartbeat count;
        // import validates it parses and the run is non-empty.
        {"heartbeats", [](const R& r) { return std::to_string(r.heartbeat_count()); },
         [](const std::string& s, R& r) {
           std::int64_t beats = 0;
           return ParseCsvI64(s, beats) && r.end > r.start;
         }},
    }};
    return cols;
  }
};

template <>
struct Schema<UptimeRecord> {
  using R = UptimeRecord;
  static constexpr const char* kKindName = "uptime";
  static constexpr const char* kCsvFile = "uptime.csv";
  static constexpr bool kHasRelease = true;
  static constexpr bool kPublicRelease = true;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home}, Field{"reported_ms", &R::reported},
                      Field{"uptime_ms", &R::uptime}};
  }
  [[nodiscard]] static TimePoint Time(const R& r) { return r.reported; }
  [[nodiscard]] static auto SortKey(const R& r) { return std::tuple(r.reported.ms, r.home.value); }
  static bool Admit(const DatasetWindows& w, const R& r) {
    return w.uptime.contains(r.reported);
  }
  static const auto& Release() {
    static const std::array<ReleaseColumn<R>, 3> cols{{
        {"home", [](const R& r) { return CsvEncode(r.home); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.home); }},
        {"reported_ms", [](const R& r) { return CsvEncode(r.reported); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.reported); }},
        {"uptime_s", [](const R& r) { return ReleaseNum(r.uptime.seconds()); },
         [](const std::string& s, R& r) {
           double v = 0.0;
           if (!ParseCsvDouble(s, v) || v < 0) return false;
           r.uptime = Seconds(v);
           return true;
         }},
    }};
    return cols;
  }
};

template <>
struct Schema<CapacityRecord> {
  using R = CapacityRecord;
  static constexpr const char* kKindName = "capacity";
  static constexpr const char* kCsvFile = "capacity.csv";
  static constexpr bool kHasRelease = true;
  static constexpr bool kPublicRelease = true;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home}, Field{"measured_ms", &R::measured},
                      Field{"down_bps", &R::downstream}, Field{"up_bps", &R::upstream}};
  }
  [[nodiscard]] static TimePoint Time(const R& r) { return r.measured; }
  [[nodiscard]] static auto SortKey(const R& r) { return std::tuple(r.measured.ms, r.home.value); }
  static bool Admit(const DatasetWindows& w, const R& r) {
    return w.capacity.contains(r.measured);
  }
  static const auto& Release() {
    static const std::array<ReleaseColumn<R>, 4> cols{{
        {"home", [](const R& r) { return CsvEncode(r.home); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.home); }},
        {"measured_ms", [](const R& r) { return CsvEncode(r.measured); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.measured); }},
        {"down_mbps", [](const R& r) { return ReleaseNum(r.downstream.mbps()); },
         [](const std::string& s, R& r) {
           double v = 0.0;
           if (!ParseCsvDouble(s, v)) return false;
           r.downstream = Mbps(v);
           return true;
         }},
        {"up_mbps", [](const R& r) { return ReleaseNum(r.upstream.mbps()); },
         [](const std::string& s, R& r) {
           double v = 0.0;
           if (!ParseCsvDouble(s, v)) return false;
           r.upstream = Mbps(v);
           return true;
         }},
    }};
    return cols;
  }
};

template <>
struct Schema<DeviceCountRecord> {
  using R = DeviceCountRecord;
  static constexpr const char* kKindName = "device_count";
  static constexpr const char* kCsvFile = "devices.csv";
  static constexpr bool kHasRelease = true;
  static constexpr bool kPublicRelease = true;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home},
                      Field{"sampled_ms", &R::sampled},
                      Field{"wired", &R::wired},
                      Field{"wireless_24", &R::wireless_24},
                      Field{"wireless_5", &R::wireless_5},
                      Field{"unique_total", &R::unique_total},
                      Field{"unique_24", &R::unique_24},
                      Field{"unique_5", &R::unique_5}};
  }
  [[nodiscard]] static TimePoint Time(const R& r) { return r.sampled; }
  [[nodiscard]] static auto SortKey(const R& r) { return std::tuple(r.sampled.ms, r.home.value); }
  static bool Admit(const DatasetWindows& w, const R& r) {
    return w.devices.contains(r.sampled);
  }
  static const auto& Release() {
    static const std::array<ReleaseColumn<R>, 8> cols{{
        {"home", [](const R& r) { return CsvEncode(r.home); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.home); }},
        {"sampled_ms", [](const R& r) { return CsvEncode(r.sampled); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.sampled); }},
        {"wired", [](const R& r) { return CsvEncode(r.wired); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.wired); }},
        {"wireless_24", [](const R& r) { return CsvEncode(r.wireless_24); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.wireless_24); }},
        {"wireless_5", [](const R& r) { return CsvEncode(r.wireless_5); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.wireless_5); }},
        {"unique_total", [](const R& r) { return CsvEncode(r.unique_total); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.unique_total); }},
        {"unique_24", [](const R& r) { return CsvEncode(r.unique_24); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.unique_24); }},
        {"unique_5", [](const R& r) { return CsvEncode(r.unique_5); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.unique_5); }},
    }};
    return cols;
  }
};

template <>
struct Schema<WifiScanRecord> {
  using R = WifiScanRecord;
  static constexpr const char* kKindName = "wifi_scan";
  static constexpr const char* kCsvFile = "wifi.csv";
  static constexpr bool kHasRelease = true;
  static constexpr bool kPublicRelease = true;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home},          Field{"scanned_ms", &R::scanned},
                      Field{"band", &R::band},          Field{"channel", &R::channel},
                      Field{"visible_aps", &R::visible_aps},
                      Field{"associated", &R::associated_clients}};
  }
  [[nodiscard]] static TimePoint Time(const R& r) { return r.scanned; }
  [[nodiscard]] static auto SortKey(const R& r) { return std::tuple(r.scanned.ms, r.home.value); }
  static bool Admit(const DatasetWindows& w, const R& r) { return w.wifi.contains(r.scanned); }
  static const auto& Release() {
    static const std::array<ReleaseColumn<R>, 6> cols{{
        {"home", [](const R& r) { return CsvEncode(r.home); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.home); }},
        {"scanned_ms", [](const R& r) { return CsvEncode(r.scanned); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.scanned); }},
        {"band", [](const R& r) { return CsvEncode(r.band); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.band); }},
        {"channel", [](const R& r) { return CsvEncode(r.channel); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.channel); }},
        {"visible_aps", [](const R& r) { return CsvEncode(r.visible_aps); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.visible_aps); }},
        {"associated", [](const R& r) { return CsvEncode(r.associated_clients); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.associated_clients); }},
    }};
    return cols;
  }
};

template <>
struct Schema<TrafficFlowRecord> {
  using R = TrafficFlowRecord;
  static constexpr const char* kKindName = "traffic_flow";
  static constexpr const char* kCsvFile = "traffic.csv";
  static constexpr bool kHasRelease = true;
  /// Anonymised but PII-bearing: never part of the public release split.
  static constexpr bool kPublicRelease = false;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home},
                      Field{"flow", &R::flow},
                      Field{"first_ms", &R::first_packet},
                      Field{"last_ms", &R::last_packet},
                      Field{"proto", &R::protocol},
                      Field{"dst_port", &R::dst_port},
                      Field{"device_mac", &R::device_mac},
                      Field{"bytes_up", &R::bytes_up},
                      Field{"bytes_down", &R::bytes_down},
                      Field{"packets_up", &R::packets_up},
                      Field{"packets_down", &R::packets_down},
                      Field{"domain", &R::domain},
                      Field{"domain_anonymized", &R::domain_anonymized}};
  }
  [[nodiscard]] static TimePoint Time(const R& r) { return r.first_packet; }
  [[nodiscard]] static auto SortKey(const R& r) {
    return std::tuple(r.first_packet.ms, r.home.value);
  }
  static bool Admit(const DatasetWindows& w, const R& r) {
    return w.traffic.contains(r.first_packet);
  }
  // The historical release view omits the flow id and packet counts.
  static const auto& Release() {
    static const std::array<ReleaseColumn<R>, 10> cols{{
        {"home", [](const R& r) { return CsvEncode(r.home); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.home); }},
        {"first_ms", [](const R& r) { return CsvEncode(r.first_packet); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.first_packet); }},
        {"last_ms", [](const R& r) { return CsvEncode(r.last_packet); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.last_packet); }},
        {"proto", [](const R& r) { return CsvEncode(r.protocol); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.protocol); }},
        {"dst_port", [](const R& r) { return CsvEncode(r.dst_port); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.dst_port); }},
        {"device_mac", [](const R& r) { return CsvEncode(r.device_mac); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.device_mac); }},
        {"bytes_up", [](const R& r) { return CsvEncode(r.bytes_up); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.bytes_up); }},
        {"bytes_down", [](const R& r) { return CsvEncode(r.bytes_down); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.bytes_down); }},
        {"domain", [](const R& r) { return CsvEncode(r.domain); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.domain); }},
        {"domain_anonymized", [](const R& r) { return CsvEncode(r.domain_anonymized); },
         [](const std::string& s, R& r) { return CsvDecode(s, r.domain_anonymized); }},
    }};
    return cols;
  }
};

template <>
struct Schema<ThroughputMinute> {
  using R = ThroughputMinute;
  static constexpr const char* kKindName = "throughput";
  static constexpr const char* kCsvFile = "throughput.csv";
  static constexpr bool kHasRelease = false;
  static constexpr bool kPublicRelease = false;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home},
                      Field{"minute_start_ms", &R::minute_start},
                      Field{"bytes_up", &R::bytes_up},
                      Field{"bytes_down", &R::bytes_down},
                      Field{"peak_up_bps", &R::peak_up_bps},
                      Field{"peak_down_bps", &R::peak_down_bps}};
  }
  [[nodiscard]] static TimePoint Time(const R& r) { return r.minute_start; }
  [[nodiscard]] static auto SortKey(const R& r) {
    return std::tuple(r.minute_start.ms, r.home.value);
  }
  static bool Admit(const DatasetWindows& w, const R& r) {
    return w.traffic.contains(r.minute_start);
  }
};

template <>
struct Schema<DnsLogRecord> {
  using R = DnsLogRecord;
  static constexpr const char* kKindName = "dns";
  static constexpr const char* kCsvFile = "dns.csv";
  static constexpr bool kHasRelease = false;
  static constexpr bool kPublicRelease = false;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home},          Field{"when_ms", &R::when},
                      Field{"device_mac", &R::device_mac}, Field{"query", &R::query},
                      Field{"anonymized", &R::anonymized}, Field{"a_records", &R::a_records},
                      Field{"cname_records", &R::cname_records}};
  }
  [[nodiscard]] static TimePoint Time(const R& r) { return r.when; }
  [[nodiscard]] static auto SortKey(const R& r) { return std::tuple(r.when.ms, r.home.value); }
  static bool Admit(const DatasetWindows& w, const R& r) { return w.traffic.contains(r.when); }
};

template <>
struct Schema<DeviceTrafficRecord> {
  using R = DeviceTrafficRecord;
  static constexpr const char* kKindName = "device_traffic";
  static constexpr const char* kCsvFile = "device_traffic.csv";
  static constexpr bool kHasRelease = false;
  static constexpr bool kPublicRelease = false;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home}, Field{"device_mac", &R::device_mac},
                      Field{"vendor", &R::vendor}, Field{"bytes_total", &R::bytes_total},
                      Field{"flows", &R::flows}};
  }
  /// Windowless registry rows sort at the epoch; the stable spool sort
  /// keeps their insertion order.
  [[nodiscard]] static TimePoint Time(const R&) { return TimePoint{0}; }
  /// No timestamp: the canonical key is the (home, anonymised MAC) identity.
  [[nodiscard]] static auto SortKey(const R& r) {
    return std::tuple(r.home.value, r.device_mac);
  }
  static bool Admit(const DatasetWindows&, const R&) { return true; }
};

template <>
struct Schema<CgnEventRecord> {
  using R = CgnEventRecord;
  static constexpr const char* kKindName = "cgn_event";
  static constexpr const char* kCsvFile = "cgn_events.csv";
  static constexpr bool kHasRelease = false;
  static constexpr bool kPublicRelease = false;

  static constexpr auto Fields() {
    return std::tuple{Field{"home", &R::home},
                      Field{"when_ms", &R::when},
                      Field{"cgn_id", &R::cgn_id},
                      Field{"port_block", &R::port_block},
                      Field{"port_block_size", &R::port_block_size},
                      Field{"port_blocks_allocated", &R::port_blocks_allocated},
                      Field{"ports_peak", &R::ports_peak},
                      Field{"port_capacity", &R::port_capacity},
                      Field{"translations_out", &R::translations_out},
                      Field{"translations_in", &R::translations_in},
                      Field{"exhaustion_drops", &R::exhaustion_drops},
                      Field{"inbound_drops", &R::inbound_drops}};
  }
  [[nodiscard]] static TimePoint Time(const R& r) { return r.when; }
  [[nodiscard]] static auto SortKey(const R& r) { return std::tuple(r.when.ms, r.home.value); }
  /// CGN accounting is not window-clipped: rows exist only when --cgn is
  /// on, and they summarise whatever traffic the run generated.
  static bool Admit(const DatasetWindows&, const R&) { return true; }
};

// --- Derived names and drift guards -----------------------------------------

namespace schema_detail {
template <typename... Ts>
constexpr std::array<const char*, sizeof...(Ts)> KindNames(TypeList<Ts...>) {
  return {{Schema<Ts>::kKindName...}};
}

constexpr bool StrEq(const char* a, const char* b) {
  for (; *a != '\0' && *a == *b; ++a, ++b) {
  }
  return *a == *b;
}
}  // namespace schema_detail

/// Kind labels in wire order: drop ledgers, bench tables, and the per-kind
/// obs spool-drop counters (`bismark_spool_dropped_total{kind="..."}`) all
/// read from this one array, so they cannot drift from the typelist.
inline constexpr std::array<const char*, RecordTypes::size> kRecordKindNames =
    schema_detail::KindNames(RecordTypes{});

namespace schema_detail {
constexpr bool KindNamesNonEmptyAndDistinct() {
  for (std::size_t i = 0; i < kRecordKindNames.size(); ++i) {
    if (*kRecordKindNames[i] == '\0') return false;
    for (std::size_t j = i + 1; j < kRecordKindNames.size(); ++j) {
      if (StrEq(kRecordKindNames[i], kRecordKindNames[j])) return false;
    }
  }
  return true;
}
}  // namespace schema_detail

static_assert(kRecordKindNames.size() == kRecordKinds,
              "every Record alternative needs a Schema<> specialisation with a kind name");
static_assert(schema_detail::KindNamesNonEmptyAndDistinct(),
              "record kind names label ledger slots and metric series: they must be "
              "non-empty and unique");
// Wire-order stability: ledger indices and committed artifacts hardcode
// these positions. Appending new kinds is fine; reordering is not.
static_assert(kRecordIndexOf<HeartbeatRun> == 0 && kRecordIndexOf<UptimeRecord> == 1 &&
                  kRecordIndexOf<CapacityRecord> == 2 &&
                  kRecordIndexOf<DeviceTrafficRecord> == 8 &&
                  kRecordIndexOf<CgnEventRecord> == kRecordKinds - 1,
              "RecordTypes is append-only: existing variant indices are wire format");

/// Human label for a variant alternative (drop ledgers, bench tables).
[[nodiscard]] constexpr const char* RecordKindName(std::size_t variant_index) {
  return variant_index < kRecordKinds ? kRecordKindNames[variant_index] : "unknown";
}

/// Measurement timestamp of a record — the spool's arrival order and the
/// uploader's flush-eligibility key.
[[nodiscard]] inline TimePoint RecordTime(const Record& r) {
  return std::visit([](const auto& v) { return Schema<std::decay_t<decltype(v)>>::Time(v); },
                    r);
}

/// Comma-joined field names: the full-fidelity CSV header for a data set.
template <typename T>
[[nodiscard]] std::string CsvHeader() {
  std::string header;
  std::apply(
      [&header](const auto&... field) {
        ((header += header.empty() ? "" : ",", header += field.name), ...);
      },
      Schema<T>::Fields());
  return header;
}

}  // namespace bismark::collect
