// At-least-once upload batches and the collector's idempotent ingest gate.
//
// The gateway's store-and-forward uploader (bismark/uploader.h) ships
// measurement records in batches and retries until it sees an ack. Retries
// after a lost ack mean the same batch can arrive twice, so the collector
// dedupes by (home, batch sequence number) before committing anything to a
// RecordSink. At-least-once delivery + idempotent commit = exactly-once
// repository contents, which is what preserves the byte-identical export
// guarantee of the sharded runner under fault injection.
//
// The Record variant itself, RecordTime, and RecordKindName are derived
// from the schema typelist (collect/schema.h); record delivery is the
// sink's single add_record dispatch point (collect/sink.h).
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "collect/schema.h"
#include "collect/sink.h"

namespace bismark::collect {

/// One gateway->collector transfer unit. `seq` increases per home as
/// batches are first transmitted; a retry resends the same seq, which is
/// what lets the ingest gate recognise duplicates.
struct UploadBatch {
  HomeId home;
  std::uint64_t seq{0};
  std::vector<Record> records;
};

/// Collector-side dedup gate in front of any RecordSink.
class IdempotentIngest {
 public:
  explicit IdempotentIngest(RecordSink& sink) : sink_(&sink) {}

  /// Commit the batch's records unless (home, seq) was already committed.
  /// Returns true when the records were committed, false on a duplicate.
  bool deliver(const UploadBatch& batch);

  struct Stats {
    std::uint64_t batches_committed{0};
    std::uint64_t batches_deduped{0};
    std::uint64_t records_committed{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Point subsequent commits at a different sink; dedup state survives,
  /// mirroring a collector that rotates storage without forgetting what it
  /// already ingested.
  void rebind_sink(RecordSink& sink) { sink_ = &sink; }

 private:
  RecordSink* sink_;
  std::set<std::pair<int, std::uint64_t>> seen_;  // (home id, batch seq)
  Stats stats_;
};

}  // namespace bismark::collect
