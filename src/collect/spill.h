// Spill-to-disk segment layer: bounded-memory record storage at fleet scale.
//
// At 100k+ homes the all-in-RAM RecordStore needs tens of gigabytes, so a
// budgeted run streams records to disk instead. Each worker owns one
// append-only segment file; an IngestBatch that crosses its memory budget
// stable-sorts what it holds (per kind, by Schema<T>::SortKey) and appends
// it as one *section* — a sorted run tagged (shard, run sequence). Readers
// never load a data set whole: ForEachSpilledRow k-way-merges the sections
// back into the exact canonical order the in-RAM path produces.
//
// Why the merge is byte-exact (DESIGN §11): the in-RAM repository order is
// a stable sort of rows committed in shard-plan order, i.e. ties resolve by
// (shard index, append position). Flush chronology partitions each shard's
// appends into runs with strictly increasing positions, so merging sorted
// runs with the comparator (SortKey, shard, run) — streaming within a run —
// reproduces that order exactly. No per-row position is stored on disk.
//
// Scale: a 100k-home run makes ~25k shards, so a kind can have tens of
// thousands of sections. The merge is hierarchical with a bounded fan-in:
// adjacent (in canonical order) sections are merged in groups into scratch
// sections until one level fits, keeping open files and buffers bounded
// regardless of N.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "collect/binio.h"

namespace bismark::collect {

struct SpillConfig {
  /// Directory for segment files; created on demand. The caller owns the
  /// directory's lifetime — segment files are scratch, not an archive.
  std::string dir;
  /// Total record-staging budget across all workers. 0 disables spill.
  std::size_t budget_bytes{0};
  std::size_t workers{1};
  /// Max sections opened concurrently by one merge level.
  std::size_t merge_fan_in{256};

  /// Per-batch flush threshold: half the per-worker share, so one staging
  /// batch plus one in-flight flush stay inside the worker's slice.
  [[nodiscard]] std::size_t flush_threshold() const {
    const std::size_t per_worker = budget_bytes / (2 * (workers ? workers : 1));
    return per_worker > 4096 ? per_worker : 4096;
  }
};

/// One sorted run of rows of a single kind inside a segment file.
struct SectionRef {
  std::uint32_t file{0};    ///< index into the SpillDir's segment logs
  std::uint64_t offset{0};  ///< byte offset of the first row
  std::uint64_t bytes{0};
  std::uint64_t rows{0};
  std::uint32_t shard{0};  ///< shard-plan index: the canonical tie order
  std::uint32_t run{0};    ///< flush sequence within (shard, kind)
};

/// An append-only segment file. Owned exclusively by one worker while its
/// shard task runs (or by the merge scratch path, serialised by SpillDir).
/// Rows are u32-length-prefixed EncodeRow payloads so cursors can frame
/// them without schema-dependent sizes.
class SegmentLog {
 public:
  SegmentLog(std::string path, std::uint32_t index) : path_(std::move(path)), index_(index) {}

  /// One-shot append of a fully-encoded section body.
  SectionRef append(std::uint32_t shard, std::uint32_t run, std::uint64_t rows,
                    const std::string& bytes);

  /// Streaming append for merge intermediates (bodies can exceed RAM).
  void begin_section();
  void write(const char* data, std::size_t n);
  SectionRef end_section(std::uint32_t shard, std::uint32_t run, std::uint64_t rows);

  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return offset_; }

  /// Flush buffered writes so cursors can read what was appended.
  void sync();

 private:
  void ensure_open();

  std::string path_;
  std::uint32_t index_;
  std::uint64_t offset_{0};
  std::uint64_t section_start_{0};
  std::ofstream out_;  // opened lazily on first append
};

/// Shared spill state: the segment directory, one log per worker plus a
/// scratch log for merge intermediates, and the per-kind section tables.
class SpillDir {
 public:
  explicit SpillDir(SpillConfig config);

  [[nodiscard]] const SpillConfig& config() const { return config_; }

  /// The worker's exclusive segment log (no locking: one worker, one log).
  SegmentLog& log_for_worker(std::size_t worker);
  /// The merge-scratch log. Callers must hold merge_mutex().
  SegmentLog& scratch_log() { return *logs_.back(); }
  SegmentLog& log(std::uint32_t file_index) { return *logs_[file_index]; }

  /// Record a flushed section (thread-safe; workers flush concurrently).
  void register_section(std::size_t kind, SectionRef ref);

  [[nodiscard]] std::uint64_t rows_of_kind(std::size_t kind) const { return rows_[kind]; }
  [[nodiscard]] std::uint64_t total_rows() const;
  /// Copy of the kind's section table (callers sort it for merging).
  [[nodiscard]] std::vector<SectionRef> sections_of_kind(std::size_t kind) const;

  [[nodiscard]] std::uint64_t sections_written() const;
  [[nodiscard]] std::uint64_t bytes_spilled() const;

  /// Serialises merge passes (they share the scratch log).
  [[nodiscard]] std::mutex& merge_mutex() { return merge_mu_; }

  /// Flush every log's buffered writes so cursors see all appended rows.
  void sync_all();

 private:
  SpillConfig config_;
  std::vector<std::unique_ptr<SegmentLog>> logs_;  // workers, then scratch
  std::array<std::vector<SectionRef>, kRecordKinds> sections_;
  std::array<std::uint64_t, kRecordKinds> rows_{};
  mutable std::mutex mu_;
  std::mutex merge_mu_;
};

/// Stream every row of kind T in canonical repository order — exactly the
/// sequence `rows<T>()` holds after `finalize_deterministic_order()` on the
/// in-RAM path. Bounded memory: at most `merge_fan_in` open sections and
/// one scratch section per merge group at a time.
template <typename T>
void ForEachSpilledRow(SpillDir& dir, const std::function<void(const T&)>& fn);

}  // namespace bismark::collect
