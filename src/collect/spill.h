// Spill-to-disk segment layer: bounded-memory record storage at fleet scale.
//
// At 100k+ homes the all-in-RAM RecordStore needs tens of gigabytes, so a
// budgeted run streams records to disk instead. Each worker owns one
// append-only segment file; an IngestBatch that crosses its memory budget
// stable-sorts what it holds (per kind, by Schema<T>::SortKey) and appends
// it as one *section* — a sorted run tagged (shard, run sequence). Readers
// never load a data set whole: ForEachSpilledRow k-way-merges the sections
// back into the exact canonical order the in-RAM path produces.
//
// Why the merge is byte-exact (DESIGN §11): the in-RAM repository order is
// a stable sort of rows committed in shard-plan order, i.e. ties resolve by
// (shard index, append position). Flush chronology partitions each shard's
// appends into runs with strictly increasing positions, so merging sorted
// runs with the comparator (SortKey, shard, run) — streaming within a run —
// reproduces that order exactly. No per-row position is stored on disk.
//
// Scale: a 100k-home run makes ~25k shards, so a kind can have tens of
// thousands of sections. The merge is hierarchical with a bounded fan-in:
// adjacent (in canonical order) sections are merged in groups into scratch
// sections until one level fits, keeping open files and buffers bounded
// regardless of N.
//
// Durability (segment format v2, DESIGN §12): every section is framed — a
// 16-byte header (magic, kind, shard, run) before the body, a 24-byte
// footer (rows, body bytes, CRC32C, end magic) after it — and the SpillDir
// keeps a write-ahead manifest (collect/manifest.h) whose records commit
// sections only after their bytes reached the OS. All writes go through the
// injectable core::Io seam; cursors re-verify the CRC on every merge pass
// and fail closed on any mismatch.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "collect/binio.h"
#include "core/io.h"

namespace bismark::collect {

struct HomeInfo;
class ManifestWriter;
struct ManifestConfig;
struct ManifestCheckpoint;
struct SpillRecovery;

struct SpillConfig {
  /// Directory for segment files; created on demand. The caller owns the
  /// directory's lifetime — segment files are scratch, not an archive.
  std::string dir;
  /// Total record-staging budget across all workers. 0 disables spill.
  std::size_t budget_bytes{0};
  std::size_t workers{1};
  /// Max sections opened concurrently by one merge level.
  std::size_t merge_fan_in{256};
  /// Verify section CRCs on read. Only the checksum-overhead bench turns
  /// this off; every production path keeps it on.
  bool verify_checksums{true};

  /// Per-batch flush threshold: half the per-worker share, so one staging
  /// batch plus one in-flight flush stay inside the worker's slice.
  [[nodiscard]] std::size_t flush_threshold() const {
    const std::size_t per_worker = budget_bytes / (2 * (workers ? workers : 1));
    return per_worker > 4096 ? per_worker : 4096;
  }
};

// Section framing constants (shared with manifest recovery and the fuzz
// suite). Header: u32 magic | u32 kind | u32 shard | u32 run. Footer:
// u64 rows | u64 body_bytes | u32 body_crc32c | u32 end magic.
inline constexpr std::uint32_t kSectionMagic = 0x32475342u;     // "BSG2"
inline constexpr std::uint32_t kSectionEndMagic = 0x32444E45u;  // "END2"
inline constexpr std::size_t kSectionHeaderBytes = 16;
inline constexpr std::size_t kSectionFooterBytes = 24;

/// One sorted run of rows of a single kind inside a segment file.
struct SectionRef {
  std::uint32_t file{0};    ///< index into the SpillDir's file table
  std::uint64_t offset{0};  ///< byte offset of the first row (past the header)
  std::uint64_t bytes{0};   ///< body bytes (frame excluded)
  std::uint64_t rows{0};
  std::uint32_t shard{0};  ///< shard-plan index: the canonical tie order
  std::uint32_t run{0};    ///< flush sequence within (shard, kind)
  std::uint32_t kind{0};   ///< record-kind index (variant order)
  std::uint32_t crc{0};    ///< CRC32C of the body bytes
};

/// An append-only segment file. Owned exclusively by one worker while its
/// shard task runs (or by the merge scratch path, serialised by SpillDir).
/// Rows are u32-length-prefixed EncodeRow payloads so cursors can frame
/// them without schema-dependent sizes. Every write goes through the
/// checked core::Io seam; any I/O failure throws with the path and errno —
/// a full disk aborts the run, it does not truncate it silently.
class SegmentLog {
 public:
  SegmentLog(std::string path, std::uint32_t index);

  /// One-shot append of a fully-encoded section body.
  SectionRef append(std::uint32_t kind, std::uint32_t shard, std::uint32_t run,
                    std::uint64_t rows, const std::string& body);

  /// Streaming append for merge intermediates (bodies can exceed RAM).
  void begin_section(std::uint32_t kind, std::uint32_t shard, std::uint32_t run);
  void write(const char* data, std::size_t n);
  /// Writes the footer and flushes the section to the OS, so a manifest
  /// record appended after this provably references durable-on-crash bytes.
  SectionRef end_section(std::uint64_t rows);

  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return offset_; }
  [[nodiscard]] int fd() const { return out_.fd(); }

  /// Push buffered writes to the OS so cursors can read what was appended.
  void flush();
  /// flush + fsync: checkpoint durability.
  void sync();

 private:
  void ensure_open();
  void check(bool ok, const char* op);

  std::string path_;
  std::uint32_t index_;
  std::uint64_t offset_{0};
  std::uint64_t section_start_{0};  // body start of the in-flight section
  std::uint32_t section_kind_{0};
  std::uint32_t section_shard_{0};
  std::uint32_t section_run_{0};
  std::uint32_t section_crc_{0};
  core::CheckedFile out_;  // opened lazily on first append
};

/// Shared spill state: the segment directory, one log per worker plus a
/// scratch log for merge intermediates, the per-kind section tables, and
/// the write-ahead manifest. A resumed run layers a new *generation* of
/// segment files over the recovered ones; the file table spans both.
class SpillDir {
 public:
  explicit SpillDir(SpillConfig config);
  /// Resume construction: adopt a recovered directory's file table and
  /// committed sections, open generation `recovered.config.generation + 1`
  /// logs alongside them, and append to the (already truncated) manifest.
  SpillDir(SpillConfig config, const SpillRecovery& recovered);
  ~SpillDir();

  [[nodiscard]] const SpillConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t generation() const { return generation_; }

  /// The worker's exclusive segment log (no locking: one worker, one log).
  SegmentLog& log_for_worker(std::size_t worker);
  /// The merge-scratch log. Callers must hold merge_mutex().
  SegmentLog& scratch_log() { return *logs_.back(); }
  /// Absolute path of a file-table entry (any generation).
  [[nodiscard]] std::string file_path(std::uint32_t file_index) const;

  /// Record a flushed section (thread-safe; workers flush concurrently).
  /// Appends the manifest record that commits the section.
  void register_section(std::size_t kind, SectionRef ref);

  /// Write the run-configuration record (once per generation, before any
  /// shard runs). fsynced: a resumable directory always has its config.
  void write_run_config(const ManifestConfig& cfg);
  /// Commit a completed shard: its homes become recoverable and every
  /// section it registered becomes eligible for resume.
  void record_shard_done(std::uint32_t shard, const std::vector<HomeInfo>& homes);
  /// Durability barrier: fsync every segment log and the manifest, then
  /// append the checkpoint record.
  void write_checkpoint(const ManifestCheckpoint& ckpt);

  [[nodiscard]] std::uint64_t rows_of_kind(std::size_t kind) const { return rows_[kind]; }
  [[nodiscard]] std::uint64_t total_rows() const;
  /// Copy of the kind's section table (callers sort it for merging).
  [[nodiscard]] std::vector<SectionRef> sections_of_kind(std::size_t kind) const;

  [[nodiscard]] std::uint64_t sections_written() const;
  [[nodiscard]] std::uint64_t bytes_spilled() const;

  /// Serialises merge passes (they share the scratch log).
  [[nodiscard]] std::mutex& merge_mutex() { return merge_mu_; }

  /// Flush every log's buffered writes so cursors see all appended rows.
  void flush_all();

 private:
  void open_generation_logs();

  SpillConfig config_;
  std::uint32_t generation_{0};
  std::vector<std::string> file_names_;            // file table, all generations
  std::vector<std::unique_ptr<SegmentLog>> logs_;  // this generation: workers, then scratch
  std::unique_ptr<ManifestWriter> manifest_;
  std::array<std::vector<SectionRef>, kRecordKinds> sections_;
  std::array<std::uint64_t, kRecordKinds> rows_{};
  mutable std::mutex mu_;
  std::mutex merge_mu_;
};

/// Stream every row of kind T in canonical repository order — exactly the
/// sequence `rows<T>()` holds after `finalize_deterministic_order()` on the
/// in-RAM path. Bounded memory: at most `merge_fan_in` open sections and
/// one scratch section per merge group at a time. Throws with a precise
/// diagnostic if any section fails its CRC or framing check.
template <typename T>
void ForEachSpilledRow(SpillDir& dir, const std::function<void(const T&)>& fn);

}  // namespace bismark::collect
