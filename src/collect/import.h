// CSV import of the public data release — the consumer side of
// ExportPublicDatasets.
//
// The paper releases every non-PII data set; anyone reproducing its
// availability/infrastructure analyses works from those CSVs, not from the
// routers. This importer reads the five public files back into a
// DataRepository so the entire analysis layer runs unchanged on released
// data (and so the release round-trips losslessly — tested).
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "collect/repository.h"

namespace bismark::collect {

/// Outcome of an import: row counts and any malformed lines skipped.
struct ImportReport {
  std::size_t heartbeat_runs{0};
  std::size_t uptime{0};
  std::size_t capacity{0};
  std::size_t device_counts{0};
  std::size_t wifi_scans{0};
  std::vector<std::string> errors;  // "file:line: reason", capped

  [[nodiscard]] bool ok() const { return errors.empty(); }
  [[nodiscard]] std::size_t total_rows() const {
    return heartbeat_runs + uptime + capacity + device_counts + wifi_scans;
  }
};

/// Parse one CSV line into fields (RFC 4180 quoting).
[[nodiscard]] std::vector<std::string> ParseCsvLine(const std::string& line);

/// Per-dataset stream importers; each expects the exporter's header row.
std::size_t ImportHeartbeats(DataRepository& repo, std::istream& in, ImportReport& report);
std::size_t ImportUptime(DataRepository& repo, std::istream& in, ImportReport& report);
std::size_t ImportCapacity(DataRepository& repo, std::istream& in, ImportReport& report);
std::size_t ImportDevices(DataRepository& repo, std::istream& in, ImportReport& report);
std::size_t ImportWifi(DataRepository& repo, std::istream& in, ImportReport& report);

/// Read the five public CSVs from `directory` (as written by
/// ExportPublicDatasets) into `repo`. Missing files are recorded as errors;
/// present files are imported. Home metadata (country, region) is NOT part
/// of the public release, so callers needing regional splits must register
/// HomeInfo rows separately — exactly the constraint real consumers of the
/// release face.
ImportReport ImportPublicDatasets(DataRepository& repo, const std::string& directory);

}  // namespace bismark::collect
