// CSV import generated from the schema layer — the consumer side of
// ExportPublicDatasets and ExportAllDatasets.
//
// The paper releases every non-PII data set; anyone reproducing its
// availability/infrastructure analyses works from those CSVs, not from the
// routers. This importer reads the five public files back into a
// DataRepository so the entire analysis layer runs unchanged on released
// data (and so the release round-trips losslessly — tested). The
// full-fidelity importer (`ImportAllDatasets`) reads the exact-codec
// export of all nine data sets and reproduces a repository bit-for-bit.
#pragma once

#include <array>
#include <istream>
#include <string>
#include <vector>

#include "collect/repository.h"

namespace bismark::collect {

/// Outcome of an import: per-kind row counts and any malformed lines
/// skipped. Counts are indexed by variant kind (kRecordIndexOf<T>), so a
/// new record type gets a slot without touching this struct.
struct ImportReport {
  std::array<std::size_t, kRecordKinds> by_kind{};
  std::vector<std::string> errors;  // "file:line: reason", capped

  template <typename T>
  [[nodiscard]] std::size_t rows() const {
    return by_kind[kRecordIndexOf<T>];
  }
  [[nodiscard]] std::size_t heartbeat_runs() const { return rows<HeartbeatRun>(); }
  [[nodiscard]] std::size_t uptime() const { return rows<UptimeRecord>(); }
  [[nodiscard]] std::size_t capacity() const { return rows<CapacityRecord>(); }
  [[nodiscard]] std::size_t device_counts() const { return rows<DeviceCountRecord>(); }
  [[nodiscard]] std::size_t wifi_scans() const { return rows<WifiScanRecord>(); }

  [[nodiscard]] bool ok() const { return errors.empty(); }
  [[nodiscard]] std::size_t total_rows() const {
    std::size_t total = 0;
    for (const auto n : by_kind) total += n;
    return total;
  }
};

/// Parse one CSV record into fields (RFC 4180 quoting; the record may
/// contain embedded newlines inside quoted fields).
[[nodiscard]] std::vector<std::string> ParseCsvLine(const std::string& line);

/// Read one logical CSV record from a stream: strips the trailing CR of
/// CRLF-terminated lines and keeps reading physical lines while a quoted
/// field is still open, so embedded newlines survive. Returns false at end
/// of stream.
bool ReadCsvRecord(std::istream& in, std::string& record);

/// Per-dataset release-view importers; each expects the exporter's header.
std::size_t ImportHeartbeats(DataRepository& repo, std::istream& in, ImportReport& report);
std::size_t ImportUptime(DataRepository& repo, std::istream& in, ImportReport& report);
std::size_t ImportCapacity(DataRepository& repo, std::istream& in, ImportReport& report);
std::size_t ImportDevices(DataRepository& repo, std::istream& in, ImportReport& report);
std::size_t ImportWifi(DataRepository& repo, std::istream& in, ImportReport& report);
/// Release-view traffic flows (the withheld set; internal use only).
std::size_t ImportTrafficFlows(DataRepository& repo, std::istream& in, ImportReport& report);

/// Schema-generated full-fidelity importer for one data set (the
/// ExportDatasetCsv format: every field, exact codecs).
template <typename T>
std::size_t ImportDatasetCsv(DataRepository& repo, std::istream& in, ImportReport& report);

/// Read the five public CSVs from `directory` (as written by
/// ExportPublicDatasets) into `repo`. Missing files are recorded as errors;
/// present files are imported. Home metadata (country, region) is NOT part
/// of the public release, so callers needing regional splits must register
/// HomeInfo rows separately — exactly the constraint real consumers of the
/// release face.
ImportReport ImportPublicDatasets(DataRepository& repo, const std::string& directory);

/// Read all nine full-fidelity CSVs from `directory` (as written by
/// ExportAllDatasets) into `repo`.
ImportReport ImportAllDatasets(DataRepository& repo, const std::string& directory);

}  // namespace bismark::collect
