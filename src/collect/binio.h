// Shared little-endian binary codec for record persistence.
//
// One writer/reader pair serves both durable formats derived from the
// schema layer: the BSMKSNAP snapshot (collect/snapshot.h) and the
// fleet-scale spill segments (collect/spill.h). The `value()` overload set
// is the single list of serialisable member types; a record field of a new
// type fails to compile in both formats until an overload is added here,
// so the formats cannot drift apart.
//
// All integers are encoded little-endian byte-by-byte, independent of host
// endianness. Strings are u32-length-prefixed. Doubles are IEEE-754 bit
// patterns in a u64.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>

#include "collect/schema.h"

namespace bismark::collect {

class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i32(std::int32_t v) { fixed(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fixed(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  void raw(const char* data, std::size_t n) { buf_.append(data, n); }

  // Field-value overloads, one per reflected member type.
  void value(bool v) { u8(v ? 1 : 0); }
  void value(int v) { i32(v); }
  void value(std::uint16_t v) { u16(v); }
  void value(std::uint64_t v) { u64(v); }
  void value(double v) { f64(v); }
  void value(const std::string& v) { str(v); }
  void value(HomeId v) { i32(v.value); }
  void value(TimePoint v) { i64(v.ms); }
  void value(Duration v) { i64(v.ms); }
  void value(Bytes v) { i64(v.count); }
  void value(BitRate v) { f64(v.bps); }
  void value(net::FlowId v) { u64(v.value); }
  void value(net::MacAddress v) {
    for (const auto octet : v.octets()) u8(octet);
  }
  void value(net::Protocol v) { u8(static_cast<std::uint8_t>(v)); }
  void value(wireless::Band v) { u8(static_cast<std::uint8_t>(v)); }
  void value(net::VendorClass v) { i32(static_cast<int>(v)); }

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  template <typename U>
  void fixed(U v) {
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string buf_;
};

class BinReader {
 public:
  BinReader(const char* data, std::size_t size) : p_(data), end_(data + size) {}

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] bool at_end() const { return p_ == end_; }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(*p_++);
  }
  std::uint16_t u16() { return fixed<std::uint16_t>(); }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(fixed<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(fixed<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = fixed<std::uint64_t>();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(p_, n);
    p_ += n;
    return s;
  }

  void value(bool& v) { v = u8() != 0; }
  void value(int& v) { v = i32(); }
  void value(std::uint16_t& v) { v = u16(); }
  void value(std::uint64_t& v) { v = u64(); }
  void value(double& v) { v = f64(); }
  void value(std::string& v) { v = str(); }
  void value(HomeId& v) { v.value = i32(); }
  void value(TimePoint& v) { v.ms = i64(); }
  void value(Duration& v) { v.ms = i64(); }
  void value(Bytes& v) { v.count = i64(); }
  void value(BitRate& v) { v.bps = f64(); }
  void value(net::MacAddress& v) {
    std::array<std::uint8_t, 6> octets{};
    for (auto& octet : octets) octet = u8();
    v = net::MacAddress(octets);
  }
  void value(net::FlowId& v) { v.value = u64(); }
  void value(net::Protocol& v) { v = static_cast<net::Protocol>(u8()); }
  void value(wireless::Band& v) { v = static_cast<wireless::Band>(u8()); }
  void value(net::VendorClass& v) { v = static_cast<net::VendorClass>(i32()); }

 private:
  template <typename U>
  U fixed() {
    if (!need(sizeof(U))) return 0;
    U v = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<U>(static_cast<std::uint8_t>(p_[i])) << (8 * i);
    }
    p_ += sizeof(U);
    return v;
  }
  bool need(std::size_t n) {
    if (failed_ || static_cast<std::size_t>(end_ - p_) < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool failed_{false};
};

/// Encode one row field-by-field in Schema<T>::Fields() order (the row
/// layout both the snapshot body and spill sections use).
template <typename T>
void EncodeRow(BinWriter& w, const T& row) {
  std::apply([&w, &row](const auto&... field) { (w.value(row.*(field.member)), ...); },
             Schema<T>::Fields());
}

template <typename T>
void DecodeRow(BinReader& r, T& row) {
  std::apply([&r, &row](const auto&... field) { (r.value(row.*(field.member)), ...); },
             Schema<T>::Fields());
}

/// Approximate in-memory footprint of one row: the struct itself plus any
/// string payloads. Drives the spill budget accounting, so it only has to
/// be proportionate, not exact.
template <typename T>
[[nodiscard]] std::size_t ApproxRowBytes(const T& row) {
  std::size_t n = sizeof(T);
  std::apply(
      [&](const auto&... field) {
        const auto add = [&](const auto& v) {
          if constexpr (std::is_same_v<std::decay_t<decltype(v)>, std::string>) {
            n += v.size();
          }
        };
        (add(row.*(field.member)), ...);
      },
      Schema<T>::Fields());
  return n;
}

}  // namespace bismark::collect
