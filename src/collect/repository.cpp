#include "collect/repository.h"

#include <algorithm>
#include <iterator>
#include <tuple>

namespace bismark::collect {

namespace {
// Window clipping shared between the repository and the staging batches so
// serial and sharded ingest drop exactly the same rows.
template <typename Vec>
void ClipHeartbeat(const DatasetWindows& w, Vec& out, HeartbeatRun run) {
  run.start = std::max(run.start, w.heartbeats.start);
  run.end = std::min(run.end, w.heartbeats.end);
  if (run.end > run.start) out.push_back(run);
}
}  // namespace

DatasetWindows DatasetWindows::Paper() {
  DatasetWindows w;
  w.heartbeats = {MakeTime({2012, 10, 1}), MakeTime({2013, 4, 15})};
  w.uptime = {MakeTime({2013, 3, 6}), MakeTime({2013, 4, 15})};
  w.capacity = {MakeTime({2013, 4, 1}), MakeTime({2013, 4, 15})};
  w.devices = {MakeTime({2013, 3, 6}), MakeTime({2013, 4, 15})};
  w.wifi = {MakeTime({2012, 11, 1}), MakeTime({2012, 11, 15})};
  w.traffic = {MakeTime({2013, 4, 1}), MakeTime({2013, 4, 15})};
  return w;
}

DatasetWindows DatasetWindows::Compressed(TimePoint start, int heartbeat_weeks) {
  DatasetWindows w;
  const TimePoint end = start + Days(7.0 * heartbeat_weeks);
  w.heartbeats = {start, end};
  // Preserve relative proportions of the paper's windows.
  w.uptime = {end - Days(std::min(40.0, 7.0 * heartbeat_weeks)), end};
  w.capacity = {end - Days(std::min(14.0, 7.0 * heartbeat_weeks)), end};
  w.devices = w.uptime;
  w.wifi = {start, start + Days(std::min(14.0, 7.0 * heartbeat_weeks))};
  w.traffic = w.capacity;
  return w;
}

// --- IngestBatch -----------------------------------------------------------

void IngestBatch::add_heartbeat_run(HeartbeatRun run) {
  ClipHeartbeat(windows_, heartbeats_, run);
}

void IngestBatch::add_uptime(UptimeRecord rec) {
  if (windows_.uptime.contains(rec.reported)) uptime_.push_back(rec);
}

void IngestBatch::add_capacity(CapacityRecord rec) {
  if (windows_.capacity.contains(rec.measured)) capacity_.push_back(rec);
}

void IngestBatch::add_device_count(DeviceCountRecord rec) {
  if (windows_.devices.contains(rec.sampled)) devices_.push_back(rec);
}

void IngestBatch::add_wifi_scan(WifiScanRecord rec) {
  if (windows_.wifi.contains(rec.scanned)) wifi_.push_back(rec);
}

void IngestBatch::add_flow(TrafficFlowRecord rec) {
  if (windows_.traffic.contains(rec.first_packet)) flows_.push_back(std::move(rec));
}

void IngestBatch::add_throughput_minute(ThroughputMinute rec) {
  if (windows_.traffic.contains(rec.minute_start)) throughput_.push_back(rec);
}

void IngestBatch::add_dns(DnsLogRecord rec) {
  if (windows_.traffic.contains(rec.when)) dns_.push_back(std::move(rec));
}

void IngestBatch::add_device_traffic(DeviceTrafficRecord rec) {
  device_traffic_.push_back(rec);
}

std::size_t IngestBatch::rows() const {
  return heartbeats_.size() + uptime_.size() + capacity_.size() + devices_.size() +
         wifi_.size() + flows_.size() + throughput_.size() + dns_.size() +
         device_traffic_.size();
}

// --- DataRepository --------------------------------------------------------

DataRepository::DataRepository(DatasetWindows windows) : windows_(windows) {}

void DataRepository::register_home(HomeInfo info) { homes_.push_back(std::move(info)); }

const HomeInfo* DataRepository::find_home(HomeId id) const {
  for (const auto& h : homes_) {
    if (h.id == id) return &h;
  }
  return nullptr;
}

void DataRepository::add_heartbeat_run(HeartbeatRun run) {
  ClipHeartbeat(windows_, heartbeats_, run);
}

void DataRepository::add_uptime(UptimeRecord rec) {
  if (windows_.uptime.contains(rec.reported)) uptime_.push_back(rec);
}

void DataRepository::add_capacity(CapacityRecord rec) {
  if (windows_.capacity.contains(rec.measured)) capacity_.push_back(rec);
}

void DataRepository::add_device_count(DeviceCountRecord rec) {
  if (windows_.devices.contains(rec.sampled)) devices_.push_back(rec);
}

void DataRepository::add_wifi_scan(WifiScanRecord rec) {
  if (windows_.wifi.contains(rec.scanned)) wifi_.push_back(rec);
}

void DataRepository::add_flow(TrafficFlowRecord rec) {
  if (windows_.traffic.contains(rec.first_packet)) flows_.push_back(std::move(rec));
}

void DataRepository::add_throughput_minute(ThroughputMinute rec) {
  if (windows_.traffic.contains(rec.minute_start)) throughput_.push_back(rec);
}

void DataRepository::add_dns(DnsLogRecord rec) {
  if (windows_.traffic.contains(rec.when)) dns_.push_back(std::move(rec));
}

void DataRepository::add_device_traffic(DeviceTrafficRecord rec) {
  device_traffic_.push_back(rec);
}

void DataRepository::commit(IngestBatch&& batch) {
  const std::lock_guard<std::mutex> lock(commit_mu_);
  const auto absorb = [](auto& dst, auto& src) {
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
    src.clear();
  };
  absorb(heartbeats_, batch.heartbeats_);
  absorb(uptime_, batch.uptime_);
  absorb(capacity_, batch.capacity_);
  absorb(devices_, batch.devices_);
  absorb(wifi_, batch.wifi_);
  absorb(flows_, batch.flows_);
  absorb(throughput_, batch.throughput_);
  absorb(dns_, batch.dns_);
  absorb(device_traffic_, batch.device_traffic_);
}

void DataRepository::finalize_deterministic_order() {
  const auto sort_by = [](auto& vec, auto key) {
    std::stable_sort(vec.begin(), vec.end(),
                     [&key](const auto& a, const auto& b) { return key(a) < key(b); });
  };
  sort_by(heartbeats_,
          [](const HeartbeatRun& r) { return std::tuple(r.start.ms, r.home.value); });
  sort_by(uptime_,
          [](const UptimeRecord& r) { return std::tuple(r.reported.ms, r.home.value); });
  sort_by(capacity_,
          [](const CapacityRecord& r) { return std::tuple(r.measured.ms, r.home.value); });
  sort_by(devices_,
          [](const DeviceCountRecord& r) { return std::tuple(r.sampled.ms, r.home.value); });
  sort_by(wifi_,
          [](const WifiScanRecord& r) { return std::tuple(r.scanned.ms, r.home.value); });
  sort_by(flows_, [](const TrafficFlowRecord& r) {
    return std::tuple(r.first_packet.ms, r.home.value);
  });
  sort_by(throughput_, [](const ThroughputMinute& r) {
    return std::tuple(r.minute_start.ms, r.home.value);
  });
  sort_by(dns_, [](const DnsLogRecord& r) { return std::tuple(r.when.ms, r.home.value); });
  // Device registry rows carry no timestamp; their canonical key is the
  // (home, anonymised MAC) identity itself.
  sort_by(device_traffic_, [](const DeviceTrafficRecord& r) {
    return std::tuple(r.home.value, r.device_mac);
  });
}

namespace {
template <typename T>
std::vector<T> FilterByHome(const std::vector<T>& rows, HomeId id) {
  std::vector<T> out;
  for (const auto& r : rows) {
    if (r.home == id) out.push_back(r);
  }
  return out;
}
}  // namespace

std::vector<HeartbeatRun> DataRepository::heartbeat_runs_for(HomeId id) const {
  return FilterByHome(heartbeats_, id);
}
std::vector<DeviceCountRecord> DataRepository::device_counts_for(HomeId id) const {
  return FilterByHome(devices_, id);
}
std::vector<TrafficFlowRecord> DataRepository::flows_for(HomeId id) const {
  return FilterByHome(flows_, id);
}
std::vector<ThroughputMinute> DataRepository::throughput_for(HomeId id) const {
  return FilterByHome(throughput_, id);
}
std::vector<CapacityRecord> DataRepository::capacity_for(HomeId id) const {
  return FilterByHome(capacity_, id);
}

DataRepository::Counts DataRepository::counts() const {
  return Counts{heartbeats_.size(), uptime_.size(),     capacity_.size(),
                devices_.size(),    wifi_.size(),       flows_.size(),
                throughput_.size(), dns_.size(),        device_traffic_.size()};
}

}  // namespace bismark::collect
