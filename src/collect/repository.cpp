#include "collect/repository.h"

#include <algorithm>

namespace bismark::collect {

DatasetWindows DatasetWindows::Paper() {
  DatasetWindows w;
  w.heartbeats = {MakeTime({2012, 10, 1}), MakeTime({2013, 4, 15})};
  w.uptime = {MakeTime({2013, 3, 6}), MakeTime({2013, 4, 15})};
  w.capacity = {MakeTime({2013, 4, 1}), MakeTime({2013, 4, 15})};
  w.devices = {MakeTime({2013, 3, 6}), MakeTime({2013, 4, 15})};
  w.wifi = {MakeTime({2012, 11, 1}), MakeTime({2012, 11, 15})};
  w.traffic = {MakeTime({2013, 4, 1}), MakeTime({2013, 4, 15})};
  return w;
}

DatasetWindows DatasetWindows::Compressed(TimePoint start, int heartbeat_weeks) {
  DatasetWindows w;
  const TimePoint end = start + Days(7.0 * heartbeat_weeks);
  w.heartbeats = {start, end};
  // Preserve relative proportions of the paper's windows.
  w.uptime = {end - Days(std::min(40.0, 7.0 * heartbeat_weeks)), end};
  w.capacity = {end - Days(std::min(14.0, 7.0 * heartbeat_weeks)), end};
  w.devices = w.uptime;
  w.wifi = {start, start + Days(std::min(14.0, 7.0 * heartbeat_weeks))};
  w.traffic = w.capacity;
  return w;
}

DataRepository::DataRepository(DatasetWindows windows) : windows_(windows) {}

void DataRepository::register_home(HomeInfo info) { homes_.push_back(std::move(info)); }

const HomeInfo* DataRepository::find_home(HomeId id) const {
  for (const auto& h : homes_) {
    if (h.id == id) return &h;
  }
  return nullptr;
}

void DataRepository::add_heartbeat_run(HeartbeatRun run) {
  run.start = std::max(run.start, windows_.heartbeats.start);
  run.end = std::min(run.end, windows_.heartbeats.end);
  if (run.end > run.start) heartbeats_.push_back(run);
}

void DataRepository::add_uptime(UptimeRecord rec) {
  if (windows_.uptime.contains(rec.reported)) uptime_.push_back(rec);
}

void DataRepository::add_capacity(CapacityRecord rec) {
  if (windows_.capacity.contains(rec.measured)) capacity_.push_back(rec);
}

void DataRepository::add_device_count(DeviceCountRecord rec) {
  if (windows_.devices.contains(rec.sampled)) devices_.push_back(rec);
}

void DataRepository::add_wifi_scan(WifiScanRecord rec) {
  if (windows_.wifi.contains(rec.scanned)) wifi_.push_back(rec);
}

void DataRepository::add_flow(TrafficFlowRecord rec) {
  if (windows_.traffic.contains(rec.first_packet)) flows_.push_back(std::move(rec));
}

void DataRepository::add_throughput_minute(ThroughputMinute rec) {
  if (windows_.traffic.contains(rec.minute_start)) throughput_.push_back(rec);
}

void DataRepository::add_dns(DnsLogRecord rec) {
  if (windows_.traffic.contains(rec.when)) dns_.push_back(std::move(rec));
}

void DataRepository::add_device_traffic(DeviceTrafficRecord rec) {
  device_traffic_.push_back(rec);
}

namespace {
template <typename T>
std::vector<T> FilterByHome(const std::vector<T>& rows, HomeId id) {
  std::vector<T> out;
  for (const auto& r : rows) {
    if (r.home == id) out.push_back(r);
  }
  return out;
}
}  // namespace

std::vector<HeartbeatRun> DataRepository::heartbeat_runs_for(HomeId id) const {
  return FilterByHome(heartbeats_, id);
}
std::vector<DeviceCountRecord> DataRepository::device_counts_for(HomeId id) const {
  return FilterByHome(devices_, id);
}
std::vector<TrafficFlowRecord> DataRepository::flows_for(HomeId id) const {
  return FilterByHome(flows_, id);
}
std::vector<ThroughputMinute> DataRepository::throughput_for(HomeId id) const {
  return FilterByHome(throughput_, id);
}
std::vector<CapacityRecord> DataRepository::capacity_for(HomeId id) const {
  return FilterByHome(capacity_, id);
}

DataRepository::Counts DataRepository::counts() const {
  return Counts{heartbeats_.size(), uptime_.size(),     capacity_.size(),
                devices_.size(),    wifi_.size(),       flows_.size(),
                throughput_.size(), dns_.size(),        device_traffic_.size()};
}

}  // namespace bismark::collect
