#include "collect/repository.h"

#include <algorithm>

namespace bismark::collect {

DatasetWindows DatasetWindows::Paper() {
  DatasetWindows w;
  w.heartbeats = {MakeTime({2012, 10, 1}), MakeTime({2013, 4, 15})};
  w.uptime = {MakeTime({2013, 3, 6}), MakeTime({2013, 4, 15})};
  w.capacity = {MakeTime({2013, 4, 1}), MakeTime({2013, 4, 15})};
  w.devices = {MakeTime({2013, 3, 6}), MakeTime({2013, 4, 15})};
  w.wifi = {MakeTime({2012, 11, 1}), MakeTime({2012, 11, 15})};
  w.traffic = {MakeTime({2013, 4, 1}), MakeTime({2013, 4, 15})};
  return w;
}

DatasetWindows DatasetWindows::Compressed(TimePoint start, int heartbeat_weeks) {
  DatasetWindows w;
  const TimePoint end = start + Days(7.0 * heartbeat_weeks);
  w.heartbeats = {start, end};
  // Preserve relative proportions of the paper's windows.
  w.uptime = {end - Days(std::min(40.0, 7.0 * heartbeat_weeks)), end};
  w.capacity = {end - Days(std::min(14.0, 7.0 * heartbeat_weeks)), end};
  w.devices = w.uptime;
  w.wifi = {start, start + Days(std::min(14.0, 7.0 * heartbeat_weeks))};
  w.traffic = w.capacity;
  return w;
}

void DataRepository::register_home(HomeInfo info) { homes_.push_back(std::move(info)); }

const HomeInfo* DataRepository::find_home(HomeId id) const {
  for (const auto& h : homes_) {
    if (h.id == id) return &h;
  }
  return nullptr;
}

void DataRepository::commit(IngestBatch&& batch) {
  const std::lock_guard<std::mutex> lock(commit_mu_);
  store_.append(std::move(batch.store_));
}

namespace {
template <typename T>
std::vector<T> FilterByHome(const std::vector<T>& rows, HomeId id) {
  std::vector<T> out;
  for (const auto& r : rows) {
    if (r.home == id) out.push_back(r);
  }
  return out;
}
}  // namespace

std::vector<HeartbeatRun> DataRepository::heartbeat_runs_for(HomeId id) const {
  return FilterByHome(rows<HeartbeatRun>(), id);
}
std::vector<DeviceCountRecord> DataRepository::device_counts_for(HomeId id) const {
  return FilterByHome(rows<DeviceCountRecord>(), id);
}
std::vector<TrafficFlowRecord> DataRepository::flows_for(HomeId id) const {
  return FilterByHome(rows<TrafficFlowRecord>(), id);
}
std::vector<ThroughputMinute> DataRepository::throughput_for(HomeId id) const {
  return FilterByHome(rows<ThroughputMinute>(), id);
}
std::vector<CapacityRecord> DataRepository::capacity_for(HomeId id) const {
  return FilterByHome(rows<CapacityRecord>(), id);
}

DataRepository::Counts DataRepository::counts() const {
  return Counts{rows<HeartbeatRun>().size(),    rows<UptimeRecord>().size(),
                rows<CapacityRecord>().size(),  rows<DeviceCountRecord>().size(),
                rows<WifiScanRecord>().size(),  rows<TrafficFlowRecord>().size(),
                rows<ThroughputMinute>().size(), rows<DnsLogRecord>().size(),
                rows<DeviceTrafficRecord>().size()};
}

}  // namespace bismark::collect
