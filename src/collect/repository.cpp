#include "collect/repository.h"

#include <algorithm>

#include "collect/manifest.h"

namespace bismark::collect {

DatasetWindows DatasetWindows::Paper() {
  DatasetWindows w;
  w.heartbeats = {MakeTime({2012, 10, 1}), MakeTime({2013, 4, 15})};
  w.uptime = {MakeTime({2013, 3, 6}), MakeTime({2013, 4, 15})};
  w.capacity = {MakeTime({2013, 4, 1}), MakeTime({2013, 4, 15})};
  w.devices = {MakeTime({2013, 3, 6}), MakeTime({2013, 4, 15})};
  w.wifi = {MakeTime({2012, 11, 1}), MakeTime({2012, 11, 15})};
  w.traffic = {MakeTime({2013, 4, 1}), MakeTime({2013, 4, 15})};
  return w;
}

DatasetWindows DatasetWindows::Compressed(TimePoint start, int heartbeat_weeks) {
  DatasetWindows w;
  const TimePoint end = start + Days(7.0 * heartbeat_weeks);
  w.heartbeats = {start, end};
  // Preserve relative proportions of the paper's windows.
  w.uptime = {end - Days(std::min(40.0, 7.0 * heartbeat_weeks)), end};
  w.capacity = {end - Days(std::min(14.0, 7.0 * heartbeat_weeks)), end};
  w.devices = w.uptime;
  w.wifi = {start, start + Days(std::min(14.0, 7.0 * heartbeat_weeks))};
  w.traffic = w.capacity;
  return w;
}

void DataRepository::register_home(HomeInfo info) {
  // Fleet runs register homes from worker threads as shards complete;
  // finalize_deterministic_order() restores the canonical (id) order.
  const std::lock_guard<std::mutex> lock(commit_mu_);
  homes_.push_back(std::move(info));
}

const HomeInfo* DataRepository::find_home(HomeId id) const {
  for (const auto& h : homes_) {
    if (h.id == id) return &h;
  }
  return nullptr;
}

void DataRepository::commit(IngestBatch&& batch) {
  if (batch.spilling()) {
    // Rows already live in segment sections; write out the remainder. The
    // section registry is thread-safe, so no commit lock is needed.
    batch.flush_spill();
    return;
  }
  const std::lock_guard<std::mutex> lock(commit_mu_);
  store_.append(std::move(batch.store_));
}

void DataRepository::enable_spill(SpillConfig config) {
  if (config.workers == 0) config.workers = 1;
  spill_ = std::make_unique<SpillDir>(std::move(config));
}

void DataRepository::enable_spill_recovered(SpillConfig config, const SpillRecovery& recovered) {
  if (config.workers == 0) config.workers = 1;
  spill_ = std::make_unique<SpillDir>(std::move(config), recovered);
  // Completed shards' homes come from the manifest, not a re-run;
  // finalize_deterministic_order() restores the canonical order later.
  for (const HomeInfo& home : recovered.homes) register_home(home);
}

void DataRepository::finalize_deterministic_order() {
  std::sort(homes_.begin(), homes_.end(),
            [](const HomeInfo& a, const HomeInfo& b) { return a.id.value < b.id.value; });
  store_.sort_canonical();
  if (spill_ != nullptr) spill_->flush_all();
}

void IngestBatch::attach_spill(SpillDir* dir, std::uint32_t shard, std::size_t worker) {
  spill_ = dir;
  log_ = &dir->log_for_worker(worker);
  shard_ = shard;
  flush_threshold_ = dir->config().flush_threshold();
  staged_bytes_ = 0;
}

void IngestBatch::flush_spill() {
  if (spill_ == nullptr) return;
  BinWriter row_w;
  std::string body;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    auto& vec = store_.rows<T>();
    if (vec.empty()) return;
    // Each section is one stable-sorted run: within a shard, runs are
    // flushed in chronological append order, which is exactly the residual
    // tie order the in-RAM stable sort preserves (see spill.h).
    std::stable_sort(vec.begin(), vec.end(), [](const T& a, const T& b) {
      return Schema<T>::SortKey(a) < Schema<T>::SortKey(b);
    });
    body.clear();
    for (const T& row : vec) {
      row_w.clear();
      EncodeRow(row_w, row);
      const auto len = static_cast<std::uint32_t>(row_w.size());
      char prefix[4];
      for (std::size_t i = 0; i < 4; ++i) {
        prefix[i] = static_cast<char>((len >> (8 * i)) & 0xff);
      }
      body.append(prefix, 4);
      body.append(row_w.buffer());
    }
    constexpr std::size_t kKind = kRecordIndexOf<T>;
    const SectionRef ref = log_->append(static_cast<std::uint32_t>(kKind), shard_,
                                        runs_[kKind]++, vec.size(), body);
    spill_->register_section(kKind, ref);
    // Deallocate rather than clear(): the runner keeps every shard's batch
    // object alive until the run ends, so retained capacity across
    // thousands of committed batches would pin the whole dataset in RAM.
    std::vector<T>().swap(vec);
  });
  staged_bytes_ = 0;
}

namespace {
// Streams rather than copies the backing vector so the filtered views work
// on spilled and column-backed repositories too, not just the in-RAM store.
template <typename T>
std::vector<T> FilterByHome(const DataRepository& repo, HomeId id) {
  std::vector<T> out;
  repo.for_each_row<T>([&](const T& r) {
    if (r.home == id) out.push_back(r);
  });
  return out;
}
}  // namespace

std::vector<HeartbeatRun> DataRepository::heartbeat_runs_for(HomeId id) const {
  return FilterByHome<HeartbeatRun>(*this, id);
}
std::vector<DeviceCountRecord> DataRepository::device_counts_for(HomeId id) const {
  return FilterByHome<DeviceCountRecord>(*this, id);
}
std::vector<TrafficFlowRecord> DataRepository::flows_for(HomeId id) const {
  return FilterByHome<TrafficFlowRecord>(*this, id);
}
std::vector<ThroughputMinute> DataRepository::throughput_for(HomeId id) const {
  return FilterByHome<ThroughputMinute>(*this, id);
}
std::vector<CapacityRecord> DataRepository::capacity_for(HomeId id) const {
  return FilterByHome<CapacityRecord>(*this, id);
}

DataRepository::Counts DataRepository::counts() const {
  return Counts{row_count<HeartbeatRun>(),    row_count<UptimeRecord>(),
                row_count<CapacityRecord>(),  row_count<DeviceCountRecord>(),
                row_count<WifiScanRecord>(),  row_count<TrafficFlowRecord>(),
                row_count<ThroughputMinute>(), row_count<DnsLogRecord>(),
                row_count<DeviceTrafficRecord>(), row_count<CgnEventRecord>()};
}

}  // namespace bismark::collect
