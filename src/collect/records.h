// Record types for the six data sets of Table 2.
//
//   Active:  Heartbeats, Capacity
//   Passive: Uptime, Devices, WiFi, Traffic
//
// Heartbeats are stored run-length-compressed: the paper's routers send
// one packet a minute for six months (126 routers × ~280k minutes); what
// the downtime analysis consumes is the *gaps*, so we store maximal runs
// of consecutive received heartbeats instead of tens of millions of rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/time.h"
#include "core/units.h"
#include "net/addr.h"
#include "net/flow.h"
#include "net/oui.h"
#include "wireless/band.h"

namespace bismark::collect {

/// Identifies one home (one BISmark router).
struct HomeId {
  int value{0};
  constexpr auto operator<=>(const HomeId&) const = default;
};

/// A maximal run of received heartbeats: one per minute in [start, end).
struct HeartbeatRun {
  HomeId home;
  TimePoint start;
  TimePoint end;

  [[nodiscard]] std::int64_t heartbeat_count() const {
    return std::max<std::int64_t>(0, (end - start).ms / 60000);
  }

  friend bool operator==(const HeartbeatRun&, const HeartbeatRun&) = default;
};

/// Router uptime report, sent every 12 hours (Section 3.2.2 "Uptime").
/// `uptime` resets on power cycles, which is what lets the analysis
/// distinguish powered-off from offline-but-powered.
struct UptimeRecord {
  HomeId home;
  TimePoint reported;
  Duration uptime{0};

  friend bool operator==(const UptimeRecord&, const UptimeRecord&) = default;
};

/// ShaperProbe-style capacity measurement, every 12 hours.
struct CapacityRecord {
  HomeId home;
  TimePoint measured;
  BitRate downstream;
  BitRate upstream;

  friend bool operator==(const CapacityRecord&, const CapacityRecord&) = default;
};

/// Hourly device census (Section 3.2.2 "Devices"). The firmware also
/// tracks distinct MACs seen since the start of the collection window and
/// reports the running *counts* (no addresses leave the home), which is
/// what Figs 7 and 10 are built from.
struct DeviceCountRecord {
  HomeId home;
  TimePoint sampled;
  int wired{0};
  int wireless_24{0};
  int wireless_5{0};
  int unique_total{0};  // distinct devices seen so far this window
  int unique_24{0};     // distinct devices ever seen on 2.4 GHz
  int unique_5{0};      // distinct devices ever seen on 5 GHz

  [[nodiscard]] int wireless_total() const { return wireless_24 + wireless_5; }
  [[nodiscard]] int total() const { return wired + wireless_total(); }

  friend bool operator==(const DeviceCountRecord&, const DeviceCountRecord&) = default;
};

/// One WiFi scan result (Section 3.2.2 "WiFi").
struct WifiScanRecord {
  HomeId home;
  TimePoint scanned;
  wireless::Band band{wireless::Band::k2_4GHz};
  int channel{0};
  int visible_aps{0};
  int associated_clients{0};

  friend bool operator==(const WifiScanRecord&, const WifiScanRecord&) = default;
};

/// A flow record in the Traffic data set: anonymised per Section 3.2.2 —
/// MAC lower-24 hashed, domain obfuscated unless whitelisted.
struct TrafficFlowRecord {
  HomeId home;
  net::FlowId flow;
  TimePoint first_packet;
  TimePoint last_packet;
  net::Protocol protocol{net::Protocol::kTcp};
  std::uint16_t dst_port{0};
  net::MacAddress device_mac;  // anonymised
  Bytes bytes_up;
  Bytes bytes_down;
  std::uint64_t packets_up{0};
  std::uint64_t packets_down{0};
  std::string domain;          // whitelisted name or "anon-<hash>"
  bool domain_anonymized{false};

  [[nodiscard]] Bytes total_bytes() const { return bytes_up + bytes_down; }

  friend bool operator==(const TrafficFlowRecord&, const TrafficFlowRecord&) = default;
};

/// Per-minute throughput summary for the utilisation analysis (Section
/// 6.2 computes "the maximum per-second throughput every minute").
struct ThroughputMinute {
  HomeId home;
  TimePoint minute_start;
  Bytes bytes_up;
  Bytes bytes_down;
  double peak_up_bps{0.0};
  double peak_down_bps{0.0};

  friend bool operator==(const ThroughputMinute&, const ThroughputMinute&) = default;
};

/// A sampled DNS response (A/CNAME records; Section 3.2.2 "DNS responses").
struct DnsLogRecord {
  HomeId home;
  TimePoint when;
  net::MacAddress device_mac;  // anonymised
  std::string query;           // whitelisted or "anon-<hash>"
  bool anonymized{false};
  int a_records{0};
  int cname_records{0};

  friend bool operator==(const DnsLogRecord&, const DnsLogRecord&) = default;
};

/// Per-device registry entry seen in the Traffic data set (drives Fig. 12
/// and Fig. 17): anonymised MAC, vendor classification, traffic totals.
struct DeviceTrafficRecord {
  HomeId home;
  net::MacAddress device_mac;  // anonymised
  net::VendorClass vendor{net::VendorClass::kUnknown};
  Bytes bytes_total;
  std::uint64_t flows{0};

  friend bool operator==(const DeviceTrafficRecord&, const DeviceTrafficRecord&) = default;
};

/// Per-home carrier-grade NAT accounting for one traffic window (DESIGN
/// §13): the subscriber's port-block footprint on its CGN and the drops it
/// experienced. Emitted only when the study runs with --cgn, so legacy
/// exports carry zero rows and stay byte-identical.
struct CgnEventRecord {
  HomeId home;
  TimePoint when;            // end of the traffic window the stats cover
  int cgn_id{0};             // which CGN instance serves this subscriber
  std::uint64_t port_block{0};        // base port of the subscriber's slice
  std::uint64_t port_block_size{0};   // ports per allocation block
  std::uint64_t port_blocks_allocated{0};
  std::uint64_t ports_peak{0};        // max concurrently active ports
  std::uint64_t port_capacity{0};     // min(slice ports, per-subscriber cap)
  std::uint64_t translations_out{0};
  std::uint64_t translations_in{0};
  std::uint64_t exhaustion_drops{0};
  std::uint64_t inbound_drops{0};

  friend bool operator==(const CgnEventRecord&, const CgnEventRecord&) = default;
};

}  // namespace bismark::collect
