// Zero-copy typed views over columnar snapshot sections (DESIGN §14).
//
// A BSMKSNAP v3 snapshot stores each data set as one file of per-field
// column sections: fixed-width fields as raw little-endian values packed
// contiguously, strings as a u32 cumulative-end-offset array followed by
// one concatenated blob. The view types here sit directly on those mapped
// bytes — no decode pass, no row materialisation unless asked for:
//
//   ColumnCodec<V>   — per-member-type width + load/store, mirroring the
//                      BinWriter::value() overload set exactly; a record
//                      field of a new type fails to compile here until its
//                      codec is added, so the row and columnar formats
//                      cannot drift apart.
//   ColumnView<V>    — typed random access over one fixed-width column.
//   StringColumnView — string_view access over an offsets+blob column.
//   TableView<T>     — all of a stripe's columns; row(i) materialises a
//                      full record, column<I>() is the zero-copy path.
//
// Invariants the reader verifies before constructing a view (so operator[]
// can skip bounds arithmetic): fixed sections hold exactly rows * kWidth
// bytes; string sections hold exactly 4 * rows offset bytes plus a blob
// whose length equals the final offset, with offsets non-decreasing
// (enforced by construction at write time and by CRC32C at read time).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>

#include "collect/schema.h"

namespace bismark::collect {

namespace coldetail {

template <unsigned W>
[[nodiscard]] inline std::uint64_t LoadLe(const char* p) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < W; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

template <unsigned W>
inline void StoreLe(std::string& out, std::uint64_t v) {
  for (unsigned i = 0; i < W; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace coldetail

/// Per-member-type column codec. kWidth is the on-disk bytes per value;
/// Load reads one value from a column body, Store appends one.
template <typename V>
struct ColumnCodec;  // one specialisation per BinWriter::value() overload

template <>
struct ColumnCodec<bool> {
  static constexpr std::uint32_t kWidth = 1;
  static bool Load(const char* p) { return *p != 0; }
  static void Store(std::string& out, bool v) { out.push_back(v ? 1 : 0); }
};

template <>
struct ColumnCodec<int> {
  static constexpr std::uint32_t kWidth = 4;
  static int Load(const char* p) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(coldetail::LoadLe<4>(p)));
  }
  static void Store(std::string& out, int v) {
    coldetail::StoreLe<4>(out, static_cast<std::uint32_t>(v));
  }
};

template <>
struct ColumnCodec<std::uint16_t> {
  static constexpr std::uint32_t kWidth = 2;
  static std::uint16_t Load(const char* p) {
    return static_cast<std::uint16_t>(coldetail::LoadLe<2>(p));
  }
  static void Store(std::string& out, std::uint16_t v) { coldetail::StoreLe<2>(out, v); }
};

template <>
struct ColumnCodec<std::uint64_t> {
  static constexpr std::uint32_t kWidth = 8;
  static std::uint64_t Load(const char* p) { return coldetail::LoadLe<8>(p); }
  static void Store(std::string& out, std::uint64_t v) { coldetail::StoreLe<8>(out, v); }
};

template <>
struct ColumnCodec<double> {
  static constexpr std::uint32_t kWidth = 8;
  static double Load(const char* p) {
    const std::uint64_t bits = coldetail::LoadLe<8>(p);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  static void Store(std::string& out, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    coldetail::StoreLe<8>(out, bits);
  }
};

template <>
struct ColumnCodec<HomeId> {
  static constexpr std::uint32_t kWidth = 4;
  static HomeId Load(const char* p) { return HomeId{ColumnCodec<int>::Load(p)}; }
  static void Store(std::string& out, HomeId v) { ColumnCodec<int>::Store(out, v.value); }
};

template <>
struct ColumnCodec<TimePoint> {
  static constexpr std::uint32_t kWidth = 8;
  static TimePoint Load(const char* p) {
    return TimePoint{static_cast<std::int64_t>(coldetail::LoadLe<8>(p))};
  }
  static void Store(std::string& out, TimePoint v) {
    coldetail::StoreLe<8>(out, static_cast<std::uint64_t>(v.ms));
  }
};

template <>
struct ColumnCodec<Duration> {
  static constexpr std::uint32_t kWidth = 8;
  static Duration Load(const char* p) {
    return Duration{static_cast<std::int64_t>(coldetail::LoadLe<8>(p))};
  }
  static void Store(std::string& out, Duration v) {
    coldetail::StoreLe<8>(out, static_cast<std::uint64_t>(v.ms));
  }
};

template <>
struct ColumnCodec<Bytes> {
  static constexpr std::uint32_t kWidth = 8;
  static Bytes Load(const char* p) {
    return Bytes{static_cast<std::int64_t>(coldetail::LoadLe<8>(p))};
  }
  static void Store(std::string& out, Bytes v) {
    coldetail::StoreLe<8>(out, static_cast<std::uint64_t>(v.count));
  }
};

template <>
struct ColumnCodec<BitRate> {
  static constexpr std::uint32_t kWidth = 8;
  static BitRate Load(const char* p) { return BitRate{ColumnCodec<double>::Load(p)}; }
  static void Store(std::string& out, BitRate v) { ColumnCodec<double>::Store(out, v.bps); }
};

template <>
struct ColumnCodec<net::FlowId> {
  static constexpr std::uint32_t kWidth = 8;
  static net::FlowId Load(const char* p) { return net::FlowId{coldetail::LoadLe<8>(p)}; }
  static void Store(std::string& out, net::FlowId v) { coldetail::StoreLe<8>(out, v.value); }
};

template <>
struct ColumnCodec<net::MacAddress> {
  static constexpr std::uint32_t kWidth = 6;
  static net::MacAddress Load(const char* p) {
    std::array<std::uint8_t, 6> octets{};
    for (std::size_t i = 0; i < octets.size(); ++i) {
      octets[i] = static_cast<std::uint8_t>(p[i]);
    }
    return net::MacAddress(octets);
  }
  static void Store(std::string& out, net::MacAddress v) {
    for (const auto octet : v.octets()) out.push_back(static_cast<char>(octet));
  }
};

template <>
struct ColumnCodec<net::Protocol> {
  static constexpr std::uint32_t kWidth = 1;
  static net::Protocol Load(const char* p) {
    return static_cast<net::Protocol>(static_cast<std::uint8_t>(*p));
  }
  static void Store(std::string& out, net::Protocol v) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v)));
  }
};

template <>
struct ColumnCodec<wireless::Band> {
  static constexpr std::uint32_t kWidth = 1;
  static wireless::Band Load(const char* p) {
    return static_cast<wireless::Band>(static_cast<std::uint8_t>(*p));
  }
  static void Store(std::string& out, wireless::Band v) {
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v)));
  }
};

template <>
struct ColumnCodec<net::VendorClass> {
  static constexpr std::uint32_t kWidth = 4;
  static net::VendorClass Load(const char* p) {
    return static_cast<net::VendorClass>(ColumnCodec<int>::Load(p));
  }
  static void Store(std::string& out, net::VendorClass v) {
    ColumnCodec<int>::Store(out, static_cast<int>(v));
  }
};

/// Strings are not fixed-width; their sections carry encoding 0 and the
/// offsets+blob body StringColumnView reads. The codec exists only so
/// compile-time width tables can expand over every field uniformly.
template <>
struct ColumnCodec<std::string> {
  static constexpr std::uint32_t kWidth = 0;
};

/// On-disk section encoding tag of member type V: its fixed width in
/// bytes, or 0 for the string offsets+blob layout.
template <typename V>
inline constexpr std::uint32_t kColumnEncoding = ColumnCodec<V>::kWidth;

/// Typed random access over one fixed-width column body.
template <typename V>
class ColumnView {
 public:
  ColumnView() = default;
  ColumnView(const char* body, std::uint64_t rows) : body_(body), rows_(rows) {}

  [[nodiscard]] std::uint64_t size() const { return rows_; }
  [[nodiscard]] V operator[](std::uint64_t i) const {
    return ColumnCodec<V>::Load(body_ + i * ColumnCodec<V>::kWidth);
  }

 private:
  const char* body_{nullptr};
  std::uint64_t rows_{0};
};

/// Zero-copy access over a string column: `rows` u32 cumulative end
/// offsets, then the concatenated blob. operator[] returns a view into the
/// mapped blob (valid while the snapshot stays open), so empty strings,
/// embedded NULs and arbitrary UTF-8 all round-trip byte-exactly.
class StringColumnView {
 public:
  StringColumnView() = default;
  StringColumnView(const char* body, std::uint64_t rows)
      : offsets_(body), blob_(body + rows * 4), rows_(rows) {}

  [[nodiscard]] std::uint64_t size() const { return rows_; }
  [[nodiscard]] std::string_view operator[](std::uint64_t i) const {
    const std::uint32_t begin = i == 0 ? 0 : end_offset(i - 1);
    const std::uint32_t end = end_offset(i);
    return {blob_ + begin, end - begin};
  }

 private:
  [[nodiscard]] std::uint32_t end_offset(std::uint64_t i) const {
    return static_cast<std::uint32_t>(coldetail::LoadLe<4>(offsets_ + 4 * i));
  }

  const char* offsets_{nullptr};
  const char* blob_{nullptr};
  std::uint64_t rows_{0};
};

namespace coldetail {

template <typename V>
struct ViewFor {
  using type = ColumnView<V>;
};
template <>
struct ViewFor<std::string> {
  using type = StringColumnView;
};

}  // namespace coldetail

/// All the columns of one stripe of kind T, in Schema<T>::Fields() order.
/// row(i) materialises a full record (strings copied); column<I>() hands
/// back the zero-copy per-field view the summarizers scan.
template <typename T>
class TableView {
 public:
  static constexpr std::size_t kNumFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;

  TableView() = default;
  /// bodies[f] points at the (verified) section body of field f.
  TableView(const std::array<const char*, kNumFields>& bodies, std::uint64_t rows)
      : bodies_(bodies), rows_(rows) {}

  [[nodiscard]] std::uint64_t rows() const { return rows_; }

  /// Member type of field I.
  template <std::size_t I>
  using MemberAt = std::remove_cvref_t<decltype(std::declval<const T&>().*(
      std::get<I>(Schema<T>::Fields()).member))>;

  /// Zero-copy view of field I (StringColumnView for string fields).
  template <std::size_t I>
  [[nodiscard]] auto column() const {
    return typename coldetail::ViewFor<MemberAt<I>>::type(bodies_[I], rows_);
  }

  /// Materialise row i into *out (strings copied out of the blob).
  void row(std::uint64_t i, T* out) const {
    assign_all(i, *out, std::make_index_sequence<kNumFields>{});
  }

 private:
  template <std::size_t I>
  void assign_one(std::uint64_t i, T& out) const {
    using M = MemberAt<I>;
    const auto view = column<I>();
    if constexpr (std::is_same_v<M, std::string>) {
      out.*(std::get<I>(Schema<T>::Fields()).member) = std::string(view[i]);
    } else {
      out.*(std::get<I>(Schema<T>::Fields()).member) = view[i];
    }
  }

  template <std::size_t... Is>
  void assign_all(std::uint64_t i, T& out, std::index_sequence<Is...>) const {
    (assign_one<Is>(i, out), ...);
  }

  std::array<const char*, kNumFields> bodies_{};
  std::uint64_t rows_{0};
};

/// Per-kind array of field encodings (kColumnEncoding of each member), the
/// table both the writer stamps into section headers and the reader
/// validates against.
template <typename T>
[[nodiscard]] constexpr std::array<std::uint32_t, TableView<T>::kNumFields> ColumnEncodings() {
  return std::apply(
      [](const auto&... field) {
        return std::array<std::uint32_t, TableView<T>::kNumFields>{
            kColumnEncoding<std::remove_cvref_t<decltype(std::declval<const T&>().*(
                field.member))>>...};
      },
      Schema<T>::Fields());
}

}  // namespace bismark::collect
