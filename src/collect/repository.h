// The central data repository: everything the deployment reported,
// organised as the six data sets of Table 2.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "collect/records.h"
#include "collect/sink.h"
#include "core/intervals.h"
#include "core/time.h"

namespace bismark::collect {

/// Collection windows per data set (Table 2). Defaults reproduce the
/// paper's dates.
struct DatasetWindows {
  Interval heartbeats;  // Oct 1 2012 – Apr 15 2013
  Interval uptime;      // Mar 6 – Apr 15 2013
  Interval capacity;    // Apr 1 – Apr 15 2013
  Interval devices;     // Mar 6 – Apr 15 2013
  Interval wifi;        // Nov 1 – Nov 15 2012
  Interval traffic;     // Apr 1 – Apr 15 2013

  static DatasetWindows Paper();
  /// A compressed variant for fast tests: same relative structure over a
  /// `scale`-week heartbeat window starting at `start`.
  static DatasetWindows Compressed(TimePoint start, int heartbeat_weeks);
};

/// Per-home metadata the analysis layer keys on.
struct HomeInfo {
  HomeId id;
  std::string country_code;
  bool developed{true};
  Duration utc_offset{0};
  /// Which data sets this home contributes to (Table 2 router counts).
  bool reports_uptime{false};
  bool reports_devices{false};
  bool reports_wifi{false};
  bool consented_traffic{false};
  /// Firmware-computed, PII-free booleans: does some device stay connected
  /// through the whole Devices window (Table 5)?
  bool has_always_wired{false};
  bool has_always_wireless{false};
  /// Ground truth kept for validation (never read by the measurement
  /// pipeline itself): true shaped capacities and the availability the
  /// simulator generated.
  double true_down_mbps{0.0};
  double true_up_mbps{0.0};
  int power_mode{0};  // RouterPowerMode as int to avoid a home/ dependency
};

/// A per-shard staging buffer: the same write API and window clipping as
/// the repository, but entirely thread-private. A parallel deployment run
/// gives each shard one batch; the shard's producers write into it without
/// synchronisation and the runner commits finished batches back into the
/// DataRepository under a single lock.
class IngestBatch final : public RecordSink {
 public:
  explicit IngestBatch(DatasetWindows windows) : windows_(windows) {}

  void add_heartbeat_run(HeartbeatRun run) override;
  void add_uptime(UptimeRecord rec) override;
  void add_capacity(CapacityRecord rec) override;
  void add_device_count(DeviceCountRecord rec) override;
  void add_wifi_scan(WifiScanRecord rec) override;
  void add_flow(TrafficFlowRecord rec) override;
  void add_throughput_minute(ThroughputMinute rec) override;
  void add_dns(DnsLogRecord rec) override;
  void add_device_traffic(DeviceTrafficRecord rec) override;

  [[nodiscard]] std::size_t rows() const;

 private:
  friend class DataRepository;
  DatasetWindows windows_;
  std::vector<HeartbeatRun> heartbeats_;
  std::vector<UptimeRecord> uptime_;
  std::vector<CapacityRecord> capacity_;
  std::vector<DeviceCountRecord> devices_;
  std::vector<WifiScanRecord> wifi_;
  std::vector<TrafficFlowRecord> flows_;
  std::vector<ThroughputMinute> throughput_;
  std::vector<DnsLogRecord> dns_;
  std::vector<DeviceTrafficRecord> device_traffic_;
};

/// All collected data. Appends go through the RecordSink interface and are
/// single-threaded (the simulation loop); parallel runs stage rows in
/// IngestBatch objects and `commit()` them (thread-safe). Analysis reads
/// are const and must only start once ingest is complete.
class DataRepository final : public RecordSink {
 public:
  explicit DataRepository(DatasetWindows windows);

  [[nodiscard]] const DatasetWindows& windows() const { return windows_; }

  // Registration.
  void register_home(HomeInfo info);
  [[nodiscard]] const std::vector<HomeInfo>& homes() const { return homes_; }
  [[nodiscard]] const HomeInfo* find_home(HomeId id) const;

  // Appends (window clipping is the caller's duty for runs; point records
  // outside their window are dropped here, mirroring server-side checks).
  void add_heartbeat_run(HeartbeatRun run) override;
  void add_uptime(UptimeRecord rec) override;
  void add_capacity(CapacityRecord rec) override;
  void add_device_count(DeviceCountRecord rec) override;
  void add_wifi_scan(WifiScanRecord rec) override;
  void add_flow(TrafficFlowRecord rec) override;
  void add_throughput_minute(ThroughputMinute rec) override;
  void add_dns(DnsLogRecord rec) override;
  void add_device_traffic(DeviceTrafficRecord rec) override;

  /// A fresh staging buffer sharing this repository's windows.
  [[nodiscard]] IngestBatch make_batch() const { return IngestBatch(windows_); }

  /// Append a finished batch's rows. Thread-safe: batches may be committed
  /// from worker threads as they complete; the commit order only affects
  /// the pre-`finalize_deterministic_order()` row order.
  void commit(IngestBatch&& batch);

  /// Impose the canonical record order: every data set stably sorted by
  /// (timestamp, home id). Per-home generation is deterministic and each
  /// home lives in exactly one shard, so after this sort the repository
  /// contents are byte-identical for every worker/shard configuration —
  /// including the serial path. Call once, after all ingest.
  void finalize_deterministic_order();

  // Data set accessors.
  [[nodiscard]] const std::vector<HeartbeatRun>& heartbeat_runs() const { return heartbeats_; }
  [[nodiscard]] const std::vector<UptimeRecord>& uptime() const { return uptime_; }
  [[nodiscard]] const std::vector<CapacityRecord>& capacity() const { return capacity_; }
  [[nodiscard]] const std::vector<DeviceCountRecord>& device_counts() const { return devices_; }
  [[nodiscard]] const std::vector<WifiScanRecord>& wifi_scans() const { return wifi_; }
  [[nodiscard]] const std::vector<TrafficFlowRecord>& flows() const { return flows_; }
  [[nodiscard]] const std::vector<ThroughputMinute>& throughput() const { return throughput_; }
  [[nodiscard]] const std::vector<DnsLogRecord>& dns() const { return dns_; }
  [[nodiscard]] const std::vector<DeviceTrafficRecord>& device_traffic() const {
    return device_traffic_;
  }

  // Filtered views (copies) used throughout the analysis layer.
  [[nodiscard]] std::vector<HeartbeatRun> heartbeat_runs_for(HomeId id) const;
  [[nodiscard]] std::vector<DeviceCountRecord> device_counts_for(HomeId id) const;
  [[nodiscard]] std::vector<TrafficFlowRecord> flows_for(HomeId id) const;
  [[nodiscard]] std::vector<ThroughputMinute> throughput_for(HomeId id) const;
  [[nodiscard]] std::vector<CapacityRecord> capacity_for(HomeId id) const;

  /// Summary row counts per data set (the Table 2 bench prints these).
  struct Counts {
    std::size_t heartbeat_runs, uptime, capacity, device_counts, wifi_scans, flows,
        throughput_minutes, dns, device_traffic;
  };
  [[nodiscard]] Counts counts() const;

 private:
  DatasetWindows windows_;
  std::mutex commit_mu_;
  std::vector<HomeInfo> homes_;
  std::vector<HeartbeatRun> heartbeats_;
  std::vector<UptimeRecord> uptime_;
  std::vector<CapacityRecord> capacity_;
  std::vector<DeviceCountRecord> devices_;
  std::vector<WifiScanRecord> wifi_;
  std::vector<TrafficFlowRecord> flows_;
  std::vector<ThroughputMinute> throughput_;
  std::vector<DnsLogRecord> dns_;
  std::vector<DeviceTrafficRecord> device_traffic_;
};

}  // namespace bismark::collect
