// The central data repository: everything the deployment reported,
// organised as the six data sets of Table 2 (plus extensions).
//
// Storage, window clipping, and the canonical order are all derived from
// the schema layer (collect/schema.h + collect/store.h): both the
// thread-private IngestBatch and the merged DataRepository are one
// RecordStore plus bookkeeping.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "collect/records.h"
#include "collect/sink.h"
#include "collect/spill.h"
#include "collect/store.h"
#include "core/intervals.h"
#include "core/time.h"

namespace bismark::collect {

class ColumnSnapshot;

/// Stream every row of kind T from an opened v3 columnar snapshot in
/// canonical order. Declared here (defined + explicitly instantiated in
/// column_snapshot.cpp, mirroring ForEachSpilledRow) so this header does
/// not pull in the columnar reader.
template <typename T>
void ForEachColumnRow(const ColumnSnapshot& snap, const std::function<void(const T&)>& fn);
[[nodiscard]] std::size_t ColumnRowCount(const ColumnSnapshot& snap, std::size_t kind);
[[nodiscard]] std::size_t ColumnTotalRows(const ColumnSnapshot& snap);

/// Per-home metadata the analysis layer keys on.
struct HomeInfo {
  HomeId id;
  std::string country_code;
  bool developed{true};
  Duration utc_offset{0};
  /// Which data sets this home contributes to (Table 2 router counts).
  bool reports_uptime{false};
  bool reports_devices{false};
  bool reports_wifi{false};
  bool consented_traffic{false};
  /// Firmware-computed, PII-free booleans: does some device stay connected
  /// through the whole Devices window (Table 5)?
  bool has_always_wired{false};
  bool has_always_wireless{false};
  /// Ground truth kept for validation (never read by the measurement
  /// pipeline itself): true shaped capacities and the availability the
  /// simulator generated.
  double true_down_mbps{0.0};
  double true_up_mbps{0.0};
  int power_mode{0};  // RouterPowerMode as int to avoid a home/ dependency

  friend bool operator==(const HomeInfo&, const HomeInfo&) = default;
};

/// A per-shard staging buffer: the same write API and window clipping as
/// the repository, but entirely thread-private. A parallel deployment run
/// gives each shard one batch; the shard's producers write into it without
/// synchronisation and the runner commits finished batches back into the
/// DataRepository under a single lock.
class IngestBatch final : public RecordSink {
 public:
  explicit IngestBatch(DatasetWindows windows) : windows_(windows) {}

  void add_record(Record r) override {
    std::visit([this](auto&& rec) { this->add_one(std::move(rec)); }, std::move(r));
  }

  /// Bulk staging: the whole batch lands with a single virtual dispatch.
  void add_records(std::vector<Record> records) override {
    for (Record& r : records) add_record(std::move(r));
  }

  [[nodiscard]] std::size_t rows() const { return store_.total_rows(); }

  /// Route this batch through the spill dir: rows past the flush threshold
  /// are stable-sorted and appended to the worker's segment log instead of
  /// accumulating. Called by the runner before the shard task writes
  /// anything; `shard` is the shard-plan index (the canonical tie order)
  /// and `worker` picks the exclusively-owned segment log.
  void attach_spill(SpillDir* dir, std::uint32_t shard, std::size_t worker);

  [[nodiscard]] bool spilling() const { return spill_ != nullptr; }

  /// Write out every staged row (every kind) as sorted sections. Called at
  /// shard end — commit() also invokes it, so no rows can be stranded.
  void flush_spill();

 private:
  friend class DataRepository;

  template <typename T>
  void add_one(T rec) {
    if (!Schema<T>::Admit(windows_, rec)) return;
    if (spill_ != nullptr) {
      staged_bytes_ += ApproxRowBytes(rec);
      store_.rows<T>().push_back(std::move(rec));
      if (staged_bytes_ >= flush_threshold_) flush_spill();
      return;
    }
    store_.rows<T>().push_back(std::move(rec));
  }

  DatasetWindows windows_;
  RecordStore store_;

  // Spill wiring (null when the batch stages in RAM until commit).
  SpillDir* spill_{nullptr};
  SegmentLog* log_{nullptr};
  std::uint32_t shard_{0};
  std::size_t flush_threshold_{0};
  std::size_t staged_bytes_{0};
  std::array<std::uint32_t, kRecordKinds> runs_{};  // flush sequence per kind
};

/// All collected data. Appends go through the RecordSink interface and are
/// single-threaded (the simulation loop); parallel runs stage rows in
/// IngestBatch objects and `commit()` them (thread-safe). Analysis reads
/// are const and must only start once ingest is complete.
class DataRepository final : public RecordSink {
 public:
  explicit DataRepository(DatasetWindows windows) : windows_(windows) {}

  [[nodiscard]] const DatasetWindows& windows() const { return windows_; }

  // Registration.
  void register_home(HomeInfo info);
  [[nodiscard]] const std::vector<HomeInfo>& homes() const { return homes_; }
  [[nodiscard]] const HomeInfo* find_home(HomeId id) const;

  /// Append one record. Window clipping/rejection comes from the record's
  /// Schema<>::Admit, mirroring server-side checks.
  void add_record(Record r) override { store_.add(windows_, std::move(r)); }

  /// Bulk append (single virtual dispatch). Like add_record, single-
  /// threaded by contract; parallel runs stage through IngestBatch.
  void add_records(std::vector<Record> records) override {
    for (Record& r : records) store_.add(windows_, std::move(r));
  }

  /// A fresh staging buffer sharing this repository's windows.
  [[nodiscard]] IngestBatch make_batch() const { return IngestBatch(windows_); }

  /// Append a finished batch's rows. Thread-safe: batches may be committed
  /// from worker threads as they complete; the commit order only affects
  /// the pre-`finalize_deterministic_order()` row order.
  void commit(IngestBatch&& batch);

  /// Route record storage through a spill-to-disk segment directory
  /// (collect/spill.h). Must be called before any ingest; batches made
  /// after this stage to disk once past the flush threshold and `rows<T>()`
  /// stays empty — readers use `for_each_row<T>()` instead. The in-RAM and
  /// spilled paths produce byte-identical canonical row orders.
  void enable_spill(SpillConfig config);
  /// Resume variant: adopt a recovered spill directory's committed sections
  /// and register the homes its completed shards contributed
  /// (collect/manifest.h).
  void enable_spill_recovered(SpillConfig config, const SpillRecovery& recovered);
  [[nodiscard]] bool spilling() const { return spill_ != nullptr; }
  [[nodiscard]] SpillDir* spill() const { return spill_.get(); }

  /// Back this repository with an opened v3 columnar snapshot
  /// (collect/column_snapshot.h): reads stream zero-copy from the mapped
  /// kind files and `rows<T>()` stays empty, exactly like the spill path.
  /// Mutually exclusive with ingest and with enable_spill.
  void attach_columns(std::shared_ptr<const ColumnSnapshot> columns) {
    columns_ = std::move(columns);
  }
  [[nodiscard]] bool column_backed() const { return columns_ != nullptr; }
  /// The backing snapshot (nullptr unless column-backed). Analysis code
  /// that wants per-stripe parallel scans reaches through this.
  [[nodiscard]] const ColumnSnapshot* columns() const { return columns_.get(); }

  /// Impose the canonical record order: every data set stably sorted by
  /// its Schema<>::SortKey — (timestamp, home id) for timestamped sets.
  /// Per-home generation is deterministic and each home lives in exactly
  /// one shard, so after this sort the repository contents are
  /// byte-identical for every worker/shard configuration — including the
  /// serial path. Call once, after all ingest. Homes are ordered by id for
  /// the same reason: fleet runs register them from worker threads.
  void finalize_deterministic_order();

  /// Generic data set accessor: `repo.rows<WifiScanRecord>()`. Empty when
  /// spilling — fleet-scale readers stream with for_each_row instead.
  template <typename T>
  [[nodiscard]] const std::vector<T>& rows() const {
    return store_.rows<T>();
  }

  /// Stream every row of kind T in canonical order, resident or spilled.
  /// The only repository read path that works at fleet scale; export and
  /// the snapshot writer are built on it. Requires
  /// finalize_deterministic_order() first on the in-RAM path.
  template <typename T, typename Fn>
  void for_each_row(Fn&& fn) const {
    if (columns_ != nullptr) {
      ForEachColumnRow<T>(*columns_, std::function<void(const T&)>(std::forward<Fn>(fn)));
      return;
    }
    if (spill_ != nullptr) {
      ForEachSpilledRow<T>(*spill_, std::function<void(const T&)>(std::forward<Fn>(fn)));
      return;
    }
    for (const T& row : store_.rows<T>()) fn(row);
  }

  /// Row count of kind T, resident, spilled, or column-backed.
  template <typename T>
  [[nodiscard]] std::size_t row_count() const {
    if (columns_ != nullptr) return ColumnRowCount(*columns_, kRecordIndexOf<T>);
    if (spill_ != nullptr) {
      return static_cast<std::size_t>(spill_->rows_of_kind(kRecordIndexOf<T>));
    }
    return store_.rows<T>().size();
  }

  // Named accessors kept for the analysis layer's readability.
  [[nodiscard]] const std::vector<HeartbeatRun>& heartbeat_runs() const {
    return rows<HeartbeatRun>();
  }
  [[nodiscard]] const std::vector<UptimeRecord>& uptime() const { return rows<UptimeRecord>(); }
  [[nodiscard]] const std::vector<CapacityRecord>& capacity() const {
    return rows<CapacityRecord>();
  }
  [[nodiscard]] const std::vector<DeviceCountRecord>& device_counts() const {
    return rows<DeviceCountRecord>();
  }
  [[nodiscard]] const std::vector<WifiScanRecord>& wifi_scans() const {
    return rows<WifiScanRecord>();
  }
  [[nodiscard]] const std::vector<TrafficFlowRecord>& flows() const {
    return rows<TrafficFlowRecord>();
  }
  [[nodiscard]] const std::vector<ThroughputMinute>& throughput() const {
    return rows<ThroughputMinute>();
  }
  [[nodiscard]] const std::vector<DnsLogRecord>& dns() const { return rows<DnsLogRecord>(); }
  [[nodiscard]] const std::vector<DeviceTrafficRecord>& device_traffic() const {
    return rows<DeviceTrafficRecord>();
  }
  [[nodiscard]] const std::vector<CgnEventRecord>& cgn_events() const {
    return rows<CgnEventRecord>();
  }

  // Filtered views (copies) used throughout the analysis layer.
  [[nodiscard]] std::vector<HeartbeatRun> heartbeat_runs_for(HomeId id) const;
  [[nodiscard]] std::vector<DeviceCountRecord> device_counts_for(HomeId id) const;
  [[nodiscard]] std::vector<TrafficFlowRecord> flows_for(HomeId id) const;
  [[nodiscard]] std::vector<ThroughputMinute> throughput_for(HomeId id) const;
  [[nodiscard]] std::vector<CapacityRecord> capacity_for(HomeId id) const;

  /// Rows across every data set, resident, spilled, or column-backed.
  [[nodiscard]] std::size_t total_rows() const {
    if (columns_ != nullptr) return ColumnTotalRows(*columns_);
    if (spill_ != nullptr) return static_cast<std::size_t>(spill_->total_rows());
    return store_.total_rows();
  }

  /// Summary row counts per data set (the Table 2 bench prints these).
  struct Counts {
    std::size_t heartbeat_runs, uptime, capacity, device_counts, wifi_scans, flows,
        throughput_minutes, dns, device_traffic, cgn_events;
  };
  [[nodiscard]] Counts counts() const;

 private:
  DatasetWindows windows_;
  std::mutex commit_mu_;
  std::vector<HomeInfo> homes_;
  RecordStore store_;
  // Mutable: merge passes write scratch sections during const reads.
  mutable std::unique_ptr<SpillDir> spill_;
  std::shared_ptr<const ColumnSnapshot> columns_;
};

}  // namespace bismark::collect
