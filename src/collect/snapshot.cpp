#include "collect/snapshot.h"

#include <cstring>
#include <fstream>
#include <iterator>
#include <tuple>
#include <utility>

#include "collect/binio.h"

namespace bismark::collect {

namespace {

// The writer/reader live in collect/binio.h, shared with the spill segment
// layer; this file only keeps the snapshot-specific framing.

void PutInterval(BinWriter& w, const Interval& ival) {
  w.i64(ival.start.ms);
  w.i64(ival.end.ms);
}

Interval GetInterval(BinReader& r) {
  Interval ival;
  ival.start.ms = r.i64();
  ival.end.ms = r.i64();
  return ival;
}

void PutHome(BinWriter& w, const HomeInfo& h) {
  w.i32(h.id.value);
  w.str(h.country_code);
  w.value(h.developed);
  w.i64(h.utc_offset.ms);
  w.value(h.reports_uptime);
  w.value(h.reports_devices);
  w.value(h.reports_wifi);
  w.value(h.consented_traffic);
  w.value(h.has_always_wired);
  w.value(h.has_always_wireless);
  w.f64(h.true_down_mbps);
  w.f64(h.true_up_mbps);
  w.i32(h.power_mode);
}

HomeInfo GetHome(BinReader& r) {
  HomeInfo h;
  h.id.value = r.i32();
  h.country_code = r.str();
  r.value(h.developed);
  h.utc_offset.ms = r.i64();
  r.value(h.reports_uptime);
  r.value(h.reports_devices);
  r.value(h.reports_wifi);
  r.value(h.consented_traffic);
  r.value(h.has_always_wired);
  r.value(h.has_always_wireless);
  h.true_down_mbps = r.f64();
  h.true_up_mbps = r.f64();
  h.power_mode = r.i32();
  return h;
}

bool Fail(std::string* error, const std::string& reason) {
  if (error) *error = "snapshot: " + reason;
  return false;
}

}  // namespace

bool SaveSnapshot(const DataRepository& repo, std::ostream& out, std::string* error) {
  // Streamed in chunks: a spilled fleet-scale repository never has a full
  // data set resident, so neither may its snapshot writer.
  constexpr std::size_t kChunkBytes = 1 << 20;
  BinWriter w;
  const auto drain = [&] {
    out.write(w.buffer().data(), static_cast<std::streamsize>(w.buffer().size()));
    w.clear();
  };

  w.raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.u32(kSnapshotVersion);

  const DatasetWindows& windows = repo.windows();
  PutInterval(w, windows.heartbeats);
  PutInterval(w, windows.uptime);
  PutInterval(w, windows.capacity);
  PutInterval(w, windows.devices);
  PutInterval(w, windows.wifi);
  PutInterval(w, windows.traffic);

  w.u32(static_cast<std::uint32_t>(repo.homes().size()));
  for (const auto& home : repo.homes()) {
    PutHome(w, home);
    if (w.size() >= kChunkBytes) drain();
  }

  w.u32(static_cast<std::uint32_t>(kRecordKinds));
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    w.str(Schema<T>::kKindName);
    constexpr std::uint32_t kFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;
    w.u32(kFields);
    std::apply([&w](const auto&... field) { (w.str(field.name), ...); }, Schema<T>::Fields());
    w.u64(repo.row_count<T>());
    repo.for_each_row<T>([&](const T& r) {
      EncodeRow(w, r);
      if (w.size() >= kChunkBytes) drain();
    });
  });

  drain();
  if (!out) return Fail(error, "write failed");
  return true;
}

bool SaveSnapshotFile(const DataRepository& repo, const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  return SaveSnapshot(repo, out, error);
}

std::unique_ptr<DataRepository> LoadSnapshot(std::istream& in, std::string* error) {
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  BinReader r(data.data(), data.size());

  char magic[sizeof(kSnapshotMagic)] = {};
  for (auto& c : magic) c = static_cast<char>(r.u8());
  if (r.failed() || std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    Fail(error, "bad magic");
    return nullptr;
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    Fail(error, "unsupported version " + std::to_string(version) + " (want " +
                    std::to_string(kSnapshotVersion) + ")");
    return nullptr;
  }

  DatasetWindows windows;
  windows.heartbeats = GetInterval(r);
  windows.uptime = GetInterval(r);
  windows.capacity = GetInterval(r);
  windows.devices = GetInterval(r);
  windows.wifi = GetInterval(r);
  windows.traffic = GetInterval(r);

  auto repo = std::make_unique<DataRepository>(windows);

  const std::uint32_t home_count = r.u32();
  for (std::uint32_t i = 0; i < home_count && !r.failed(); ++i) {
    repo->register_home(GetHome(r));
  }

  const std::uint32_t kind_count = r.u32();
  if (r.failed() || kind_count != kRecordKinds) {
    Fail(error, "kind count mismatch: snapshot has " + std::to_string(kind_count) + ", build has " +
                    std::to_string(kRecordKinds));
    return nullptr;
  }

  bool ok = true;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    if (!ok || r.failed()) return;
    const std::string kind = r.str();
    if (kind != Schema<T>::kKindName) {
      ok = Fail(error, "kind name mismatch: snapshot has '" + kind + "', build has '" +
                           Schema<T>::kKindName + "'");
      return;
    }
    constexpr std::uint32_t kFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;
    const std::uint32_t field_count = r.u32();
    if (field_count != kFields) {
      ok = Fail(error, std::string("field count mismatch for ") + Schema<T>::kKindName);
      return;
    }
    std::apply(
        [&](const auto&... field) {
          const auto check = [&](const char* want) {
            if (!ok) return;
            const std::string got = r.str();
            if (got != want) {
              ok = Fail(error, std::string("field name mismatch for ") + Schema<T>::kKindName +
                                   ": snapshot has '" + got + "', build has '" + want + "'");
            }
          };
          (check(field.name), ...);
        },
        Schema<T>::Fields());
    if (!ok) return;
    const std::uint64_t row_count = r.u64();
    for (std::uint64_t i = 0; i < row_count && !r.failed(); ++i) {
      T rec{};
      std::apply([&r, &rec](const auto&... field) { (r.value(rec.*(field.member)), ...); },
                 Schema<T>::Fields());
      repo->add(std::move(rec));
    }
  });

  if (!ok) return nullptr;
  if (r.failed()) {
    Fail(error, "truncated input");
    return nullptr;
  }
  if (!r.at_end()) {
    Fail(error, "trailing bytes after last data set");
    return nullptr;
  }
  return repo;
}

std::unique_ptr<DataRepository> LoadSnapshotFile(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Fail(error, "cannot open " + path);
    return nullptr;
  }
  return LoadSnapshot(in, error);
}

}  // namespace bismark::collect
