#include "collect/snapshot.h"

#include <cstring>
#include <fstream>
#include <iterator>
#include <streambuf>
#include <tuple>
#include <utility>

#include "collect/binio.h"
#include "core/crc32c.h"
#include "core/io.h"

namespace bismark::collect {

namespace {

// The writer/reader live in collect/binio.h, shared with the spill segment
// layer; this file only keeps the snapshot-specific framing.

void PutInterval(BinWriter& w, const Interval& ival) {
  w.i64(ival.start.ms);
  w.i64(ival.end.ms);
}

Interval GetInterval(BinReader& r) {
  Interval ival;
  ival.start.ms = r.i64();
  ival.end.ms = r.i64();
  return ival;
}

void PutHome(BinWriter& w, const HomeInfo& h) {
  w.i32(h.id.value);
  w.str(h.country_code);
  w.value(h.developed);
  w.i64(h.utc_offset.ms);
  w.value(h.reports_uptime);
  w.value(h.reports_devices);
  w.value(h.reports_wifi);
  w.value(h.consented_traffic);
  w.value(h.has_always_wired);
  w.value(h.has_always_wireless);
  w.f64(h.true_down_mbps);
  w.f64(h.true_up_mbps);
  w.i32(h.power_mode);
}

HomeInfo GetHome(BinReader& r) {
  HomeInfo h;
  h.id.value = r.i32();
  h.country_code = r.str();
  r.value(h.developed);
  h.utc_offset.ms = r.i64();
  r.value(h.reports_uptime);
  r.value(h.reports_devices);
  r.value(h.reports_wifi);
  r.value(h.consented_traffic);
  r.value(h.has_always_wired);
  r.value(h.has_always_wireless);
  h.true_down_mbps = r.f64();
  h.true_up_mbps = r.f64();
  h.power_mode = r.i32();
  return h;
}

bool Fail(std::string* error, const std::string& reason) {
  if (error) *error = "snapshot: " + reason;
  return false;
}

// std::ostream shim over core::CheckedFile so SaveSnapshot's streaming body
// writes through the injectable Io seam. A latched CheckedFile error turns
// into badbit here; the caller reports file.error() for the real diagnostic.
class CheckedFileBuf final : public std::streambuf {
 public:
  explicit CheckedFileBuf(core::CheckedFile& f) : f_(f) {}

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return f_.write(s, static_cast<std::size_t>(n)) ? n : 0;
  }
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return traits_type::not_eof(ch);
    const char c = traits_type::to_char_type(ch);
    return f_.write(&c, 1) ? ch : traits_type::eof();
  }

 private:
  core::CheckedFile& f_;
};

}  // namespace

bool SaveSnapshot(const DataRepository& repo, std::ostream& out, std::string* error) {
  // Streamed in chunks: a spilled fleet-scale repository never has a full
  // data set resident, so neither may its snapshot writer.
  constexpr std::size_t kChunkBytes = 1 << 20;
  BinWriter w;
  std::uint32_t crc = 0;
  const auto drain = [&] {
    crc = core::Crc32c(w.buffer().data(), w.buffer().size(), crc);
    out.write(w.buffer().data(), static_cast<std::streamsize>(w.buffer().size()));
    w.clear();
  };

  w.raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.u32(kSnapshotVersion);

  const DatasetWindows& windows = repo.windows();
  PutInterval(w, windows.heartbeats);
  PutInterval(w, windows.uptime);
  PutInterval(w, windows.capacity);
  PutInterval(w, windows.devices);
  PutInterval(w, windows.wifi);
  PutInterval(w, windows.traffic);

  w.u32(static_cast<std::uint32_t>(repo.homes().size()));
  for (const auto& home : repo.homes()) {
    PutHome(w, home);
    if (w.size() >= kChunkBytes) drain();
  }

  w.u32(static_cast<std::uint32_t>(kRecordKinds));
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    w.str(Schema<T>::kKindName);
    constexpr std::uint32_t kFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;
    w.u32(kFields);
    std::apply([&w](const auto&... field) { (w.str(field.name), ...); }, Schema<T>::Fields());
    w.u64(repo.row_count<T>());
    repo.for_each_row<T>([&](const T& r) {
      EncodeRow(w, r);
      if (w.size() >= kChunkBytes) drain();
    });
  });

  drain();
  // Trailing whole-file CRC32C (not covered by itself).
  char trailer[4];
  for (std::size_t i = 0; i < 4; ++i) {
    trailer[i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  out.write(trailer, 4);
  if (!out) return Fail(error, "write failed");
  return true;
}

bool SaveSnapshotFile(const DataRepository& repo, const std::string& path, std::string* error) {
  core::CheckedFile file;
  if (!file.open(path)) {
    return Fail(error, "cannot open " + path + " for writing: " + file.error());
  }
  CheckedFileBuf buf(file);
  std::ostream out(&buf);
  std::string inner;
  const bool saved = SaveSnapshot(repo, out, &inner);
  // sync + close even after a failed save so the fd is released; the first
  // latched error owns the diagnostic. A full disk — real or injected —
  // surfaces its errno here instead of leaving a silently truncated file.
  file.sync();
  file.close();
  if (!file.ok()) return Fail(error, file.error());
  if (!saved) {
    if (error) *error = inner;
    return false;
  }
  return true;
}

std::unique_ptr<DataRepository> LoadSnapshot(std::istream& in, std::string* error) {
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  // Check order: magic, version, whole-file CRC32C, then parse. Nothing
  // past the version field is decoded until the checksum proves the bytes
  // are the ones the writer committed.
  if (data.size() < sizeof(kSnapshotMagic) ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    Fail(error, "bad magic");
    return nullptr;
  }
  constexpr std::size_t kHeaderBytes = sizeof(kSnapshotMagic) + sizeof(std::uint32_t);
  std::uint32_t version = 0;
  if (data.size() >= kHeaderBytes) {
    for (std::size_t i = 0; i < 4; ++i) {
      version |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data[sizeof(kSnapshotMagic) + i]))
                 << (8 * i);
    }
  }
  // v1 is the pre-CRC format: the identical body with no trailer. It still
  // loads (archived snapshots stay readable) but gets no corruption check —
  // only v2+ carries the checksum.
  if (version != kSnapshotVersion && version != 1) {
    Fail(error, "unsupported version " + std::to_string(version) + " (want " +
                    std::to_string(kSnapshotVersion) + " or 1)");
    return nullptr;
  }
  std::size_t body_bytes = data.size();
  if (version == kSnapshotVersion) {
    if (data.size() < kHeaderBytes + sizeof(std::uint32_t)) {
      Fail(error, "truncated input (missing trailing CRC32C)");
      return nullptr;
    }
    body_bytes = data.size() - sizeof(std::uint32_t);
    std::uint32_t stored_crc = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      stored_crc |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[body_bytes + i]))
                    << (8 * i);
    }
    if (stored_crc != core::Crc32c(data.data(), body_bytes)) {
      Fail(error, "CRC32C mismatch (snapshot corrupted or truncated)");
      return nullptr;
    }
  }

  BinReader r(data.data(), body_bytes);
  for (std::size_t i = 0; i < sizeof(kSnapshotMagic); ++i) (void)r.u8();
  (void)r.u32();  // version, validated above

  DatasetWindows windows;
  windows.heartbeats = GetInterval(r);
  windows.uptime = GetInterval(r);
  windows.capacity = GetInterval(r);
  windows.devices = GetInterval(r);
  windows.wifi = GetInterval(r);
  windows.traffic = GetInterval(r);

  auto repo = std::make_unique<DataRepository>(windows);

  const std::uint32_t home_count = r.u32();
  for (std::uint32_t i = 0; i < home_count && !r.failed(); ++i) {
    repo->register_home(GetHome(r));
  }

  const std::uint32_t kind_count = r.u32();
  if (r.failed() || kind_count != kRecordKinds) {
    Fail(error, "kind count mismatch: snapshot has " + std::to_string(kind_count) + ", build has " +
                    std::to_string(kRecordKinds));
    return nullptr;
  }

  bool ok = true;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    if (!ok || r.failed()) return;
    const std::string kind = r.str();
    if (kind != Schema<T>::kKindName) {
      ok = Fail(error, "kind name mismatch: snapshot has '" + kind + "', build has '" +
                           Schema<T>::kKindName + "'");
      return;
    }
    constexpr std::uint32_t kFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;
    const std::uint32_t field_count = r.u32();
    if (field_count != kFields) {
      ok = Fail(error, std::string("field count mismatch for ") + Schema<T>::kKindName);
      return;
    }
    std::apply(
        [&](const auto&... field) {
          const auto check = [&](const char* want) {
            if (!ok) return;
            const std::string got = r.str();
            if (got != want) {
              ok = Fail(error, std::string("field name mismatch for ") + Schema<T>::kKindName +
                                   ": snapshot has '" + got + "', build has '" + want + "'");
            }
          };
          (check(field.name), ...);
        },
        Schema<T>::Fields());
    if (!ok) return;
    const std::uint64_t row_count = r.u64();
    for (std::uint64_t i = 0; i < row_count && !r.failed(); ++i) {
      T rec{};
      std::apply([&r, &rec](const auto&... field) { (r.value(rec.*(field.member)), ...); },
                 Schema<T>::Fields());
      repo->add(std::move(rec));
    }
  });

  if (!ok) return nullptr;
  if (r.failed()) {
    Fail(error, "truncated input");
    return nullptr;
  }
  if (!r.at_end()) {
    Fail(error, "trailing bytes after last data set");
    return nullptr;
  }
  return repo;
}

std::unique_ptr<DataRepository> LoadSnapshotFile(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Fail(error, "cannot open " + path);
    return nullptr;
  }
  return LoadSnapshot(in, error);
}

}  // namespace bismark::collect
