#include "collect/snapshot.h"

#include <array>
#include <cstring>
#include <fstream>
#include <iterator>
#include <tuple>
#include <utility>

namespace bismark::collect {

namespace {

// --- binary writer ----------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i32(std::int32_t v) { fixed(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fixed(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  void raw(const char* data, std::size_t n) { buf_.append(data, n); }

  // Field-value overloads, one per reflected member type.
  void value(bool v) { u8(v ? 1 : 0); }
  void value(int v) { i32(v); }
  void value(std::uint16_t v) { u16(v); }
  void value(std::uint64_t v) { u64(v); }
  void value(double v) { f64(v); }
  void value(const std::string& v) { str(v); }
  void value(HomeId v) { i32(v.value); }
  void value(TimePoint v) { i64(v.ms); }
  void value(Duration v) { i64(v.ms); }
  void value(Bytes v) { i64(v.count); }
  void value(BitRate v) { f64(v.bps); }
  void value(net::FlowId v) { u64(v.value); }
  void value(net::MacAddress v) {
    for (const auto octet : v.octets()) u8(octet);
  }
  void value(net::Protocol v) { u8(static_cast<std::uint8_t>(v)); }
  void value(wireless::Band v) { u8(static_cast<std::uint8_t>(v)); }
  void value(net::VendorClass v) { i32(static_cast<int>(v)); }

  [[nodiscard]] const std::string& buffer() const { return buf_; }

 private:
  template <typename U>
  void fixed(U v) {
    // Little-endian, byte by byte (host-endianness independent).
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string buf_;
};

// --- binary reader ----------------------------------------------------------

class Reader {
 public:
  Reader(const char* data, std::size_t size) : p_(data), end_(data + size) {}

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] bool at_end() const { return p_ == end_; }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(*p_++);
  }
  std::uint16_t u16() { return fixed<std::uint16_t>(); }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(fixed<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(fixed<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = fixed<std::uint64_t>();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(p_, n);
    p_ += n;
    return s;
  }

  void value(bool& v) { v = u8() != 0; }
  void value(int& v) { v = i32(); }
  void value(std::uint16_t& v) { v = u16(); }
  void value(std::uint64_t& v) { v = u64(); }
  void value(double& v) { v = f64(); }
  void value(std::string& v) { v = str(); }
  void value(HomeId& v) { v.value = i32(); }
  void value(TimePoint& v) { v.ms = i64(); }
  void value(Duration& v) { v.ms = i64(); }
  void value(Bytes& v) { v.count = i64(); }
  void value(BitRate& v) { v.bps = f64(); }
  void value(net::FlowId& v) { v.value = u64(); }
  void value(net::MacAddress& v) {
    std::array<std::uint8_t, 6> octets{};
    for (auto& octet : octets) octet = u8();
    v = net::MacAddress(octets);
  }
  void value(net::Protocol& v) { v = static_cast<net::Protocol>(u8()); }
  void value(wireless::Band& v) { v = static_cast<wireless::Band>(u8()); }
  void value(net::VendorClass& v) { v = static_cast<net::VendorClass>(i32()); }

 private:
  template <typename U>
  U fixed() {
    if (!need(sizeof(U))) return 0;
    U v = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<U>(static_cast<std::uint8_t>(p_[i])) << (8 * i);
    }
    p_ += sizeof(U);
    return v;
  }
  bool need(std::size_t n) {
    if (failed_ || static_cast<std::size_t>(end_ - p_) < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool failed_{false};
};

void PutInterval(Writer& w, const Interval& ival) {
  w.i64(ival.start.ms);
  w.i64(ival.end.ms);
}

Interval GetInterval(Reader& r) {
  Interval ival;
  ival.start.ms = r.i64();
  ival.end.ms = r.i64();
  return ival;
}

void PutHome(Writer& w, const HomeInfo& h) {
  w.i32(h.id.value);
  w.str(h.country_code);
  w.value(h.developed);
  w.i64(h.utc_offset.ms);
  w.value(h.reports_uptime);
  w.value(h.reports_devices);
  w.value(h.reports_wifi);
  w.value(h.consented_traffic);
  w.value(h.has_always_wired);
  w.value(h.has_always_wireless);
  w.f64(h.true_down_mbps);
  w.f64(h.true_up_mbps);
  w.i32(h.power_mode);
}

HomeInfo GetHome(Reader& r) {
  HomeInfo h;
  h.id.value = r.i32();
  h.country_code = r.str();
  r.value(h.developed);
  h.utc_offset.ms = r.i64();
  r.value(h.reports_uptime);
  r.value(h.reports_devices);
  r.value(h.reports_wifi);
  r.value(h.consented_traffic);
  r.value(h.has_always_wired);
  r.value(h.has_always_wireless);
  h.true_down_mbps = r.f64();
  h.true_up_mbps = r.f64();
  h.power_mode = r.i32();
  return h;
}

bool Fail(std::string* error, const std::string& reason) {
  if (error) *error = "snapshot: " + reason;
  return false;
}

}  // namespace

bool SaveSnapshot(const DataRepository& repo, std::ostream& out, std::string* error) {
  Writer w;
  w.raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.u32(kSnapshotVersion);

  const DatasetWindows& windows = repo.windows();
  PutInterval(w, windows.heartbeats);
  PutInterval(w, windows.uptime);
  PutInterval(w, windows.capacity);
  PutInterval(w, windows.devices);
  PutInterval(w, windows.wifi);
  PutInterval(w, windows.traffic);

  w.u32(static_cast<std::uint32_t>(repo.homes().size()));
  for (const auto& home : repo.homes()) PutHome(w, home);

  w.u32(static_cast<std::uint32_t>(kRecordKinds));
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    w.str(Schema<T>::kKindName);
    constexpr std::uint32_t kFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;
    w.u32(kFields);
    std::apply([&w](const auto&... field) { (w.str(field.name), ...); }, Schema<T>::Fields());
    const auto& rows = repo.rows<T>();
    w.u64(rows.size());
    for (const auto& r : rows) {
      std::apply([&w, &r](const auto&... field) { (w.value(r.*(field.member)), ...); },
                 Schema<T>::Fields());
    }
  });

  out.write(w.buffer().data(), static_cast<std::streamsize>(w.buffer().size()));
  if (!out) return Fail(error, "write failed");
  return true;
}

bool SaveSnapshotFile(const DataRepository& repo, const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  return SaveSnapshot(repo, out, error);
}

std::unique_ptr<DataRepository> LoadSnapshot(std::istream& in, std::string* error) {
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  Reader r(data.data(), data.size());

  char magic[sizeof(kSnapshotMagic)] = {};
  for (auto& c : magic) c = static_cast<char>(r.u8());
  if (r.failed() || std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    Fail(error, "bad magic");
    return nullptr;
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    Fail(error, "unsupported version " + std::to_string(version) + " (want " +
                    std::to_string(kSnapshotVersion) + ")");
    return nullptr;
  }

  DatasetWindows windows;
  windows.heartbeats = GetInterval(r);
  windows.uptime = GetInterval(r);
  windows.capacity = GetInterval(r);
  windows.devices = GetInterval(r);
  windows.wifi = GetInterval(r);
  windows.traffic = GetInterval(r);

  auto repo = std::make_unique<DataRepository>(windows);

  const std::uint32_t home_count = r.u32();
  for (std::uint32_t i = 0; i < home_count && !r.failed(); ++i) {
    repo->register_home(GetHome(r));
  }

  const std::uint32_t kind_count = r.u32();
  if (r.failed() || kind_count != kRecordKinds) {
    Fail(error, "kind count mismatch: snapshot has " + std::to_string(kind_count) + ", build has " +
                    std::to_string(kRecordKinds));
    return nullptr;
  }

  bool ok = true;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    if (!ok || r.failed()) return;
    const std::string kind = r.str();
    if (kind != Schema<T>::kKindName) {
      ok = Fail(error, "kind name mismatch: snapshot has '" + kind + "', build has '" +
                           Schema<T>::kKindName + "'");
      return;
    }
    constexpr std::uint32_t kFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;
    const std::uint32_t field_count = r.u32();
    if (field_count != kFields) {
      ok = Fail(error, std::string("field count mismatch for ") + Schema<T>::kKindName);
      return;
    }
    std::apply(
        [&](const auto&... field) {
          const auto check = [&](const char* want) {
            if (!ok) return;
            const std::string got = r.str();
            if (got != want) {
              ok = Fail(error, std::string("field name mismatch for ") + Schema<T>::kKindName +
                                   ": snapshot has '" + got + "', build has '" + want + "'");
            }
          };
          (check(field.name), ...);
        },
        Schema<T>::Fields());
    if (!ok) return;
    const std::uint64_t row_count = r.u64();
    for (std::uint64_t i = 0; i < row_count && !r.failed(); ++i) {
      T rec{};
      std::apply([&r, &rec](const auto&... field) { (r.value(rec.*(field.member)), ...); },
                 Schema<T>::Fields());
      repo->add(std::move(rec));
    }
  });

  if (!ok) return nullptr;
  if (r.failed()) {
    Fail(error, "truncated input");
    return nullptr;
  }
  if (!r.at_end()) {
    Fail(error, "trailing bytes after last data set");
    return nullptr;
  }
  return repo;
}

std::unique_ptr<DataRepository> LoadSnapshotFile(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Fail(error, "cannot open " + path);
    return nullptr;
  }
  return LoadSnapshot(in, error);
}

}  // namespace bismark::collect
