// Versioned binary snapshot of a DataRepository.
//
// Large runs persist and reload a repository without the CSV round-trip
// cost (formatting and parsing dominate the text path; see bench_micro's
// snapshot vs import entries). The row layout is derived from the same
// Schema<T>::Fields() lists as the CSV paths, so the snapshot cannot drift
// from the record definitions.
//
// Format (all integers little-endian):
//
//   magic    "BSMKSNAP"                                    8 bytes
//   version  u32 (kSnapshotVersion)
//   windows  6 intervals × 2 × i64 ms
//   homes    u32 count, then per home the HomeInfo fields
//   kinds    u32 count (kRecordKinds), then per kind:
//              kind name (length-prefixed string)
//              u32 field count, then each field name
//              u64 row count, then rows field-by-field (schema order)
//   crc      u32 CRC32C of every preceding byte (v2, DESIGN §12)
//
// Versioning rules: the header is self-describing — the loader verifies
// magic, version, kind names, and per-kind field names, and refuses a
// snapshot whose schema does not match the build reading it. Additive
// schema growth (a new kind appended to RecordTypes, a new field appended
// to a Fields() list) bumps kSnapshotVersion; readers stay strict about
// schema but keep every shipped version loadable: v1 (the pre-CRC format,
// same body with no trailer) and v2 both load here, and v3 — the columnar
// directory layout analyze prefers (collect/column_snapshot.h, DESIGN §14)
// — has its own reader.
//
// The loader checks magic, then version, then (v2) the trailing CRC32C
// before parsing anything else: a flipped bit or truncated tail fails
// closed with a checksum diagnostic instead of being decoded into
// plausible rows. SaveSnapshotFile writes through the injectable core::Io
// seam, so a full disk (real or injected) aborts with the errno instead of
// exiting 0.
#pragma once

#include <array>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "collect/repository.h"

namespace bismark::collect {

inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr char kSnapshotMagic[8] = {'B', 'S', 'M', 'K', 'S', 'N', 'A', 'P'};

/// Write the repository (windows, homes, every data set) to a stream.
/// Returns false and fills `error` on I/O failure.
bool SaveSnapshot(const DataRepository& repo, std::ostream& out, std::string* error = nullptr);
bool SaveSnapshotFile(const DataRepository& repo, const std::string& path,
                      std::string* error = nullptr);

/// Read a snapshot back into a fresh repository. Returns nullptr and fills
/// `error` on malformed input, a version mismatch, or schema drift between
/// the snapshot and this build.
std::unique_ptr<DataRepository> LoadSnapshot(std::istream& in, std::string* error = nullptr);
std::unique_ptr<DataRepository> LoadSnapshotFile(const std::string& path,
                                                 std::string* error = nullptr);

}  // namespace bismark::collect
