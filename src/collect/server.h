// The central collection server's heartbeat ingest.
//
// Heartbeats travel from each home to a single server (at Georgia Tech in
// the paper) over a best-effort path: individual packets are lost and
// never retransmitted (Section 3.2.2). A run of >= 10 lost minutes is
// indistinguishable from real downtime — the false-downtime risk the
// paper acknowledges, and our heartbeat-loss ablation bench quantifies.
#pragma once

#include "collect/records.h"
#include "collect/repository.h"
#include "collect/sink.h"
#include "core/intervals.h"
#include "core/rng.h"

namespace bismark::collect {

struct HeartbeatPathConfig {
  Duration period{Minutes(1)};
  /// I.i.d. per-heartbeat loss probability on the path to the server.
  double loss_prob{0.01};
  /// Gap threshold treated as downtime by the analysis (10 min).
  Duration downtime_threshold{Minutes(10)};
};

class CollectionServer {
 public:
  /// Received runs are written to `sink`: the live repository in serial
  /// runs, a per-shard IngestBatch in parallel ones.
  CollectionServer(RecordSink& sink, HeartbeatPathConfig config);

  /// Ingest a home's online timeline as received-heartbeat runs.
  ///
  /// When `simulate_individual_loss` is false (the default), runs map 1:1
  /// onto online intervals: with realistic loss rates the probability of
  /// >= 10 *consecutive* losses is p^10 (~1e-20 at p = 1 %), so false
  /// splits are statistically absent over a six-month study and we skip
  /// the per-minute coin flips. Setting it true performs the exact
  /// per-heartbeat simulation — used by tests and the loss ablation.
  void ingest_heartbeats(HomeId home, const IntervalSet& online, Rng rng,
                         bool simulate_individual_loss = false);

  [[nodiscard]] std::uint64_t heartbeats_received() const { return received_; }
  [[nodiscard]] std::uint64_t heartbeats_lost() const { return lost_; }
  [[nodiscard]] const HeartbeatPathConfig& config() const { return config_; }

 private:
  RecordSink& sink_;
  HeartbeatPathConfig config_;
  std::uint64_t received_{0};
  std::uint64_t lost_{0};

  void ingest_exact(HomeId home, const Interval& iv, Rng& rng, std::vector<Record>& staged);
};

}  // namespace bismark::collect
