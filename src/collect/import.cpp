#include "collect/import.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace bismark::collect {

namespace {
constexpr std::size_t kMaxErrors = 20;

void AddError(ImportReport& report, const std::string& file, std::size_t line,
              const std::string& reason) {
  if (report.errors.size() < kMaxErrors) {
    report.errors.push_back(file + ":" + std::to_string(line) + ": " + reason);
  }
}

std::size_t CountQuotes(const std::string& s) {
  return static_cast<std::size_t>(std::count(s.begin(), s.end(), '"'));
}

/// Generic record-by-record driver: checks the header then hands each data
/// row (already split into fields) to `row_fn`, which returns false on a
/// malformed row.
template <typename RowFn>
std::size_t Drive(std::istream& in, const std::string& file, const std::string& expected_header,
                  ImportReport& report, RowFn row_fn) {
  std::string record;
  if (!ReadCsvRecord(in, record)) {
    AddError(report, file, 0, "empty file");
    return 0;
  }
  if (record != expected_header) {
    AddError(report, file, 1, "unexpected header: " + record);
    return 0;
  }
  std::size_t imported = 0;
  std::size_t line_no = 1;
  while (ReadCsvRecord(in, record)) {
    const std::size_t first_line = line_no + 1;
    line_no = first_line + static_cast<std::size_t>(
                               std::count(record.begin(), record.end(), '\n'));
    if (record.empty()) continue;
    if (row_fn(ParseCsvLine(record))) {
      ++imported;
    } else {
      AddError(report, file, first_line, "malformed row");
    }
  }
  return imported;
}

/// Release-view import generated from Schema<T>::Release().
template <typename T>
std::size_t DriveReleaseCsv(DataRepository& repo, std::istream& in, ImportReport& report) {
  const auto& cols = Schema<T>::Release();
  std::string header;
  for (const auto& c : cols) {
    if (!header.empty()) header += ',';
    header += c.name;
  }
  const std::size_t n =
      Drive(in, Schema<T>::kCsvFile, header, report, [&](const std::vector<std::string>& f) {
        if (f.size() != cols.size()) return false;
        T rec{};
        for (std::size_t i = 0; i < cols.size(); ++i) {
          if (!cols[i].decode(f[i], rec)) return false;
        }
        repo.add(std::move(rec));
        return true;
      });
  report.by_kind[kRecordIndexOf<T>] += n;
  return n;
}
}  // namespace

bool ReadCsvRecord(std::istream& in, std::string& record) {
  record.clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  // RFC 4180 files terminate lines with CRLF; getline leaves the CR.
  const auto strip_cr = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };
  strip_cr(line);
  record = std::move(line);
  // An odd number of quote characters means a quoted field is still open
  // across a line break (quotes only appear as field delimiters or doubled
  // escapes), so keep consuming physical lines.
  std::size_t quotes = CountQuotes(record);
  while (quotes % 2 == 1 && std::getline(in, line)) {
    strip_cr(line);
    record += '\n';
    record += line;
    quotes += CountQuotes(line);
  }
  return true;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::size_t ImportHeartbeats(DataRepository& repo, std::istream& in, ImportReport& report) {
  return DriveReleaseCsv<HeartbeatRun>(repo, in, report);
}
std::size_t ImportUptime(DataRepository& repo, std::istream& in, ImportReport& report) {
  return DriveReleaseCsv<UptimeRecord>(repo, in, report);
}
std::size_t ImportCapacity(DataRepository& repo, std::istream& in, ImportReport& report) {
  return DriveReleaseCsv<CapacityRecord>(repo, in, report);
}
std::size_t ImportDevices(DataRepository& repo, std::istream& in, ImportReport& report) {
  return DriveReleaseCsv<DeviceCountRecord>(repo, in, report);
}
std::size_t ImportWifi(DataRepository& repo, std::istream& in, ImportReport& report) {
  return DriveReleaseCsv<WifiScanRecord>(repo, in, report);
}
std::size_t ImportTrafficFlows(DataRepository& repo, std::istream& in, ImportReport& report) {
  return DriveReleaseCsv<TrafficFlowRecord>(repo, in, report);
}

template <typename T>
std::size_t ImportDatasetCsv(DataRepository& repo, std::istream& in, ImportReport& report) {
  const std::size_t n = Drive(
      in, Schema<T>::kCsvFile, CsvHeader<T>(), report, [&](const std::vector<std::string>& f) {
        constexpr std::size_t kFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;
        if (f.size() != kFields) return false;
        T rec{};
        bool ok = true;
        std::size_t i = 0;
        std::apply(
            [&](const auto&... field) {
              ((ok = ok && CsvDecode(f[i++], rec.*(field.member))), ...);
            },
            Schema<T>::Fields());
        if (!ok) return false;
        repo.add(std::move(rec));
        return true;
      });
  report.by_kind[kRecordIndexOf<T>] += n;
  return n;
}

// One instantiation per registered record kind.
template std::size_t ImportDatasetCsv<HeartbeatRun>(DataRepository&, std::istream&,
                                                    ImportReport&);
template std::size_t ImportDatasetCsv<UptimeRecord>(DataRepository&, std::istream&,
                                                    ImportReport&);
template std::size_t ImportDatasetCsv<CapacityRecord>(DataRepository&, std::istream&,
                                                      ImportReport&);
template std::size_t ImportDatasetCsv<DeviceCountRecord>(DataRepository&, std::istream&,
                                                         ImportReport&);
template std::size_t ImportDatasetCsv<WifiScanRecord>(DataRepository&, std::istream&,
                                                      ImportReport&);
template std::size_t ImportDatasetCsv<TrafficFlowRecord>(DataRepository&, std::istream&,
                                                         ImportReport&);
template std::size_t ImportDatasetCsv<ThroughputMinute>(DataRepository&, std::istream&,
                                                        ImportReport&);
template std::size_t ImportDatasetCsv<DnsLogRecord>(DataRepository&, std::istream&,
                                                    ImportReport&);
template std::size_t ImportDatasetCsv<DeviceTrafficRecord>(DataRepository&, std::istream&,
                                                           ImportReport&);
template std::size_t ImportDatasetCsv<CgnEventRecord>(DataRepository&, std::istream&,
                                                      ImportReport&);

namespace {
template <typename ImportFn>
void ImportFileInto(ImportReport& report, const std::string& directory, const char* file,
                    ImportFn import_fn) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path(directory) / file;
  std::ifstream in(path);
  if (!in) {
    AddError(report, file, 0, "cannot open " + path.string());
    return;
  }
  import_fn(in);
}
}  // namespace

ImportReport ImportPublicDatasets(DataRepository& repo, const std::string& directory) {
  ImportReport report;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    if constexpr (Schema<T>::kHasRelease && Schema<T>::kPublicRelease) {
      ImportFileInto(report, directory, Schema<T>::kCsvFile,
                     [&](std::istream& in) { DriveReleaseCsv<T>(repo, in, report); });
    }
  });
  return report;
}

ImportReport ImportAllDatasets(DataRepository& repo, const std::string& directory) {
  ImportReport report;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    ImportFileInto(report, directory, Schema<T>::kCsvFile,
                   [&](std::istream& in) { ImportDatasetCsv<T>(repo, in, report); });
  });
  return report;
}

}  // namespace bismark::collect
