#include "collect/import.h"

#include <charconv>
#include <filesystem>
#include <fstream>

namespace bismark::collect {

namespace {
constexpr std::size_t kMaxErrors = 20;

void AddError(ImportReport& report, const std::string& file, std::size_t line,
              const std::string& reason) {
  if (report.errors.size() < kMaxErrors) {
    report.errors.push_back(file + ":" + std::to_string(line) + ": " + reason);
  }
}

bool ParseI64(const std::string& s, std::int64_t& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

/// Generic line-by-line driver: checks the header then hands each data row
/// (already split into fields) to `row_fn`, which returns false on a
/// malformed row.
template <typename RowFn>
std::size_t Drive(std::istream& in, const std::string& file, const std::string& expected_header,
                  ImportReport& report, RowFn row_fn) {
  std::string line;
  if (!std::getline(in, line)) {
    AddError(report, file, 0, "empty file");
    return 0;
  }
  if (line != expected_header) {
    AddError(report, file, 1, "unexpected header: " + line);
    return 0;
  }
  std::size_t imported = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (row_fn(ParseCsvLine(line))) {
      ++imported;
    } else {
      AddError(report, file, line_no, "malformed row");
    }
  }
  return imported;
}
}  // namespace

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::size_t ImportHeartbeats(DataRepository& repo, std::istream& in, ImportReport& report) {
  const std::size_t n = Drive(
      in, "heartbeats.csv", "home,run_start_ms,run_end_ms,heartbeats", report,
      [&](const std::vector<std::string>& f) {
        std::int64_t home, start, end, beats;
        if (f.size() != 4 || !ParseI64(f[0], home) || !ParseI64(f[1], start) ||
            !ParseI64(f[2], end) || !ParseI64(f[3], beats) || end <= start) {
          return false;
        }
        repo.add_heartbeat_run(
            HeartbeatRun{HomeId{static_cast<int>(home)}, TimePoint{start}, TimePoint{end}});
        return true;
      });
  report.heartbeat_runs += n;
  return n;
}

std::size_t ImportUptime(DataRepository& repo, std::istream& in, ImportReport& report) {
  const std::size_t n =
      Drive(in, "uptime.csv", "home,reported_ms,uptime_s", report,
            [&](const std::vector<std::string>& f) {
              std::int64_t home, reported;
              double uptime_s;
              if (f.size() != 3 || !ParseI64(f[0], home) || !ParseI64(f[1], reported) ||
                  !ParseDouble(f[2], uptime_s) || uptime_s < 0) {
                return false;
              }
              repo.add_uptime(UptimeRecord{HomeId{static_cast<int>(home)},
                                           TimePoint{reported}, Seconds(uptime_s)});
              return true;
            });
  report.uptime += n;
  return n;
}

std::size_t ImportCapacity(DataRepository& repo, std::istream& in, ImportReport& report) {
  const std::size_t n =
      Drive(in, "capacity.csv", "home,measured_ms,down_mbps,up_mbps", report,
            [&](const std::vector<std::string>& f) {
              std::int64_t home, measured;
              double down, up;
              if (f.size() != 4 || !ParseI64(f[0], home) || !ParseI64(f[1], measured) ||
                  !ParseDouble(f[2], down) || !ParseDouble(f[3], up)) {
                return false;
              }
              repo.add_capacity(CapacityRecord{HomeId{static_cast<int>(home)},
                                               TimePoint{measured}, Mbps(down), Mbps(up)});
              return true;
            });
  report.capacity += n;
  return n;
}

std::size_t ImportDevices(DataRepository& repo, std::istream& in, ImportReport& report) {
  const std::size_t n = Drive(
      in, "devices.csv",
      "home,sampled_ms,wired,wireless_24,wireless_5,unique_total,unique_24,unique_5", report,
      [&](const std::vector<std::string>& f) {
        std::int64_t home, sampled, wired, w24, w5, ut, u24, u5;
        if (f.size() != 8 || !ParseI64(f[0], home) || !ParseI64(f[1], sampled) ||
            !ParseI64(f[2], wired) || !ParseI64(f[3], w24) || !ParseI64(f[4], w5) ||
            !ParseI64(f[5], ut) || !ParseI64(f[6], u24) || !ParseI64(f[7], u5)) {
          return false;
        }
        DeviceCountRecord rec;
        rec.home = HomeId{static_cast<int>(home)};
        rec.sampled = TimePoint{sampled};
        rec.wired = static_cast<int>(wired);
        rec.wireless_24 = static_cast<int>(w24);
        rec.wireless_5 = static_cast<int>(w5);
        rec.unique_total = static_cast<int>(ut);
        rec.unique_24 = static_cast<int>(u24);
        rec.unique_5 = static_cast<int>(u5);
        repo.add_device_count(rec);
        return true;
      });
  report.device_counts += n;
  return n;
}

std::size_t ImportWifi(DataRepository& repo, std::istream& in, ImportReport& report) {
  const std::size_t n = Drive(
      in, "wifi.csv", "home,scanned_ms,band,channel,visible_aps,associated", report,
      [&](const std::vector<std::string>& f) {
        std::int64_t home, scanned, channel, aps, associated;
        if (f.size() != 6 || !ParseI64(f[0], home) || !ParseI64(f[1], scanned) ||
            !ParseI64(f[3], channel) || !ParseI64(f[4], aps) || !ParseI64(f[5], associated)) {
          return false;
        }
        wireless::Band band;
        if (f[2] == "2.4 GHz") {
          band = wireless::Band::k2_4GHz;
        } else if (f[2] == "5 GHz") {
          band = wireless::Band::k5GHz;
        } else {
          return false;
        }
        WifiScanRecord rec;
        rec.home = HomeId{static_cast<int>(home)};
        rec.scanned = TimePoint{scanned};
        rec.band = band;
        rec.channel = static_cast<int>(channel);
        rec.visible_aps = static_cast<int>(aps);
        rec.associated_clients = static_cast<int>(associated);
        repo.add_wifi_scan(rec);
        return true;
      });
  report.wifi_scans += n;
  return n;
}

ImportReport ImportPublicDatasets(DataRepository& repo, const std::string& directory) {
  namespace fs = std::filesystem;
  ImportReport report;
  const auto import_file = [&](const char* file, auto importer) {
    const fs::path path = fs::path(directory) / file;
    std::ifstream in(path);
    if (!in) {
      AddError(report, file, 0, "cannot open " + path.string());
      return;
    }
    importer(repo, in, report);
  };
  import_file("heartbeats.csv", ImportHeartbeats);
  import_file("uptime.csv", ImportUptime);
  import_file("capacity.csv", ImportCapacity);
  import_file("devices.csv", ImportDevices);
  import_file("wifi.csv", ImportWifi);
  return report;
}

}  // namespace bismark::collect
