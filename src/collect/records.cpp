#include "collect/records.h"

// Record types are currently header-only aggregates; this TU anchors the
// library and is the home for any future out-of-line record helpers.
