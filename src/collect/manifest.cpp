#include "collect/manifest.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "collect/binio.h"
#include "core/crc32c.h"

namespace bismark::collect {

namespace {

constexpr char kManifestMagic[8] = {'B', 'S', 'M', 'K', 'M', 'A', 'N', '2'};
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

enum RecordType : std::uint8_t {
  kConfigRecord = 1,
  kFileRecord = 2,
  kSectionRecord = 3,
  kShardDoneRecord = 4,
  kCheckpointRecord = 5,
};

void PutHomeInfo(BinWriter& w, const HomeInfo& home) {
  w.i32(home.id.value);
  w.str(home.country_code);
  w.u8(home.developed ? 1 : 0);
  w.i64(home.utc_offset.ms);
  w.u8(home.reports_uptime ? 1 : 0);
  w.u8(home.reports_devices ? 1 : 0);
  w.u8(home.reports_wifi ? 1 : 0);
  w.u8(home.consented_traffic ? 1 : 0);
  w.u8(home.has_always_wired ? 1 : 0);
  w.u8(home.has_always_wireless ? 1 : 0);
  w.f64(home.true_down_mbps);
  w.f64(home.true_up_mbps);
  w.i32(home.power_mode);
}

HomeInfo GetHomeInfo(BinReader& r) {
  HomeInfo home;
  home.id.value = r.i32();
  home.country_code = r.str();
  home.developed = r.u8() != 0;
  home.utc_offset.ms = r.i64();
  home.reports_uptime = r.u8() != 0;
  home.reports_devices = r.u8() != 0;
  home.reports_wifi = r.u8() != 0;
  home.consented_traffic = r.u8() != 0;
  home.has_always_wired = r.u8() != 0;
  home.has_always_wireless = r.u8() != 0;
  home.true_down_mbps = r.f64();
  home.true_up_mbps = r.f64();
  home.power_mode = r.i32();
  return home;
}

}  // namespace

std::uint64_t SchemaFingerprint() {
  // FNV-1a over kind names and field names in wire order: any rename,
  // reorder, or added field changes the fingerprint, and segments written
  // under a different one are refused at resume.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const char* s) {
    for (; *s != '\0'; ++s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s));
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;
  };
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    mix(Schema<T>::kKindName);
    std::apply([&](const auto&... field) { (mix(field.name), ...); }, Schema<T>::Fields());
  });
  return h;
}

// --- ManifestWriter ---------------------------------------------------------

void ManifestWriter::open(const std::string& path, bool fresh) {
  if (!out_.open(path, /*append=*/!fresh)) {
    throw std::runtime_error("spill: cannot open manifest: " + out_.error());
  }
  if (fresh) {
    if (!out_.write(kManifestMagic, sizeof kManifestMagic) || !out_.flush()) {
      throw std::runtime_error("spill: manifest header write failed: " + out_.error());
    }
  }
}

void ManifestWriter::append(std::uint8_t type, const std::string& payload) {
  std::string body;
  body.reserve(payload.size() + 1);
  body.push_back(static_cast<char>(type));
  body.append(payload);
  BinWriter w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.raw(body.data(), body.size());
  w.u32(core::Crc32c(body.data(), body.size()));
  // Flush per record: WAL ordering demands the record reach the OS before
  // anything that depends on it (e.g. a later shard-done for the same
  // shard) does.
  if (!out_.write(w.buffer()) || !out_.flush()) {
    throw std::runtime_error("spill: manifest append failed: " + out_.error());
  }
}

void ManifestWriter::config(const ManifestConfig& cfg) {
  BinWriter w;
  w.u32(cfg.spill_format);
  w.u64(cfg.schema_fingerprint);
  w.u64(cfg.budget_bytes);
  w.u32(cfg.workers);
  w.u32(cfg.generation);
  w.u32(cfg.shard_count);
  w.str(cfg.options_blob);
  append(kConfigRecord, w.buffer());
}

void ManifestWriter::file(std::uint32_t file_id, const std::string& name) {
  BinWriter w;
  w.u32(file_id);
  w.str(name);
  append(kFileRecord, w.buffer());
}

void ManifestWriter::section(const SectionRef& ref) {
  BinWriter w;
  w.u32(ref.kind);
  w.u32(ref.file);
  w.u64(ref.offset);
  w.u64(ref.bytes);
  w.u64(ref.rows);
  w.u32(ref.shard);
  w.u32(ref.run);
  w.u32(ref.crc);
  append(kSectionRecord, w.buffer());
}

void ManifestWriter::shard_done(std::uint32_t shard, const std::vector<HomeInfo>& homes) {
  BinWriter w;
  w.u32(shard);
  w.u32(static_cast<std::uint32_t>(homes.size()));
  for (const HomeInfo& home : homes) PutHomeInfo(w, home);
  append(kShardDoneRecord, w.buffer());
}

void ManifestWriter::checkpoint(const ManifestCheckpoint& ckpt) {
  BinWriter w;
  w.i64(ckpt.sim_clock_ms);
  w.u64(ckpt.shards_done);
  w.str(ckpt.sketch_blob);
  append(kCheckpointRecord, w.buffer());
}

void ManifestWriter::sync() {
  if (!out_.sync()) {
    throw std::runtime_error("spill: manifest fsync failed: " + out_.error());
  }
}

// --- replay -----------------------------------------------------------------

namespace {

struct Replay {
  bool has_config{false};
  ManifestConfig config;
  bool has_checkpoint{false};
  ManifestCheckpoint checkpoint;
  std::vector<std::string> files;
  /// Every committed section, all shards, tagged with the generation whose
  /// config record was in effect when it was appended. A shard's sections
  /// only count if their generation matches its shard-done record's: a
  /// shard dropped by one recovery and re-run by the next generation leaves
  /// stale earlier-generation section records behind, and pairing those
  /// with the later done record would duplicate the shard's rows.
  struct GenSection {
    std::uint32_t gen{0};
    SectionRef ref;
  };
  std::vector<GenSection> sections;
  struct DoneShard {
    std::uint32_t gen{0};
    std::vector<HomeInfo> homes;
  };
  std::map<std::uint32_t, DoneShard> shard_homes;
  std::uint32_t current_gen{0};  // generation of the last config record seen
  std::uint64_t keep_bytes{0};       // manifest prefix that replayed cleanly
  std::uint64_t truncated_bytes{0};  // torn tail past keep_bytes
  std::string torn_reason;           // why replay stopped early, if it did
};

/// Replay the manifest bytes. Returns false with *error only for "this is
/// not our manifest" conditions (bad magic on a non-torn header, config
/// conflicts); torn tails are normal and reported via result fields.
bool ReplayManifestBytes(const std::string& bytes, Replay* out, std::string* error) {
  if (bytes.size() < sizeof kManifestMagic) {
    // A kill during creation can tear the 8-byte header itself; an empty
    // or prefix-of-magic file is a torn manifest, not a foreign one.
    if (std::memcmp(bytes.data(), kManifestMagic, bytes.size()) != 0) {
      *error = "not a spill manifest (bad magic)";
      return false;
    }
    out->truncated_bytes = bytes.size();
    out->torn_reason = "manifest header torn";
    return true;
  }
  if (std::memcmp(bytes.data(), kManifestMagic, sizeof kManifestMagic) != 0) {
    *error = "not a spill manifest (bad magic)";
    return false;
  }
  std::size_t pos = sizeof kManifestMagic;
  const auto stop = [&](const std::string& why) {
    out->torn_reason = why;
    out->truncated_bytes = bytes.size() - pos;
    return true;
  };
  while (pos < bytes.size()) {
    out->keep_bytes = pos;
    if (bytes.size() - pos < 4) return stop("torn record length");
    const std::uint32_t len =
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos])) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + 1])) << 8) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + 2])) << 16) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos + 3])) << 24);
    if (len == 0 || len > kMaxRecordBytes) return stop("implausible record length");
    if (bytes.size() - pos < 4ull + len + 4ull) return stop("torn record");
    const char* body = bytes.data() + pos + 4;
    const char* crc_p = body + len;
    const std::uint32_t stored =
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(crc_p[0])) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(crc_p[1])) << 8) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(crc_p[2])) << 16) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(crc_p[3])) << 24);
    if (core::Crc32c(body, len) != stored) return stop("record CRC mismatch");

    BinReader r(body + 1, len - 1);
    switch (static_cast<std::uint8_t>(body[0])) {
      case kConfigRecord: {
        ManifestConfig cfg;
        cfg.spill_format = r.u32();
        cfg.schema_fingerprint = r.u64();
        cfg.budget_bytes = r.u64();
        cfg.workers = r.u32();
        cfg.generation = r.u32();
        cfg.shard_count = r.u32();
        cfg.options_blob = r.str();
        if (r.failed() || !r.at_end()) return stop("malformed config record");
        if (!out->has_config) {
          out->has_config = true;
          out->config = cfg;
        } else {
          if (cfg.schema_fingerprint != out->config.schema_fingerprint ||
              cfg.options_blob != out->config.options_blob ||
              cfg.shard_count != out->config.shard_count) {
            *error = "manifest config records disagree across generations";
            return false;
          }
          out->config.generation = std::max(out->config.generation, cfg.generation);
          out->config.workers = cfg.workers;
        }
        out->current_gen = cfg.generation;
        break;
      }
      case kFileRecord: {
        const std::uint32_t id = r.u32();
        std::string name = r.str();
        if (r.failed() || !r.at_end()) return stop("malformed file record");
        if (id != out->files.size()) return stop("file table ids out of order");
        out->files.push_back(std::move(name));
        break;
      }
      case kSectionRecord: {
        SectionRef ref;
        ref.kind = r.u32();
        ref.file = r.u32();
        ref.offset = r.u64();
        ref.bytes = r.u64();
        ref.rows = r.u64();
        ref.shard = r.u32();
        ref.run = r.u32();
        ref.crc = r.u32();
        if (r.failed() || !r.at_end() || ref.kind >= kRecordKinds ||
            ref.file >= out->files.size()) {
          return stop("malformed section record");
        }
        out->sections.push_back(Replay::GenSection{out->current_gen, ref});
        break;
      }
      case kShardDoneRecord: {
        const std::uint32_t shard = r.u32();
        const std::uint32_t count = r.u32();
        std::vector<HomeInfo> homes;
        homes.reserve(count);
        for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
          homes.push_back(GetHomeInfo(r));
        }
        if (r.failed() || !r.at_end()) return stop("malformed shard-done record");
        out->shard_homes[shard] = Replay::DoneShard{out->current_gen, std::move(homes)};
        break;
      }
      case kCheckpointRecord: {
        ManifestCheckpoint ckpt;
        ckpt.sim_clock_ms = r.i64();
        ckpt.shards_done = r.u64();
        ckpt.sketch_blob = r.str();
        if (r.failed() || !r.at_end()) return stop("malformed checkpoint record");
        out->has_checkpoint = true;
        out->checkpoint = ckpt;  // last checkpoint wins
        break;
      }
      default:
        return stop("unknown record type");
    }
    pos += 4ull + len + 4ull;
    out->keep_bytes = pos;
  }
  return true;
}

std::string SectionLabelForDiag(const std::string& path, const SectionRef& ref) {
  std::ostringstream os;
  os << "section kind=" << ref.kind << " shard=" << ref.shard << " run=" << ref.run
     << " file=" << path << " offset=" << ref.offset << " bytes=" << ref.bytes;
  return os.str();
}

bool LoadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Verify one committed section against the bytes on disk: framing fields,
/// body CRC32C, footer. Returns false with *why naming the first mismatch.
bool VerifySection(const std::string& path, const SectionRef& ref, std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *why = "cannot open segment file";
    return false;
  }
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  if (ref.offset < kSectionHeaderBytes ||
      ref.offset + ref.bytes + kSectionFooterBytes > file_size) {
    *why = "section extends past end of file (torn write)";
    return false;
  }
  char header[kSectionHeaderBytes];
  in.seekg(static_cast<std::streamoff>(ref.offset - kSectionHeaderBytes));
  in.read(header, sizeof header);
  const auto u32_at = [](const char* p) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
    }
    return v;
  };
  const auto u64_at = [&u32_at](const char* p) {
    return static_cast<std::uint64_t>(u32_at(p)) |
           (static_cast<std::uint64_t>(u32_at(p + 4)) << 32);
  };
  if (!in || u32_at(header) != kSectionMagic) {
    *why = "bad section magic";
    return false;
  }
  if (u32_at(header + 4) != ref.kind || u32_at(header + 8) != ref.shard ||
      u32_at(header + 12) != ref.run) {
    *why = "section header does not match its manifest record";
    return false;
  }
  std::uint32_t crc = 0;
  std::uint64_t left = ref.bytes;
  std::string chunk(1 << 20, '\0');
  while (left > 0) {
    const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(left, chunk.size()));
    in.read(chunk.data(), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n) {
      *why = "short read inside section body";
      return false;
    }
    crc = core::Crc32c(chunk.data(), n, crc);
    left -= n;
  }
  char footer[kSectionFooterBytes];
  in.read(footer, sizeof footer);
  if (!in) {
    *why = "truncated footer";
    return false;
  }
  if (crc != ref.crc) {
    std::ostringstream os;
    os << "body CRC32C mismatch (manifest 0x" << std::hex << ref.crc << ", file 0x" << crc
       << ")";
    *why = os.str();
    return false;
  }
  if (u64_at(footer) != ref.rows || u64_at(footer + 8) != ref.bytes ||
      u32_at(footer + 16) != ref.crc || u32_at(footer + 20) != kSectionEndMagic) {
    *why = "footer does not match its manifest record";
    return false;
  }
  return true;
}

}  // namespace

bool ReadManifestConfig(const std::string& dir, ManifestConfig* out, std::string* error) {
  const std::string path = dir + "/manifest.bsmkman";
  std::string bytes;
  if (!LoadFile(path, &bytes, error)) {
    *error = "no spill manifest at " + path;
    return false;
  }
  Replay replay;
  if (!ReplayManifestBytes(bytes, &replay, error)) return false;
  if (!replay.has_config) {
    *error = "spill manifest at " + path + " has no committed run config";
    return false;
  }
  *out = replay.config;
  return true;
}

bool RecoverSpillDir(const std::string& dir, SpillRecovery* out, std::string* error) {
  namespace fs = std::filesystem;
  const std::string manifest_path = dir + "/manifest.bsmkman";
  SpillRecovery rec;

  std::string bytes;
  std::string load_error;
  if (!LoadFile(manifest_path, &bytes, &load_error)) {
    // No manifest at all (kill before creation, or an empty dir): nothing
    // durable, every shard pending. The caller starts the run fresh.
    rec.diagnostics.push_back("no manifest found; treating directory as empty");
    *out = std::move(rec);
    return true;
  }

  Replay replay;
  if (!ReplayManifestBytes(bytes, &replay, error)) return false;

  if (!replay.torn_reason.empty()) {
    std::ostringstream os;
    os << "truncated torn manifest tail at offset " << replay.keep_bytes << " ("
       << replay.torn_reason << ", " << replay.truncated_bytes << " bytes dropped)";
    rec.diagnostics.push_back(os.str());
    rec.manifest_bytes_truncated = replay.truncated_bytes;
    std::error_code ec;
    fs::resize_file(manifest_path, replay.keep_bytes, ec);
    if (ec) {
      *error = "cannot truncate torn manifest tail: " + ec.message();
      return false;
    }
  }

  rec.has_config = replay.has_config;
  rec.config = replay.config;
  rec.has_checkpoint = replay.has_checkpoint;
  rec.checkpoint = replay.checkpoint;
  rec.files = replay.files;
  if (!replay.has_config) {
    rec.diagnostics.push_back("manifest has no committed run config; all shards pending");
    *out = std::move(rec);
    return true;
  }
  if (replay.config.spill_format != kSpillFormatVersion) {
    *error = "unsupported spill format version " + std::to_string(replay.config.spill_format);
    return false;
  }
  if (replay.config.schema_fingerprint != SchemaFingerprint()) {
    *error =
        "schema fingerprint mismatch: segments were written by an incompatible build and "
        "cannot be resumed";
    return false;
  }

  // Partition committed sections by shard; only shards with a shard-done
  // record can contribute (anything else was mid-flight at the crash).
  std::map<std::uint32_t, std::vector<SectionRef>> by_shard;
  std::uint64_t mid_flight = 0;
  for (const Replay::GenSection& gs : replay.sections) {
    const auto it = replay.shard_homes.find(gs.ref.shard);
    if (it != replay.shard_homes.end() && it->second.gen == gs.gen) {
      by_shard[gs.ref.shard].push_back(gs.ref);
    } else {
      // No shard-done record, or one from a different generation (the
      // shard was dropped by an earlier recovery and re-run later; these
      // are that earlier attempt's stale sections).
      ++mid_flight;
    }
  }
  if (mid_flight > 0) {
    std::ostringstream os;
    os << "dropped " << mid_flight << " committed sections from shards without a "
       << "same-generation shard-done record (mid-flight at a crash, or an earlier "
       << "generation's re-run shards); those shards' rows come from elsewhere";
    rec.diagnostics.push_back(os.str());
  }

  // Verify every section of every candidate shard. One bad section poisons
  // its whole shard: the shard re-runs from the deterministic generator,
  // which is the only way the merged byte stream stays exact.
  std::set<std::uint32_t> bad_shards;
  for (const auto& [shard, refs] : by_shard) {
    for (const SectionRef& ref : refs) {
      if (bad_shards.count(shard) != 0) break;
      const std::string path = dir + "/" + replay.files[ref.file];
      std::string why;
      if (VerifySection(path, ref, &why)) {
        ++rec.sections_verified;
      } else {
        ++rec.sections_quarantined;
        bad_shards.insert(shard);
        rec.diagnostics.push_back("quarantined " + SectionLabelForDiag(path, ref) + ": " +
                                  why + "; shard " + std::to_string(shard) + " will re-run");
      }
    }
  }
  rec.shards_dropped = bad_shards.size();

  for (const auto& [shard, refs] : by_shard) {
    if (bad_shards.count(shard) != 0) continue;
    rec.done_shards.push_back(shard);
    const auto& homes = replay.shard_homes.at(shard).homes;
    rec.homes.insert(rec.homes.end(), homes.begin(), homes.end());
    for (const SectionRef& ref : refs) rec.sections[ref.kind].push_back(ref);
  }

  // Truncate segment-file garbage past the last byte any kept section
  // references: un-manifested tails, dropped shards' runs, merge scratch.
  std::vector<std::uint64_t> keep_end(replay.files.size(), 0);
  for (const auto& kind_sections : rec.sections) {
    for (const SectionRef& ref : kind_sections) {
      keep_end[ref.file] =
          std::max(keep_end[ref.file], ref.offset + ref.bytes + kSectionFooterBytes);
    }
  }
  for (std::size_t i = 0; i < replay.files.size(); ++i) {
    const std::string path = dir + "/" + replay.files[i];
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec) continue;  // file never created (no kept sections, or it would have failed verify)
    if (size > keep_end[i]) {
      fs::resize_file(path, keep_end[i], ec);
      if (ec) {
        *error = "cannot truncate segment tail of " + path + ": " + ec.message();
        return false;
      }
      rec.segment_bytes_truncated += size - keep_end[i];
      std::ostringstream os;
      os << "truncated " << (size - keep_end[i]) << " uncommitted bytes from "
         << replay.files[i];
      rec.diagnostics.push_back(os.str());
    }
  }

  *out = std::move(rec);
  return true;
}

}  // namespace bismark::collect
