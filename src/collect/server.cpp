#include "collect/server.h"

#include <algorithm>

namespace bismark::collect {

CollectionServer::CollectionServer(RecordSink& sink, HeartbeatPathConfig config)
    : sink_(sink), config_(config) {}

namespace {
// First heartbeat tick at or after `t`.
TimePoint NextTick(TimePoint t, Duration period) {
  const std::int64_t p = period.ms;
  const std::int64_t q = (t.ms + p - 1) / p;
  return TimePoint{q * p};
}
}  // namespace

void CollectionServer::ingest_heartbeats(HomeId home, const IntervalSet& online, Rng rng,
                                         bool simulate_individual_loss) {
  // Runs are staged locally and handed to the sink in one bulk call per
  // home: a six-month timeline produces hundreds of runs under loss
  // simulation, and this keeps it to a single virtual dispatch.
  std::vector<Record> staged;
  for (const auto& iv : online.intervals()) {
    if (simulate_individual_loss) {
      ingest_exact(home, iv, rng, staged);
      continue;
    }
    const TimePoint first = NextTick(iv.start, config_.period);
    if (first >= iv.end) continue;
    const std::int64_t n = (iv.end - first).ms / config_.period.ms + 1;
    const auto expected_lost =
        static_cast<std::uint64_t>(static_cast<double>(n) * config_.loss_prob);
    lost_ += expected_lost;
    received_ += static_cast<std::uint64_t>(n) - std::min<std::uint64_t>(
                                                     expected_lost, static_cast<std::uint64_t>(n));
    staged.emplace_back(std::in_place_type<HeartbeatRun>, HeartbeatRun{home, first, iv.end});
  }
  if (!staged.empty()) sink_.add_records(std::move(staged));
}

void CollectionServer::ingest_exact(HomeId home, const Interval& iv, Rng& rng,
                                    std::vector<Record>& staged) {
  const std::int64_t threshold_beats = config_.downtime_threshold.ms / config_.period.ms;
  TimePoint run_start{};
  TimePoint last_received{};
  bool in_run = false;
  std::int64_t consecutive_lost = 0;

  for (TimePoint t = NextTick(iv.start, config_.period); t < iv.end; t += config_.period) {
    const bool delivered = !rng.bernoulli(config_.loss_prob);
    if (delivered) {
      ++received_;
      if (!in_run) {
        run_start = t;
        in_run = true;
      } else if (consecutive_lost >= threshold_beats) {
        // The gap was long enough to read as downtime: close the previous
        // run and open a new one.
        staged.emplace_back(std::in_place_type<HeartbeatRun>,
                            HeartbeatRun{home, run_start, last_received + config_.period});
        run_start = t;
      }
      last_received = t;
      consecutive_lost = 0;
    } else {
      ++lost_;
      if (in_run) ++consecutive_lost;
    }
  }
  if (in_run) {
    staged.emplace_back(std::in_place_type<HeartbeatRun>,
                        HeartbeatRun{home, run_start, last_received + config_.period});
  }
}

}  // namespace bismark::collect
