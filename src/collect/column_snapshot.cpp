#include "collect/column_snapshot.h"

#include <filesystem>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "collect/binio.h"
#include "collect/snapshot.h"
#include "core/crc32c.h"
#include "core/thread_pool.h"

namespace bismark::collect {

namespace {

using coldetail::LoadLe;
using coldetail::StoreLe;

// The meta file shares the v2 snapshot's framing for windows and homes;
// the Put/Get pairs are private to each format, so they are restated here.

void PutInterval(BinWriter& w, const Interval& ival) {
  w.i64(ival.start.ms);
  w.i64(ival.end.ms);
}

Interval GetInterval(BinReader& r) {
  Interval ival;
  ival.start.ms = r.i64();
  ival.end.ms = r.i64();
  return ival;
}

void PutHome(BinWriter& w, const HomeInfo& h) {
  w.i32(h.id.value);
  w.str(h.country_code);
  w.value(h.developed);
  w.i64(h.utc_offset.ms);
  w.value(h.reports_uptime);
  w.value(h.reports_devices);
  w.value(h.reports_wifi);
  w.value(h.consented_traffic);
  w.value(h.has_always_wired);
  w.value(h.has_always_wireless);
  w.f64(h.true_down_mbps);
  w.f64(h.true_up_mbps);
  w.i32(h.power_mode);
}

HomeInfo GetHome(BinReader& r) {
  HomeInfo h;
  h.id.value = r.i32();
  h.country_code = r.str();
  r.value(h.developed);
  h.utc_offset.ms = r.i64();
  r.value(h.reports_uptime);
  r.value(h.reports_devices);
  r.value(h.reports_wifi);
  r.value(h.consented_traffic);
  r.value(h.has_always_wired);
  r.value(h.has_always_wireless);
  h.true_down_mbps = r.f64();
  h.true_up_mbps = r.f64();
  h.power_mode = r.i32();
  return h;
}

[[noreturn]] void Throw(const std::string& why) { throw std::runtime_error("snapshot: " + why); }

/// One stripe's worth of buffered columns for kind T. `primary` holds the
/// raw fixed-width values (or the u32 cumulative end offsets for string
/// fields, whose payloads accumulate in `blob`). This is the writer's only
/// O(data) state, bounded by the stripe limits.
template <typename T>
struct StripeBuilder {
  static constexpr std::size_t kNumFields = TableView<T>::kNumFields;

  std::array<std::string, kNumFields> primary;
  std::array<std::string, kNumFields> blob;
  std::uint64_t rows{0};
  std::size_t bytes{0};

  void add(const T& row) {
    std::size_t f = 0;
    std::apply([&](const auto&... field) { (add_field(f++, row.*(field.member)), ...); },
               Schema<T>::Fields());
    ++rows;
  }

  template <typename V>
  void add_field(std::size_t f, const V& v) {
    if constexpr (std::is_same_v<V, std::string>) {
      blob[f].append(v);
      StoreLe<4>(primary[f], static_cast<std::uint32_t>(blob[f].size()));
      bytes += v.size() + 4;
    } else {
      ColumnCodec<V>::Store(primary[f], v);
      bytes += ColumnCodec<V>::kWidth;
    }
  }

  /// Frame and append every buffered column as one stripe of sections,
  /// then reset. `offset` tracks the file write position.
  ColumnStripeMeta flush_to(core::CheckedFile& file, std::uint64_t& offset,
                            std::size_t stripe_index) {
    ColumnStripeMeta sm;
    sm.rows = rows;
    const auto encodings = ColumnEncodings<T>();
    for (std::size_t f = 0; f < kNumFields; ++f) {
      std::string head;
      StoreLe<4>(head, kColumnSectionMagic);
      StoreLe<4>(head, static_cast<std::uint32_t>(f));
      StoreLe<4>(head, static_cast<std::uint32_t>(stripe_index));
      StoreLe<4>(head, encodings[f]);
      file.write(head);
      offset += head.size();

      ColumnSectionMeta sec;
      sec.body_offset = offset;
      sec.body_bytes = primary[f].size() + blob[f].size();
      sec.encoding = encodings[f];
      std::uint32_t crc = core::Crc32c(primary[f].data(), primary[f].size());
      crc = core::Crc32c(blob[f].data(), blob[f].size(), crc);
      sec.crc = crc;
      file.write(primary[f]);
      file.write(blob[f]);
      offset += sec.body_bytes;

      std::string foot;
      StoreLe<8>(foot, rows);
      StoreLe<8>(foot, sec.body_bytes);
      StoreLe<4>(foot, crc);
      StoreLe<4>(foot, kColumnSectionEndMagic);
      file.write(foot);
      offset += foot.size();

      const std::size_t pad = (8 - (offset % 8)) % 8;
      if (pad != 0) {
        static const char kZeros[8] = {};
        file.write(kZeros, pad);
        offset += pad;
      }
      primary[f].clear();
      blob[f].clear();
      sm.sections.push_back(sec);
    }
    rows = 0;
    bytes = 0;
    if (!file.ok()) Throw(file.error());
    return sm;
  }
};

/// Stream kind T out of `repo` into <dir>/<kind>.bsmkcol. Throws
/// std::runtime_error on any I/O failure (the parallel driver rethrows).
template <typename T>
ColumnKindMeta WriteKindColumns(const DataRepository& repo, const std::string& dir) {
  ColumnKindMeta meta;
  meta.rows = repo.row_count<T>();
  if (meta.rows == 0) return meta;
  meta.file = std::string(Schema<T>::kKindName) + kColumnFileSuffix;

  core::CheckedFile file;
  if (!file.open(dir + "/" + meta.file)) Throw(file.error());

  std::string header;
  StoreLe<4>(header, kColumnFileMagic);
  StoreLe<4>(header, static_cast<std::uint32_t>(kRecordIndexOf<T>));
  StoreLe<4>(header, static_cast<std::uint32_t>(TableView<T>::kNumFields));
  StoreLe<4>(header, 0);
  file.write(header);
  std::uint64_t offset = header.size();

  StripeBuilder<T> builder;
  repo.for_each_row<T>([&](const T& row) {
    builder.add(row);
    if (builder.rows >= kColumnStripeRows || builder.bytes >= kColumnStripeBytes) {
      meta.stripes.push_back(builder.flush_to(file, offset, meta.stripes.size()));
    }
  });
  if (builder.rows > 0) {
    meta.stripes.push_back(builder.flush_to(file, offset, meta.stripes.size()));
  }
  if (!file.sync() || !file.close()) Throw(file.error());
  return meta;
}

}  // namespace

bool SaveColumnSnapshot(const DataRepository& repo, const std::string& dir,
                        std::string* error, std::size_t workers) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why.rfind("snapshot: ", 0) == 0 ? why : "snapshot: " + why;
    return false;
  };
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return fail("cannot create " + dir + ": " + ec.message());

  // One task per kind; each owns its file, so output bytes are identical
  // at any worker count.
  std::array<ColumnKindMeta, kRecordKinds> kinds;
  std::vector<std::function<void()>> tasks;
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    tasks.push_back([&kinds, &repo, &dir] {
      kinds[kRecordIndexOf<T>] = WriteKindColumns<T>(repo, dir);
    });
  });
  try {
    bismark::ThreadPool pool(static_cast<int>(workers));
    pool.parallel_for(tasks.size(), [&tasks](std::size_t i, int) { tasks[i](); });
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  BinWriter w;
  w.raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.u32(kColumnSnapshotVersion);
  const DatasetWindows& windows = repo.windows();
  PutInterval(w, windows.heartbeats);
  PutInterval(w, windows.uptime);
  PutInterval(w, windows.capacity);
  PutInterval(w, windows.devices);
  PutInterval(w, windows.wifi);
  PutInterval(w, windows.traffic);
  w.u32(static_cast<std::uint32_t>(repo.homes().size()));
  for (const HomeInfo& home : repo.homes()) PutHome(w, home);
  w.u32(static_cast<std::uint32_t>(kRecordKinds));
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    w.str(Schema<T>::kKindName);
    constexpr std::uint32_t kFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;
    w.u32(kFields);
    std::apply([&w](const auto&... field) { (w.str(field.name), ...); }, Schema<T>::Fields());
    const ColumnKindMeta& km = kinds[kRecordIndexOf<T>];
    w.u64(km.rows);
    w.str(km.file);
    w.u32(static_cast<std::uint32_t>(km.stripes.size()));
    for (const ColumnStripeMeta& sm : km.stripes) {
      w.u64(sm.rows);
      for (const ColumnSectionMeta& sec : sm.sections) {
        w.u64(sec.body_offset);
        w.u64(sec.body_bytes);
        w.u32(sec.crc);
        w.u32(sec.encoding);
      }
    }
  });
  const std::uint32_t crc = core::Crc32c(w.buffer().data(), w.buffer().size());

  // Meta last, fsynced: a directory with a valid meta file is complete.
  core::CheckedFile file;
  if (!file.open(dir + "/" + kColumnMetaFile)) return fail(file.error());
  file.write(w.buffer());
  std::string trailer;
  StoreLe<4>(trailer, crc);
  file.write(trailer);
  if (!file.sync() || !file.close()) return fail(file.error());
  return true;
}

bool IsColumnSnapshotDir(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_directory(path, ec) &&
         std::filesystem::is_regular_file(path + "/" + kColumnMetaFile, ec);
}

std::shared_ptr<const ColumnSnapshot> ColumnSnapshot::Open(const std::string& dir,
                                                           std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = "snapshot: " + why;
    return std::shared_ptr<const ColumnSnapshot>();
  };

  core::MappedFile meta;
  std::string io_error;
  if (!meta.open(dir + "/" + kColumnMetaFile, &io_error)) return fail(io_error);
  const char* data = meta.data();
  const std::size_t size = meta.size();

  if (size < sizeof(kSnapshotMagic) ||
      std::memcmp(data, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return fail("bad magic");
  }
  constexpr std::size_t kHeaderBytes = sizeof(kSnapshotMagic) + sizeof(std::uint32_t);
  if (size < kHeaderBytes + sizeof(std::uint32_t)) return fail("truncated meta file");
  const std::uint32_t version = static_cast<std::uint32_t>(LoadLe<4>(data + sizeof(kSnapshotMagic)));
  if (version != kColumnSnapshotVersion) {
    return fail("unsupported version " + std::to_string(version) + " (want " +
                std::to_string(kColumnSnapshotVersion) + ")");
  }
  const std::size_t body_bytes = size - sizeof(std::uint32_t);
  const std::uint32_t stored_crc = static_cast<std::uint32_t>(LoadLe<4>(data + body_bytes));
  if (stored_crc != core::Crc32c(data, body_bytes)) {
    return fail("meta CRC32C mismatch (snapshot corrupted or truncated)");
  }

  std::shared_ptr<ColumnSnapshot> snap(new ColumnSnapshot());
  snap->dir_ = dir;

  BinReader r(data, body_bytes);
  for (std::size_t i = 0; i < kHeaderBytes; ++i) (void)r.u8();  // magic + version

  snap->windows_.heartbeats = GetInterval(r);
  snap->windows_.uptime = GetInterval(r);
  snap->windows_.capacity = GetInterval(r);
  snap->windows_.devices = GetInterval(r);
  snap->windows_.wifi = GetInterval(r);
  snap->windows_.traffic = GetInterval(r);

  const std::uint32_t home_count = r.u32();
  for (std::uint32_t i = 0; i < home_count && !r.failed(); ++i) {
    snap->homes_.push_back(GetHome(r));
  }

  const std::uint32_t kind_count = r.u32();
  if (r.failed() || kind_count != kRecordKinds) {
    return fail("kind count mismatch: snapshot has " + std::to_string(kind_count) +
                ", build has " + std::to_string(kRecordKinds));
  }

  bool ok = true;
  std::string why;
  const auto bad = [&ok, &why](const std::string& reason) {
    if (ok) {
      ok = false;
      why = reason;
    }
  };
  ForEachRecordType([&](auto tag) {
    using T = typename decltype(tag)::type;
    if (!ok || r.failed()) return;
    const std::string kind = r.str();
    if (kind != Schema<T>::kKindName) {
      bad("kind name mismatch: snapshot has '" + kind + "', build has '" +
          Schema<T>::kKindName + "'");
      return;
    }
    constexpr std::uint32_t kFields = std::tuple_size_v<decltype(Schema<T>::Fields())>;
    if (r.u32() != kFields) {
      bad(std::string("field count mismatch for ") + Schema<T>::kKindName);
      return;
    }
    std::apply(
        [&](const auto&... field) {
          const auto check = [&](const char* want) {
            if (!ok) return;
            if (r.str() != want) {
              bad(std::string("field name mismatch for ") + Schema<T>::kKindName);
            }
          };
          (check(field.name), ...);
        },
        Schema<T>::Fields());
    if (!ok) return;

    KindState& ks = snap->kinds_[kRecordIndexOf<T>];
    ks.meta.rows = r.u64();
    ks.meta.file = r.str();
    const std::uint32_t stripe_count = r.u32();
    const auto encodings = ColumnEncodings<T>();
    std::uint64_t rows_seen = 0;
    for (std::uint32_t s = 0; s < stripe_count && !r.failed() && ok; ++s) {
      ColumnStripeMeta sm;
      sm.rows = r.u64();
      rows_seen += sm.rows;
      for (std::uint32_t f = 0; f < kFields && !r.failed(); ++f) {
        ColumnSectionMeta sec;
        sec.body_offset = r.u64();
        sec.body_bytes = r.u64();
        sec.crc = r.u32();
        sec.encoding = r.u32();
        if (sec.encoding != encodings[f]) {
          bad(std::string("column encoding mismatch for ") + Schema<T>::kKindName);
          break;
        }
        const std::uint64_t want = sec.encoding == 0
                                       ? 4 * sm.rows  // offsets; blob length is free
                                       : sm.rows * sec.encoding;
        if (sec.encoding != 0 ? sec.body_bytes != want : sec.body_bytes < want) {
          bad(std::string("column size mismatch for ") + Schema<T>::kKindName);
          break;
        }
        sm.sections.push_back(sec);
      }
      ks.meta.stripes.push_back(std::move(sm));
    }
    if (ok && rows_seen != ks.meta.rows) {
      bad(std::string("stripe row total mismatch for ") + Schema<T>::kKindName);
    }
    if (ok && ks.meta.rows > 0 && ks.meta.file.empty()) {
      bad(std::string("missing column file name for ") + Schema<T>::kKindName);
    }
    snap->total_rows_ += ks.meta.rows;
  });

  if (!ok) return fail(why);
  if (r.failed()) return fail("truncated meta file");
  if (!r.at_end()) return fail("trailing bytes in meta file");
  return snap;
}

void ColumnSnapshot::ensure_kind_open(std::size_t kind) const {
  const KindState& ks = kinds_[kind];
  if (ks.opened.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(open_mu_);
  if (ks.opened.load(std::memory_order_relaxed)) return;

  const std::string path = dir_ + "/" + ks.meta.file;
  const auto corrupt = [&path](std::size_t stripe, std::size_t field, const std::string& why) {
    Throw("corrupt " + path + " stripe " + std::to_string(stripe) + " field " +
          std::to_string(field) + ": " + why);
  };

  std::string io_error;
  if (!ks.map.open(path, &io_error)) Throw(io_error);
  const char* data = ks.map.data();
  const std::size_t size = ks.map.size();

  if (size < kColumnFileHeaderBytes) Throw("corrupt " + path + ": truncated file header");
  if (LoadLe<4>(data) != kColumnFileMagic) Throw("corrupt " + path + ": bad file magic");
  if (LoadLe<4>(data + 4) != kind) Throw("corrupt " + path + ": kind index mismatch");
  const std::uint64_t field_count = LoadLe<4>(data + 8);

  std::uint64_t end = kColumnFileHeaderBytes;
  for (std::size_t s = 0; s < ks.meta.stripes.size(); ++s) {
    const ColumnStripeMeta& sm = ks.meta.stripes[s];
    if (sm.sections.size() != field_count) corrupt(s, 0, "field count mismatch");
    for (std::size_t f = 0; f < sm.sections.size(); ++f) {
      const ColumnSectionMeta& sec = sm.sections[f];
      if (sec.body_offset < kColumnFileHeaderBytes + kColumnSectionHeaderBytes ||
          sec.body_offset + sec.body_bytes + kColumnSectionFooterBytes > size) {
        corrupt(s, f, "section out of bounds (truncated file?)");
      }
      const char* head = data + sec.body_offset - kColumnSectionHeaderBytes;
      if (LoadLe<4>(head) != kColumnSectionMagic) corrupt(s, f, "bad section magic");
      if (LoadLe<4>(head + 4) != f) corrupt(s, f, "field index mismatch");
      if (LoadLe<4>(head + 8) != s) corrupt(s, f, "stripe index mismatch");
      if (LoadLe<4>(head + 12) != sec.encoding) corrupt(s, f, "encoding mismatch");
      const char* foot = data + sec.body_offset + sec.body_bytes;
      if (LoadLe<8>(foot) != sm.rows) corrupt(s, f, "row count mismatch");
      if (LoadLe<8>(foot + 8) != sec.body_bytes) corrupt(s, f, "body size mismatch");
      if (LoadLe<4>(foot + 20) != kColumnSectionEndMagic) corrupt(s, f, "bad end magic");
      const std::uint32_t crc = core::Crc32c(data + sec.body_offset, sec.body_bytes);
      if (crc != sec.crc || crc != static_cast<std::uint32_t>(LoadLe<4>(foot + 16))) {
        corrupt(s, f, "CRC32C mismatch");
      }
      if (sec.encoding == 0 && sm.rows > 0) {
        // String section: the final cumulative offset must equal the blob
        // length, or views would run off the mapped bytes.
        const std::uint64_t blob_bytes = sec.body_bytes - 4 * sm.rows;
        const std::uint64_t last = LoadLe<4>(data + sec.body_offset + 4 * (sm.rows - 1));
        if (last != blob_bytes) corrupt(s, f, "string offsets inconsistent with blob");
      }
      std::uint64_t section_end = sec.body_offset + sec.body_bytes + kColumnSectionFooterBytes;
      section_end += (8 - (section_end % 8)) % 8;
      if (section_end > end) end = section_end;
    }
  }
  if (end != size) Throw("corrupt " + path + ": trailing bytes past last section");

  ks.opened.store(true, std::memory_order_release);
}

std::unique_ptr<DataRepository> OpenColumnSnapshot(const std::string& dir,
                                                   std::string* error) {
  std::shared_ptr<const ColumnSnapshot> snap = ColumnSnapshot::Open(dir, error);
  if (snap == nullptr) return nullptr;
  auto repo = std::make_unique<DataRepository>(snap->windows());
  for (const HomeInfo& home : snap->homes()) repo->register_home(home);
  repo->attach_columns(std::move(snap));
  return repo;
}

// --- repository streaming seam ----------------------------------------------

template <typename T>
void ForEachColumnRow(const ColumnSnapshot& snap, const std::function<void(const T&)>& fn) {
  snap.for_each_row<T>(fn);
}

std::size_t ColumnRowCount(const ColumnSnapshot& snap, std::size_t kind) {
  return static_cast<std::size_t>(snap.rows_of_kind(kind));
}

std::size_t ColumnTotalRows(const ColumnSnapshot& snap) {
  return static_cast<std::size_t>(snap.total_rows());
}

#define BISMARK_COLUMN_INSTANTIATE(T) \
  template void ForEachColumnRow<T>(const ColumnSnapshot&, const std::function<void(const T&)>&);

BISMARK_COLUMN_INSTANTIATE(HeartbeatRun)
BISMARK_COLUMN_INSTANTIATE(UptimeRecord)
BISMARK_COLUMN_INSTANTIATE(CapacityRecord)
BISMARK_COLUMN_INSTANTIATE(DeviceCountRecord)
BISMARK_COLUMN_INSTANTIATE(WifiScanRecord)
BISMARK_COLUMN_INSTANTIATE(TrafficFlowRecord)
BISMARK_COLUMN_INSTANTIATE(ThroughputMinute)
BISMARK_COLUMN_INSTANTIATE(DnsLogRecord)
BISMARK_COLUMN_INSTANTIATE(DeviceTrafficRecord)
BISMARK_COLUMN_INSTANTIATE(CgnEventRecord)

#undef BISMARK_COLUMN_INSTANTIATE

}  // namespace bismark::collect
