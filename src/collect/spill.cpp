#include "collect/spill.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <queue>
#include <stdexcept>
#include <utility>

namespace bismark::collect {

// --- SegmentLog -------------------------------------------------------------

void SegmentLog::ensure_open() {
  if (!out_.is_open()) {
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_) throw std::runtime_error("spill: cannot open segment file " + path_);
  }
}

SectionRef SegmentLog::append(std::uint32_t shard, std::uint32_t run, std::uint64_t rows,
                              const std::string& bytes) {
  begin_section();
  write(bytes.data(), bytes.size());
  return end_section(shard, run, rows);
}

void SegmentLog::begin_section() {
  ensure_open();
  section_start_ = offset_;
}

void SegmentLog::write(const char* data, std::size_t n) {
  out_.write(data, static_cast<std::streamsize>(n));
  if (!out_) throw std::runtime_error("spill: write failed on " + path_);
  offset_ += n;
}

SectionRef SegmentLog::end_section(std::uint32_t shard, std::uint32_t run, std::uint64_t rows) {
  SectionRef ref;
  ref.file = index_;
  ref.offset = section_start_;
  ref.bytes = offset_ - section_start_;
  ref.rows = rows;
  ref.shard = shard;
  ref.run = run;
  return ref;
}

void SegmentLog::sync() {
  if (out_.is_open()) out_.flush();
}

// --- SpillDir ---------------------------------------------------------------

SpillDir::SpillDir(SpillConfig config) : config_(std::move(config)) {
  std::filesystem::create_directories(config_.dir);
  const std::size_t workers = config_.workers ? config_.workers : 1;
  logs_.reserve(workers + 1);
  for (std::size_t i = 0; i < workers; ++i) {
    logs_.push_back(std::make_unique<SegmentLog>(
        config_.dir + "/seg-" + std::to_string(i) + ".bsmkseg", static_cast<std::uint32_t>(i)));
  }
  logs_.push_back(std::make_unique<SegmentLog>(config_.dir + "/seg-merge.bsmkseg",
                                               static_cast<std::uint32_t>(workers)));
}

SegmentLog& SpillDir::log_for_worker(std::size_t worker) {
  return *logs_[worker < logs_.size() - 1 ? worker : 0];
}

void SpillDir::register_section(std::size_t kind, SectionRef ref) {
  std::lock_guard<std::mutex> lock(mu_);
  rows_[kind] += ref.rows;
  sections_[kind].push_back(ref);
}

std::uint64_t SpillDir::total_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto n : rows_) total += n;
  return total;
}

std::vector<SectionRef> SpillDir::sections_of_kind(std::size_t kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sections_[kind];
}

std::uint64_t SpillDir::sections_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& v : sections_) total += v.size();
  return total;
}

void SpillDir::sync_all() {
  for (const auto& log : logs_) log->sync();
}

std::uint64_t SpillDir::bytes_spilled() const {
  std::uint64_t total = 0;
  for (const auto& log : logs_) total += log->bytes_written();
  return total;
}

// --- section cursor ---------------------------------------------------------

namespace {

/// Sequential decoder over one section: a small read-ahead buffer refilled
/// from the segment file, so a merge holds O(fan_in × buffer) memory no
/// matter how large the sections are.
class SectionCursor {
 public:
  static constexpr std::size_t kBufferBytes = 64 * 1024;

  SectionCursor(const std::string& path, const SectionRef& ref) : ref_(ref) {
    in_.open(path, std::ios::binary);
    if (!in_) throw std::runtime_error("spill: cannot reopen segment file " + path);
    in_.seekg(static_cast<std::streamoff>(ref.offset));
    remaining_file_ = ref.bytes;
  }

  /// Frame the next row; returns an empty view at section end.
  [[nodiscard]] std::pair<const char*, std::size_t> next_row() {
    if (rows_read_ == ref_.rows) return {nullptr, 0};
    ensure(4);
    std::uint32_t len = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    ensure(len);
    const char* row = buf_.data() + pos_;
    pos_ += len;
    ++rows_read_;
    return {row, len};
  }

 private:
  void ensure(std::size_t n) {
    if (buf_.size() - pos_ >= n) return;
    buf_.erase(0, pos_);
    pos_ = 0;
    const std::size_t have = buf_.size();
    std::size_t read_more = kBufferBytes;
    if (have + read_more < n) read_more = n - have;  // oversized row (long string)
    if (read_more > remaining_file_) read_more = static_cast<std::size_t>(remaining_file_);
    buf_.resize(have + read_more);
    in_.read(buf_.data() + have, static_cast<std::streamsize>(read_more));
    if (static_cast<std::size_t>(in_.gcount()) != read_more) {
      throw std::runtime_error("spill: short read in section");
    }
    remaining_file_ -= read_more;
    if (buf_.size() < n) throw std::runtime_error("spill: truncated section");
  }

  SectionRef ref_;
  std::ifstream in_;
  std::string buf_;
  std::size_t pos_{0};
  std::uint64_t rows_read_{0};
  std::uint64_t remaining_file_{0};  // section bytes not yet buffered
};

/// Canonical order of section *streams*: ties between rows with equal sort
/// keys resolve by the shard-plan index, then by flush sequence.
bool StreamOrder(const SectionRef& a, const SectionRef& b) {
  if (a.shard != b.shard) return a.shard < b.shard;
  return a.run < b.run;
}

/// Merge a run of sections (already in canonical stream order) into `emit`,
/// called once per row in merged order.
template <typename T>
void MergeGroup(SpillDir& dir, const std::vector<SectionRef>& sections, std::size_t begin,
                std::size_t end, const std::function<void(const T&)>& emit) {
  struct Head {
    T row;
    decltype(Schema<T>::SortKey(std::declval<const T&>())) key;
    std::size_t order;  // position in the canonical stream order
  };
  struct HeadGreater {
    bool operator()(const Head& a, const Head& b) const {
      if (a.key != b.key) return b.key < a.key;
      return a.order > b.order;
    }
  };

  std::vector<std::unique_ptr<SectionCursor>> cursors;
  cursors.reserve(end - begin);
  std::priority_queue<Head, std::vector<Head>, HeadGreater> heap;
  const auto advance = [&](std::size_t order) {
    auto [data, len] = cursors[order]->next_row();
    if (data == nullptr) return;
    Head head;
    BinReader r(data, len);
    DecodeRow(r, head.row);
    if (r.failed() || !r.at_end()) throw std::runtime_error("spill: corrupt row");
    head.key = Schema<T>::SortKey(head.row);
    head.order = order;
    heap.push(std::move(head));
  };

  for (std::size_t i = begin; i < end; ++i) {
    const SectionRef& ref = sections[i];
    cursors.push_back(
        std::make_unique<SectionCursor>(dir.log(ref.file).path(), ref));
    advance(cursors.size() - 1);
  }
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    emit(head.row);
    advance(head.order);
  }
}

}  // namespace

// --- hierarchical merge -----------------------------------------------------

template <typename T>
void ForEachSpilledRow(SpillDir& dir, const std::function<void(const T&)>& fn) {
  std::vector<SectionRef> sections = dir.sections_of_kind(kRecordIndexOf<T>);
  if (sections.empty()) return;
  std::sort(sections.begin(), sections.end(), StreamOrder);

  // Merge passes share the scratch log; exports are serial, but hold the
  // lock so concurrent readers cannot interleave scratch sections.
  std::lock_guard<std::mutex> lock(dir.merge_mutex());
  dir.sync_all();  // make every log's buffered tail visible to cursors

  const std::size_t fan_in = dir.config().merge_fan_in < 2 ? 2 : dir.config().merge_fan_in;
  std::uint32_t level = 0;
  while (sections.size() > fan_in) {
    // Reduce one level: merge adjacent groups of fan_in sections into single
    // scratch sections. Groups partition the canonical stream order into
    // contiguous ranges, so tagging each output with its group index keeps
    // ties ordered at the next level.
    std::vector<SectionRef> next;
    next.reserve(sections.size() / fan_in + 1);
    SegmentLog& scratch = dir.scratch_log();
    for (std::size_t begin = 0; begin < sections.size(); begin += fan_in) {
      const std::size_t end = std::min(begin + fan_in, sections.size());
      scratch.begin_section();
      std::uint64_t rows = 0;
      BinWriter row_w;
      std::string chunk;
      const std::function<void(const T&)> spool = [&](const T& row) {
        row_w.clear();
        EncodeRow(row_w, row);
        std::uint32_t len = static_cast<std::uint32_t>(row_w.size());
        char prefix[4];
        for (std::size_t i = 0; i < 4; ++i) prefix[i] = static_cast<char>((len >> (8 * i)) & 0xff);
        chunk.append(prefix, 4);
        chunk.append(row_w.buffer());
        ++rows;
        if (chunk.size() >= 1 << 20) {
          scratch.write(chunk.data(), chunk.size());
          chunk.clear();
        }
      };
      MergeGroup<T>(dir, sections, begin, end, spool);
      if (!chunk.empty()) scratch.write(chunk.data(), chunk.size());
      SectionRef ref =
          scratch.end_section(static_cast<std::uint32_t>(begin / fan_in), /*run=*/level, rows);
      next.push_back(ref);
    }
    scratch.sync();
    sections = std::move(next);
    ++level;
  }
  MergeGroup<T>(dir, sections, 0, sections.size(), fn);
}

// One instantiation per registered record kind.
#define BISMARK_SPILL_INSTANTIATE(T) \
  template void ForEachSpilledRow<T>(SpillDir&, const std::function<void(const T&)>&);
BISMARK_SPILL_INSTANTIATE(HeartbeatRun)
BISMARK_SPILL_INSTANTIATE(UptimeRecord)
BISMARK_SPILL_INSTANTIATE(CapacityRecord)
BISMARK_SPILL_INSTANTIATE(DeviceCountRecord)
BISMARK_SPILL_INSTANTIATE(WifiScanRecord)
BISMARK_SPILL_INSTANTIATE(TrafficFlowRecord)
BISMARK_SPILL_INSTANTIATE(ThroughputMinute)
BISMARK_SPILL_INSTANTIATE(DnsLogRecord)
BISMARK_SPILL_INSTANTIATE(DeviceTrafficRecord)
#undef BISMARK_SPILL_INSTANTIATE

}  // namespace bismark::collect
