#include "collect/spill.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "collect/manifest.h"
#include "core/crc32c.h"

namespace bismark::collect {

namespace {

void PutU32(char* out, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutU64(char* out, std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::string SectionLabel(const std::string& path, const SectionRef& ref) {
  std::ostringstream os;
  os << "section kind=" << ref.kind << " shard=" << ref.shard << " run=" << ref.run
     << " file=" << path << " offset=" << ref.offset << " bytes=" << ref.bytes;
  return os.str();
}

}  // namespace

// --- SegmentLog -------------------------------------------------------------

SegmentLog::SegmentLog(std::string path, std::uint32_t index)
    : path_(std::move(path)), index_(index) {}

void SegmentLog::ensure_open() {
  if (out_.is_open()) return;
  if (!out_.open(path_)) {
    throw std::runtime_error("spill: cannot open segment file: " + out_.error());
  }
}

void SegmentLog::check(bool ok, const char* op) {
  if (!ok) {
    throw std::runtime_error(std::string("spill: ") + op + " failed: " +
                             (out_.error().empty() ? path_ : out_.error()));
  }
}

SectionRef SegmentLog::append(std::uint32_t kind, std::uint32_t shard, std::uint32_t run,
                              std::uint64_t rows, const std::string& body) {
  begin_section(kind, shard, run);
  write(body.data(), body.size());
  return end_section(rows);
}

void SegmentLog::begin_section(std::uint32_t kind, std::uint32_t shard, std::uint32_t run) {
  ensure_open();
  char header[kSectionHeaderBytes];
  PutU32(header, kSectionMagic);
  PutU32(header + 4, kind);
  PutU32(header + 8, shard);
  PutU32(header + 12, run);
  check(out_.write(header, sizeof header), "section header write");
  offset_ += sizeof header;
  section_start_ = offset_;
  section_kind_ = kind;
  section_shard_ = shard;
  section_run_ = run;
  section_crc_ = 0;
}

void SegmentLog::write(const char* data, std::size_t n) {
  section_crc_ = core::Crc32c(data, n, section_crc_);
  check(out_.write(data, n), "write");
  offset_ += n;
}

SectionRef SegmentLog::end_section(std::uint64_t rows) {
  SectionRef ref;
  ref.file = index_;
  ref.offset = section_start_;
  ref.bytes = offset_ - section_start_;
  ref.rows = rows;
  ref.shard = section_shard_;
  ref.run = section_run_;
  ref.kind = section_kind_;
  ref.crc = section_crc_;
  char footer[kSectionFooterBytes];
  PutU64(footer, rows);
  PutU64(footer + 8, ref.bytes);
  PutU32(footer + 16, ref.crc);
  PutU32(footer + 20, kSectionEndMagic);
  check(out_.write(footer, sizeof footer), "section footer write");
  offset_ += sizeof footer;
  // Push the section to the OS before the caller commits it to the
  // manifest: a manifest record must never reference bytes that a crash of
  // this process could still lose.
  check(out_.flush(), "flush");
  return ref;
}

void SegmentLog::flush() {
  if (out_.is_open()) check(out_.flush(), "flush");
}

void SegmentLog::sync() {
  if (out_.is_open()) check(out_.sync(), "fsync");
}

// --- SpillDir ---------------------------------------------------------------

SpillDir::SpillDir(SpillConfig config) : config_(std::move(config)) {
  std::filesystem::create_directories(config_.dir);
  open_generation_logs();
  manifest_ = std::make_unique<ManifestWriter>();
  manifest_->open(config_.dir + "/manifest.bsmkman", /*fresh=*/true);
  for (std::uint32_t i = 0; i < file_names_.size(); ++i) manifest_->file(i, file_names_[i]);
}

SpillDir::SpillDir(SpillConfig config, const SpillRecovery& recovered)
    : config_(std::move(config)), generation_(recovered.config.generation + 1) {
  std::filesystem::create_directories(config_.dir);
  file_names_ = recovered.files;
  sections_ = recovered.sections;
  for (std::size_t kind = 0; kind < kRecordKinds; ++kind) {
    for (const SectionRef& ref : sections_[kind]) rows_[kind] += ref.rows;
  }
  const std::uint32_t first_new = static_cast<std::uint32_t>(file_names_.size());
  open_generation_logs();
  manifest_ = std::make_unique<ManifestWriter>();
  manifest_->open(config_.dir + "/manifest.bsmkman", /*fresh=*/false);
  for (std::uint32_t i = first_new; i < file_names_.size(); ++i) {
    manifest_->file(i, file_names_[i]);
  }
}

SpillDir::~SpillDir() = default;

void SpillDir::open_generation_logs() {
  const std::size_t workers = config_.workers ? config_.workers : 1;
  const std::uint32_t base = static_cast<std::uint32_t>(file_names_.size());
  const std::string gen = "seg-g" + std::to_string(generation_) + "-";
  logs_.reserve(workers + 1);
  for (std::size_t i = 0; i < workers; ++i) {
    file_names_.push_back(gen + "w" + std::to_string(i) + ".bsmkseg");
    logs_.push_back(std::make_unique<SegmentLog>(config_.dir + "/" + file_names_.back(),
                                                 base + static_cast<std::uint32_t>(i)));
  }
  file_names_.push_back(gen + "merge.bsmkseg");
  logs_.push_back(std::make_unique<SegmentLog>(config_.dir + "/" + file_names_.back(),
                                               base + static_cast<std::uint32_t>(workers)));
}

SegmentLog& SpillDir::log_for_worker(std::size_t worker) {
  return *logs_[worker < logs_.size() - 1 ? worker : 0];
}

std::string SpillDir::file_path(std::uint32_t file_index) const {
  return config_.dir + "/" + file_names_[file_index];
}

void SpillDir::register_section(std::size_t kind, SectionRef ref) {
  ref.kind = static_cast<std::uint32_t>(kind);
  std::lock_guard<std::mutex> lock(mu_);
  rows_[kind] += ref.rows;
  sections_[kind].push_back(ref);
  manifest_->section(ref);
}

void SpillDir::write_run_config(const ManifestConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  manifest_->config(cfg);
  manifest_->sync();
}

void SpillDir::record_shard_done(std::uint32_t shard, const std::vector<HomeInfo>& homes) {
  std::lock_guard<std::mutex> lock(mu_);
  manifest_->shard_done(shard, homes);
}

void SpillDir::write_checkpoint(const ManifestCheckpoint& ckpt) {
  std::lock_guard<std::mutex> lock(mu_);
  // fd-level fsync of every log: safe against the owning worker writing
  // concurrently (its buffered in-flight section is not manifested and
  // needs no durability yet; everything manifested was flushed to the OS
  // at end_section).
  for (const auto& log : logs_) {
    const int fd = log->fd();
    if (fd < 0) continue;
    std::string error;
    if (!core::Io::Active().sync(fd, log->path(), &error)) {
      throw std::runtime_error("spill: checkpoint fsync failed: " + error);
    }
  }
  manifest_->checkpoint(ckpt);
  manifest_->sync();
}

std::uint64_t SpillDir::total_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto n : rows_) total += n;
  return total;
}

std::vector<SectionRef> SpillDir::sections_of_kind(std::size_t kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sections_[kind];
}

std::uint64_t SpillDir::sections_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& v : sections_) total += v.size();
  return total;
}

void SpillDir::flush_all() {
  for (const auto& log : logs_) log->flush();
}

std::uint64_t SpillDir::bytes_spilled() const {
  std::uint64_t total = 0;
  for (const auto& log : logs_) total += log->bytes_written();
  return total;
}

// --- section cursor ---------------------------------------------------------

namespace {

/// Sequential decoder over one section: a small read-ahead buffer refilled
/// from the segment file, so a merge holds O(fan_in × buffer) memory no
/// matter how large the sections are. Verifies the v2 frame on open (header
/// fields must match the manifest's SectionRef) and the body CRC32C +
/// footer at exhaustion — every merge pass re-checks every byte it reads.
class SectionCursor {
 public:
  static constexpr std::size_t kBufferBytes = 64 * 1024;

  SectionCursor(std::string path, const SectionRef& ref, bool verify)
      : path_(std::move(path)), ref_(ref), verify_(verify) {
    in_.open(path_, std::ios::binary);
    if (!in_) throw std::runtime_error("spill: cannot reopen segment file " + path_);
    if (verify_) {
      if (ref.offset < kSectionHeaderBytes) {
        fail("header offset underflow");
      }
      char header[kSectionHeaderBytes];
      in_.seekg(static_cast<std::streamoff>(ref.offset - kSectionHeaderBytes));
      in_.read(header, sizeof header);
      if (static_cast<std::size_t>(in_.gcount()) != sizeof header) fail("short header read");
      if (GetU32(header) != kSectionMagic) fail("bad section magic");
      if (GetU32(header + 4) != ref.kind || GetU32(header + 8) != ref.shard ||
          GetU32(header + 12) != ref.run) {
        fail("section header does not match its manifest record");
      }
    } else {
      in_.seekg(static_cast<std::streamoff>(ref.offset));
    }
    remaining_file_ = ref.bytes;
  }

  /// Frame the next row; returns an empty view at section end (after the
  /// one-time CRC + footer verification).
  [[nodiscard]] std::pair<const char*, std::size_t> next_row() {
    if (rows_read_ == ref_.rows) {
      finish();
      return {nullptr, 0};
    }
    ensure(4);
    const std::uint32_t len = GetU32(buf_.data() + pos_);
    pos_ += 4;
    ensure(len);
    const char* row = buf_.data() + pos_;
    pos_ += len;
    ++rows_read_;
    return {row, len};
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("spill: corrupt " + SectionLabel(path_, ref_) + ": " + why);
  }

  void finish() {
    if (finished_) return;
    finished_ = true;
    if (!verify_) return;
    // Every body byte must be accounted for by the rows we decoded.
    if (remaining_file_ != 0 || pos_ != buf_.size()) {
      fail("body length does not match row framing");
    }
    if (crc_ != ref_.crc) {
      std::ostringstream os;
      os << "body CRC32C mismatch (expected 0x" << std::hex << ref_.crc << ", computed 0x"
         << crc_ << ")";
      fail(os.str());
    }
    char footer[kSectionFooterBytes];
    in_.read(footer, sizeof footer);
    if (static_cast<std::size_t>(in_.gcount()) != sizeof footer) fail("truncated footer");
    if (GetU64(footer) != ref_.rows || GetU64(footer + 8) != ref_.bytes ||
        GetU32(footer + 16) != ref_.crc) {
      fail("footer does not match its manifest record");
    }
    if (GetU32(footer + 20) != kSectionEndMagic) fail("bad section end magic");
  }

  void ensure(std::size_t n) {
    if (buf_.size() - pos_ >= n) return;
    buf_.erase(0, pos_);
    pos_ = 0;
    const std::size_t have = buf_.size();
    std::size_t read_more = kBufferBytes;
    if (have + read_more < n) read_more = n - have;  // oversized row (long string)
    if (read_more > remaining_file_) read_more = static_cast<std::size_t>(remaining_file_);
    buf_.resize(have + read_more);
    in_.read(buf_.data() + have, static_cast<std::streamsize>(read_more));
    if (static_cast<std::size_t>(in_.gcount()) != read_more) {
      fail("short read (file truncated mid-section)");
    }
    if (verify_) crc_ = core::Crc32c(buf_.data() + have, read_more, crc_);
    remaining_file_ -= read_more;
    if (buf_.size() < n) fail("row frame extends past the section body");
  }

  std::string path_;
  SectionRef ref_;
  bool verify_;
  std::ifstream in_;
  std::string buf_;
  std::size_t pos_{0};
  std::uint64_t rows_read_{0};
  std::uint64_t remaining_file_{0};  // section bytes not yet buffered
  std::uint32_t crc_{0};
  bool finished_{false};
};

/// Canonical order of section *streams*: ties between rows with equal sort
/// keys resolve by the shard-plan index, then by flush sequence.
bool StreamOrder(const SectionRef& a, const SectionRef& b) {
  if (a.shard != b.shard) return a.shard < b.shard;
  return a.run < b.run;
}

/// Merge a run of sections (already in canonical stream order) into `emit`,
/// called once per row in merged order.
template <typename T>
void MergeGroup(SpillDir& dir, const std::vector<SectionRef>& sections, std::size_t begin,
                std::size_t end, const std::function<void(const T&)>& emit) {
  struct Head {
    T row;
    decltype(Schema<T>::SortKey(std::declval<const T&>())) key;
    std::size_t order;  // position in the canonical stream order
  };
  struct HeadGreater {
    bool operator()(const Head& a, const Head& b) const {
      if (a.key != b.key) return b.key < a.key;
      return a.order > b.order;
    }
  };

  const bool verify = dir.config().verify_checksums;
  std::vector<std::unique_ptr<SectionCursor>> cursors;
  cursors.reserve(end - begin);
  std::priority_queue<Head, std::vector<Head>, HeadGreater> heap;
  const auto advance = [&](std::size_t order) {
    auto [data, len] = cursors[order]->next_row();
    if (data == nullptr) return;
    Head head;
    BinReader r(data, len);
    DecodeRow(r, head.row);
    if (r.failed() || !r.at_end()) throw std::runtime_error("spill: corrupt row");
    head.key = Schema<T>::SortKey(head.row);
    head.order = order;
    heap.push(std::move(head));
  };

  for (std::size_t i = begin; i < end; ++i) {
    const SectionRef& ref = sections[i];
    cursors.push_back(std::make_unique<SectionCursor>(dir.file_path(ref.file), ref, verify));
    advance(cursors.size() - 1);
  }
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    emit(head.row);
    advance(head.order);
  }
}

}  // namespace

// --- hierarchical merge -----------------------------------------------------

template <typename T>
void ForEachSpilledRow(SpillDir& dir, const std::function<void(const T&)>& fn) {
  std::vector<SectionRef> sections = dir.sections_of_kind(kRecordIndexOf<T>);
  if (sections.empty()) return;
  std::sort(sections.begin(), sections.end(), StreamOrder);

  // Merge passes share the scratch log, so the flush and any hierarchical
  // reduce happen under the merge lock — but the *final* merge below reads
  // committed, immutable section bytes through private cursors, so the lock
  // is dropped first. That is what lets the parallel per-kind export and
  // snapshot writers stream different kinds concurrently: at most one kind
  // reduces into scratch at a time, then they all merge in parallel.
  std::unique_lock<std::mutex> lock(dir.merge_mutex());
  dir.flush_all();  // make every log's buffered tail visible to cursors

  const std::size_t fan_in = dir.config().merge_fan_in < 2 ? 2 : dir.config().merge_fan_in;
  std::uint32_t level = 0;
  while (sections.size() > fan_in) {
    // Reduce one level: merge adjacent groups of fan_in sections into single
    // scratch sections. Groups partition the canonical stream order into
    // contiguous ranges, so tagging each output with its group index keeps
    // ties ordered at the next level.
    std::vector<SectionRef> next;
    next.reserve(sections.size() / fan_in + 1);
    SegmentLog& scratch = dir.scratch_log();
    for (std::size_t begin = 0; begin < sections.size(); begin += fan_in) {
      const std::size_t end = std::min(begin + fan_in, sections.size());
      scratch.begin_section(static_cast<std::uint32_t>(kRecordIndexOf<T>),
                            static_cast<std::uint32_t>(begin / fan_in), /*run=*/level);
      std::uint64_t rows = 0;
      BinWriter row_w;
      std::string chunk;
      const std::function<void(const T&)> spool = [&](const T& row) {
        row_w.clear();
        EncodeRow(row_w, row);
        std::uint32_t len = static_cast<std::uint32_t>(row_w.size());
        char prefix[4];
        PutU32(prefix, len);
        chunk.append(prefix, 4);
        chunk.append(row_w.buffer());
        ++rows;
        if (chunk.size() >= 1 << 20) {
          scratch.write(chunk.data(), chunk.size());
          chunk.clear();
        }
      };
      MergeGroup<T>(dir, sections, begin, end, spool);
      if (!chunk.empty()) scratch.write(chunk.data(), chunk.size());
      next.push_back(scratch.end_section(rows));
    }
    scratch.flush();
    sections = std::move(next);
    ++level;
  }
  // Committed sections never move once flushed (scratch appends only), so
  // the k-way merge itself needs no lock.
  lock.unlock();
  MergeGroup<T>(dir, sections, 0, sections.size(), fn);
}

// One instantiation per registered record kind.
#define BISMARK_SPILL_INSTANTIATE(T) \
  template void ForEachSpilledRow<T>(SpillDir&, const std::function<void(const T&)>&);
BISMARK_SPILL_INSTANTIATE(HeartbeatRun)
BISMARK_SPILL_INSTANTIATE(UptimeRecord)
BISMARK_SPILL_INSTANTIATE(CapacityRecord)
BISMARK_SPILL_INSTANTIATE(DeviceCountRecord)
BISMARK_SPILL_INSTANTIATE(WifiScanRecord)
BISMARK_SPILL_INSTANTIATE(TrafficFlowRecord)
BISMARK_SPILL_INSTANTIATE(ThroughputMinute)
BISMARK_SPILL_INSTANTIATE(DnsLogRecord)
BISMARK_SPILL_INSTANTIATE(DeviceTrafficRecord)
BISMARK_SPILL_INSTANTIATE(CgnEventRecord)
#undef BISMARK_SPILL_INSTANTIATE

}  // namespace bismark::collect
