// The machine-readable run report: one JSON document describing what a run
// measured, delivered and lost — the experiment artifact REPETITA-style
// reproducibility asks for (PAPERS.md).
//
// A report has two strata:
//   * the deterministic section — study parameters, the merged metrics
//     snapshot, and the upload conservation identity — is a pure function
//     of (seed, fault seed, roster) and is byte-identical at any worker
//     count, like the CSV exports;
//   * the volatile section ("wall") — wall-clock phase timings, worker
//     count, thread-pool utilization, engine event throughput — varies run
//     to run by nature. Setting include_volatile = false omits it, which
//     is what the determinism tests and the CI diff jobs use.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace bismark::obs {

inline constexpr const char* kRunReportSchema = "bismark-run-report/v1";

struct PhaseTiming {
  std::string name;
  double wall_s{0.0};
};

struct WorkerUtilization {
  int worker{0};
  std::uint64_t tasks{0};
  double busy_s{0.0};
};

/// Per-home upload conservation, summed over the deployment:
/// spooled == delivered + dropped + stranded must hold exactly.
struct Conservation {
  std::uint64_t spooled{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped{0};
  std::uint64_t stranded{0};

  [[nodiscard]] bool holds() const {
    return spooled == delivered + dropped + stranded;
  }
};

/// Pull the conservation identity out of the merged metrics (the
/// `bismark_upload_records_*_total` counters).
[[nodiscard]] Conservation ConservationFromMetrics(const MetricsSnapshot& metrics);

struct RunReport {
  std::string tool;  ///< e.g. "bismark_study run"

  // --- deterministic section -------------------------------------------
  std::uint64_t seed{0};
  std::uint64_t fault_seed{0};
  double roster_scale{1.0};
  std::size_t homes{0};
  std::size_t shards{0};
  bool traffic{false};
  MetricsSnapshot metrics;
  Conservation conservation;

  // --- volatile section (omitted when include_volatile is false) -------
  bool include_volatile{true};
  double wall_total_s{0.0};
  std::vector<PhaseTiming> phases;
  int workers{0};
  std::vector<WorkerUtilization> pool;
  double engine_events_per_s{0.0};

  void write_json(std::ostream& out) const;
};

}  // namespace bismark::obs
