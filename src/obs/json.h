// A small deterministic JSON writer for machine-readable artifacts.
//
// Hand-rolled on purpose: the container bakes in no JSON library, the
// artifacts (run reports, BENCH_*.json) are write-only from our side, and
// byte-determinism matters — so the writer controls float formatting
// (FormatMetricValue) and emits keys exactly in call order. Indented
// two-space output keeps the artifacts diffable in CI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace bismark::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object; must be followed by a value or container.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);

  // One-line conveniences for the common `"key": value` case.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// JSON string escaping (quotes, backslashes, control characters).
  [[nodiscard]] static std::string Escape(std::string_view s);

 private:
  enum class Ctx { kObject, kArray };
  struct Level {
    Ctx ctx;
    bool has_items{false};
  };

  std::ostream& out_;
  std::vector<Level> stack_;
  bool pending_key_{false};

  void prelude();  // comma/newline/indent before an item
  void indent();
};

}  // namespace bismark::obs
