#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "core/logging.h"

namespace bismark::obs {

namespace detail {

void HistoCell::observe(double x) {
  ++count;
  sum += x;
  const double width = (spec.hi - spec.lo) / static_cast<double>(spec.buckets);
  std::size_t bin;
  if (x >= spec.hi) {
    bin = spec.buckets;  // overflow
  } else if (x < spec.lo || width <= 0.0) {
    bin = 0;
  } else {
    bin = static_cast<std::size_t>((x - spec.lo) / width);
    if (bin >= spec.buckets) bin = spec.buckets - 1;  // fp edge at hi
  }
  ++bins[bin];
}

}  // namespace detail

Counter MetricsShard::counter(std::string_view name) {
  if (const auto it = counter_index_.find(name); it != counter_index_.end()) {
    return Counter(it->second);
  }
  counters_.push_back(detail::CounterCell{std::string(name), 0});
  detail::CounterCell* cell = &counters_.back();
  counter_index_.emplace(cell->name, cell);
  return Counter(cell);
}

Gauge MetricsShard::gauge(std::string_view name) {
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return Gauge(it->second);
  }
  gauges_.push_back(detail::GaugeCell{std::string(name), 0.0, false});
  detail::GaugeCell* cell = &gauges_.back();
  gauge_index_.emplace(cell->name, cell);
  return Gauge(cell);
}

Histo MetricsShard::histogram(std::string_view name, HistoSpec spec) {
  if (const auto it = histo_index_.find(name); it != histo_index_.end()) {
    return Histo(it->second);
  }
  if (spec.buckets == 0) spec.buckets = 1;
  detail::HistoCell cell;
  cell.name = std::string(name);
  cell.spec = spec;
  cell.bins.assign(spec.buckets + 1, 0);
  histos_.push_back(std::move(cell));
  detail::HistoCell* stored = &histos_.back();
  histo_index_.emplace(stored->name, stored);
  return Histo(stored);
}

double HistoData::bin_upper(std::size_t i) const {
  if (i >= spec.buckets) return std::numeric_limits<double>::infinity();
  const double width = (spec.hi - spec.lo) / static_cast<double>(spec.buckets);
  return spec.lo + width * static_cast<double>(i + 1);
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  const auto it = counters.find(std::string(name));
  return it != counters.end() ? it->second : fallback;
}

MetricsSnapshot MergeShards(std::span<const MetricsShard> shards) {
  MetricsSnapshot out;
  for (const MetricsShard& shard : shards) {
    for (const auto& c : shard.counters()) out.counters[c.name] += c.value;
    for (const auto& g : shard.gauges()) {
      if (!g.set) continue;
      const auto [it, inserted] = out.gauges.emplace(g.name, g.value);
      if (!inserted && g.value > it->second) it->second = g.value;
    }
    for (const auto& h : shard.histograms()) {
      auto [it, inserted] = out.histograms.try_emplace(h.name);
      HistoData& merged = it->second;
      if (inserted) {
        merged.spec = h.spec;
        merged.bins.assign(h.spec.buckets + 1, 0);
      } else if (merged.spec != h.spec) {
        BISMARK_LOG_WARN("obs", "histogram '%s' registered with conflicting bucket "
                         "specs; dropping one shard's samples", h.name.c_str());
        continue;
      }
      for (std::size_t i = 0; i < h.bins.size(); ++i) merged.bins[i] += h.bins[i];
      merged.count += h.count;
      merged.sum += h.sum;
    }
  }
  return out;
}

std::string FormatMetricValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

namespace {

/// Base name for TYPE lines: the part before any inline label block.
std::string_view BaseName(std::string_view name) {
  const auto brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

void TypeLine(std::ostream& out, std::string_view name, const char* type,
              std::string* last_base) {
  const std::string_view base = BaseName(name);
  if (*last_base == base) return;
  *last_base = std::string(base);
  out << "# TYPE " << base << ' ' << type << '\n';
}

}  // namespace

void WritePrometheus(const MetricsSnapshot& snapshot, std::ostream& out) {
  std::string last_base;
  for (const auto& [name, value] : snapshot.counters) {
    TypeLine(out, name, "counter", &last_base);
    out << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    TypeLine(out, name, "gauge", &last_base);
    out << name << ' ' << FormatMetricValue(value) << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    TypeLine(out, name, "histogram", &last_base);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bins.size(); ++i) {
      cumulative += h.bins[i];
      const double upper = h.bin_upper(i);
      out << name << "_bucket{le=\""
          << (std::isinf(upper) ? std::string("+Inf") : FormatMetricValue(upper))
          << "\"} " << cumulative << '\n';
    }
    out << name << "_sum " << FormatMetricValue(h.sum) << '\n';
    out << name << "_count " << h.count << '\n';
  }
}

}  // namespace bismark::obs
