#include "obs/json.h"

#include <cstdio>
#include <ostream>

#include "obs/metrics.h"

namespace bismark::obs {

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::prelude() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": on the same line
  }
  if (stack_.empty()) return;
  if (stack_.back().has_items) out_ << ',';
  out_ << '\n';
  indent();
  stack_.back().has_items = true;
}

void JsonWriter::begin_object() {
  prelude();
  out_ << '{';
  stack_.push_back({Ctx::kObject, false});
}

void JsonWriter::end_object() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n';
    indent();
  }
  out_ << '}';
  if (stack_.empty()) out_ << '\n';
}

void JsonWriter::begin_array() {
  prelude();
  out_ << '[';
  stack_.push_back({Ctx::kArray, false});
}

void JsonWriter::end_array() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n';
    indent();
  }
  out_ << ']';
}

void JsonWriter::key(std::string_view k) {
  prelude();
  out_ << '"' << Escape(k) << "\": ";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  prelude();
  out_ << '"' << Escape(s) << '"';
}

void JsonWriter::value(double v) {
  prelude();
  out_ << FormatMetricValue(v);
}

void JsonWriter::value(std::uint64_t v) {
  prelude();
  out_ << v;
}

void JsonWriter::value(std::int64_t v) {
  prelude();
  out_ << v;
}

void JsonWriter::value(bool v) {
  prelude();
  out_ << (v ? "true" : "false");
}

}  // namespace bismark::obs
