// Sim-time tracing: a bounded flight recorder for post-mortem dumps.
//
// Simulation components record compact events stamped in *simulated* time
// into a fixed-capacity ring buffer. The ring keeps only the last N events
// — exactly what a failing test wants to see ("what was the uploader doing
// right before the conservation audit broke?") without unbounded memory or
// any I/O on the hot path. Recording is O(1): write a POD into a
// preallocated slot. Like MetricsShard, a recorder belongs to one worker
// at a time; merge happens only at dump time, ordered by (sim time, seq).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "core/time.h"
#include "obs/metrics.h"  // BISMARK_OBS_ENABLED

namespace bismark::obs {

enum class TraceKind : std::uint16_t {
  kEngineEvent = 0,   ///< a sim event fired (a = engine seq)
  kFlushAttempt,      ///< uploader flush tick (a = queued, b = batch seq)
  kBatchDelivered,    ///< collector committed a batch (a = records, b = seq)
  kBatchDeduped,      ///< retransmission absorbed by the ingest gate (b = seq)
  kRetryArmed,        ///< backoff timer armed (a = attempt #, b = delay ms)
  kSpoolDrop,         ///< bounded spool discarded records (a = dropped total)
  kBackoffSpan,       ///< span: first failure .. successful delivery (a = attempts)
  kPhase,             ///< deployment stage marker (a = shard index)
  kCheckpoint,        ///< fleet checkpoint made durable (a = shards committed)
};

[[nodiscard]] const char* TraceKindName(TraceKind kind);

/// One recorded event. `sim_ms`/`end_ms` are simulated-time stamps;
/// instants carry sim_ms == end_ms, spans carry their extent.
struct TraceEvent {
  std::int64_t sim_ms{0};
  std::int64_t end_ms{0};
  TraceKind kind{TraceKind::kEngineEvent};
  std::int32_t subject{-1};  ///< home id, or -1 when not home-scoped
  std::uint64_t a{0};
  std::uint64_t b{0};
};

/// Fixed-capacity ring buffer of TraceEvents. record() overwrites the
/// oldest entry once full; events() returns oldest-to-newest.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void record(TraceEvent ev);
  void record(TraceKind kind, TimePoint at, std::int32_t subject, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    record(TraceEvent{at.ms, at.ms, kind, subject, a, b});
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Total events ever recorded (>= size() once the ring has wrapped).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::vector<TraceEvent> events() const;
  void clear();

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_{0};  // next write slot
  std::size_t size_{0};
  std::uint64_t recorded_{0};
};

/// Sim-time span helper: stamp the begin at construction, record one event
/// covering [begin, end] when closed. Closing twice is a no-op.
class SimSpan {
 public:
  SimSpan(FlightRecorder* recorder, TraceKind kind, TimePoint begin,
          std::int32_t subject)
      : recorder_(recorder), kind_(kind), begin_ms_(begin.ms), subject_(subject) {}

  void end(TimePoint at, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (recorder_ == nullptr) return;
    recorder_->record(TraceEvent{begin_ms_, at.ms, kind_, subject_, a, b});
    recorder_ = nullptr;
  }

 private:
  FlightRecorder* recorder_;
  TraceKind kind_;
  std::int64_t begin_ms_;
  std::int32_t subject_;
};

/// Human-readable dump of one recorder (oldest first).
void DumpFlightRecorder(const FlightRecorder& recorder, std::ostream& out);

/// Merge several recorders (e.g. one per worker) into one chronological
/// dump, ordered by (sim time, kind, subject). Null entries are skipped.
void DumpMergedFlightRecorders(std::span<const FlightRecorder* const> recorders,
                               std::ostream& out);

}  // namespace bismark::obs
