// Deterministic metrics for the measurement pipeline.
//
// The registry mirrors the sharded runner's own determinism contract: each
// shard of homes writes into its own MetricsShard, owned by exactly one
// worker at a time, so the hot path is a plain integer increment — no
// locks, no atomics, no contention. After the parallel phase the shards
// merge in shard-index order into a MetricsSnapshot whose entries sort by
// canonical metric name. Counters and histogram bins are integers (sums
// are order-independent), gauges merge by max, and histogram `sum` fields
// accumulate in the fixed shard order — so the rendered snapshot is
// byte-identical at any --workers count, the same guarantee the CSV
// exports already carry.
//
// Compile-out: building with -DBISMARK_OBS=OFF sets BISMARK_OBS_ENABLED=0,
// which removes every hot-path instrumentation site (engine event tracing,
// per-flush spool sampling, uploader trace events) at preprocessing time.
// The registry types themselves stay available, so the coarse once-per-home
// accounting that feeds home::UploadStats works in both builds.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#ifndef BISMARK_OBS_ENABLED
#define BISMARK_OBS_ENABLED 1
#endif

namespace bismark::obs {

/// Uniform-width bucket layout over [lo, hi); values below lo clamp into
/// the first bucket, values >= hi land in the overflow (+Inf) bucket.
struct HistoSpec {
  double lo{0.0};
  double hi{1.0};
  std::size_t buckets{10};

  [[nodiscard]] bool operator==(const HistoSpec&) const = default;
};

namespace detail {
struct CounterCell {
  std::string name;
  std::uint64_t value{0};
};
struct GaugeCell {
  std::string name;
  double value{0.0};
  bool set{false};
};
struct HistoCell {
  std::string name;
  HistoSpec spec;
  std::vector<std::uint64_t> bins;  // spec.buckets + 1 (last = overflow)
  std::uint64_t count{0};
  double sum{0.0};

  void observe(double x);
};
}  // namespace detail

/// Monotonic counter handle. Copyable, trivially cheap; incrementing a
/// default-constructed handle is a no-op (lets call sites skip null checks).
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->value += n;
  }
  [[nodiscard]] std::uint64_t value() const { return cell_ != nullptr ? cell_->value : 0; }

 private:
  friend class MetricsShard;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_{nullptr};
};

/// High-water-mark gauge: observe() keeps the maximum, and shards merge by
/// max — the only gauge semantic that is independent of shard interleaving.
class Gauge {
 public:
  Gauge() = default;
  void observe(double v) {
    if (cell_ == nullptr) return;
    if (!cell_->set || v > cell_->value) cell_->value = v;
    cell_->set = true;
  }
  [[nodiscard]] double value() const { return cell_ != nullptr ? cell_->value : 0.0; }

 private:
  friend class MetricsShard;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_{nullptr};
};

/// Fixed-bucket histogram handle.
class Histo {
 public:
  Histo() = default;
  void observe(double x) {
    if (cell_ != nullptr) cell_->observe(x);
  }
  [[nodiscard]] std::uint64_t count() const { return cell_ != nullptr ? cell_->count : 0; }

 private:
  friend class MetricsShard;
  explicit Histo(detail::HistoCell* cell) : cell_(cell) {}
  detail::HistoCell* cell_{nullptr};
};

/// One shard's metric store. Find-or-create is the cold path (a map
/// lookup); returned handles point at stable cells (deque storage), so the
/// hot path never touches the index again. Not thread-safe by design: a
/// shard belongs to one worker at a time, exactly like an IngestBatch.
class MetricsShard {
 public:
  MetricsShard() = default;
  MetricsShard(MetricsShard&&) = default;
  MetricsShard& operator=(MetricsShard&&) = default;

  /// Metric names may carry Prometheus-style labels inline, e.g.
  /// `bismark_spool_dropped_total{kind="wifi_scan"}`; the exporter splits
  /// the base name off at '{' for TYPE lines.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// The spec must agree across shards for the same name (checked at merge).
  Histo histogram(std::string_view name, HistoSpec spec);

  [[nodiscard]] const std::deque<detail::CounterCell>& counters() const { return counters_; }
  [[nodiscard]] const std::deque<detail::GaugeCell>& gauges() const { return gauges_; }
  [[nodiscard]] const std::deque<detail::HistoCell>& histograms() const { return histos_; }

 private:
  std::deque<detail::CounterCell> counters_;
  std::deque<detail::GaugeCell> gauges_;
  std::deque<detail::HistoCell> histos_;
  std::map<std::string, detail::CounterCell*, std::less<>> counter_index_;
  std::map<std::string, detail::GaugeCell*, std::less<>> gauge_index_;
  std::map<std::string, detail::HistoCell*, std::less<>> histo_index_;
};

/// Merged histogram data as exposed by a snapshot.
struct HistoData {
  HistoSpec spec;
  std::vector<std::uint64_t> bins;  // spec.buckets + 1 (last = overflow)
  std::uint64_t count{0};
  double sum{0.0};

  [[nodiscard]] double bin_upper(std::size_t i) const;  // +inf for overflow
};

/// The merged, canonically-ordered view of all shards. std::map keys give
/// the canonical name order; values are plain aggregates.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistoData> histograms;

  [[nodiscard]] std::uint64_t counter_or(std::string_view name,
                                         std::uint64_t fallback = 0) const;
  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Merge shards in index order (the caller's vector order — fixed by the
/// shard partition, never by the worker schedule). Histogram specs must
/// match per name; a mismatch keeps the first spec and drops the
/// conflicting shard's bins (and logs a warning) rather than corrupting
/// the layout.
[[nodiscard]] MetricsSnapshot MergeShards(std::span<const MetricsShard> shards);

/// Prometheus text exposition: `# TYPE` lines per base metric, histogram
/// rendered as cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
/// Deterministic formatting (fixed float rendering, canonical name order).
void WritePrometheus(const MetricsSnapshot& snapshot, std::ostream& out);

/// Fixed, locale-free rendering for metric values: integers exactly,
/// non-integers via "%.12g". Shared by the Prometheus and JSON exporters.
[[nodiscard]] std::string FormatMetricValue(double v);

}  // namespace bismark::obs
