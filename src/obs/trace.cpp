#include "obs/trace.h"

#include <algorithm>
#include <ostream>

namespace bismark::obs {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kEngineEvent: return "engine_event";
    case TraceKind::kFlushAttempt: return "flush_attempt";
    case TraceKind::kBatchDelivered: return "batch_delivered";
    case TraceKind::kBatchDeduped: return "batch_deduped";
    case TraceKind::kRetryArmed: return "retry_armed";
    case TraceKind::kSpoolDrop: return "spool_drop";
    case TraceKind::kBackoffSpan: return "backoff_span";
    case TraceKind::kPhase: return "phase";
    case TraceKind::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::record(TraceEvent ev) {
  ring_[head_] = ev;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++recorded_;
}

std::vector<TraceEvent> FlightRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest entry sits at head_ once wrapped, at 0 before.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
}

namespace {

void PrintEvent(const TraceEvent& ev, std::ostream& out) {
  out << FormatTime(TimePoint{ev.sim_ms});
  if (ev.end_ms != ev.sim_ms) {
    out << " .. " << FormatTime(TimePoint{ev.end_ms});
  }
  out << "  " << TraceKindName(ev.kind);
  if (ev.subject >= 0) out << "  home=" << ev.subject;
  out << "  a=" << ev.a << " b=" << ev.b << '\n';
}

}  // namespace

void DumpFlightRecorder(const FlightRecorder& recorder, std::ostream& out) {
  out << "flight recorder: " << recorder.size() << " of " << recorder.recorded()
      << " events retained (capacity " << recorder.capacity() << ")\n";
  for (const TraceEvent& ev : recorder.events()) PrintEvent(ev, out);
}

void DumpMergedFlightRecorders(std::span<const FlightRecorder* const> recorders,
                               std::ostream& out) {
  std::vector<TraceEvent> all;
  std::uint64_t recorded = 0;
  for (const FlightRecorder* rec : recorders) {
    if (rec == nullptr) continue;
    const auto events = rec->events();
    all.insert(all.end(), events.begin(), events.end());
    recorded += rec->recorded();
  }
  std::stable_sort(all.begin(), all.end(), [](const TraceEvent& x, const TraceEvent& y) {
    if (x.sim_ms != y.sim_ms) return x.sim_ms < y.sim_ms;
    if (x.kind != y.kind) return x.kind < y.kind;
    return x.subject < y.subject;
  });
  out << "flight recorder (merged): " << all.size() << " of " << recorded
      << " events retained\n";
  for (const TraceEvent& ev : all) PrintEvent(ev, out);
}

}  // namespace bismark::obs
