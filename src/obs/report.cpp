#include "obs/report.h"

#include <ostream>

#include "obs/json.h"

namespace bismark::obs {

Conservation ConservationFromMetrics(const MetricsSnapshot& metrics) {
  Conservation c;
  c.spooled = metrics.counter_or("bismark_upload_records_spooled_total");
  c.delivered = metrics.counter_or("bismark_upload_records_delivered_total");
  c.dropped = metrics.counter_or("bismark_upload_records_dropped_total");
  c.stranded = metrics.counter_or("bismark_upload_records_stranded_total");
  return c;
}

void RunReport::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", kRunReportSchema);
  w.kv("tool", tool);

  w.key("study");
  w.begin_object();
  w.kv("seed", seed);
  w.kv("fault_seed", fault_seed);
  w.kv("roster_scale", roster_scale);
  w.kv("homes", static_cast<std::uint64_t>(homes));
  w.kv("shards", static_cast<std::uint64_t>(shards));
  w.kv("traffic", traffic);
  w.end_object();

  w.key("conservation");
  w.begin_object();
  w.kv("spooled", conservation.spooled);
  w.kv("delivered", conservation.delivered);
  w.kv("dropped", conservation.dropped);
  w.kv("stranded", conservation.stranded);
  w.kv("holds", conservation.holds());
  w.end_object();

  w.key("metrics");
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : metrics.counters) w.kv(name, value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : metrics.gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : metrics.histograms) {
    w.key(name);
    w.begin_object();
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < h.bins.size(); ++i) {
      w.begin_array();
      const double upper = h.bin_upper(i);
      if (i + 1 == h.bins.size()) {
        w.value("+Inf");
      } else {
        w.value(upper);
      }
      w.value(h.bins[i]);
      w.end_array();
    }
    w.end_array();
    w.kv("sum", h.sum);
    w.kv("count", h.count);
    w.end_object();
  }
  w.end_object();
  w.end_object();

  if (include_volatile) {
    w.key("wall");
    w.begin_object();
    w.kv("total_s", wall_total_s);
    w.key("phases");
    w.begin_object();
    for (const auto& phase : phases) w.kv(phase.name, phase.wall_s);
    w.end_object();
    w.kv("workers", workers);
    w.key("pool");
    w.begin_array();
    for (const auto& u : pool) {
      w.begin_object();
      w.kv("worker", u.worker);
      w.kv("tasks", u.tasks);
      w.kv("busy_s", u.busy_s);
      w.end_object();
    }
    w.end_array();
    w.kv("engine_events_per_s", engine_events_per_s);
    w.end_object();
  }
  w.end_object();
}

}  // namespace bismark::obs
