// One home: router + access link + devices + radio neighbourhood.
//
// The household assembles every substrate around the gateway the way a
// real BISmark deployment would: the router replaces the home AP
// (Section 3.1), devices lease LAN addresses over DHCP, wireless clients
// associate per band, and the household's availability timeline gates all
// of it.
#pragma once

#include <memory>
#include <vector>

#include "bismark/anonymize.h"
#include "bismark/gateway.h"
#include "bismark/services.h"
#include "collect/records.h"
#include "collect/sink.h"
#include "home/availability.h"
#include "home/country.h"
#include "home/device.h"
#include "net/access_link.h"
#include "wireless/neighbor.h"

namespace bismark::home {

/// Construction knobs beyond the country profile.
struct HouseholdOptions {
  /// Force a device count (0 = draw from the country distribution).
  int forced_device_count{0};
  /// Minimum devices (traffic-consent homes need >= 3, Section 6.3).
  int min_devices{1};
  /// Mark this home as a bufferbloat case study (Fig. 16): its uplink can
  /// be overdriven and it hosts a bulk-upload workload.
  bool bufferbloat_case{false};
  /// Which Fig. 16 shape this case reproduces: 0 = constant saturation
  /// (the scientific-data uploader, 16a), 1 = diurnal bursts (16b).
  int bufferbloat_flavor{0};
  gateway::ConsentLevel consent{gateway::ConsentLevel::kBasic};
  /// NAT444 placement (disabled by default). Filled in by the deployment
  /// from its --cgn knobs; when enabled the home's WAN address comes from
  /// the CGN inside space (100.64/10, RFC 6598) instead of public space.
  gateway::CgnPlacement cgn;
};

/// A fully-assembled home network.
class Household final : public gateway::ClientCensus {
 public:
  /// Build deterministically from (country, seed): availability timeline
  /// over `study`, devices with presence over the union of the dataset
  /// windows, neighbourhood, access link and gateway.
  Household(collect::HomeId id, const CountryProfile& country, Interval study,
            const std::vector<Interval>& presence_windows, const gateway::Anonymizer& anonymizer,
            collect::RecordSink* sink, Rng rng, const HouseholdOptions& options = {});

  /// Redirect the gateway's collected records (used by the sharded runner
  /// to stage the traffic window into a per-shard batch).
  void rebind_sink(collect::RecordSink* sink) { gateway_->rebind_sink(sink); }

  // --- gateway::ClientCensus ---
  int wired_connected(TimePoint t) const override;
  int wireless_connected(wireless::Band band, TimePoint t) const override;
  int unique_seen_total(TimePoint since, TimePoint until) const override;
  int unique_seen_band(wireless::Band band, TimePoint since, TimePoint until) const override;

  /// Does some wired (resp. wireless) device remain connected through
  /// virtually all of `window`? (Table 5; `slack` tolerates reboots.)
  [[nodiscard]] bool has_always_connected(bool wired, Interval window,
                                          double slack = 0.005) const;

  [[nodiscard]] collect::HomeId id() const { return id_; }
  [[nodiscard]] const CountryProfile& country() const { return *country_; }
  [[nodiscard]] TimeZone tz() const { return tz_; }
  [[nodiscard]] RouterPowerMode power_mode() const { return mode_; }
  [[nodiscard]] const AvailabilityTimeline& timeline() const { return timeline_; }
  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  [[nodiscard]] const wireless::Neighborhood& neighborhood() const { return neighborhood_; }
  [[nodiscard]] net::AccessLink& link() { return *link_; }
  [[nodiscard]] const net::AccessLink& link() const { return *link_; }
  [[nodiscard]] gateway::Gateway& router() { return *gateway_; }
  [[nodiscard]] bool bufferbloat_case() const { return options_.bufferbloat_case; }
  [[nodiscard]] int bufferbloat_flavor() const { return options_.bufferbloat_flavor; }
  [[nodiscard]] gateway::ConsentLevel consent() const { return options_.consent; }

  /// The device carrying the household's primary usage (Fig. 17's
  /// dominant device); index into devices().
  [[nodiscard]] std::size_t primary_device() const { return primary_device_; }

  /// The channel the 2.4 GHz radio is configured for: channel 11 by
  /// default as BISmark ships, but some users reconfigure (Section 3.2.2),
  /// which moves which neighbours their scans can hear.
  [[nodiscard]] int channel_24() const { return channel_24_; }

  /// HomeInfo row for repository registration (flags filled by Deployment).
  [[nodiscard]] collect::HomeInfo make_info() const;

 private:
  collect::HomeId id_;
  const CountryProfile* country_;
  TimeZone tz_;
  RouterPowerMode mode_;
  AvailabilityTimeline timeline_;
  std::vector<Device> devices_;
  std::size_t primary_device_{0};
  int channel_24_{11};
  wireless::Neighborhood neighborhood_;
  std::unique_ptr<net::AccessLink> link_;
  std::unique_ptr<gateway::Gateway> gateway_;
  HouseholdOptions options_;

  // Lazily-built caches of presence ∩ router-on per device (census queries
  // run hourly over six weeks; recomputing the intersections each time
  // would dominate the run).
  mutable std::vector<IntervalSet> connected_all_;
  mutable std::vector<IntervalSet> connected_24_;
  mutable std::vector<IntervalSet> connected_5_;
  void ensure_connected_cache() const;
};

}  // namespace bismark::home
