// Country profiles: the Table 1 deployment roster plus the per-country
// behavioural parameters that drive availability (Section 4),
// infrastructure (Section 5) and access-link capacity differences.
//
// Parameter values are calibrated so the *reported* statistics of the
// paper emerge from simulation (see DESIGN.md §4 for the target list);
// GDP figures are 2011–2013 IMF purchasing-power-parity values, as used
// for the paper's developed/developing split and the Fig. 5 scatter.
#pragma once

#include <string>
#include <vector>

#include "core/time.h"
#include "wireless/neighbor.h"

namespace bismark::home {

/// How a household treats its router's power (Section 4.2).
enum class RouterPowerMode : int {
  kAlwaysOn = 0,  // Fig. 6a: on except reboots/outages
  kNightOff,      // powered down overnight some nights
  kAppliance,     // Fig. 6b: on only while in use (evenings / weekends)
};

struct CountryProfile {
  std::string code;   // ISO-ish 2-letter
  std::string name;
  bool developed{true};
  int router_count{1};          // Table 1
  double gdp_ppp_per_capita{0}; // international dollars
  Duration utc_offset{0};

  // --- Availability (Section 4) ---
  /// Router power-mode mixture; kAlwaysOn probability, kAppliance
  /// probability (kNightOff takes the remainder).
  double frac_always_on{0.9};
  double frac_appliance{0.02};
  /// ISP outage arrival rate (events of >= ~10 min per day, Poisson).
  double isp_outages_per_day{0.03};
  /// Outage duration: lognormal median (minutes) and sigma.
  double outage_median_minutes{30.0};
  double outage_sigma{1.0};

  // --- Infrastructure (Section 5) ---
  /// Mean unique devices per household (>= 1 drawn).
  double mean_devices{7.0};
  /// Scales each device type's always-on probability; < 1 in developing
  /// countries where devices are powered off to save electricity/data.
  double always_on_device_scale{1.0};
  wireless::NeighborhoodProfile neighborhood;

  // --- Access link ---
  double down_mbps_lo{8.0};
  double down_mbps_hi{60.0};
  double up_fraction_lo{0.08};  // uplink as a fraction of downlink
  double up_fraction_hi{0.35};
};

/// The full Table 1 roster: 19 countries, 126 routers, split 90/36
/// developed/developing by 2011 GDP-per-capita rank.
[[nodiscard]] const std::vector<CountryProfile>& StandardRoster();

/// Find a roster country by code; throws std::out_of_range if unknown.
[[nodiscard]] const CountryProfile& CountryByCode(const std::string& code);

/// Total routers across the roster (126).
[[nodiscard]] int TotalRouters();

}  // namespace bismark::home
