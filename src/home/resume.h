// Resumable-run options codec (DESIGN §12).
//
// A fleet run's spill manifest records everything a resume needs to rebuild
// the deployment: the content-determining DeploymentOptions travel as the
// manifest's opaque `options_blob`. collect/ compares the blob
// byte-for-byte across generations; this codec is the only place that
// knows what is inside it.
//
// The blob covers exactly the fields that determine record content and the
// roster/shard plan (seed, windows, roster shape, fault knobs, upload
// policy). Deliberately *not* included: worker count (any value reproduces
// the same bytes), the spill directory (the blob lives inside it), the
// memory budget (recorded separately in ManifestConfig.budget_bytes so the
// CLI can restore it without decoding), and the checkpoint cadence
// (durability policy, not content). RNG stream state is not persisted at
// all: every per-home stream is a pure function of (seed, home id), so a
// re-run shard regenerates identical draws from the seed alone.
#pragma once

#include <string>

#include "home/deployment.h"

namespace bismark::home {

/// Serialise the content-determining subset of `options` (versioned,
/// self-describing; see the header comment for what is covered).
[[nodiscard]] std::string EncodeResumableOptions(const DeploymentOptions& options);

/// Rebuild a DeploymentOptions from EncodeResumableOptions output. Fields
/// outside the blob (budget, workers, spill_dir, checkpoint cadence) keep
/// their defaults — the caller restores them from ManifestConfig / the
/// command line. Returns false with *error on a malformed or
/// incompatible-version blob.
bool DecodeResumableOptions(const std::string& blob, DeploymentOptions* out,
                            std::string* error);

}  // namespace bismark::home
