#include "home/device.h"

#include <algorithm>
#include <cmath>

namespace bismark::home {

using traffic::DeviceType;
using wireless::Band;

Device::Device(DeviceSpec spec, std::vector<PresenceInterval> presence) : spec_(spec) {
  std::sort(presence.begin(), presence.end(),
            [](const PresenceInterval& a, const PresenceInterval& b) {
              return a.when.start < b.when.start;
            });
  when_.reserve(presence.size());
  band_.reserve(presence.size());
  for (const auto& p : presence) {
    when_.push_back(p.when);
    band_.push_back(static_cast<std::uint8_t>(p.band));
    all_.add(p.when);
  }
}

std::vector<PresenceInterval> Device::presence() const {
  std::vector<PresenceInterval> out;
  out.reserve(when_.size());
  for (std::size_t i = 0; i < when_.size(); ++i) {
    out.push_back(PresenceInterval{when_[i], static_cast<Band>(band_[i])});
  }
  return out;
}

bool Device::wants_online(TimePoint t) const { return all_.contains(t); }

std::optional<Band> Device::band_at(TimePoint t) const {
  if (spec_.wired) return std::nullopt;
  // First containing interval wins (earlier-start bands take precedence
  // during overlap), exactly as the AoS scan did.
  for (std::size_t i = 0; i < when_.size(); ++i) {
    if (when_[i].contains(t)) return static_cast<Band>(band_[i]);
    if (when_[i].start > t) break;
  }
  return std::nullopt;
}

bool Device::ever_on_band(Band band) const {
  if (spec_.wired) return false;
  const auto b = static_cast<std::uint8_t>(band);
  return std::any_of(band_.begin(), band_.end(), [b](std::uint8_t x) { return x == b; });
}

double Device::presence_fraction(TimePoint lo, TimePoint hi) const {
  if (hi <= lo) return 0.0;
  Duration covered{0};
  for (const auto& w : when_) {
    const TimePoint s = std::max(w.start, lo);
    const TimePoint e = std::min(w.end, hi);
    if (e > s) covered += e - s;
  }
  return static_cast<double>(covered.ms) / static_cast<double>((hi - lo).ms);
}

IntervalSet Device::presence_on_band(Band band) const {
  IntervalSet out;
  if (spec_.wired) return out;
  const auto b = static_cast<std::uint8_t>(band);
  for (std::size_t i = 0; i < when_.size(); ++i) {
    if (band_[i] == b) out.add(when_[i]);
  }
  return out;
}

DeviceSpec DeviceFactory::DrawSpec(bool developed, double always_on_scale, Rng& rng) {
  DeviceSpec spec;
  spec.type = traffic::DrawDeviceType(developed, rng);
  const auto& traits = traffic::TraitsOf(spec.type);
  spec.vendor = traffic::DrawVendorClass(spec.type, rng);
  spec.mac = traffic::MintMac(spec.vendor, rng);
  spec.wired = rng.bernoulli(traits.wired_prob);
  spec.dual_band = !spec.wired && rng.bernoulli(traits.dual_band_prob);
  // Wireless devices rarely stay associated around the clock even when the
  // hardware could (roaming, sleep states) — Table 5's wired/wireless gap.
  const double medium_scale = spec.wired ? 1.0 : 0.35;
  spec.always_on = rng.bernoulli(traits.always_on_prob * always_on_scale * medium_scale);
  spec.hunger_scale = traits.hunger;
  return spec;
}

namespace {
Band DrawBand(const DeviceSpec& spec, Rng& rng) {
  if (!spec.dual_band) return Band::k2_4GHz;
  // Dual-band devices prefer the cleaner 5 GHz but fall back to 2.4
  // (range, AP steering) a third of the time.
  return rng.bernoulli(0.68) ? Band::k5GHz : Band::k2_4GHz;
}
}  // namespace

std::vector<PresenceInterval> DeviceFactory::GeneratePresence(const DeviceSpec& spec,
                                                              TimeZone tz, TimePoint begin,
                                                              TimePoint end, Rng& rng) {
  std::vector<PresenceInterval> presence;

  if (spec.always_on) {
    presence.push_back(PresenceInterval{Interval{begin, end}, DrawBand(spec, rng)});
    return presence;
  }

  const bool is_phone_like =
      spec.type == DeviceType::kSmartPhone || spec.type == DeviceType::kTablet;
  // Phones usually stay connected overnight (charging on the nightstand) —
  // the reason Fig. 13's night dip is shallower than the afternoon one.
  const double p_overnight = is_phone_like ? 0.75 : 0.25;
  const double p_evening = 0.85;
  const double p_morning = is_phone_like ? 0.45 : 0.30;
  const double p_weekday_daytime = 0.30;
  const double p_weekend_daytime = 0.70;
  // Some devices are "homebodies": a couch tablet, an idle smart TV — they
  // sit associated most of the day without being always-on. They set the
  // ~1.4-device floor of Fig. 13's weekday curve.
  const bool homebody = rng.bernoulli(0.22);

  auto add = [&](TimePoint s, TimePoint e) {
    if (e <= s) return;
    s = std::max(s, begin);
    e = std::min(e, end);
    if (e <= s) return;
    presence.push_back(PresenceInterval{Interval{s, e}, DrawBand(spec, rng)});
  };

  TimePoint day = tz.local_midnight(begin);
  while (day < end) {
    const Weekday wd = tz.local_weekday(day + Hours(12));
    // Homebody devices stay on the network through the day.
    if (homebody && rng.bernoulli(0.9)) {
      const double s = std::clamp(rng.normal(8.5, 1.0), 6.5, 11.0);
      const double len = std::clamp(rng.normal(14.5, 2.0), 9.0, 18.0);
      add(day + Hours(s), day + Hours(s + len));
    }
    // Morning window.
    if (rng.bernoulli(p_morning)) {
      const double s = std::clamp(rng.normal(7.3, 0.7), 5.5, 10.0);
      const double len = std::clamp(rng.lognormal(std::log(0.8), 0.5), 0.2, 3.0);
      add(day + Hours(s), day + Hours(s + len));
    }
    // Daytime window.
    const double p_day = IsWeekend(wd) ? p_weekend_daytime : p_weekday_daytime;
    if (rng.bernoulli(p_day)) {
      const double s = std::clamp(rng.normal(12.5, 2.0), 9.0, 17.0);
      const double len = std::clamp(rng.lognormal(std::log(2.2), 0.6), 0.3, 8.0);
      add(day + Hours(s), day + Hours(s + len));
    }
    // Evening window — the Fig. 13 peak.
    if (rng.bernoulli(p_evening)) {
      const double s = std::clamp(rng.normal(18.3, 1.3), 16.0, 22.0);
      const double len = std::clamp(rng.lognormal(std::log(2.8), 0.5), 0.5, 7.0);
      add(day + Hours(s), day + Hours(s + len));
    }
    // Overnight (spills into the next day).
    if (rng.bernoulli(p_overnight)) {
      const double s = std::clamp(rng.normal(22.5, 0.8), 21.0, 25.0);
      const double len = std::clamp(rng.normal(8.5, 1.2), 5.0, 11.0);
      add(day + Hours(s), day + Hours(s + len));
    }
    day += Days(1);
  }

  // Merge overlapping intervals with the same band to keep the schedule
  // tidy; overlapping different-band intervals are left as-is (the earlier
  // interval's band wins during overlap via band_at's first-match rule).
  std::sort(presence.begin(), presence.end(),
            [](const PresenceInterval& a, const PresenceInterval& b) {
              return a.when.start < b.when.start;
            });
  std::vector<PresenceInterval> merged;
  for (const auto& p : presence) {
    if (!merged.empty() && merged.back().band == p.band &&
        p.when.start <= merged.back().when.end) {
      merged.back().when.end = std::max(merged.back().when.end, p.when.end);
    } else {
      merged.push_back(p);
    }
  }
  return merged;
}

}  // namespace bismark::home
