#include "home/country.h"

#include <stdexcept>

namespace bismark::home {

namespace {
wireless::NeighborhoodProfile DevelopedHood() {
  wireless::NeighborhoodProfile p;
  // Fig. 11: developed countries show a bimodal neighbour-AP count with a
  // median around 20 *on the scan channel alone* — dense urban mode
  // dominates. Since the scanner only hears channels overlapping its own
  // (roughly a third of the 2.4 GHz population), the over-the-air totals
  // here are ~3x the reported medians.
  p.dense_prob = 0.68;
  p.dense_mean_24 = 60.0;
  p.sparse_mean_24 = 5.0;
  p.dense_mean_5 = 6.0;
  p.sparse_mean_5 = 1.2;
  return p;
}

wireless::NeighborhoodProfile DevelopingHood() {
  wireless::NeighborhoodProfile p;
  // Fig. 11: developing-country homes see a median of ~2 APs on the scan
  // channel, with a smaller dense mode (>3 APs).
  p.dense_prob = 0.30;
  p.dense_mean_24 = 14.0;
  p.sparse_mean_24 = 2.5;
  p.dense_mean_5 = 1.2;
  p.sparse_mean_5 = 0.3;
  return p;
}

CountryProfile Developed(std::string code, std::string name, int routers, double gdp,
                         double utc_hours) {
  CountryProfile p;
  p.code = std::move(code);
  p.name = std::move(name);
  p.developed = true;
  p.router_count = routers;
  p.gdp_ppp_per_capita = gdp;
  p.utc_offset = Hours(utc_hours);
  // Developed homes essentially never power-cycle the router (§4.2): the
  // night-off residue is ~1.5 %, so pooled between-downtime gaps stay
  // month-scale rather than being swamped by nightly power-downs.
  p.frac_always_on = 0.985;
  p.frac_appliance = 0.003;
  p.isp_outages_per_day = 0.024;
  p.outage_median_minutes = 26.0;
  p.outage_sigma = 1.0;
  p.mean_devices = 8.6;
  p.always_on_device_scale = 1.0;
  p.neighborhood = DevelopedHood();
  // Log-uniform 5-120 Mbps: mostly cable-era links with a slow-DSL tail —
  // the Fig. 15 homes that saturate are the ones where one HD stream fills
  // the pipe.
  p.down_mbps_lo = 7.0;
  p.down_mbps_hi = 120.0;
  p.up_fraction_lo = 0.08;
  p.up_fraction_hi = 0.40;
  return p;
}

CountryProfile Developing(std::string code, std::string name, int routers, double gdp,
                          double utc_hours) {
  CountryProfile p;
  p.code = std::move(code);
  p.name = std::move(name);
  p.developed = false;
  p.router_count = routers;
  p.gdp_ppp_per_capita = gdp;
  p.utc_offset = Hours(utc_hours);
  p.frac_always_on = 0.55;
  p.frac_appliance = 0.18;
  // Fig. 3: roughly half of developing homes stay under one downtime per
  // three days — the always-on half needs an ISP rate below 1/3 per day.
  p.isp_outages_per_day = 0.18;
  p.outage_median_minutes = 34.0;
  p.outage_sigma = 1.5;   // heavier tail (Fig. 4)
  p.mean_devices = 5.4;
  p.always_on_device_scale = 0.80;  // Table 5: far fewer always-on devices
  p.neighborhood = DevelopingHood();
  p.down_mbps_lo = 1.0;
  p.down_mbps_hi = 16.0;
  p.up_fraction_lo = 0.10;
  p.up_fraction_hi = 0.30;
  return p;
}

std::vector<CountryProfile> BuildRoster() {
  std::vector<CountryProfile> roster;

  // --- Developed (Table 1, left column; GDP PPP, IMF ~2012) ---
  roster.push_back(Developed("CA", "Canada", 2, 42500, -5));
  roster.push_back(Developed("DE", "Germany", 2, 41200, 1));
  roster.push_back(Developed("FR", "France", 1, 36100, 1));
  roster.push_back(Developed("GB", "United Kingdom", 12, 36900, 0));
  roster.push_back(Developed("IE", "Ireland", 2, 43800, 0));
  roster.push_back(Developed("IT", "Italy", 1, 34100, 1));
  roster.push_back(Developed("JP", "Japan", 2, 35800, 9));
  roster.push_back(Developed("NL", "Netherlands", 3, 43200, 1));
  roster.push_back(Developed("SG", "Singapore", 2, 61800, 8));
  roster.push_back(Developed("US", "United States", 63, 51700, -5));

  // --- Developing (Table 1, right column) ---
  roster.push_back(Developing("IN", "India", 12, 5100, 5.5));
  roster.push_back(Developing("PK", "Pakistan", 5, 4450, 5));
  roster.push_back(Developing("MY", "Malaysia", 1, 17100, 8));
  roster.push_back(Developing("ZA", "South Africa", 10, 11600, 2));
  roster.push_back(Developing("MX", "Mexico", 2, 16300, -6));
  roster.push_back(Developing("CN", "China", 2, 9200, 8));
  roster.push_back(Developing("BR", "Brazil", 2, 14600, -3));
  roster.push_back(Developing("ID", "Indonesia", 1, 4900, 7));
  roster.push_back(Developing("TH", "Thailand", 1, 9600, 7));

  // Per-country availability calibration beyond the regional defaults
  // (Section 4: US median on-fraction 98.25 %, IN 76 %, ZA 85.6 %;
  // Fig. 5: India and Pakistan have the most downtimes).
  for (auto& c : roster) {
    if (c.code == "US") {
      c.frac_always_on = 0.985;
      c.frac_appliance = 0.003;
      c.isp_outages_per_day = 0.028;
    } else if (c.code == "IN") {
      c.frac_always_on = 0.30;
      c.frac_appliance = 0.20;
      c.isp_outages_per_day = 0.35;
    } else if (c.code == "PK") {
      c.frac_always_on = 0.20;
      c.frac_appliance = 0.30;
      c.isp_outages_per_day = 0.65;  // load-shedding era
      c.outage_median_minutes = 45.0;
    } else if (c.code == "ZA") {
      // South Africa: outages are rarer than in IN/PK but long (rolling
      // blackouts), which is how the paper's ZA shows few downtimes yet a
      // median on-fraction of only 85.6 %.
      c.frac_always_on = 0.60;
      c.frac_appliance = 0.10;
      c.isp_outages_per_day = 0.18;
      c.outage_median_minutes = 360.0;
      c.outage_sigma = 1.3;
    } else if (c.code == "CN") {
      c.frac_always_on = 0.25;
      c.frac_appliance = 0.50;  // the Fig. 6b household
      c.isp_outages_per_day = 0.25;
    } else if (c.code == "MY") {
      c.frac_always_on = 0.60;
      c.isp_outages_per_day = 0.18;
    }
  }
  return roster;
}
}  // namespace

const std::vector<CountryProfile>& StandardRoster() {
  static const std::vector<CountryProfile> roster = BuildRoster();
  return roster;
}

const CountryProfile& CountryByCode(const std::string& code) {
  for (const auto& c : StandardRoster()) {
    if (c.code == code) return c;
  }
  throw std::out_of_range("unknown country code: " + code);
}

int TotalRouters() {
  int total = 0;
  for (const auto& c : StandardRoster()) total += c.router_count;
  return total;
}

}  // namespace bismark::home
