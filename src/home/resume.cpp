#include "home/resume.h"

#include "collect/binio.h"

namespace bismark::home {

namespace {

constexpr char kBlobMagic[4] = {'B', 'S', 'O', 'P'};
// v2: appended the NAT444 knobs (cgn, cgn_port_block,
// cgn_max_ports_per_home) — they shape the CgnEventRecord stream, so a
// resumed run must pin them. pcap_out stays out of the blob: it is an
// output destination, not record content (and resume rejects it anyway).
constexpr std::uint32_t kBlobVersion = 2;

void PutInterval(collect::BinWriter& w, const Interval& ival) {
  w.i64(ival.start.ms);
  w.i64(ival.end.ms);
}

Interval GetInterval(collect::BinReader& r) {
  Interval ival;
  ival.start.ms = r.i64();
  ival.end.ms = r.i64();
  return ival;
}

bool Fail(std::string* error, const std::string& reason) {
  if (error) *error = "resume options: " + reason;
  return false;
}

}  // namespace

std::string EncodeResumableOptions(const DeploymentOptions& o) {
  collect::BinWriter w;
  w.raw(kBlobMagic, sizeof(kBlobMagic));
  w.u32(kBlobVersion);

  w.u64(o.seed);
  w.u64(o.fault_seed);

  PutInterval(w, o.windows.heartbeats);
  PutInterval(w, o.windows.uptime);
  PutInterval(w, o.windows.capacity);
  PutInterval(w, o.windows.devices);
  PutInterval(w, o.windows.wifi);
  PutInterval(w, o.windows.traffic);

  w.i64(o.heartbeat.period.ms);
  w.f64(o.heartbeat.loss_prob);
  w.i64(o.heartbeat.downtime_threshold.ms);

  w.i32(o.traffic_homes);
  w.i32(o.bufferbloat_homes);
  w.value(o.run_traffic);
  w.f64(o.roster_scale);
  w.i32(o.homes);
  w.i32(o.churn_homes);

  w.f64(o.collector_outages_per_month);
  w.i64(o.collector_outage_mean.ms);

  w.u64(static_cast<std::uint64_t>(o.upload.spool_capacity));
  w.i64(o.upload.flush_period.ms);
  w.u64(static_cast<std::uint64_t>(o.upload.max_batch_records));
  w.i64(o.upload.backoff_base.ms);
  w.i64(o.upload.backoff_cap.ms);
  w.f64(o.upload.jitter_frac);
  w.i64(o.upload.drain_grace.ms);

  w.f64(o.upload_faults.upload_loss_prob);
  w.f64(o.upload_faults.ack_loss_prob);
  w.i64(o.upload_faults.base_latency.ms);
  w.i64(o.upload_faults.latency_jitter.ms);

  w.value(o.cgn);
  w.u32(o.cgn_port_block);
  w.u32(o.cgn_max_ports_per_home);

  return w.buffer();
}

bool DecodeResumableOptions(const std::string& blob, DeploymentOptions* out,
                            std::string* error) {
  collect::BinReader r(blob.data(), blob.size());
  char magic[sizeof(kBlobMagic)] = {};
  for (auto& c : magic) c = static_cast<char>(r.u8());
  if (r.failed() || std::string_view(magic, sizeof(magic)) !=
                        std::string_view(kBlobMagic, sizeof(kBlobMagic))) {
    return Fail(error, "bad magic (not an options blob)");
  }
  const std::uint32_t version = r.u32();
  if (version != kBlobVersion) {
    return Fail(error, "unsupported blob version " + std::to_string(version));
  }

  DeploymentOptions o;
  o.seed = r.u64();
  o.fault_seed = r.u64();

  o.windows.heartbeats = GetInterval(r);
  o.windows.uptime = GetInterval(r);
  o.windows.capacity = GetInterval(r);
  o.windows.devices = GetInterval(r);
  o.windows.wifi = GetInterval(r);
  o.windows.traffic = GetInterval(r);

  o.heartbeat.period.ms = r.i64();
  o.heartbeat.loss_prob = r.f64();
  o.heartbeat.downtime_threshold.ms = r.i64();

  o.traffic_homes = r.i32();
  o.bufferbloat_homes = r.i32();
  r.value(o.run_traffic);
  o.roster_scale = r.f64();
  o.homes = r.i32();
  o.churn_homes = r.i32();

  o.collector_outages_per_month = r.f64();
  o.collector_outage_mean.ms = r.i64();

  o.upload.spool_capacity = static_cast<std::size_t>(r.u64());
  o.upload.flush_period.ms = r.i64();
  o.upload.max_batch_records = static_cast<std::size_t>(r.u64());
  o.upload.backoff_base.ms = r.i64();
  o.upload.backoff_cap.ms = r.i64();
  o.upload.jitter_frac = r.f64();
  o.upload.drain_grace.ms = r.i64();

  o.upload_faults.upload_loss_prob = r.f64();
  o.upload_faults.ack_loss_prob = r.f64();
  o.upload_faults.base_latency.ms = r.i64();
  o.upload_faults.latency_jitter.ms = r.i64();

  r.value(o.cgn);
  o.cgn_port_block = static_cast<std::uint16_t>(r.u32());
  o.cgn_max_ports_per_home = r.u32();

  if (r.failed()) return Fail(error, "truncated blob");
  if (!r.at_end()) return Fail(error, "trailing bytes (written by a newer build?)");
  *out = o;
  return true;
}

}  // namespace bismark::home
