#include "home/deployment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "collect/manifest.h"
#include "core/logging.h"
#include "home/resume.h"
#include "sim/engine.h"
#include "traffic/generator.h"

namespace bismark::home {

namespace {
// Stream salts: one label per run stage. Every per-home stream is derived
// as Rng::Stream(options.seed, salt, f(home id)), so a home's draws are a
// pure function of (seed, home id) — never of which shard or worker
// simulated it, or of how many homes exist.
constexpr std::uint64_t kHeartbeatSalt = 0xBEA7;
constexpr std::uint64_t kPassiveSalt = 0x5E57;
constexpr std::uint64_t kTrafficSalt = 0x7AFF1C;
// Upload jitter / fault sampling. Streams under this salt derive from the
// *fault* seed, so fault scenarios vary without touching record content.
constexpr std::uint64_t kUploadSalt = 0xB10AD;

/// Homes per shard for homes *without* traffic consent. Fixed (not derived
/// from the worker count) so the partition itself is deterministic. The
/// consented homes — each of which runs the full traffic window on the
/// event engine and costs an order of magnitude more — get singleton
/// shards instead (see Deployment::shard_plan), so the pool's dynamic
/// cursor can steal them individually rather than dragging a whole
/// 4-home block behind the heaviest member.
constexpr std::size_t kShardHomes = 4;

/// Fleet-mode block size (see Deployment::shard_plan): big enough that a
/// 100k-home run stays near ~3k shards, small enough that ephemeral
/// household state never exceeds a few dozen homes per worker.
constexpr std::size_t kFleetShardHomes = 32;

/// Per-worker flight-recorder depth: enough to see the tail of a failing
/// run (a few homes' worth of upload churn) without meaningful memory.
constexpr std::size_t kRecorderCapacity = 1024;

/// NAT444 topology: homes per carrier-grade NAT, assigned in roster order.
/// Each subscriber slot owns a disjoint slice of the CGN's external port
/// range (RFC 7422), so a home's CGN state is a pure function of its
/// roster index — shard-local, worker-count independent.
constexpr std::size_t kCgnSubscribersPerCgn = 64;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// The one authoritative translation from the metrics registry to the
/// UploadStats view the tools and tests consume.
UploadStats UploadStatsFromMetrics(const obs::MetricsSnapshot& m) {
  UploadStats s;
  s.records_spooled = m.counter_or("bismark_upload_records_spooled_total");
  s.records_delivered = m.counter_or("bismark_upload_records_delivered_total");
  s.records_dropped = m.counter_or("bismark_upload_records_dropped_total");
  s.records_stranded = m.counter_or("bismark_upload_records_stranded_total");
  s.batches_delivered = m.counter_or("bismark_upload_batches_delivered_total");
  s.attempts = m.counter_or("bismark_upload_attempts_total");
  s.retries = m.counter_or("bismark_upload_retries_total");
  s.duplicate_transmissions = m.counter_or("bismark_upload_duplicate_transmissions_total");
  return s;
}
}  // namespace

Deployment::Deployment(DeploymentOptions options)
    : options_(options), catalog_(traffic::DomainCatalog::BuildStandard()) {
  catalog_.install_zones(zones_);
  anonymizer_ = std::make_unique<gateway::Anonymizer>(
      catalog_, gateway::AnonymizerConfig{options_.seed ^ 0xA17Full, "anon-"});
  repo_ = std::make_unique<collect::DataRepository>(options_.windows);
}

Deployment::~Deployment() = default;

void Deployment::build() {
  Rng root(options_.seed);
  const auto& windows = options_.windows;
  const Interval study = windows.heartbeats;

  // Roster assembly: per-country home counts, ids assigned in roster order.
  const auto& roster = StandardRoster();
  std::vector<int> counts(roster.size(), 0);
  if (options_.homes > 0) {
    // Exact-N roster: largest-remainder apportionment over the Table 1
    // country mix, in integer arithmetic so --homes 126 reproduces the
    // default roster bit-for-bit and ties resolve in roster order.
    const auto target = static_cast<long long>(options_.homes);
    const auto total = static_cast<long long>(TotalRouters());
    long long assigned = 0;
    std::vector<std::pair<long long, std::size_t>> by_remainder;
    for (std::size_t c = 0; c < roster.size(); ++c) {
      const long long scaled = target * roster[c].router_count;
      counts[c] = static_cast<int>(scaled / total);
      assigned += counts[c];
      by_remainder.emplace_back(-(scaled % total), c);
    }
    std::stable_sort(by_remainder.begin(), by_remainder.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (long long k = 0; k < target - assigned; ++k) {
      ++counts[by_remainder[static_cast<std::size_t>(k)].second];
    }
  } else {
    for (std::size_t c = 0; c < roster.size(); ++c) {
      counts[c] = std::max(1, static_cast<int>(std::lround(roster[c].router_count *
                                                           options_.roster_scale)));
    }
  }
  slots_.clear();
  for (std::size_t c = 0; c < roster.size(); ++c) {
    for (int i = 0; i < counts[c]; ++i) slots_.push_back(Slot{&roster[c], {}, false});
  }

  // Traffic consent: the first `traffic_homes` US homes; the first
  // `bufferbloat_homes` of those are the Fig. 16 case studies. Consent is
  // a property of the household regardless of whether the traffic window
  // is actually simulated this run.
  int us_seen = 0;
  for (auto& slot : slots_) {
    if (slot.country->code != "US" || us_seen >= options_.traffic_homes) continue;
    slot.opts.consent = gateway::ConsentLevel::kFullTraffic;
    slot.opts.min_devices = 3;  // Section 6.3: every traffic home has >= 3
    slot.opts.bufferbloat_case = us_seen < options_.bufferbloat_homes;
    slot.opts.bufferbloat_flavor = us_seen;  // 16a constant, 16b diurnal bursts
    ++us_seen;
  }

  // Churn participants: recruited late or departed early, never reaching
  // the 25-days-online bar. They contribute heartbeats only (no passive
  // data sets, no consent), like the paper's briefly-reporting routers.
  // Their country and window come from one serial stream.
  Rng churn_rng = root.fork("churn");
  for (int i = 0; i < options_.churn_homes; ++i) {
    const int id_value = static_cast<int>(slots_.size());
    const auto& country = roster[static_cast<std::size_t>(
        churn_rng.uniform_int(0, static_cast<std::int64_t>(roster.size()) - 1))];
    // Participation window: 3-20 days somewhere inside the study.
    const double window_days = (study.end - study.start).days();
    const double span = churn_rng.uniform(3.0, std::min(20.0, window_days * 0.8));
    const double start_day = churn_rng.uniform(0.0, std::max(0.1, window_days - span));
    churn_windows_[id_value] =
        Interval{study.start + Days(start_day), study.start + Days(start_day + span)};
    slots_.push_back(Slot{&country, {}, true});
  }

  // NAT444 placement: every home (churn included) sits behind a CGN.
  // Grouping and slicing derive from the roster index alone, so the
  // placement — like everything else about a home — survives fleet-mode
  // reconstruction inside an arbitrary shard task.
  if (options_.cgn) {
    for (std::size_t idx = 0; idx < slots_.size(); ++idx) {
      gateway::CgnPlacement& placement = slots_[idx].opts.cgn;
      placement.enabled = true;
      placement.cgn_id = static_cast<int>(idx / kCgnSubscribersPerCgn);
      placement.subscriber_index =
          static_cast<std::uint32_t>(idx % kCgnSubscribersPerCgn);
      placement.config.subscriber_count = kCgnSubscribersPerCgn;
      placement.config.port_block_size = options_.cgn_port_block;
      placement.config.max_ports_per_subscriber = options_.cgn_max_ports_per_home;
      // One public address per CGN instance (TEST-NET-2, RFC 5737).
      placement.config.external_address = net::Ipv4Address(
          198, 51, 100, static_cast<std::uint8_t>(1 + placement.cgn_id % 250));
    }
  }

  // Fleet mode never materialises the roster: each shard task constructs
  // its households from slots_, registers their HomeInfo, and drops them.
  if (fleet_mode()) return;

  households_.reserve(slots_.size());
  for (std::size_t idx = 0; idx < slots_.size(); ++idx) {
    auto household = make_household(idx, repo_.get());
    repo_->register_home(home_info_for(*household, idx));
    households_.push_back(std::move(household));
  }
}

std::unique_ptr<Household> Deployment::make_household(std::size_t idx,
                                                      collect::RecordSink* sink) const {
  const Slot& slot = slots_[idx];
  const collect::HomeId id{static_cast<int>(idx)};
  const auto& windows = options_.windows;
  // Devices need presence wherever a passive data set samples them.
  const std::vector<Interval> presence_windows = {windows.wifi, windows.devices};
  Rng home_rng = Rng(options_.seed).fork(static_cast<std::uint64_t>(id.value) + 1000);
  return std::make_unique<Household>(id, *slot.country, windows.heartbeats, presence_windows,
                                     *anonymizer_, sink, home_rng, slot.opts);
}

collect::HomeInfo Deployment::home_info_for(const Household& hh, std::size_t idx) const {
  collect::HomeInfo info = hh.make_info();
  // Churn homes keep the bare make_info() view: they are outside every
  // Table 2 sub-population.
  if (slots_[idx].churn) return info;
  // Table 2 sub-population flags: 113 homes report uptime/devices, 93
  // report WiFi. Spread the drops across the roster deterministically.
  const int i = static_cast<int>(idx);
  info.reports_uptime = !(i % 10 == 9 || i == 125);
  info.reports_devices = info.reports_uptime;
  info.reports_wifi = (i % 4 != 1) && i != 122;
  // Firmware-side Table 5 computation (PII never leaves the home).
  info.has_always_wired = hh.has_always_connected(true, options_.windows.devices);
  info.has_always_wireless = hh.has_always_connected(false, options_.windows.devices);
  return info;
}

void Deployment::compute_collector_outages() {
  const auto& window = options_.windows.heartbeats;

  // Section 3.3: the collection infrastructure itself fails sometimes,
  // silencing every home at once. Those intervals are ground truth here;
  // analysis::DetectCollectionOutages must rediscover them from the data.
  // Because the process couples all homes it runs before sharding, from a
  // stream that depends on the seed alone.
  collector_down_ = IntervalSet{};
  if (options_.collector_outages_per_month > 0.0) {
    Rng outage_rng = Rng(options_.seed ^ kHeartbeatSalt).fork("collector");
    TimePoint t = window.start;
    const double mean_gap_days = 30.0 / options_.collector_outages_per_month;
    while (true) {
      t += Days(outage_rng.exponential(mean_gap_days));
      if (t >= window.end) break;
      const double dur_h =
          outage_rng.exponential(options_.collector_outage_mean.hours());
      collector_down_.add(t, t + Hours(std::max(0.2, dur_h)));
    }
  }
  collector_up_ = IntervalSet{};
  {
    TimePoint cursor = window.start;
    const IntervalSet clipped = collector_down_.clipped(window.start, window.end);
    for (const auto& gap : clipped.intervals()) {
      if (gap.start > cursor) collector_up_.add(cursor, gap.start);
      cursor = gap.end;
    }
    if (cursor < window.end) collector_up_.add(cursor, window.end);
  }

  // The same outage windows govern the upload path: batches attempted while
  // the collector is down fail and back off until it returns.
  fault_plan_ = net::FaultPlan(options_.upload_faults, collector_down_);
}

void Deployment::run_shard_heartbeats(const std::vector<ShardHome>& span,
                                      collect::IngestBatch& batch,
                                      obs::MetricsShard& metrics) {
  const auto& window = options_.windows.heartbeats;
  collect::CollectionServer server(batch, options_.heartbeat);
  obs::Counter homes = metrics.counter("bismark_homes_simulated_total");
  for (const ShardHome& sh : span) {
    Household* home = sh.hh;
    homes.inc();
    Interval participation = window;
    if (const auto it = churn_windows_.find(home->id().value); it != churn_windows_.end()) {
      participation = it->second;
    }
    IntervalSet online =
        home->timeline().online().clipped(participation.start, participation.end);
    if (!collector_down_.empty()) online = online.intersect(collector_up_);
    server.ingest_heartbeats(
        home->id(), online,
        Rng::Stream(options_.seed, kHeartbeatSalt,
                    static_cast<std::uint64_t>(home->id().value)));
  }
}

void Deployment::run_shard_passive(const std::vector<ShardHome>& span,
                                   collect::IngestBatch& batch, sim::Engine& engine,
                                   obs::MetricsShard& metrics,
                                   obs::FlightRecorder* recorder) {
  const auto& w = options_.windows;
  const std::uint64_t fault_seed =
      options_.fault_seed != 0 ? options_.fault_seed : options_.seed;

  // Coarse once-per-home accounting. These feed home::UploadStats and the
  // conservation identity, so they stay live under BISMARK_OBS=OFF too;
  // resolving the handles here keeps the per-home loop map-free.
  obs::Counter spooled = metrics.counter("bismark_upload_records_spooled_total");
  obs::Counter delivered = metrics.counter("bismark_upload_records_delivered_total");
  obs::Counter dropped = metrics.counter("bismark_upload_records_dropped_total");
  obs::Counter stranded = metrics.counter("bismark_upload_records_stranded_total");
  obs::Counter batches = metrics.counter("bismark_upload_batches_delivered_total");
  obs::Counter attempts = metrics.counter("bismark_upload_attempts_total");
  obs::Counter retries = metrics.counter("bismark_upload_retries_total");
  obs::Counter duplicates = metrics.counter("bismark_upload_duplicate_transmissions_total");
  obs::Counter ingest_committed = metrics.counter("bismark_ingest_batches_committed_total");
  obs::Counter ingest_deduped = metrics.counter("bismark_ingest_batches_deduped_total");
  obs::Counter ingest_records = metrics.counter("bismark_ingest_records_committed_total");
  obs::Counter ev_executed = metrics.counter("bismark_engine_events_executed_total");
  obs::Counter ev_scheduled = metrics.counter("bismark_engine_events_scheduled_total");
  obs::Counter ev_cancelled = metrics.counter("bismark_engine_events_cancelled_total");
  obs::Counter cb_inline = metrics.counter("bismark_engine_callbacks_inline_total");
  obs::Counter cb_heap = metrics.counter("bismark_engine_callbacks_heap_total");
  obs::Gauge queue_peak = metrics.gauge("bismark_engine_queue_peak");
  obs::Gauge spooled_max = metrics.gauge("bismark_home_records_spooled_max");

  for (const ShardHome& sh : span) {
    Household* home = sh.hh;
    // Churn participants never stayed long enough to contribute the
    // passive data sets or scheduled capacity runs.
    if (churn_windows_.contains(home->id().value)) continue;
    const collect::HomeInfo* info = sh.info;
    const IntervalSet& router_on = home->timeline().router_on;
    const IntervalSet online = home->timeline().online();
    const auto id = static_cast<std::uint64_t>(home->id().value);

    // Every periodic service writes through the home's bounded spool; the
    // measurement streams are unchanged, so record *content* is identical
    // to the direct-ingest path — only delivery is now store-and-forward.
    gateway::UploadSpool spool(options_.upload.spool_capacity);
    if (info && info->reports_uptime) {
      gateway::ReportUptime(spool, home->id(), router_on, w.uptime);
    }
    gateway::ReportCapacity(spool, home->id(), online, home->link(),
                            Rng::Stream(options_.seed, kPassiveSalt, id * 2 + 1),
                            w.capacity);
    if (info && info->reports_devices) {
      gateway::ReportDeviceCounts(spool, home->id(), *home, router_on, w.devices);
    }
    if (info && info->reports_wifi) {
      gateway::WifiServiceConfig wifi_cfg;
      wifi_cfg.channel_24 = home->channel_24();
      gateway::ReportWifiScans(spool, home->id(), *home, home->neighborhood(), router_on,
                               w.wifi, Rng::Stream(options_.seed, kPassiveSalt, id * 2 + 2),
                               wifi_cfg);
    }

    // Replay the collection window on the sim clock: flush batches through
    // the fault plan into the collector's dedup gate (which commits into
    // the shard batch), retrying with backoff across outages. The drain
    // grace past window end lets tail-end batches finish retrying.
    collect::IdempotentIngest ingest(batch);
    gateway::Uploader uploader(engine, spool, fault_plan_, ingest, home->id(),
                               options_.upload, Rng::Stream(fault_seed, kUploadSalt, id));
    uploader.attach_obs(&metrics, recorder);
    engine.reset(w.heartbeats.start);
    uploader.start(w.heartbeats);
    engine.run_until(w.heartbeats.end + options_.upload.drain_grace);
    uploader.stop();

    const auto& st = uploader.stats();
    const auto& ig = ingest.stats();
    spooled.inc(spool.accepted());
    delivered.inc(st.records_delivered);
    dropped.inc(spool.dropped().total);
    stranded.inc(uploader.stranded());
    batches.inc(st.batches_delivered);
    attempts.inc(st.attempts);
    retries.inc(st.retries);
    duplicates.inc(st.duplicates_sent);
    ingest_committed.inc(ig.batches_committed);
    ingest_deduped.inc(ig.batches_deduped);
    ingest_records.inc(ig.records_committed);
    spooled_max.observe(static_cast<double>(spool.accepted()));
    // Per-kind drop ledger: register the labelled series only for kinds
    // that actually lost records, so clean runs export no empty series.
    // The labels come from the schema typelist, so a new record kind gets
    // its metric series without touching this loop.
    static_assert(collect::kRecordKindNames.size() == collect::kRecordKinds,
                  "spool-drop counter labels must cover every record kind");
    for (std::size_t kind = 0; kind < collect::kRecordKinds; ++kind) {
      const std::uint64_t lost = spool.dropped().by_kind[kind];
      if (lost == 0) continue;
      std::string name = "bismark_spool_dropped_total{kind=\"";
      name += collect::RecordKindName(kind);
      name += "\"}";
      metrics.counter(name).inc(lost);
    }
    // Engine counters reset per home (engine.reset above), so the deltas
    // must be banked before the next home reuses the engine. All of them
    // are per-home deterministic (the arena slab high-water is the one
    // worker-dependent figure, and it stays out of the registry).
    ev_executed.inc(engine.executed());
    ev_scheduled.inc(engine.scheduled());
    ev_cancelled.inc(engine.cancelled());
    cb_inline.inc(engine.callbacks_inline());
    cb_heap.inc(engine.callbacks_heap());
    queue_peak.observe(static_cast<double>(engine.queue_peak()));
  }
}

std::uint64_t Deployment::run_shard_traffic(const std::vector<ShardHome>& span,
                                            collect::IngestBatch& batch,
                                            sim::Engine& engine,
                                            obs::MetricsShard& metrics,
                                            net::PcapBuffer* pcap) {
  std::vector<Household*> consenting;
  for (const ShardHome& sh : span) {
    if (sh.hh->consent() == gateway::ConsentLevel::kFullTraffic) {
      consenting.push_back(sh.hh);
    }
  }
  if (consenting.empty()) return 0;

  const Interval window = options_.windows.traffic;
  engine.reset(window.start);

  // Per-home resolvers and generators live for the window. The zone and
  // domain catalogs are shared across shards but only read.
  std::vector<std::unique_ptr<net::DnsResolver>> resolvers;
  std::vector<std::unique_ptr<traffic::HomeTrafficGenerator>> generators;

  for (Household* hh : consenting) {
    const auto id = static_cast<std::uint64_t>(hh->id().value);
    hh->rebind_sink(&batch);
    // WAN-egress capture: outbound packets travel the byte-level wire
    // path into this shard's staging buffer (merged canonically at the
    // end of run(), so the file is worker-count independent).
    hh->router().attach_pcap(pcap);
    auto resolver = std::make_unique<net::DnsResolver>(zones_);
    auto generator = std::make_unique<traffic::HomeTrafficGenerator>(
        engine, catalog_, *resolver, hh->router(), hh->tz(),
        Rng::Stream(options_.seed, kTrafficSalt, id));

    // Households differ in how hard they use the network (the paper's
    // Fig. 15 spread from near-idle to saturating homes).
    Rng intensity_rng = Rng::Stream(options_.seed, kTrafficSalt, id * 977 + 5);
    const double home_intensity = intensity_rng.lognormal(0.0, 0.45);
    for (std::size_t i = 0; i < hh->devices().size(); ++i) {
      const Device& device = hh->devices()[i];
      const auto lease = hh->router().dhcp().acquire(device.spec().mac, window.start);
      if (!lease) continue;  // LAN pool exhausted (not expected)

      traffic::DeviceWorkload workload;
      workload.mac = device.spec().mac;
      workload.ip = lease->address;
      workload.type = device.spec().type;
      // Appetite ranks devices (primary selection); the session *rate* uses
      // the per-type calibration plus a boost for the household's primary.
      workload.hunger_scale = i == hh->primary_device() ? 6.0 : 0.7;
      workload.sessions_per_hour_peak =
          traffic::TraitsOf(device.spec().type).sessions_per_hour * home_intensity;
      workload.app_mix = traffic::AppMixOf(device.spec().type);
      // The bufferbloat case homes run an uploader: flavor 0 pushes
      // near-continuously (Fig. 16a's scientific-data home), flavor 1 in
      // diurnal bursts (Fig. 16b).
      if (hh->bufferbloat_case() && device.spec().type == traffic::DeviceType::kNas) {
        workload.app_mix = {};
        workload.app_mix[static_cast<std::size_t>(traffic::AppType::kBulkUpload)] = 1.0;
        workload.sessions_per_hour_peak = hh->bufferbloat_flavor() == 0 ? 0.6 : 0.14;
        workload.hunger_scale = 1.0;
      }
      const Device* dev_ptr = &device;
      workload.is_active = [hh, dev_ptr](TimePoint t) {
        return hh->timeline().available_at(t) && dev_ptr->wants_online(t);
      };
      generator->add_device(std::move(workload));
    }

    generator->start(window.start, window.end);
    resolvers.push_back(std::move(resolver));
    generators.push_back(std::move(generator));
  }

  engine.run_until(window.end);

  for (Household* hh : consenting) {
    hh->router().finalize(window.end);
    hh->router().attach_pcap(nullptr);
    hh->rebind_sink(repo_.get());
  }
  metrics.counter("bismark_traffic_engine_events_total").inc(engine.executed());
  metrics.counter("bismark_engine_events_executed_total").inc(engine.executed());
  metrics.counter("bismark_engine_events_scheduled_total").inc(engine.scheduled());
  metrics.counter("bismark_engine_events_cancelled_total").inc(engine.cancelled());
  metrics.counter("bismark_engine_callbacks_inline_total").inc(engine.callbacks_inline());
  metrics.counter("bismark_engine_callbacks_heap_total").inc(engine.callbacks_heap());
  metrics.gauge("bismark_engine_queue_peak").observe(static_cast<double>(engine.queue_peak()));
  return engine.executed();
}

std::vector<Deployment::ShardSpan> Deployment::shard_plan() const {
  std::vector<ShardSpan> heavy;
  std::vector<ShardSpan> light;
  const std::size_t n = slots_.size();
  // Light-home block size. Fleet runs use bigger blocks so the per-shard
  // overheads (metrics shard, batch, segment sections) grow as homes/32
  // rather than homes/4. The block size cannot change any exported byte:
  // every SortKey carries the home id, so equal keys only collide within
  // one home, and a home never splits across shards.
  const std::size_t block = fleet_mode() ? kFleetShardHomes : kShardHomes;
  std::size_t run_start = 0;
  const auto flush_light = [&](std::size_t end) {
    for (std::size_t lo = run_start; lo < end; lo += block) {
      light.push_back(ShardSpan{lo, std::min(end, lo + block)});
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (slots_[i].opts.consent == gateway::ConsentLevel::kFullTraffic) {
      flush_light(i);
      heavy.push_back(ShardSpan{i, i + 1});
      run_start = i + 1;
    }
  }
  flush_light(n);
  // Heavy singletons first: the dynamic cursor deals tasks in index order,
  // so the long-pole shards start immediately and the cheap blocks fill
  // the stragglers' idle time.
  heavy.insert(heavy.end(), light.begin(), light.end());
  return heavy;
}

void Deployment::run() {
  const auto t_run = std::chrono::steady_clock::now();
  upload_stats_ = UploadStats{};
  metrics_ = obs::MetricsSnapshot{};
  telemetry_ = RunTelemetry{};
  recorders_.clear();

  compute_collector_outages();
  telemetry_.wall_outage_prepass_s = SecondsSince(t_run);

  const int workers =
      options_.workers > 0 ? options_.workers : ThreadPool::HardwareWorkers();
  const std::vector<ShardSpan> plan = shard_plan();
  const std::size_t shards = plan.size();

  // Shards whose rows and homes were recovered from the manifest and must
  // not be re-run (resume only; always all-zero on a fresh run).
  std::vector<char> shard_recovered(shards, 0);
  recovery_.reset();
  sim_clock_high_water_ms_ = 0;

  if (options_.resume && !fleet_mode()) {
    throw std::runtime_error("resume requires fleet mode (a memory budget and spill dir)");
  }
  if (options_.resume && !options_.pcap_out.empty()) {
    // Recovered shards never re-run their traffic window, so a resumed
    // capture would silently miss their frames.
    throw std::runtime_error("--pcap-out cannot be combined with --resume");
  }
  if (fleet_mode() && !repo_->spilling()) {
    collect::SpillConfig scfg;
    scfg.dir = options_.spill_dir.empty() ? "bsmk-segments" : options_.spill_dir;
    scfg.budget_bytes = options_.memory_budget_bytes;
    scfg.workers = static_cast<std::size_t>(workers);
    scfg.verify_checksums = options_.spill_verify_checksums;
    if (options_.resume) {
      auto recovered = std::make_unique<collect::SpillRecovery>();
      std::string err;
      if (!collect::RecoverSpillDir(scfg.dir, recovered.get(), &err)) {
        throw std::runtime_error("resume: " + err);
      }
      if (recovered->has_config) {
        // The blob pins every content-determining option, so equality here
        // guarantees the recovered sections merge byte-identically with the
        // shards this run regenerates.
        if (recovered->config.options_blob != EncodeResumableOptions(options_)) {
          throw std::runtime_error(
              "resume: options do not match the run recorded in " + scfg.dir +
              " (seed/windows/roster/fault knobs must be identical; pass --resume "
              "alone and let the manifest supply them)");
        }
        if (recovered->config.shard_count != shards) {
          throw std::runtime_error(
              "resume: shard plan mismatch (manifest has " +
              std::to_string(recovered->config.shard_count) + " shards, this run plans " +
              std::to_string(shards) + ")");
        }
      }
      for (const std::uint32_t s : recovered->done_shards) {
        if (s < shards) shard_recovered[s] = 1;
      }
      sim_clock_high_water_ms_ =
          recovered->has_checkpoint ? recovered->checkpoint.sim_clock_ms : 0;
      repo_->enable_spill_recovered(scfg, *recovered);
      recovery_ = std::move(recovered);
    } else {
      repo_->enable_spill(scfg);
    }
    // WAL: the run-config record is fsynced before any section or
    // shard-done record can reference it.
    collect::ManifestConfig mcfg;
    mcfg.schema_fingerprint = collect::SchemaFingerprint();
    mcfg.budget_bytes = options_.memory_budget_bytes;
    mcfg.workers = static_cast<std::uint32_t>(workers);
    mcfg.generation = repo_->spill()->generation();
    mcfg.shard_count = static_cast<std::uint32_t>(shards);
    mcfg.options_blob = EncodeResumableOptions(options_);
    repo_->spill()->write_run_config(mcfg);
  }

  // One staging batch and one metrics shard per *shard* (determinism unit),
  // one engine and one flight recorder per *worker* (execution unit). The
  // metrics shards merge in shard-index order below, so their contents are
  // independent of which worker ran which shard.
  std::vector<collect::IngestBatch> batches;
  batches.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) batches.push_back(repo_->make_batch());
  // One extra shard for the recovery counters, appended only on resume so a
  // fresh run's merged registry (and with it every golden) is untouched.
  std::vector<obs::MetricsShard> metric_shards(shards + (recovery_ ? 1 : 0));

  // One capture buffer per shard (the determinism unit, like the batches):
  // gateways append frames in simulation order, and the writer merges all
  // buffers into the canonical (timestamp, home) order at the end.
  std::vector<net::PcapBuffer> pcap_buffers;
  const bool capture = !options_.pcap_out.empty();
  if (capture) pcap_buffers.resize(shards);

  ThreadPool pool(workers);
  std::vector<std::unique_ptr<sim::Engine>> engines(
      static_cast<std::size_t>(pool.workers()));
  recorders_.reserve(static_cast<std::size_t>(pool.workers()));
  for (int wkr = 0; wkr < pool.workers(); ++wkr) {
    recorders_.push_back(std::make_unique<obs::FlightRecorder>(kRecorderCapacity));
  }
  std::atomic<std::uint64_t> traffic_events{0};
  std::atomic<std::uint64_t> committed_shards{
      recovery_ ? static_cast<std::uint64_t>(recovery_->done_shards.size()) : 0};
  std::atomic<std::int64_t> clock_high_water{sim_clock_high_water_ms_};

  const bool fleet = fleet_mode();
  const auto t_sharded = std::chrono::steady_clock::now();
  pool.parallel_for(shards, [&](std::size_t shard, int worker) {
    if (shard_recovered[shard]) return;  // rows + homes adopted from the manifest
    const std::size_t lo = plan[shard].lo;
    const std::size_t hi = plan[shard].hi;
    collect::IngestBatch& batch = batches[shard];
    if (repo_->spilling()) {
      batch.attach_spill(repo_->spill(), static_cast<std::uint32_t>(shard),
                         static_cast<std::size_t>(worker));
    }
    obs::MetricsShard& metrics = metric_shards[shard];
    obs::FlightRecorder* recorder = recorders_[static_cast<std::size_t>(worker)].get();
    auto& engine = engines[static_cast<std::size_t>(worker)];
    if (!engine) engine = std::make_unique<sim::Engine>(options_.windows.heartbeats.start);
    engine->set_recorder(recorder);

    // Assemble the shard's homes. Fleet shards own their households only
    // for the duration of this task: construct from the slot metadata
    // (byte-identical to a build()-time construction — every stream is a
    // pure function of (seed, home id)), simulate, register, drop.
    std::vector<std::unique_ptr<Household>> ephemeral;
    std::vector<collect::HomeInfo> fleet_infos;
    std::vector<ShardHome> span;
    span.reserve(hi - lo);
    if (fleet) {
      ephemeral.reserve(hi - lo);
      fleet_infos.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        ephemeral.push_back(make_household(i, &batch));
        fleet_infos.push_back(home_info_for(*ephemeral.back(), i));
      }
      for (std::size_t k = 0; k < ephemeral.size(); ++k) {
        span.push_back(ShardHome{ephemeral[k].get(), &fleet_infos[k]});
      }
    } else {
      for (std::size_t i = lo; i < hi; ++i) {
        span.push_back(ShardHome{households_[i].get(),
                                 repo_->find_home(households_[i]->id())});
      }
    }

    run_shard_heartbeats(span, batch, metrics);
    run_shard_passive(span, batch, *engine, metrics, recorder);
    if (options_.run_traffic) {
      traffic_events += run_shard_traffic(span, batch, *engine, metrics,
                                          capture ? &pcap_buffers[shard] : nullptr);
    }
    if (fleet) {
      // Incremental commit: flush the batch's residue to its segment log
      // now so staging memory stays bounded by (threshold x workers). WAL
      // order: sections reach the OS inside commit(), *then* the shard-done
      // record makes the shard recoverable, then the homes register
      // (thread-safe; canonical order is restored by
      // finalize_deterministic_order below).
      repo_->commit(std::move(batch));
      repo_->spill()->record_shard_done(static_cast<std::uint32_t>(shard), fleet_infos);
      for (auto& info : fleet_infos) repo_->register_home(std::move(info));

      std::int64_t clock = engine->now().ms;
      std::int64_t seen = clock_high_water.load(std::memory_order_relaxed);
      while (clock > seen &&
             !clock_high_water.compare_exchange_weak(seen, clock, std::memory_order_relaxed)) {
      }
      const std::uint64_t done = committed_shards.fetch_add(1) + 1;
      if (options_.checkpoint_every != 0 && done % options_.checkpoint_every == 0) {
        collect::ManifestCheckpoint ckpt;
        ckpt.sim_clock_ms = clock_high_water.load(std::memory_order_relaxed);
        ckpt.shards_done = done;
        repo_->spill()->write_checkpoint(ckpt);
        recorder->record(obs::TraceKind::kCheckpoint, TimePoint{ckpt.sim_clock_ms}, -1, done);
      }
    }
  });
  sim_clock_high_water_ms_ = clock_high_water.load();
  telemetry_.wall_sharded_run_s = SecondsSince(t_sharded);
  telemetry_.pool = pool.last_round_stats();
  telemetry_.workers = pool.workers();

  // Commit in shard order, then impose the canonical (timestamp, home id)
  // order — together these make the repository bytes independent of the
  // worker count and of the dynamic shard schedule. The metrics merge
  // follows the same discipline: shard-index order, canonical name sort.
  const auto t_commit = std::chrono::steady_clock::now();
  for (auto& batch : batches) repo_->commit(std::move(batch));
  repo_->finalize_deterministic_order();
  if (recovery_) {
    obs::MetricsShard& rs = metric_shards[shards];
    rs.counter("bismark_recovery_sections_verified_total").inc(recovery_->sections_verified);
    rs.counter("bismark_recovery_sections_quarantined_total")
        .inc(recovery_->sections_quarantined);
    rs.counter("bismark_recovery_shards_recovered_total")
        .inc(static_cast<std::uint64_t>(recovery_->done_shards.size()));
    rs.counter("bismark_recovery_shards_dropped_total").inc(recovery_->shards_dropped);
    rs.counter("bismark_recovery_manifest_bytes_truncated_total")
        .inc(recovery_->manifest_bytes_truncated);
    rs.counter("bismark_recovery_segment_bytes_truncated_total")
        .inc(recovery_->segment_bytes_truncated);
  }
  metrics_ = obs::MergeShards(metric_shards);
  upload_stats_ = UploadStatsFromMetrics(metrics_);

  pcap_frames_captured_ = 0;
  pcap_bytes_written_ = 0;
  if (capture) {
    std::vector<const net::PcapBuffer*> bufs;
    bufs.reserve(pcap_buffers.size());
    for (const net::PcapBuffer& b : pcap_buffers) {
      pcap_frames_captured_ += b.frame_count();
      bufs.push_back(&b);
    }
    pcap_bytes_written_ = net::WritePcapFile(options_.pcap_out, bufs);
    BISMARK_LOG_INFO("deployment", "pcap: wrote %llu frames (%llu bytes) to %s",
                     static_cast<unsigned long long>(pcap_frames_captured_),
                     static_cast<unsigned long long>(pcap_bytes_written_),
                     options_.pcap_out.c_str());
  }
  telemetry_.wall_commit_s = SecondsSince(t_commit);

  telemetry_.engine_events = metrics_.counter_or("bismark_engine_events_executed_total");
  telemetry_.wall_total_s = SecondsSince(t_run);

  if (options_.run_traffic) {
    BISMARK_LOG_INFO("deployment", "traffic window complete: %llu events across %zu shards",
                     static_cast<unsigned long long>(traffic_events.load()), shards);
  }
}

std::string Deployment::recovered_fleet_summary_blob() const {
  if (!recovery_ || !recovery_->has_checkpoint) return {};
  const std::size_t shards = shard_count();
  // Only a provably-complete, provably-clean directory may serve a cached
  // summary: every shard recovered, nothing quarantined, and the checkpoint
  // written after the last shard committed.
  if (recovery_->done_shards.size() != shards) return {};
  if (recovery_->sections_quarantined != 0 || recovery_->shards_dropped != 0) return {};
  if (recovery_->checkpoint.shards_done != shards) return {};
  return recovery_->checkpoint.sketch_blob;
}

void Deployment::save_fleet_summary_checkpoint(const std::string& sketch_blob) {
  if (!repo_->spilling()) return;
  collect::ManifestCheckpoint ckpt;
  ckpt.sim_clock_ms = sim_clock_high_water_ms_;
  ckpt.shards_done = shard_count();
  ckpt.sketch_blob = sketch_blob;
  repo_->spill()->write_checkpoint(ckpt);
}

void Deployment::dump_flight_recorders(std::ostream& out) const {
  std::vector<const obs::FlightRecorder*> recs;
  recs.reserve(recorders_.size());
  for (const auto& r : recorders_) recs.push_back(r.get());
  obs::DumpMergedFlightRecorders(recs, out);
}

std::unique_ptr<Deployment> Deployment::RunStudy(DeploymentOptions options) {
  auto deployment = std::make_unique<Deployment>(options);
  deployment->build();
  deployment->run();
  return deployment;
}

obs::RunReport MakeRunReport(const Deployment& study, std::string tool,
                             bool include_volatile) {
  const DeploymentOptions& opt = study.options();
  const RunTelemetry& tel = study.telemetry();

  obs::RunReport report;
  report.tool = std::move(tool);
  report.seed = opt.seed;
  report.fault_seed = opt.fault_seed != 0 ? opt.fault_seed : opt.seed;
  report.roster_scale = opt.roster_scale;
  report.homes = study.roster_size();
  report.shards = study.shard_count();
  report.traffic = opt.run_traffic;
  report.metrics = study.metrics();
  report.conservation = obs::ConservationFromMetrics(study.metrics());

  report.include_volatile = include_volatile;
  report.wall_total_s = tel.wall_total_s;
  report.phases = {{"outage_prepass", tel.wall_outage_prepass_s},
                   {"sharded_run", tel.wall_sharded_run_s},
                   {"commit", tel.wall_commit_s}};
  report.workers = tel.workers;
  for (std::size_t w = 0; w < tel.pool.size(); ++w) {
    report.pool.push_back(obs::WorkerUtilization{static_cast<int>(w), tel.pool[w].tasks,
                                                 tel.pool[w].busy_s});
  }
  report.engine_events_per_s = tel.wall_sharded_run_s > 0.0
                                   ? static_cast<double>(tel.engine_events) /
                                         tel.wall_sharded_run_s
                                   : 0.0;
  return report;
}

}  // namespace bismark::home
