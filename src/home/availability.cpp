#include "home/availability.h"

#include <algorithm>
#include <cmath>

namespace bismark::home {

namespace {

// Complement of an off-set within a window: the on-periods.
IntervalSet Complement(const IntervalSet& off, TimePoint begin, TimePoint end) {
  IntervalSet on;
  TimePoint cursor = begin;
  const IntervalSet clipped = off.clipped(begin, end);  // keep alive across the loop
  for (const auto& gap : clipped.intervals()) {
    if (gap.start > cursor) on.add(cursor, gap.start);
    cursor = gap.end;
  }
  if (cursor < end) on.add(cursor, end);
  return on;
}

// Router power: always-on homes stay up except reboots and the occasional
// vacation (Fig. 6a).
IntervalSet GenerateAlwaysOn(TimePoint begin, TimePoint end, Rng& rng, double vacation_prob) {
  IntervalSet off;  // collect off-periods, then complement
  // Reboots: roughly monthly, a few minutes each.
  TimePoint t = begin;
  while (true) {
    t += Days(rng.exponential(30.0));
    if (t >= end) break;
    off.add(t, t + Minutes(rng.uniform(2.0, 6.0)));
  }
  // Vacation power-down.
  if (rng.bernoulli(vacation_prob)) {
    const double window_days = (end - begin).days();
    const TimePoint start = begin + Days(rng.uniform(0.1, std::max(0.2, window_days - 8.0)));
    off.add(start, start + Days(rng.uniform(2.0, 7.0)));
  }
  return Complement(off, begin, end);
}

// Night-off homes: the router is powered down overnight on many nights,
// and occasionally during the day. Off periods may cross midnight.
IntervalSet GenerateNightOff(TimePoint begin, TimePoint end, TimeZone tz, Rng& rng) {
  IntervalSet off;
  const double p_night = rng.uniform(0.35, 0.85);
  const double p_day_off = 0.12;
  TimePoint day = tz.local_midnight(begin);
  while (day < end) {
    if (rng.bernoulli(p_night)) {
      const double off_start_h = std::clamp(rng.normal(23.3, 0.8), 20.5, 26.0);
      const double off_len_h = std::clamp(rng.normal(7.5, 1.5), 3.0, 11.0);
      off.add(day + Hours(off_start_h), day + Hours(off_start_h + off_len_h));
    }
    // Occasional daytime power-down (errands, saving electricity).
    if (rng.bernoulli(p_day_off)) {
      const double start_h = std::clamp(rng.normal(11.0, 2.0), 8.0, 16.0);
      const double len_h = std::clamp(rng.normal(3.5, 1.5), 0.5, 8.0);
      off.add(day + Hours(start_h), day + Hours(start_h + len_h));
    }
    // Rarely, the router stays off for days at a stretch (trips, disuse) —
    // few downtime *events* but a large bite out of uptime, which is how
    // the paper's India shows ~0.5 downtimes/day yet only 76 % on-time.
    if (rng.bernoulli(0.03)) {
      off.add(day + Hours(rng.uniform(8.0, 20.0)),
              day + Hours(rng.uniform(8.0, 20.0)) + Days(rng.uniform(1.5, 4.0)));
    }
    day += Days(1);
  }
  return Complement(off, begin, end);
}

// Appliance homes (Fig. 6b): powered up briefly in the evening on
// weekdays, for longer stretches on weekends.
IntervalSet GenerateAppliance(TimePoint begin, TimePoint end, TimeZone tz, Rng& rng) {
  IntervalSet on;
  const double p_skip_day = rng.uniform(0.05, 0.25);  // days with no use at all
  TimePoint day = tz.local_midnight(begin);
  while (day < end) {
    const Weekday wd = tz.local_weekday(day + Hours(12));
    if (!rng.bernoulli(p_skip_day)) {
      if (IsWeekend(wd)) {
        // Midday block.
        if (rng.bernoulli(0.75)) {
          const double start_h = std::clamp(rng.normal(10.5, 1.2), 8.0, 14.0);
          const double len_h = std::clamp(rng.normal(3.5, 1.2), 1.0, 7.0);
          on.add(day + Hours(start_h), day + Hours(start_h + len_h));
        }
        // Evening block, longer than weekdays.
        const double ev_start = std::clamp(rng.normal(18.0, 1.0), 16.0, 21.0);
        const double ev_len = std::clamp(rng.normal(4.5, 1.2), 1.5, 7.5);
        on.add(day + Hours(ev_start), day + Hours(ev_start + ev_len));
      } else {
        // Brief morning check with low probability.
        if (rng.bernoulli(0.25)) {
          const double start_h = std::clamp(rng.normal(7.6, 0.5), 6.0, 9.5);
          on.add(day + Hours(start_h), day + Hours(start_h + rng.uniform(0.3, 1.0)));
        }
        // Evening session.
        const double ev_start = std::clamp(rng.normal(18.6, 0.8), 16.5, 21.5);
        const double ev_len = std::clamp(rng.normal(3.2, 0.9), 0.8, 6.0);
        on.add(day + Hours(ev_start), day + Hours(ev_start + ev_len));
      }
    }
    day += Days(1);
  }
  return on.clipped(begin, end);
}

// ISP availability: Poisson outages with lognormal durations, plus an
// optional multi-day flaky episode (Fig. 6c).
IntervalSet GenerateIspUp(const CountryProfile& country, TimePoint begin, TimePoint end,
                          Rng& rng, double flaky_episode_prob) {
  IntervalSet down;
  const double log_median = std::log(country.outage_median_minutes);
  auto draw_outage_minutes = [&] {
    return std::clamp(rng.lognormal(log_median, country.outage_sigma), 10.0, 7.0 * 24 * 60);
  };

  TimePoint t = begin;
  while (country.isp_outages_per_day > 0.0) {
    t += Days(rng.exponential(1.0 / country.isp_outages_per_day));
    if (t >= end) break;
    down.add(t, t + Minutes(draw_outage_minutes()));
  }

  if (rng.bernoulli(flaky_episode_prob)) {
    const double window_days = (end - begin).days();
    const TimePoint ep_start = begin + Days(rng.uniform(0.0, std::max(0.5, window_days - 6.0)));
    const TimePoint ep_end = ep_start + Days(rng.uniform(2.0, 5.0));
    const double flaky_rate = std::max(4.0, country.isp_outages_per_day * 20.0);  // per day
    TimePoint ft = ep_start;
    while (true) {
      ft += Days(rng.exponential(1.0 / flaky_rate));
      if (ft >= ep_end || ft >= end) break;
      down.add(ft, ft + Minutes(std::clamp(rng.lognormal(std::log(25.0), 0.8), 10.0, 600.0)));
    }
  }

  return Complement(down, begin, end);
}

}  // namespace

RouterPowerMode AvailabilityModel::DrawMode(const CountryProfile& country, Rng& rng) {
  const double u = rng.uniform();
  if (u < country.frac_always_on) return RouterPowerMode::kAlwaysOn;
  if (u < country.frac_always_on + country.frac_appliance) return RouterPowerMode::kAppliance;
  return RouterPowerMode::kNightOff;
}

AvailabilityTimeline AvailabilityModel::Generate(const CountryProfile& country,
                                                 RouterPowerMode mode, TimeZone tz,
                                                 TimePoint begin, TimePoint end, Rng rng,
                                                 const AvailabilityOptions& options) {
  AvailabilityTimeline timeline;
  timeline.begin = begin;
  timeline.end = end;
  switch (mode) {
    case RouterPowerMode::kAlwaysOn:
      timeline.router_on = GenerateAlwaysOn(begin, end, rng, options.vacation_prob);
      break;
    case RouterPowerMode::kNightOff:
      timeline.router_on = GenerateNightOff(begin, end, tz, rng);
      break;
    case RouterPowerMode::kAppliance:
      timeline.router_on = GenerateAppliance(begin, end, tz, rng);
      break;
  }
  timeline.isp_up = GenerateIspUp(country, begin, end, rng, options.flaky_episode_prob);
  return timeline;
}

}  // namespace bismark::home
