// The full study: build the Table 1 roster of homes, run every
// measurement service over the Table 2 windows, and return the populated
// data repository — the input to the analysis layer and every bench.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bismark/uploader.h"
#include "collect/repository.h"
#include "collect/server.h"
#include "core/thread_pool.h"
#include "home/household.h"
#include "net/fault_plan.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "traffic/domains.h"

namespace bismark::sim {
class Engine;
}

namespace bismark::home {

struct DeploymentOptions {
  std::uint64_t seed{42};
  collect::DatasetWindows windows = collect::DatasetWindows::Paper();
  collect::HeartbeatPathConfig heartbeat;
  /// Number of US homes recruited into the Traffic data set (paper: 25).
  int traffic_homes{25};
  /// Of which, bufferbloat case-study homes (paper observes 2, Fig. 16).
  int bufferbloat_homes{2};
  /// Simulate the full traffic window with the event engine. Disabling
  /// skips the Traffic data set (fast availability/infrastructure runs).
  bool run_traffic{true};
  /// Scale factor on per-country router counts (1.0 = the full 126).
  double roster_scale{1.0};
  /// Exact roster size (0 = use roster_scale). Homes are apportioned over
  /// the Table 1 country mix by largest remainder in integer arithmetic,
  /// so --homes 126 reproduces the default roster bit-for-bit.
  int homes{0};
  /// Fleet mode: > 0 bounds record-staging memory. Shard batches spill
  /// sorted segment runs to disk past the budget (collect/spill.h) and
  /// households are constructed ephemerally inside their shard task
  /// instead of being held resident for the whole run. Record content is
  /// a pure function of (seed, home id), so exports stay byte-identical
  /// to the in-RAM path.
  std::size_t memory_budget_bytes{0};
  /// Segment-file directory for fleet mode ("" = "bsmk-segments").
  std::string spill_dir;
  /// Fleet mode: write a durable checkpoint (fsync every segment log + the
  /// manifest, then append a checkpoint record) every K committed shards.
  /// 0 = checkpoints only where durability demands them (the run config
  /// and each shard-done record are still write-ahead logged).
  std::uint64_t checkpoint_every{0};
  /// Resume an interrupted fleet run from spill_dir: recover the manifest
  /// (truncating torn tails, quarantining corrupt sections), adopt every
  /// completed shard's rows and homes, and re-run only the rest. The
  /// content-determining options above must match the recorded run —
  /// run() refuses a mismatching resume. Requires memory_budget_bytes > 0.
  bool resume{false};
  /// Read-side segment CRC verification. The checksum-overhead bench is
  /// the only caller that turns this off; every production path keeps it on.
  bool spill_verify_checksums{true};
  /// Collection-infrastructure outages (Section 3.3): the central server
  /// itself goes down this many times per month, silencing *every* home's
  /// heartbeats at once. 0 = perfectly reliable collector.
  double collector_outages_per_month{0.0};
  Duration collector_outage_mean{Hours(3)};
  /// Short-lived participants beyond the core roster. The paper's Fig. 2
  /// shows 295 routers ever contributed data but only 126 reported
  /// consistently; churn homes participate for a brief window and are
  /// dropped by the analysis' >= 25-days-online filter (Section 3.2.2).
  int churn_homes{0};
  /// Store-and-forward upload pipeline: every periodic measurement service
  /// writes through a bounded per-home spool; an uploader flushes batches
  /// on this policy's cadence and retries failures with backoff. Heartbeats
  /// stay live (they are the liveness signal itself).
  gateway::UploadPolicy upload;
  /// Upload-path fault injection: request/ack loss and latency. Collector
  /// outage windows come from collector_outages_per_month above and apply
  /// to uploads as well as heartbeats.
  net::FaultConfig upload_faults;
  /// Seed for the fault-injection and upload-jitter streams. 0 derives it
  /// from `seed`, so default runs stay reproducible from one number while
  /// fault scenarios can be varied without touching measurement content.
  std::uint64_t fault_seed{0};
  /// Worker threads for run(): the roster is split into fixed-size shards,
  /// each simulated on its own sim::Engine with per-home RNG streams
  /// derived from (seed, home id), and merged deterministically. 0 = one
  /// worker per hardware thread. Repository contents and exports are
  /// byte-identical for every value.
  int workers{1};
  /// NAT444: place every home behind a carrier-grade NAT tier. Homes are
  /// grouped 64 to a CGN in roster order; each subscriber owns a disjoint
  /// slice of the CGN's external port range (RFC 7422 deterministic
  /// port-block allocation), so per-home state stays shard-local and
  /// exports stay byte-identical across worker counts. Off by default —
  /// CGN-off runs reproduce the pre-CGN golden exports exactly.
  bool cgn{false};
  /// Ports handed to a subscriber per block grant (RFC 7422).
  std::uint16_t cgn_port_block{512};
  /// Hard per-subscriber cap on concurrently-mapped CGN ports.
  std::uint32_t cgn_max_ports_per_home{2048};
  /// Write every WAN-egress frame (post home-NAT, post CGN when enabled)
  /// to this classic-pcap file ("" = no capture). Frames are staged in
  /// per-shard buffers and merged in canonical (timestamp, home) order, so
  /// the file is byte-identical for every worker count.
  std::string pcap_out;
};

/// Aggregate accounting of the upload pipeline across all homes, sourced
/// from the obs metrics registry (the `bismark_upload_*_total` counters)
/// after the per-shard merge — one authoritative place. The conservation
/// identity `records_spooled == records_delivered + records_dropped +
/// records_stranded` holds exactly, and every field is byte-identical
/// across worker counts for a fixed (seed, fault_seed).
struct UploadStats {
  std::uint64_t records_spooled{0};
  std::uint64_t records_delivered{0};
  std::uint64_t records_dropped{0};    ///< spool overflow (drop-oldest ledger)
  std::uint64_t records_stranded{0};   ///< undelivered when the drain window closed
  std::uint64_t batches_delivered{0};
  std::uint64_t attempts{0};
  std::uint64_t retries{0};
  std::uint64_t duplicate_transmissions{0};  ///< resends absorbed by the dedup gate
};

/// Wall-clock and scheduling telemetry of the last run(). All of it is
/// *volatile* — it varies with machine load and worker count — and feeds
/// only the run report's "wall" section, never the deterministic metrics.
struct RunTelemetry {
  double wall_total_s{0.0};
  double wall_outage_prepass_s{0.0};
  double wall_sharded_run_s{0.0};
  double wall_commit_s{0.0};
  int workers{0};  ///< resolved worker count (options.workers or hardware)
  std::vector<ThreadPool::WorkerStats> pool;
  /// Deterministic total of engine events executed across all shards;
  /// paired with wall_sharded_run_s it gives the volatile throughput.
  std::uint64_t engine_events{0};
};

/// The deployment: households plus the machinery to run the study.
class Deployment {
 public:
  explicit Deployment(DeploymentOptions options);
  ~Deployment();  // out-of-line: recovery_ holds an incomplete type here

  /// Assemble the roster (deterministic in the seed). Outside fleet mode
  /// this also instantiates every household; fleet runs defer household
  /// construction to the owning shard task in run().
  void build();

  /// True when run() streams through the spill path with ephemeral
  /// households (memory_budget_bytes > 0). households() stays empty.
  [[nodiscard]] bool fleet_mode() const { return options_.memory_budget_bytes > 0; }

  /// Roster size (homes simulated by run()), valid after build() in every
  /// mode — fleet runs never materialise households().
  [[nodiscard]] std::size_t roster_size() const { return slots_.size(); }

  /// Run every data collection stage into the repository, on
  /// `options().workers` threads. The collector-outage pre-pass (which
  /// couples all homes, Section 3.3) runs first and serially; everything
  /// per-home runs sharded. Record order afterwards is canonical
  /// (timestamp, home id) regardless of worker count.
  void run();

  /// Resident households (empty in fleet mode, where shards own their
  /// households only for the duration of the shard task).
  [[nodiscard]] const std::vector<std::unique_ptr<Household>>& households() const {
    return households_;
  }
  [[nodiscard]] collect::DataRepository& repository() { return *repo_; }
  [[nodiscard]] const collect::DataRepository& repository() const { return *repo_; }
  [[nodiscard]] const traffic::DomainCatalog& catalog() const { return catalog_; }
  [[nodiscard]] const DeploymentOptions& options() const { return options_; }
  /// Ground truth of the collector's own downtime (for validating the
  /// artifact detector; empty when collector_outages_per_month is 0).
  [[nodiscard]] const IntervalSet& collector_outages() const { return collector_down_; }
  /// One contiguous run of homes simulated as a unit (a determinism unit:
  /// one IngestBatch, one MetricsShard).
  struct ShardSpan {
    std::size_t lo{0};
    std::size_t hi{0};
  };
  /// The shard partition: each traffic-consented home is its own shard
  /// (they cost an order of magnitude more than the rest), listed first so
  /// the pool's dynamic cursor deals the heavy work out early; everyone
  /// else is grouped into small fixed blocks. A pure function of the
  /// roster — never of the worker count — so the merge order, and with it
  /// every export byte, is identical at any --workers value.
  [[nodiscard]] std::vector<ShardSpan> shard_plan() const;

  /// Upload-pipeline accounting for the last run() (all homes summed).
  [[nodiscard]] const UploadStats& upload_stats() const { return upload_stats_; }
  /// Pcap capture accounting for the last run() (0 when pcap_out is "").
  [[nodiscard]] std::uint64_t pcap_frames_captured() const { return pcap_frames_captured_; }
  [[nodiscard]] std::uint64_t pcap_bytes_written() const { return pcap_bytes_written_; }
  /// The fault plan the last run() uploaded through (outages + loss).
  [[nodiscard]] const net::FaultPlan& fault_plan() const { return fault_plan_; }

  /// Merged metrics of the last run(): per-shard registries combined in
  /// canonical name order — byte-identical for any worker count.
  [[nodiscard]] const obs::MetricsSnapshot& metrics() const { return metrics_; }
  /// Wall-clock/scheduling telemetry of the last run() (volatile).
  [[nodiscard]] const RunTelemetry& telemetry() const { return telemetry_; }
  /// Shard count the roster partitions into (fixed by the roster, not by
  /// the worker count).
  [[nodiscard]] std::size_t shard_count() const { return shard_plan().size(); }

  /// What resume recovered from the spill directory (null unless the last
  /// run() had options.resume set). Counts, truncations, and one
  /// diagnostic line per recovery action.
  [[nodiscard]] const collect::SpillRecovery* recovery() const { return recovery_.get(); }

  /// The recovered checkpoint's sketch blob, but only when it provably
  /// describes the *complete* run: every shard recovered clean, nothing
  /// quarantined, and the checkpoint itself covered all shards. Empty
  /// otherwise — a stale summary is worse than a recomputed one.
  [[nodiscard]] std::string recovered_fleet_summary_blob() const;

  /// Append a final checkpoint carrying `sketch_blob` (the serialized fleet
  /// summary) so a later --resume of the finished run can skip the
  /// streaming summary pass. No-op outside fleet mode.
  void save_fleet_summary_checkpoint(const std::string& sketch_blob);

  /// Post-mortem: dump every worker's flight recorder, merged and ordered
  /// by simulated time. Intended for test-failure diagnostics.
  void dump_flight_recorders(std::ostream& out) const;

  /// Convenience: build + run in one call.
  static std::unique_ptr<Deployment> RunStudy(DeploymentOptions options);

 private:
  DeploymentOptions options_;
  traffic::DomainCatalog catalog_;
  net::ZoneCatalog zones_;
  std::unique_ptr<gateway::Anonymizer> anonymizer_;
  std::unique_ptr<collect::DataRepository> repo_;
  std::vector<std::unique_ptr<Household>> households_;
  IntervalSet collector_down_;
  IntervalSet collector_up_;
  net::FaultPlan fault_plan_;
  UploadStats upload_stats_;
  obs::MetricsSnapshot metrics_;
  RunTelemetry telemetry_;
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders_;  // one per worker
  std::map<int, Interval> churn_windows_;
  std::unique_ptr<collect::SpillRecovery> recovery_;  // set by a resumed run()
  std::int64_t sim_clock_high_water_ms_{0};           // checkpointed engine clock
  std::uint64_t pcap_frames_captured_{0};
  std::uint64_t pcap_bytes_written_{0};

  /// One roster position: everything needed to (re)construct its household
  /// deterministically. Fleet shard tasks build households from this on
  /// the fly; the default path builds them all once in build().
  struct Slot {
    const CountryProfile* country{nullptr};
    HouseholdOptions opts;
    bool churn{false};
  };
  std::vector<Slot> slots_;

  /// A shard-local view of one home: the household plus its registry entry
  /// (which, in fleet mode, is not yet in the repository).
  struct ShardHome {
    Household* hh{nullptr};
    const collect::HomeInfo* info{nullptr};
  };

  /// Construct the household for roster slot `idx` writing into `sink`.
  /// Rng::fork is a pure function of (seed, tag), so a household rebuilt
  /// inside a fleet shard gets exactly the draws build() would have made.
  [[nodiscard]] std::unique_ptr<Household> make_household(std::size_t idx,
                                                          collect::RecordSink* sink) const;
  /// The registry entry for slot `idx`, including the Table 2
  /// sub-population flags and the firmware-side Table 5 booleans.
  [[nodiscard]] collect::HomeInfo home_info_for(const Household& hh, std::size_t idx) const;

  /// Serial pre-pass: the collector's own outage process, which silences
  /// every home at once and therefore cannot be sharded.
  void compute_collector_outages();

  // Per-shard stages over one shard's homes, writing into `batch` and
  // counting into `metrics` (owned by this shard — single-writer, lock-free).
  void run_shard_heartbeats(const std::vector<ShardHome>& span, collect::IngestBatch& batch,
                            obs::MetricsShard& metrics);
  void run_shard_passive(const std::vector<ShardHome>& span, collect::IngestBatch& batch,
                         sim::Engine& engine, obs::MetricsShard& metrics,
                         obs::FlightRecorder* recorder);
  std::uint64_t run_shard_traffic(const std::vector<ShardHome>& span,
                                  collect::IngestBatch& batch, sim::Engine& engine,
                                  obs::MetricsShard& metrics, net::PcapBuffer* pcap);
};

/// Assemble the machine-readable run report for a completed study.
/// `tool` names the producing binary (lands in the report's "tool" field);
/// set include_volatile = false for byte-identical output across worker
/// counts (the wall-clock section is the only non-deterministic part).
[[nodiscard]] obs::RunReport MakeRunReport(const Deployment& study, std::string tool,
                                           bool include_volatile = true);

}  // namespace bismark::home
