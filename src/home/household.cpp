#include "home/household.h"

#include <algorithm>
#include <cmath>

namespace bismark::home {

namespace {
int DrawDeviceCount(const CountryProfile& country, Rng& rng) {
  // Lognormal around the country mean: developed homes centre near 6–7
  // unique devices (median >= 5, Fig. 7), developing near 4.
  const double median = country.developed ? country.mean_devices * 0.85
                                          : country.mean_devices * 0.88;
  const double v = rng.lognormal(std::log(std::max(1.5, median)), 0.45);
  return std::max(1, static_cast<int>(std::lround(v)));
}

net::AccessLinkConfig DrawLink(const CountryProfile& country, bool bufferbloat_case, Rng& rng) {
  net::AccessLinkConfig cfg;
  // Log-uniform downstream capacity within the country band.
  const double lo = std::log(country.down_mbps_lo);
  const double hi = std::log(country.down_mbps_hi);
  const double down = std::exp(rng.uniform(lo, hi));
  const double up = down * rng.uniform(country.up_fraction_lo, country.up_fraction_hi);
  cfg.down_capacity = Mbps(down);
  cfg.up_capacity = Mbps(std::max(0.25, up));
  cfg.allow_uplink_overdrive = bufferbloat_case;
  if (bufferbloat_case) {
    // The case-study homes pair a slow uplink with a deep modem buffer.
    cfg.up_capacity = Mbps(rng.uniform(0.9, 2.2));
    cfg.uplink_buffer = KB(512);
  }
  return cfg;
}
}  // namespace

Household::Household(collect::HomeId id, const CountryProfile& country, Interval study,
                     const std::vector<Interval>& presence_windows,
                     const gateway::Anonymizer& anonymizer, collect::RecordSink* sink,
                     Rng rng, const HouseholdOptions& options)
    : id_(id), country_(&country), tz_{country.utc_offset}, options_(options) {
  Rng avail_rng = rng.fork("availability");
  mode_ = options.bufferbloat_case ? RouterPowerMode::kAlwaysOn
                                   : AvailabilityModel::DrawMode(country, avail_rng);
  timeline_ =
      AvailabilityModel::Generate(country, mode_, tz_, study.start, study.end, avail_rng);

  // Devices.
  Rng dev_rng = rng.fork("devices");
  int count = options.forced_device_count > 0 ? options.forced_device_count
                                              : DrawDeviceCount(country, dev_rng);
  count = std::max(count, options.min_devices);
  for (int i = 0; i < count; ++i) {
    Rng d_rng = dev_rng.fork(static_cast<std::uint64_t>(i));
    DeviceSpec spec = DeviceFactory::DrawSpec(country.developed, country.always_on_device_scale,
                                              d_rng);
    std::vector<PresenceInterval> presence;
    for (const auto& window : presence_windows) {
      auto part = DeviceFactory::GeneratePresence(spec, tz_, window.start, window.end, d_rng);
      presence.insert(presence.end(), part.begin(), part.end());
    }
    devices_.emplace_back(spec, std::move(presence));
  }

  // The bufferbloat case homes host a dedicated always-on uploader
  // (the Fig. 16a "scientific data" machine).
  if (options.bufferbloat_case) {
    DeviceSpec spec;
    spec.type = traffic::DeviceType::kNas;
    spec.vendor = net::VendorClass::kIntel;
    spec.mac = traffic::MintMac(spec.vendor, dev_rng);
    spec.wired = true;
    spec.always_on = true;
    spec.hunger_scale = 3.0;
    std::vector<PresenceInterval> presence;
    for (const auto& window : presence_windows) {
      presence.push_back(PresenceInterval{Interval{window.start, window.end},
                                          wireless::Band::k2_4GHz});
    }
    devices_.emplace_back(spec, std::move(presence));
  }

  // Pick the primary (dominant) device: the hungriest, weighted by how
  // much it is around. Its appetite is boosted so one device ends up
  // carrying ~60 % of home volume (Fig. 17).
  double best = -1.0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const auto& d = devices_[i];
    const double presence_w = 0.25 + d.presence_fraction(study.start, study.end);
    const double score = d.spec().hunger_scale * presence_w;
    if (score > best) {
      best = score;
      primary_device_ = i;
    }
  }

  // Most users never touch the shipped channel 11; a minority move to one
  // of the other non-overlapping channels.
  Rng chan_rng = rng.fork("channel");
  if (chan_rng.bernoulli(0.12)) {
    channel_24_ = chan_rng.bernoulli(0.5) ? 1 : 6;
  }

  neighborhood_ =
      wireless::Neighborhood::Generate(country.neighborhood, rng.fork("neighborhood"));
  link_ = std::make_unique<net::AccessLink>(
      DrawLink(country, options.bufferbloat_case, dev_rng));

  gateway::GatewayConfig gw;
  gw.home = id_;
  gw.consent = options.consent;
  gw.cgn = options.cgn;
  if (options.cgn.enabled) {
    // Behind a carrier-grade NAT the home's WAN address is ISP-internal
    // shared space (RFC 6598, 100.64/10) — the CGN, not the home, owns the
    // public address. Still distinct per home so NAT tables stay per-home.
    gw.nat.wan_address = net::Ipv4Address(
        100, static_cast<std::uint8_t>(64 + (id_.value / 62500)),
        static_cast<std::uint8_t>((id_.value / 250) % 250),
        static_cast<std::uint8_t>(1 + (id_.value % 250)));
  } else {
    // Give each home a distinct WAN address so NAT tables are per-home.
    gw.nat.wan_address = net::Ipv4Address(
        203, 0, static_cast<std::uint8_t>(113 + (id_.value / 250)),
        static_cast<std::uint8_t>(1 + (id_.value % 250)));
  }
  gateway_ = std::make_unique<gateway::Gateway>(gw, *link_, anonymizer, sink);
}

int Household::wired_connected(TimePoint t) const {
  if (!timeline_.router_on_at(t)) return 0;
  int n = 0;
  for (const auto& d : devices_) {
    if (d.spec().wired && d.wants_online(t)) ++n;
  }
  // The WNDR3800 has four ports; surplus devices simply cannot attach.
  return std::min(n, 4);
}

int Household::wireless_connected(wireless::Band band, TimePoint t) const {
  if (!timeline_.router_on_at(t)) return 0;
  int n = 0;
  for (const auto& d : devices_) {
    if (d.band_at(t) == band) ++n;
  }
  return n;
}

void Household::ensure_connected_cache() const {
  if (connected_all_.size() == devices_.size()) return;
  connected_all_.clear();
  connected_24_.clear();
  connected_5_.clear();
  for (const auto& d : devices_) {
    // Seen = present while the router was actually powered.
    connected_all_.push_back(d.presence_set().intersect(timeline_.router_on));
    connected_24_.push_back(
        d.presence_on_band(wireless::Band::k2_4GHz).intersect(timeline_.router_on));
    connected_5_.push_back(
        d.presence_on_band(wireless::Band::k5GHz).intersect(timeline_.router_on));
  }
}

int Household::unique_seen_total(TimePoint since, TimePoint until) const {
  ensure_connected_cache();
  int n = 0;
  for (const auto& set : connected_all_) {
    if (set.covered_within(since, until).ms > 0) ++n;
  }
  return n;
}

int Household::unique_seen_band(wireless::Band band, TimePoint since, TimePoint until) const {
  ensure_connected_cache();
  const auto& sets = band == wireless::Band::k2_4GHz ? connected_24_ : connected_5_;
  int n = 0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].spec().wired) continue;
    if (sets[i].covered_within(since, until).ms > 0) ++n;
  }
  return n;
}

bool Household::has_always_connected(bool wired, Interval window, double slack) const {
  ensure_connected_cache();
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].spec().wired != wired) continue;
    if (connected_all_[i].coverage_fraction(window.start, window.end) >= 1.0 - slack)
      return true;
  }
  return false;
}

collect::HomeInfo Household::make_info() const {
  collect::HomeInfo info;
  info.id = id_;
  info.country_code = country_->code;
  info.developed = country_->developed;
  info.utc_offset = country_->utc_offset;
  info.consented_traffic = options_.consent == gateway::ConsentLevel::kFullTraffic;
  info.true_down_mbps = link_->config().down_capacity.mbps();
  info.true_up_mbps = link_->config().up_capacity.mbps();
  info.power_mode = static_cast<int>(mode_);
  return info;
}

}  // namespace bismark::home
