// A device in a home and its presence schedule.
//
// Presence — when the device is attached to the gateway, by cable or by
// association on one of the two bands — drives Figs 7–10 (device counts
// per medium/band), Fig. 13 (diurnal client counts) and Table 5
// (always-connected devices). Presence is the device's *intent*; the
// device is only actually connected while the router is also powered.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/intervals.h"
#include "core/rng.h"
#include "core/time.h"
#include "net/addr.h"
#include "net/oui.h"
#include "traffic/device_types.h"
#include "wireless/band.h"

namespace bismark::home {

/// Immutable identity and capabilities of a device.
struct DeviceSpec {
  traffic::DeviceType type{traffic::DeviceType::kLaptop};
  net::VendorClass vendor{net::VendorClass::kUnknown};
  net::MacAddress mac;
  bool wired{false};
  bool dual_band{false};   // wireless only
  bool always_on{false};   // Table 5 population: never leaves the network
  /// Appetite multiplier combining type hunger and household role.
  double hunger_scale{1.0};
};

/// One presence interval and, for wireless devices, the band used.
struct PresenceInterval {
  Interval when;
  wireless::Band band{wireless::Band::k2_4GHz};
};

/// Per-device presence schedule over a study window.
///
/// The schedule is stored as a structure of arrays — interval spans in one
/// contiguous array, per-interval bands in a parallel byte array — plus the
/// merged union for point queries. A fleet-scale run holds hundreds of
/// thousands of these schedules, so the former layout (an AoS interval
/// vector *and* three redundant IntervalSets) was the single biggest
/// per-home allocation; the SoA form stores each interval once.
class Device {
 public:
  Device(DeviceSpec spec, std::vector<PresenceInterval> presence);

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  /// AoS view of the schedule, materialised on demand (tests/diagnostics;
  /// hot paths read the SoA arrays).
  [[nodiscard]] std::vector<PresenceInterval> presence() const;
  /// Number of presence intervals.
  [[nodiscard]] std::size_t presence_count() const { return when_.size(); }

  /// Does the device want to be on the network at `t`?
  [[nodiscard]] bool wants_online(TimePoint t) const;
  /// Band in use at `t` (nullopt if wired or not present).
  [[nodiscard]] std::optional<wireless::Band> band_at(TimePoint t) const;
  /// Did the device ever use `band` during the window?
  [[nodiscard]] bool ever_on_band(wireless::Band band) const;
  /// Fraction of [lo, hi) the device wants to be online.
  [[nodiscard]] double presence_fraction(TimePoint lo, TimePoint hi) const;

  /// Merged presence across all media, for fast point/coverage queries.
  [[nodiscard]] const IntervalSet& presence_set() const { return all_; }
  /// Presence restricted to one band, derived from the SoA schedule on
  /// demand (empty for wired devices).
  [[nodiscard]] IntervalSet presence_on_band(wireless::Band band) const;

 private:
  DeviceSpec spec_;
  // SoA schedule, sorted by interval start; band_[i] is the
  // wireless::Band of when_[i] (unused when the device is wired).
  std::vector<Interval> when_;
  std::vector<std::uint8_t> band_;
  IntervalSet all_;  // merged union of when_
};

/// Generates devices for households.
class DeviceFactory {
 public:
  /// Draw a device spec for a household slot. `always_on_scale` comes from
  /// the country profile (developing homes power devices off more).
  static DeviceSpec DrawSpec(bool developed, double always_on_scale, Rng& rng);

  /// Generate the presence schedule for a spec over [begin, end), using
  /// the home's local timezone for diurnal structure.
  static std::vector<PresenceInterval> GeneratePresence(const DeviceSpec& spec, TimeZone tz,
                                                        TimePoint begin, TimePoint end,
                                                        Rng& rng);
};

}  // namespace bismark::home
