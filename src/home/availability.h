// Availability timelines: when a home's router is powered and when its ISP
// link is up.
//
// Section 4's central observation is that heartbeat gaps conflate two
// different phenomena — network outages and users treating the router as
// an appliance. We therefore model the two processes separately (router
// power per household mode, ISP outages per country) and let the
// measurement pipeline see only their intersection, exactly as the real
// deployment did.
#pragma once

#include "core/intervals.h"
#include "core/rng.h"
#include "core/time.h"
#include "home/country.h"

namespace bismark::home {

/// The ground truth the simulator knows but the heartbeat stream does not.
struct AvailabilityTimeline {
  TimePoint begin;
  TimePoint end;
  IntervalSet router_on;
  IntervalSet isp_up;

  /// Heartbeats flow only when both hold.
  [[nodiscard]] IntervalSet online() const { return router_on.intersect(isp_up); }
  [[nodiscard]] bool router_on_at(TimePoint t) const { return router_on.contains(t); }
  [[nodiscard]] bool available_at(TimePoint t) const {
    return router_on.contains(t) && isp_up.contains(t);
  }
  /// Fraction of the window with the router powered (the §4.2 statistic).
  [[nodiscard]] double router_on_fraction() const {
    return router_on.coverage_fraction(begin, end);
  }
};

/// Knobs for timeline generation beyond the country profile.
struct AvailabilityOptions {
  /// Probability of a multi-day "flaky ISP" episode (Fig. 6c) somewhere in
  /// the window; during the episode the outage rate multiplies ~20x.
  double flaky_episode_prob{0.05};
  /// Probability of a multi-day vacation power-down for always-on homes.
  double vacation_prob{0.08};
};

class AvailabilityModel {
 public:
  /// Draw the household's power mode from the country mixture.
  static RouterPowerMode DrawMode(const CountryProfile& country, Rng& rng);

  /// Generate ground-truth availability over [begin, end).
  static AvailabilityTimeline Generate(const CountryProfile& country, RouterPowerMode mode,
                                       TimeZone tz, TimePoint begin, TimePoint end, Rng rng,
                                       const AvailabilityOptions& options = {});
};

}  // namespace bismark::home
